//! Property tests over the Section-4 algorithms: correctness on randomized
//! inputs across sizes, plus trace-level claims (dummy messages help
//! wiseness, degrees stay within the theorems' shapes).

use nob_algos::fft::{naive_dft, BinaryExchangeFft, Complex, RecursiveFft};
use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::mm::MmInput;
use nob_algos::semiring::{Matrix, MinPlus, Semiring, WrapU64};
use nob_algos::sort::{columnsort_seq, BitonicSort, ColumnSort};
use nob_algos::stencil::{stencil_reference, DiamondStencil, WrapSumOp};
use nob_machine::{execute, RunOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recursive_mm_multiplies_any_matrices(vals in proptest::collection::vec(any::<u64>(), 128)) {
        let s = 8usize;
        let a = Matrix::from_rows(s, vals[..64].iter().map(|&x| WrapU64(x)).collect());
        let b = Matrix::from_rows(s, vals[64..].iter().map(|&x| WrapU64(x)).collect());
        let input = MmInput::new(a.clone(), b.clone());
        let (got, _) =
            execute(&RecursiveMm::<WrapU64>::default(), 64, &input, &RunOptions::default())
                .unwrap();
        prop_assert_eq!(got, a.mul_reference(&b));
    }

    #[test]
    fn space_and_cannon_mm_agree_with_reference(
        lg_side in 1u32..4,
        seed in any::<u64>(),
    ) {
        let s = 1usize << lg_side;
        let n = s * s;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = Matrix::from_fn(s, |_, _| WrapU64(next()));
        let b = Matrix::from_fn(s, |_, _| WrapU64(next()));
        let input = MmInput::new(a.clone(), b.clone());
        let expect = a.mul_reference(&b);
        let (got, _) =
            execute(&SpaceEfficientMm::<WrapU64>::default(), n, &input, &RunOptions::default())
                .unwrap();
        prop_assert_eq!(&got, &expect);
        let (got, _) =
            execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn tropical_mm_is_min_plus(seed in any::<u64>()) {
        let s = 8usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = Matrix::from_fn(s, |i, j| {
            if i == j {
                MinPlus::one()
            } else if next() % 3 == 0 {
                MinPlus::zero()
            } else {
                MinPlus((next() % 50) as f64)
            }
        });
        let input = MmInput::new(a.clone(), a.clone());
        let (got, _) =
            execute(&RecursiveMm::<MinPlus>::default(), 64, &input, &RunOptions::default())
                .unwrap();
        prop_assert!(got.close_to(&a.mul_reference(&a)));
    }

    #[test]
    fn ffts_match_naive_dft_on_random_signals(
        lg in 1u32..9,
        seed in any::<u64>(),
    ) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        let xs: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let want = naive_dft(&xs);
        let eps = 1e-9 * (n as f64) * 8.0;
        let (got, _) =
            execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!(g.close_to(*w, eps), "{:?} vs {:?}", g, w);
        }
        let (got, _) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!(g.close_to(*w, eps));
        }
    }

    #[test]
    fn sorts_agree_with_std_on_random_keys(
        lg in 1u32..10,
        seed in any::<u64>(),
        small_universe in any::<bool>(),
    ) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Duplicate-heavy universes stress the 0-1-principle corners.
        let keys: Vec<u64> =
            (0..n).map(|_| if small_universe { next() % 4 } else { next() }).collect();
        let mut want = keys.clone();
        want.sort();
        let (got, _) =
            execute(&ColumnSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
        prop_assert_eq!(&got, &want);
        let (got, _) =
            execute(&BitonicSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
        prop_assert_eq!(&got, &want);
        let mut seq = keys.clone();
        columnsort_seq(&mut seq);
        prop_assert_eq!(&seq, &want);
    }

    #[test]
    fn diamond_stencil_matches_reference_on_random_inputs(
        lg in 2u32..7,
        seed in any::<u64>(),
    ) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xs: Vec<u64> = (0..n).map(|_| next() % 1_000_000).collect();
        let want = stencil_reference::<WrapSumOp>(&xs);
        let (got, _) =
            execute(&DiamondStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();
        prop_assert_eq!(got, want);
    }

    /// The paper's dummy-message device can only improve wiseness.
    #[test]
    fn dummies_do_not_hurt_wiseness(seed in any::<u64>()) {
        let s = 8usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input = MmInput::new(
            Matrix::from_fn(s, |_, _| WrapU64(next())),
            Matrix::from_fn(s, |_, _| WrapU64(next())),
        );
        let (_, with) =
            execute(&RecursiveMm::<WrapU64>::new(true), 64, &input, &RunOptions::default())
                .unwrap();
        let (_, without) =
            execute(&RecursiveMm::<WrapU64>::new(false), 64, &input, &RunOptions::default())
                .unwrap();
        let a_with = nob_core::wiseness::alpha_max(&with, 64).alpha;
        let a_without = nob_core::wiseness::alpha_max(&without, 64).alpha;
        prop_assert!(a_with >= a_without - 1e-12);
    }
}
