//! 100%-planned coverage via trace capture (PR 7 acceptance criterion).
//!
//! Every shipped algorithm must run *all* of its supersteps planned once
//! `Program::capture_plans` has filled the gaps left by dynamic (data- or
//! value-dependent) steps. For algorithms that declare every route up front
//! (FFT, sorts, Cannon, broadcasts) capture must be a no-op; for the rest
//! (tree primitives, transpose, recursive/space MM inner levels, the
//! diamond and octahedron stencils) capture must close every remaining gap
//! and the captured replay — serial, sharded, fused and unfused — must be
//! bit-for-bit identical to the live dynamic run.

use nob_algos::broadcast::{AwareBroadcast, ObliviousBroadcast};
use nob_algos::fft::{BinaryExchangeFft, Complex, RecursiveFft};
use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::mm::MmInput;
use nob_algos::primitives::{CombineFn, MatrixTranspose, TreeReduce, TreeScan};
use nob_algos::semiring::{Matrix, WrapU64};
use nob_algos::sort::{BitonicSort, ColumnSort};
use nob_algos::stencil::{DiamondStencil, WrapSumOp};
use nob_algos::stencil2::{OctaStencil, WrapSum2Op};
use nob_machine::{execute, run, NobAlgorithm, RunOptions};

/// Deterministic value stream shared by all fixtures.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Captures the dynamic steps of `alg`'s program, asserts the 100%-planned
/// invariant, replays the captured program on every executor tier, and
/// returns how many plans capture added.
fn capture_and_replay<A: NobAlgorithm>(alg: &A, n: usize, input: &A::Input) -> usize
where
    A::Output: PartialEq + std::fmt::Debug,
{
    let name = alg.name();
    let (want, _) = execute(alg, n, input, &RunOptions::default())
        .unwrap_or_else(|e| panic!("{name}: dynamic baseline failed: {e}"));

    let mut prog = alg.build(n);
    let total = prog.steps().len();
    let declared = prog.planned_steps();
    let added = prog
        .capture_plans(alg.init(n, input))
        .unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));
    assert_eq!(declared + added, total, "{name}: capture left a dynamic step unplanned");
    assert_eq!(prog.planned_steps(), total, "{name}: not 100% planned after capture");

    let tiers = [
        RunOptions { parallel: false, ..Default::default() },
        RunOptions { workers: Some(4), ..Default::default() },
        RunOptions { workers: Some(4), fuse: false, ..Default::default() },
        RunOptions { validate: false, ..Default::default() },
    ];
    for (i, opts) in tiers.into_iter().enumerate() {
        let res = run(&prog, alg.init(n, input), &opts)
            .unwrap_or_else(|e| panic!("{name}: captured replay tier {i} failed: {e}"));
        assert!(res.fallback.is_none(), "{name}: captured replay tier {i} fell back");
        assert_eq!(alg.extract(n, res.states), want, "{name}: replay tier {i} diverged");
    }
    added
}

fn add(a: &u64, b: &u64) -> u64 {
    a.wrapping_add(*b)
}

#[test]
fn tree_reduce_captures_to_full_coverage() {
    let xs: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
    let alg = TreeReduce { op: add as CombineFn<u64> };
    assert!(capture_and_replay(&alg, 64, &xs[..]) > 0);
}

#[test]
fn tree_scan_captures_to_full_coverage() {
    let mut next = rng(11);
    let xs: Vec<u64> = (0..64).map(|_| next()).collect();
    let alg = TreeScan { op: add as CombineFn<u64> };
    assert!(capture_and_replay(&alg, 64, &xs[..]) > 0);
}

#[test]
fn matrix_transpose_captures_to_full_coverage() {
    let xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
    assert!(capture_and_replay(&MatrixTranspose, 64, &xs[..]) > 0);
}

#[test]
fn broadcasts_are_already_fully_planned() {
    assert_eq!(capture_and_replay(&ObliviousBroadcast, 16, &7u64), 0);
    assert_eq!(capture_and_replay(&AwareBroadcast { kappa: 2 }, 16, &7u64), 0);
}

#[test]
fn recursive_mm_inner_levels_capture_to_full_coverage() {
    let mut next = rng(23);
    let s = 8;
    let input = MmInput::new(
        Matrix::from_fn(s, |_, _| WrapU64(next())),
        Matrix::from_fn(s, |_, _| WrapU64(next())),
    );
    // RecursiveMm declares its top-level exchanges but the inner recursion
    // levels are dynamic — exactly the gap capture must close.
    let alg = RecursiveMm::<WrapU64>::default();
    let prog = alg.build(64);
    assert!(prog.planned_steps() < prog.steps().len(), "fixture: no dynamic inner levels");
    assert!(capture_and_replay(&alg, 64, &input) > 0);
}

#[test]
fn space_efficient_mm_captures_to_full_coverage() {
    let mut next = rng(31);
    let s = 8;
    let input = MmInput::new(
        Matrix::from_fn(s, |_, _| WrapU64(next())),
        Matrix::from_fn(s, |_, _| WrapU64(next())),
    );
    assert!(capture_and_replay(&SpaceEfficientMm::<WrapU64>::default(), 64, &input) > 0);
}

#[test]
fn cannon_mm_is_already_fully_planned() {
    let mut next = rng(41);
    let s = 4;
    let input = MmInput::new(
        Matrix::from_fn(s, |_, _| WrapU64(next())),
        Matrix::from_fn(s, |_, _| WrapU64(next())),
    );
    assert_eq!(capture_and_replay(&CannonMm::<WrapU64>::default(), 16, &input), 0);
}

#[test]
fn diamond_stencil_captures_to_full_coverage() {
    let mut next = rng(53);
    let xs: Vec<u64> = (0..32).map(|_| next() % 1_000_000).collect();
    assert!(capture_and_replay(&DiamondStencil::<WrapSumOp>::default(), 32, &xs[..]) > 0);
}

#[test]
fn octa_stencil_captures_to_full_coverage() {
    let mut next = rng(61);
    let n = 4;
    let xs: Vec<u64> = (0..n * n).map(|_| next() % 1_000_000).collect();
    assert!(capture_and_replay(&OctaStencil::<WrapSum2Op>::default(), n, &xs[..]) > 0);
}

#[test]
fn ffts_are_already_fully_planned() {
    let mut next = rng(71);
    let mut val = move || (next() % 1000) as f64 / 100.0;
    let xs: Vec<Complex> = (0..16).map(|_| Complex::new(val(), val())).collect();
    assert_eq!(capture_and_replay(&RecursiveFft::default(), 16, &xs[..]), 0);
    assert_eq!(capture_and_replay(&BinaryExchangeFft, 16, &xs[..]), 0);
}

#[test]
fn sorts_are_already_fully_planned() {
    let mut next = rng(83);
    let keys: Vec<u64> = (0..64).map(|_| next()).collect();
    assert_eq!(capture_and_replay(&ColumnSort::<u64>::default(), 64, &keys[..]), 0);
    assert_eq!(capture_and_replay(&BitonicSort::<u64>::default(), 64, &keys[..]), 0);
}
