//! Basic network-oblivious building blocks: tree reduction, prefix sums,
//! and matrix transposition.
//!
//! These are the primitives the paper leans on implicitly: prefix-like
//! computations drive the ascend–descend protocol of Section 5 (Lemma 5.1
//! charges `O(log p)` supersteps of constant degree for them — exactly the
//! cost of [`TreeScan`]), and transposition is the data movement at the heart
//! of the FFT and sorting algorithms. They double as small, readable examples
//! of the programming model.

use nob_machine::{Inbox, NobAlgorithm, Program};

/// A binary associative combiner used by [`TreeReduce`] and [`TreeScan`].
/// Function pointers keep the algorithm objects cheap to clone and the
/// supersteps `Send + Sync`.
pub type CombineFn<T> = fn(&T, &T) -> T;

/// Tree reduction to VP 0: `log v` supersteps of degree 1, one per cluster
/// level, from the innermost (label `log v − 1`) outward (label 0).
/// `H(n, p, σ) = Θ(log p·(1 + σ))`.
#[derive(Debug, Clone)]
pub struct TreeReduce<T> {
    /// The associative combiner.
    pub op: CombineFn<T>,
}

impl<T: Clone + Send + Sync + Default + 'static> NobAlgorithm for TreeReduce<T> {
    type State = T;
    type Msg = T;
    type Input = [T];
    type Output = T;

    fn name(&self) -> String {
        "tree-reduce".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), n);
        input.to_vec()
    }

    fn build(&self, n: usize) -> Program<T, T> {
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        let op = self.op;
        // Round t combines blocks of size 2^t: the right half-leader sends
        // its partial to the block leader. Labels walk outward with t.
        for t in 1..=log_v {
            let label = log_v - t;
            let half = 1usize << (t - 1);
            prog.step(label, "reduce-up", move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = op(st, &m);
                }
                if ctx.vp % (half * 2) == half {
                    out.send(ctx.vp - half, st.clone());
                }
            });
        }
        prog.step(0, "reduce-finalize", move |st, _ctx, inbox, _out| {
            for m in inbox.drain(..) {
                *st = op(st, &m);
            }
        });
        prog
    }

    fn extract(&self, _n: usize, states: Vec<T>) -> T {
        states.into_iter().next().expect("non-empty machine")
    }
}

/// Scan VP state.
#[derive(Debug, Clone, Default)]
pub struct ScanState<T> {
    /// The VP's original element.
    own: T,
    /// Running subtree total (right-edge convention: after up-round t, the
    /// VP at the right edge of a 2^t block holds that block's total).
    subtree: T,
    /// Left-half totals received on the way up, popped on the way down.
    lefts: Vec<T>,
    /// Exclusive prefix (None = empty prefix / identity).
    prefix: Option<T>,
}

/// Work-efficient inclusive prefix sums (Blelloch two-sweep scan): an
/// up-sweep and a down-sweep of `log v` degree-1 supersteps each, labels
/// walking outward and back. `H(n, p, σ) = Θ(log p·(1 + σ))` — the cost
/// model behind the prefix steps of the ascend–descend protocol.
#[derive(Debug, Clone)]
pub struct TreeScan<T> {
    /// The associative combiner.
    pub op: CombineFn<T>,
}

impl<T: Clone + Send + Sync + Default + 'static> NobAlgorithm for TreeScan<T> {
    type State = ScanState<T>;
    type Msg = T;
    type Input = [T];
    type Output = Vec<T>;

    fn name(&self) -> String {
        "tree-scan".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[T]) -> Vec<ScanState<T>> {
        assert_eq!(input.len(), n);
        input
            .iter()
            .map(|x| ScanState { own: x.clone(), subtree: x.clone(), lefts: Vec::new(), prefix: None })
            .collect()
    }

    fn build(&self, n: usize) -> Program<ScanState<T>, T> {
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        let op = self.op;

        // Up-sweep: round t, the right edge of each left half (r ≡ 2^{t−1}−1
        // mod 2^t) sends its subtree total to the block's right edge.
        for t in 1..=log_v {
            let label = log_v - t;
            let half = 1usize << (t - 1);
            prog.step(label, "scan-up", move |st: &mut ScanState<T>, _ctx, inbox: &mut Inbox<T>, out| {
                for m in inbox.drain(..) {
                    st.lefts.push(m.clone());
                    st.subtree = op(&m, &st.subtree);
                }
                if _ctx.vp % (half * 2) == half - 1 {
                    out.send(_ctx.vp + half, st.subtree.clone());
                }
            });
        }

        // Down-sweep: round t, the right edge of each 2^t block knows its
        // block's exclusive prefix; it forwards that prefix to its left
        // child's right edge and absorbs the left-half total itself.
        for t in (1..=log_v).rev() {
            let label = log_v - t;
            let half = 1usize << (t - 1);
            let is_turnaround = t == log_v;
            prog.step(label, "scan-down", move |st, ctx, inbox, out| {
                if is_turnaround {
                    // Last up-sweep message arrives here (root only).
                    for m in inbox.drain(..) {
                        st.lefts.push(m.clone());
                        st.subtree = op(&m, &st.subtree);
                    }
                } else if let Some(m) = inbox.pop() {
                    st.prefix = Some(m);
                }
                let block = half * 2;
                if ctx.vp % block == block - 1 {
                    let left_sum = st.lefts.pop().expect("up-sweep left-half total");
                    if let Some(p) = &st.prefix {
                        out.send(ctx.vp - half, p.clone());
                    }
                    st.prefix = Some(match &st.prefix {
                        None => left_sum,
                        Some(p) => op(p, &left_sum),
                    });
                }
            });
        }
        prog.step(log_v - 1, "scan-finalize", |st, _ctx, inbox, _out| {
            if let Some(m) = inbox.pop() {
                st.prefix = Some(m);
            }
        });
        prog
    }

    fn extract(&self, _n: usize, states: Vec<ScanState<T>>) -> Vec<T> {
        let op = self.op;
        states
            .into_iter()
            .map(|st| match st.prefix {
                None => st.own,
                Some(p) => op(&p, &st.own),
            })
            .collect()
    }
}

/// Network-oblivious √n×√n matrix transposition on `M(n)`: a single
/// 0-superstep permutation (plus the consuming barrier) — the pattern used
/// inside the FFT and Columnsort algorithms, exposed standalone.
#[derive(Debug, Clone, Default)]
pub struct MatrixTranspose;

impl NobAlgorithm for MatrixTranspose {
    type State = f64;
    type Msg = f64;
    type Input = [f64];
    type Output = Vec<f64>;

    fn name(&self) -> String {
        "matrix-transpose".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), n);
        assert!(n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2), "n must be an even power of 2");
        input.to_vec()
    }

    fn build(&self, n: usize) -> Program<f64, f64> {
        let s = 1usize << (n.trailing_zeros() / 2);
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        prog.step(0, "transpose-send", move |st, ctx, _inbox, out| {
            let (i, j) = (ctx.vp / s, ctx.vp % s);
            out.send(j * s + i, *st);
        });
        prog.step(log_v - 1, "transpose-recv", |st, _ctx, inbox, _out| {
            *st = inbox.pop().expect("transposed entry");
        });
        prog
    }

    fn extract(&self, _n: usize, states: Vec<f64>) -> Vec<f64> {
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn add(a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn maxi(a: &u64, b: &u64) -> u64 {
        *a.max(b)
    }

    #[test]
    fn reduce_sums_everything() {
        let xs: Vec<u64> = (1..=64).collect();
        let alg = TreeReduce { op: add as CombineFn<u64> };
        let (total, trace) = execute(&alg, 64, &xs[..], &RunOptions::default()).unwrap();
        assert_eq!(total, 64 * 65 / 2);
        assert_eq!(trace.superstep_count(), 7);
        assert_eq!(trace.max_degree(), 1);
    }

    #[test]
    fn reduce_with_max() {
        let xs: Vec<u64> = (0..32).map(|i| (i * 37) % 101).collect();
        let alg = TreeReduce { op: maxi as CombineFn<u64> };
        let (m, _) = execute(&alg, 32, &xs[..], &RunOptions::default()).unwrap();
        assert_eq!(m, *xs.iter().max().unwrap());
    }

    #[test]
    fn scan_computes_inclusive_prefix_sums() {
        for lg in 1..=8 {
            let n = 1usize << lg;
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            let alg = TreeScan { op: add as CombineFn<u64> };
            let (got, trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            let mut want = Vec::new();
            let mut acc = 0;
            for &x in &xs {
                acc += x;
                want.push(acc);
            }
            assert_eq!(got, want, "n = {n}");
            assert_eq!(trace.max_degree(), 1);
            assert_eq!(trace.superstep_count(), 2 * lg + 1);
        }
    }

    #[test]
    fn scan_folding_is_consistent() {
        let n = 64;
        let xs: Vec<u64> = (0..n as u64).map(|i| i ^ 21).collect();
        let alg = TreeScan { op: add as CombineFn<u64> };
        let (full, full_trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        for p in [2usize, 8, 32] {
            let (out, trace) = execute_folded(&alg, n, &xs[..], p, &RunOptions::default()).unwrap();
            assert_eq!(out, full);
            assert_eq!(trace.fold(p), full_trace.fold(p));
        }
    }

    #[test]
    fn scan_cost_is_logarithmic() {
        let n = 256;
        let xs = vec![1u64; n];
        let alg = TreeScan { op: add as CombineFn<u64> };
        let (_, trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        // H(n, p, σ) = Θ(log p (1 + σ)): at σ = 0 it is at most 2 log p + 1.
        for p in [2usize, 16, 256] {
            let h = trace.comm_complexity(p, 0.0);
            let lp = nob_core::model::paper_log2(p as f64);
            assert!(h <= 2.0 * lp + 1.0, "H({p}) = {h}");
        }
    }

    #[test]
    fn transpose_transposes() {
        let n = 64;
        let s = 8;
        let xs: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let (got, _) = execute(&MatrixTranspose, n, &xs[..], &RunOptions::default()).unwrap();
        for i in 0..s {
            for j in 0..s {
                assert_eq!(got[i * s + j], xs[j * s + i]);
            }
        }
    }
}
