//! The n-FFT problem (Section 4.2): evaluate the n-input FFT DAG.
//!
//! [`RecursiveFft`] is the paper's network-oblivious algorithm on `M(n)`: the
//! FFT DAG is decomposed into two sets of √n-input subDAGs; segments of
//! consecutive VPs evaluate the first set recursively, a transposition
//! permutation redistributes the intermediate values, and the segments
//! recursively evaluate the second set. At recursion level `i` the supersteps
//! have label `(1 − 1/2^i)·log n` and degree `O(1)`, giving (Thm. 4.5)
//!
//! ```text
//! H_FFT(n, p, σ) = O((n/p + σ)·log n / log(n/p)),
//! ```
//!
//! `Θ(1)`-optimal for `σ = O(n/p)` against Lemma 4.4.
//!
//! [`BinaryExchangeFft`] is the classic one-level baseline: `log n` butterfly
//! rounds, costing `H = Θ((n/p + σ)·log p)` — asymptotically worse whenever
//! `p` is large enough that `log p ≫ log n / log(n/p)`.
//!
//! Both algorithms compute the DFT with outputs in bit-reversed order (the
//! natural order of the FFT DAG); `extract` undoes the reversal so callers
//! see the natural-order spectrum. Values are double-precision [`Complex`]
//! numbers; [`naive_dft`] is the `O(n²)` correctness oracle.

use crate::common::{bit_reverse, ilog2, wiseness_dummies, wiseness_route};
use nob_machine::{Ctx, Inbox, NobAlgorithm, Program, Route};

/// A double-precision complex number (the FFT value type).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Builds `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex addition. (Deliberately an inherent method, not `std::ops`:
    /// the algorithm code calls these explicitly and the type stays a plain
    /// value pair.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// The twiddle factor `ω_den^num = exp(−2πi·num/den)`.
    #[inline]
    pub fn twiddle(num: usize, den: usize) -> Complex {
        let angle = -2.0 * std::f64::consts::PI * (num as f64) / (den as f64);
        Complex::new(angle.cos(), angle.sin())
    }

    /// Approximate equality with absolute tolerance `eps`.
    pub fn close_to(self, o: Complex, eps: f64) -> bool {
        (self.re - o.re).abs() <= eps && (self.im - o.im).abs() <= eps
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// The `O(n²)` reference DFT (natural input and output order).
pub fn naive_dft(xs: &[Complex]) -> Vec<Complex> {
    let n = xs.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &x) in xs.iter().enumerate() {
                acc = acc.add(x.mul(Complex::twiddle(t * k % n, n)));
            }
            acc
        })
        .collect()
}

/// Per-VP state: the single resident value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FftState {
    val: Complex,
}

/// What the previous superstep left in the inbox.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Nothing (first superstep).
    None,
    /// A permutation delivered our new value.
    Perm,
    /// A butterfly partner's value: combine `a ± b`.
    Bfly,
}

fn do_pending(st: &mut FftState, ctx: &Ctx, inbox: &mut Inbox<'_, Complex>, pending: Pending) {
    match pending {
        Pending::None => {}
        Pending::Perm => {
            debug_assert_eq!(inbox.len(), 1);
            st.val = inbox.pop().expect("permutation message");
        }
        Pending::Bfly => {
            let other = inbox.pop().expect("butterfly partner message");
            st.val = if ctx.vp & 1 == 0 { st.val.add(other) } else { other.sub(st.val) };
        }
    }
}

/// The network-oblivious recursive FFT (Section 4.2). Supports every power
/// of two `n ≥ 2`; for `n` not of the form `2^{2^k}` the DAG splits into
/// `2^{⌈(log n)/2⌉}`- and `2^{⌊(log n)/2⌋}`-input subDAGs, as the paper notes.
#[derive(Debug, Clone)]
pub struct RecursiveFft {
    /// Emit wiseness dummy messages (default: true). These are exactly the
    /// paper's: one dummy from `VP_j` to `VP_{j+m/2}` in each superstep of a
    /// level working on m-input subDAGs.
    pub wise: bool,
}

impl Default for RecursiveFft {
    fn default() -> Self {
        RecursiveFft { wise: true }
    }
}

impl RecursiveFft {
    /// Creates the algorithm, choosing whether to emit wiseness dummies.
    pub fn new(wise: bool) -> Self {
        RecursiveFft { wise }
    }

    /// Whether `n` is a supported size (any power of two ≥ 2).
    pub fn supports(n: usize) -> bool {
        n >= 2 && n.is_power_of_two()
    }
}

/// Emits the schedule evaluating m-input subDAGs on aligned m-segments.
fn emit_fft(
    prog: &mut Program<FftState, Complex>,
    n: usize,
    m: usize,
    pending: &mut Pending,
    wise: bool,
) {
    let log_v = ilog2(n);
    if m == 2 {
        // Base: exchange with the sibling; the combine happens at the next
        // superstep's ingest (Pending::Bfly). The pattern is the static
        // pair-exchange permutation, declared as an oblivious route.
        let p = *pending;
        prog.step_oblivious(
            log_v - 1,
            "fft-butterfly",
            1,
            |ctx, _| Route::Data(ctx.vp ^ 1),
            move |st, ctx, inbox, out| {
                do_pending(st, ctx, inbox, p);
                out.send(ctx.vp ^ 1, st.val);
            },
        );
        *pending = Pending::Bfly;
        return;
    }
    let label = log_v - ilog2(m);
    let m1 = 1usize << ilog2(m).div_ceil(2);
    let m2 = m / m1;
    let out_degree = if wise { 2 } else { 1 };

    // Transpose: u = t1·m2 + t2  →  t2·m1 + t1, so each column of the m1×m2
    // view becomes one aligned m1-segment. A pure permutation (plus the
    // wiseness dummy), i.e. a static route.
    {
        let p = *pending;
        prog.step_oblivious(
            label,
            "fft-transpose",
            out_degree,
            move |ctx, k| {
                if k > 0 {
                    return wiseness_route(ctx, label, 1, k - 1);
                }
                let base = ctx.vp - ctx.vp % m;
                let off = ctx.vp - base;
                let (t1, t2) = (off / m2, off % m2);
                Route::Data(base + t2 * m1 + t1)
            },
            move |st, ctx, inbox, out| {
                do_pending(st, ctx, inbox, p);
                let base = ctx.vp - ctx.vp % m;
                let off = ctx.vp - base;
                let (t1, t2) = (off / m2, off % m2);
                out.send(base + t2 * m1 + t1, st.val);
                if wise {
                    wiseness_dummies(ctx, label, 1, out);
                }
            },
        );
        *pending = Pending::Perm;
    }

    // First set of subDAGs: m2 independent m1-input FFTs.
    emit_fft(prog, n, m1, pending, wise);

    // Twiddle + transpose back: position t2·m1 + t1' holds Â_{t2}[k1] with
    // k1 = rev(t1'); multiply by ω_m^{t2·k1} and send to t1'·m2 + t2.
    {
        let p = *pending;
        let lg_m1 = ilog2(m1);
        prog.step_oblivious(
            label,
            "fft-twiddle",
            out_degree,
            move |ctx, k| {
                if k > 0 {
                    return wiseness_route(ctx, label, 1, k - 1);
                }
                let base = ctx.vp - ctx.vp % m;
                let off = ctx.vp - base;
                let (t2, t1p) = (off / m1, off % m1);
                Route::Data(base + t1p * m2 + t2)
            },
            move |st, ctx, inbox, out| {
                do_pending(st, ctx, inbox, p);
                let base = ctx.vp - ctx.vp % m;
                let off = ctx.vp - base;
                let (t2, t1p) = (off / m1, off % m1);
                let k1 = bit_reverse(t1p, lg_m1);
                st.val = st.val.mul(Complex::twiddle(t2 * k1 % m, m));
                out.send(base + t1p * m2 + t2, st.val);
                if wise {
                    wiseness_dummies(ctx, label, 1, out);
                }
            },
        );
        *pending = Pending::Perm;
    }

    // Second set of subDAGs: m1 independent m2-input FFTs.
    emit_fft(prog, n, m2, pending, wise);
}

impl NobAlgorithm for RecursiveFft {
    type State = FftState;
    type Msg = Complex;
    type Input = [Complex];
    type Output = Vec<Complex>;

    fn name(&self) -> String {
        format!("fft-recursive(wise={})", self.wise)
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[Complex]) -> Vec<FftState> {
        assert!(Self::supports(n), "RecursiveFft supports powers of two, got {n}");
        assert_eq!(input.len(), n);
        input.iter().map(|&val| FftState { val }).collect()
    }

    fn build(&self, n: usize) -> Program<FftState, Complex> {
        assert!(Self::supports(n), "RecursiveFft supports powers of two, got {n}");
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        let mut pending = Pending::None;
        emit_fft(&mut prog, n, n, &mut pending, self.wise);
        let p = pending;
        prog.step_oblivious(
            log_v - 1,
            "fft-finalize",
            0,
            |_, _| Route::Skip,
            move |st, ctx, inbox, _out| {
                do_pending(st, ctx, inbox, p);
            },
        );
        prog
    }

    fn extract(&self, n: usize, states: Vec<FftState>) -> Vec<Complex> {
        // The DAG leaves the spectrum in bit-reversed order; undo it.
        let bits = ilog2(n);
        (0..n).map(|k| states[bit_reverse(k, bits)].val).collect()
    }
}

/// The classic binary-exchange FFT: one butterfly round per bit, highest
/// stride first (DIF). The round pairing VPs that differ in bit
/// `log n − 1 − l` is an `l`-superstep. Included as the flat class-C
/// baseline for E4.
#[derive(Debug, Clone, Default)]
pub struct BinaryExchangeFft;

impl BinaryExchangeFft {
    /// Whether `n` is a supported size (any power of two ≥ 2).
    pub fn supports(n: usize) -> bool {
        n >= 2 && n.is_power_of_two()
    }
}

/// Completes the DIF butterfly of the round with stride `d` (block `2d`).
/// `tw` is the round's precomputed twiddle table (`tw[j] = ω_{2d}^j`,
/// built once per program by [`twiddle_table`]) — bit-for-bit the values
/// [`Complex::twiddle`] would produce, without paying `cos`/`sin` per VP
/// on the execution hot path.
fn binex_combine(st: &mut FftState, ctx: &Ctx, inbox: &mut Inbox<'_, Complex>, d: usize, tw: &[Complex]) {
    debug_assert_eq!(tw.len(), d);
    let other = inbox.pop().expect("butterfly partner message");
    st.val = if ctx.vp & d == 0 {
        st.val.add(other)
    } else {
        other.sub(st.val).mul(tw[ctx.vp % d])
    };
}

/// The stride-`d` round's twiddle table: `tw[j] = ω_{2d}^j` for `j < d`.
fn twiddle_table(d: usize) -> std::sync::Arc<[Complex]> {
    (0..d).map(|j| Complex::twiddle(j, 2 * d)).collect()
}

impl NobAlgorithm for BinaryExchangeFft {
    type State = FftState;
    type Msg = Complex;
    type Input = [Complex];
    type Output = Vec<Complex>;

    fn name(&self) -> String {
        "fft-binary-exchange".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[Complex]) -> Vec<FftState> {
        assert!(Self::supports(n), "BinaryExchangeFft supports powers of two, got {n}");
        assert_eq!(input.len(), n);
        input.iter().map(|&val| FftState { val }).collect()
    }

    fn build(&self, n: usize) -> Program<FftState, Complex> {
        assert!(Self::supports(n), "BinaryExchangeFft supports powers of two, got {n}");
        let mut prog = Program::new(n, n);
        let log_n = prog.log_v();
        // Round l's combine stride equals round l-1's send stride, so each
        // round hands its twiddle table to the next step's closure.
        let mut prev: Option<(usize, std::sync::Arc<[Complex]>)> = None;
        for l in 0..log_n {
            let d = n >> (l + 1);
            let combine = prev.take();
            prog.step_oblivious(
                l,
                "binex-round",
                1,
                move |ctx, _| Route::Data(ctx.vp ^ d),
                move |st, ctx, inbox, out| {
                    if let Some((pd, tw)) = &combine {
                        binex_combine(st, ctx, inbox, *pd, tw);
                    }
                    out.send(ctx.vp ^ d, st.val);
                },
            );
            prev = Some((d, twiddle_table(d)));
        }
        let (pd, tw) = prev.expect("log_n >= 1 for supported sizes");
        prog.step_oblivious(
            log_n - 1,
            "binex-finalize",
            0,
            |_, _| Route::Skip,
            move |st, ctx, inbox, _out| {
                binex_combine(st, ctx, inbox, pd, &tw);
            },
        );
        prog
    }

    fn extract(&self, n: usize, states: Vec<FftState>) -> Vec<Complex> {
        let bits = ilog2(n);
        (0..n).map(|k| states[bit_reverse(k, bits)].val).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn impulse_and_tone(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|t| {
                let phase = 2.0 * std::f64::consts::PI * 3.0 * (t as f64) / n as f64;
                Complex::new(phase.cos() + if t == 0 { 1.0 } else { 0.0 }, 0.3 * phase.sin())
            })
            .collect()
    }

    fn assert_spectra_match(got: &[Complex], want: &[Complex], n: usize) {
        let eps = 1e-9 * (n as f64) * 4.0;
        for (k, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(g.close_to(*w, eps), "bin {k}: {g:?} vs {w:?}");
        }
    }

    #[test]
    fn recursive_fft_matches_naive_dft() {
        for lg in 1..=10 {
            let n = 1usize << lg;
            let xs = impulse_and_tone(n);
            let want = naive_dft(&xs);
            let (got, _) =
                execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
            assert_spectra_match(&got, &want, n);
        }
    }

    #[test]
    fn binary_exchange_matches_naive_dft() {
        for lg in 1..=10 {
            let n = 1usize << lg;
            let xs = impulse_and_tone(n);
            let want = naive_dft(&xs);
            let (got, _) =
                execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
            assert_spectra_match(&got, &want, n);
        }
    }

    #[test]
    fn the_two_algorithms_agree() {
        let n = 256;
        let xs = impulse_and_tone(n);
        let (a, _) = execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
        let (b, _) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
        assert_spectra_match(&a, &b, n);
    }

    #[test]
    fn folding_preserves_output_and_metrics() {
        let n = 64;
        let xs = impulse_and_tone(n);
        let alg = RecursiveFft::default();
        let (full, full_trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        for p in [2usize, 8, 64] {
            let (out, trace) = execute_folded(&alg, n, &xs[..], p, &RunOptions::default()).unwrap();
            assert_spectra_match(&out, &full, n);
            let mut q = 2;
            while q <= p {
                assert_eq!(trace.fold(q), full_trace.fold(q));
                q *= 2;
            }
        }
    }

    #[test]
    fn labels_follow_the_recursive_decomposition() {
        // For n = 2^8 the top-level transposes are 0-supersteps, the √n
        // levels use label (1−1/2)·log n = 4, then 6, 7.
        let n = 256;
        let xs = impulse_and_tone(n);
        let (_, trace) =
            execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
        let s = trace.s_counts();
        assert_eq!(s[0], 2, "two top-level transposes");
        assert!(s[4] > 0, "level-1 supersteps at label 4");
        assert!(s[1] == 0 && s[2] == 0 && s[3] == 0, "no intermediate labels: {s:?}");
    }

    #[test]
    fn communication_complexity_matches_theorem_4_5() {
        let n = 4096;
        let xs = impulse_and_tone(n);
        let (_, trace) =
            execute(&RecursiveFft::new(false), n, &xs[..], &RunOptions::default()).unwrap();
        for p in [16usize, 256, 4096] {
            for sigma in [0.0, 8.0] {
                let measured = trace.comm_complexity(p, sigma);
                let theory = nob_core::lower_bounds::upper::fft(n, p, sigma);
                let ratio = measured / theory;
                assert!(
                    ratio > 0.2 && ratio < 12.0,
                    "p={p} sigma={sigma}: measured/theory = {ratio}"
                );
            }
        }
    }

    #[test]
    fn recursive_beats_binary_exchange_at_scale() {
        // E4's headline: for p near n the binary-exchange H picks up a full
        // log p factor while the oblivious algorithm pays log n/log(n/p).
        let n = 1024;
        let xs = impulse_and_tone(n);
        let (_, t_rec) =
            execute(&RecursiveFft::new(false), n, &xs[..], &RunOptions::default()).unwrap();
        let (_, t_bin) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
        let hr = t_rec.comm_complexity(32, 0.0);
        let hb = t_bin.comm_complexity(32, 0.0);
        assert!(hr < hb, "recursive {hr} vs binary-exchange {hb}");
    }
}
