//! The n-sort problem (Section 4.3): rank n keys by comparisons.
//!
//! [`ColumnSort`] is the paper's network-oblivious algorithm on `M(n)`: a
//! recursive version of Leighton's Columnsort. The keys form an `r×s` matrix
//! (column-major; each column is an aligned segment of `r` VPs) and the eight
//! phases alternate recursive column sorts (phases 1, 3, 5, 7) with fixed
//! permutations: transpose (2), untranspose (4), and the ±r/2 cyclic shift
//! (6, 8) of the paper's footnote 6.
//!
//! Two implementation choices, both documented deviations with unchanged
//! asymptotics:
//!
//! * **Shape**: the paper takes `r = n^{2/3}` (`r ≥ s²`); Leighton's
//!   correctness condition is `r ≥ 2(s−1)²`, which `r = s²` misses. We take
//!   `r = 2^{⌈2·log m/3⌉+1} = Θ(m^{2/3})` — same recurrence
//!   `H(m) = 4·H(Θ(m^{2/3})) + O(m/p + σ)`, hence the same Theorem 4.8 bound
//!   `H_sort(n, p, σ) = O((n/p + σ)·(log n/log(n/p))^{log_{3/2} 4})` — which
//!   satisfies Leighton's condition at every recursion level.
//! * **The −∞ convention, tag-free**: footnote 6 asks phase 7 to treat the
//!   r/2 keys wrapped by the cyclic shift as smaller than the rest of column
//!   0. After phase 5 the sequence is sorted up to local disorder of width
//!   `< m − r`, so every wrapped key (the last r/2 positions) is ≥ every key
//!   in the first r/2 positions. Sorting column 0 *normally* therefore puts
//!   the wrapped block contiguously on top, and the "−∞" behaviour is
//!   recovered by a column-0-aware inverse shift in phase 8 — no tags, which
//!   matters because tags would not survive the *recursive* phase-7 sorts
//!   (their own phases 6–8 would clobber them).
//!
//! [`BitonicSort`] is the one-level baseline: `Θ(log² n)` compare-exchange
//! supersteps, `H = Θ((n/p)·log p·log n + σ·log²n)` — asymptotically worse
//! than Columnsort for `p = n^{Ω(1)}`.

use crate::common::{ilog2, wiseness_dummies, wiseness_route};
use nob_machine::{Ctx, Inbox, NobAlgorithm, Program, Route};

/// Trait bound bundle for sortable keys.
pub trait SortKey: Ord + Clone + Send + Sync + Default + std::fmt::Debug + 'static {}
impl<K: Ord + Clone + Send + Sync + Default + std::fmt::Debug + 'static> SortKey for K {}

/// Base-case threshold: segments of at most this many VPs sort by
/// gather/sort/scatter (degree ≤ 32 = O(1)).
const BASE: usize = 32;

/// The column length `r` used for an m-key Columnsort instance: the smallest
/// power of two `≥ 2·m^{2/3}` (clamped so that `s = m/r ≥ 2`).
pub fn column_len(m: usize) -> usize {
    let lm = ilog2(m) as usize;
    1usize << ((2 * lm / 3 + 1).min(lm - 1))
}

/// Leighton's correctness condition for an `r×s` Columnsort step.
pub fn leighton_ok(r: usize, s: usize) -> bool {
    s >= 2 && r >= 2 * (s - 1) * (s - 1)
}

// --------------------------------------------------------------------------
// Phase permutations (positions are column-major linear ranks within the
// m-key instance: q ↔ (row q mod r, column q div r)).
// --------------------------------------------------------------------------

/// Phase 2: pick up in column-major order, deposit in row-major order.
#[inline]
fn transpose(q: usize, r: usize, s: usize, _m: usize) -> usize {
    (q % s) * r + q / s
}

/// Phase 4: the inverse "diagonalizing" permutation.
#[inline]
fn untranspose(q: usize, r: usize, s: usize, _m: usize) -> usize {
    (q % r) * s + q / r
}

/// Phase 6: cyclic shift down by r/2 (footnote 6 of the paper).
#[inline]
fn shift(q: usize, r: usize, _s: usize, m: usize) -> usize {
    (q + r / 2) % m
}

/// Phase 8: inverse shift, with the column-0 fix-up implementing the
/// wrapped-keys-as-−∞ convention (see module docs): after the normal phase-7
/// sort, column 0 holds the globally smallest r/2 keys followed by the r/2
/// wrapped (largest) keys.
#[inline]
fn unshift_fix(q: usize, r: usize, _s: usize, m: usize) -> usize {
    if q < r / 2 {
        q // column-0 lower part: already in final position
    } else if q < r {
        m - r + q // column-0 upper part: the wrapped keys go back to the tail
    } else {
        q - r / 2 // other columns: plain inverse shift
    }
}

// --------------------------------------------------------------------------
// Sequential reference (same phases; the executable specification the
// superstep program is tested against).
// --------------------------------------------------------------------------

/// Sequential recursive Columnsort.
pub fn columnsort_seq<K: SortKey>(items: &mut [K]) {
    let m = items.len();
    if m <= BASE {
        items.sort();
        return;
    }
    let r = column_len(m);
    let s = m / r;
    debug_assert!(leighton_ok(r, s), "r = {r}, s = {s}");
    let sort_columns = |v: &mut [K]| {
        for col in v.chunks_mut(r) {
            columnsort_seq(col);
        }
    };
    let permute = |v: &mut [K], f: fn(usize, usize, usize, usize) -> usize| {
        let mut out: Vec<K> = v.to_vec();
        for (q, item) in v.iter().enumerate() {
            out[f(q, r, s, m)] = item.clone();
        }
        v.clone_from_slice(&out);
    };
    sort_columns(items); // 1
    permute(items, transpose); // 2
    sort_columns(items); // 3
    permute(items, untranspose); // 4
    sort_columns(items); // 5
    permute(items, shift); // 6
    sort_columns(items); // 7
    permute(items, unshift_fix); // 8
}

// --------------------------------------------------------------------------
// The network-oblivious superstep program.
// --------------------------------------------------------------------------

/// Recursive Columnsort on `M(n)` (one key per VP). Supports every power of
/// two `n ≥ 2`.
#[derive(Debug, Clone)]
pub struct ColumnSort<K> {
    /// Emit wiseness dummy messages (default: true).
    pub wise: bool,
    _marker: std::marker::PhantomData<K>,
}

impl<K> Default for ColumnSort<K> {
    fn default() -> Self {
        ColumnSort { wise: true, _marker: std::marker::PhantomData }
    }
}

impl<K> ColumnSort<K> {
    /// Creates the algorithm, choosing whether to emit wiseness dummies.
    pub fn new(wise: bool) -> Self {
        ColumnSort { wise, _marker: std::marker::PhantomData }
    }
}

/// Replaces the held key if a permutation/scatter delivered a new one.
fn ingest_item<K: SortKey>(st: &mut K, inbox: &mut Inbox<'_, K>) {
    debug_assert!(inbox.len() <= 1, "at most one key per VP outside gather");
    if let Some(item) = inbox.pop() {
        *st = item;
    }
}

/// Emits the schedule sorting every aligned m-segment ascending.
fn emit_sort<K: SortKey>(prog: &mut Program<K, K>, n: usize, m: usize, wise: bool) {
    let log_v = ilog2(n);
    let label = log_v - ilog2(m);
    if m <= BASE {
        // Gather to the segment leader… (static fan-in: every non-leader
        // sends its key to the leader — data-independent destinations).
        prog.step_oblivious(
            label,
            "sort-gather",
            1,
            move |ctx, _| {
                let base = ctx.vp - ctx.vp % m;
                if ctx.vp != base {
                    Route::Data(base)
                } else {
                    Route::End
                }
            },
            move |st: &mut K, ctx, inbox, out| {
                ingest_item(st, inbox);
                let base = ctx.vp - ctx.vp % m;
                if ctx.vp != base {
                    out.send(base, st.clone());
                }
            },
        );
        // …sort locally, scatter back (static fan-out: the leader sends one
        // key to each segment position — only the *payloads* depend on the
        // data, never the destinations).
        prog.step_oblivious(
            label,
            "sort-scatter",
            m - 1,
            move |ctx, k| {
                let base = ctx.vp - ctx.vp % m;
                if ctx.vp == base {
                    Route::Data(base + k + 1)
                } else {
                    // Non-leaders send nothing at all: End (not Skip) keeps
                    // this wide fan-out O(1) per idle VP.
                    Route::End
                }
            },
            move |st: &mut K, ctx, inbox, out| {
                let base = ctx.vp - ctx.vp % m;
                if ctx.vp == base {
                    let mut all: Vec<K> = inbox.drain(..).collect();
                    all.push(st.clone());
                    all.sort();
                    let mut iter = all.into_iter();
                    *st = iter.next().expect("segment non-empty");
                    for (off, item) in iter.enumerate() {
                        out.send(base + off + 1, item);
                    }
                } else {
                    inbox.clear();
                }
            },
        );
        return;
    }

    let r = column_len(m);
    let s = m / r;
    debug_assert!(leighton_ok(r, s), "r = {r}, s = {s} at m = {m}");

    let permute = |prog: &mut Program<K, K>,
                   name: &'static str,
                   f: fn(usize, usize, usize, usize) -> usize| {
        let out_degree = if wise { 2 } else { 1 };
        prog.step_oblivious(
            label,
            name,
            out_degree,
            move |ctx: &Ctx, k| {
                if k > 0 {
                    return wiseness_route(ctx, label, 1, k - 1);
                }
                let base = ctx.vp - ctx.vp % m;
                let q = ctx.vp - base;
                Route::Data(base + f(q, r, s, m))
            },
            move |st: &mut K, ctx: &Ctx, inbox, out| {
                ingest_item(st, inbox);
                let base = ctx.vp - ctx.vp % m;
                let q = ctx.vp - base;
                out.send(base + f(q, r, s, m), st.clone());
                if wise {
                    wiseness_dummies(ctx, label, 1, out);
                }
            },
        );
    };

    emit_sort(prog, n, r, wise); // 1
    permute(prog, "sort-transpose", transpose); // 2
    emit_sort(prog, n, r, wise); // 3
    permute(prog, "sort-untranspose", untranspose); // 4
    emit_sort(prog, n, r, wise); // 5
    permute(prog, "sort-shift", shift); // 6
    emit_sort(prog, n, r, wise); // 7
    permute(prog, "sort-unshift", unshift_fix); // 8
}

impl<K: SortKey> NobAlgorithm for ColumnSort<K> {
    type State = K;
    type Msg = K;
    type Input = [K];
    type Output = Vec<K>;

    fn name(&self) -> String {
        format!("sort-columnsort(wise={})", self.wise)
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[K]) -> Vec<K> {
        assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
        assert_eq!(input.len(), n);
        input.to_vec()
    }

    fn build(&self, n: usize) -> Program<K, K> {
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        emit_sort(&mut prog, n, n, self.wise);
        prog.step_oblivious(
            log_v - 1,
            "sort-finalize",
            0,
            |_, _| Route::Skip,
            |st, _ctx, inbox, _out| {
                ingest_item(st, inbox);
            },
        );
        prog
    }

    fn extract(&self, _n: usize, states: Vec<K>) -> Vec<K> {
        states
    }
}

// --------------------------------------------------------------------------
// Bitonic baseline.
// --------------------------------------------------------------------------

/// Batcher's bitonic sorting network on `M(n)`: stage `k` merges bitonic runs
/// of length `2^k`; the substage exchanging at bit `j` is a
/// `(log n − 1 − j)`-superstep. The flat class-C baseline for E5.
#[derive(Debug, Clone, Default)]
pub struct BitonicSort<K> {
    _marker: std::marker::PhantomData<K>,
}

/// Completes the compare-exchange of substage `(k, j)`.
fn bitonic_combine<K: SortKey>(st: &mut K, ctx: &Ctx, inbox: &mut Inbox<'_, K>, k: u32, j: u32) {
    let other = inbox.pop().expect("bitonic partner key");
    let ascending = ctx.vp >> (k as usize) & 1 == 0;
    let upper = ctx.vp >> (j as usize) & 1 == 1;
    let keep_max = ascending == upper;
    if (other > *st) == keep_max {
        *st = other;
    }
}

impl<K: SortKey> NobAlgorithm for BitonicSort<K> {
    type State = K;
    type Msg = K;
    type Input = [K];
    type Output = Vec<K>;

    fn name(&self) -> String {
        "sort-bitonic".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[K]) -> Vec<K> {
        assert!(n.is_power_of_two() && n >= 2);
        assert_eq!(input.len(), n);
        input.to_vec()
    }

    fn build(&self, n: usize) -> Program<K, K> {
        let mut prog = Program::new(n, n);
        let log_n = prog.log_v();
        let mut pending: Option<(u32, u32)> = None;
        for k in 1..=log_n {
            for j in (0..k).rev() {
                let p = pending;
                let label = log_n - 1 - j;
                prog.step_oblivious(
                    label,
                    "bitonic-exchange",
                    1,
                    move |ctx, _| Route::Data(ctx.vp ^ (1 << j)),
                    move |st: &mut K, ctx, inbox, out| {
                        if let Some((pk, pj)) = p {
                            bitonic_combine(st, ctx, inbox, pk, pj);
                        }
                        out.send(ctx.vp ^ (1 << j), st.clone());
                    },
                );
                pending = Some((k, j));
            }
        }
        let p = pending;
        prog.step_oblivious(
            log_n - 1,
            "bitonic-finalize",
            0,
            |_, _| Route::Skip,
            move |st, ctx, inbox, _out| {
                if let Some((pk, pj)) = p {
                    bitonic_combine(st, ctx, inbox, pk, pj);
                }
            },
        );
        prog
    }

    fn extract(&self, _n: usize, states: Vec<K>) -> Vec<K> {
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn column_len_satisfies_leighton_at_every_level() {
        let mut m = 64usize;
        while m <= 1 << 22 {
            let r = column_len(m);
            let s = m / r;
            assert!(leighton_ok(r, s), "m={m}: r={r}, s={s}");
            assert!(r < m, "must recurse on smaller instances");
            // r = Θ(m^{2/3}): within [m^{2/3}, 4·m^{2/3}].
            let target = (m as f64).powf(2.0 / 3.0);
            assert!(r as f64 >= target && (r as f64) <= 4.0 * target, "m={m}: r={r}");
            m *= 2;
        }
    }

    #[test]
    fn sequential_columnsort_sorts_random_and_adversarial_inputs() {
        let mut rng = xorshift(99);
        for &m in &[64usize, 128, 512, 1024, 4096] {
            // Random u64 keys.
            for trial in 0..8 {
                let mut items: Vec<u64> = (0..m).map(|_| rng()).collect();
                let mut want = items.clone();
                want.sort();
                columnsort_seq(&mut items);
                assert_eq!(items, want, "m={m} trial={trial}");
            }
            // Random 0-1 inputs (the hard cases by the 0-1 principle).
            for trial in 0..64 {
                let mut items: Vec<u64> = (0..m).map(|_| rng() & 1).collect();
                let mut want = items.clone();
                want.sort();
                columnsort_seq(&mut items);
                assert_eq!(items, want, "0-1 m={m} trial={trial}");
            }
            // Reverse-sorted input.
            let mut rev: Vec<u64> = (0..m as u64).rev().collect();
            columnsort_seq(&mut rev);
            assert!(rev.windows(2).all(|w| w[0] <= w[1]), "reverse m={m}");
        }
    }

    #[test]
    fn distributed_columnsort_matches_std_sort() {
        let mut rng = xorshift(7);
        for &n in &[2usize, 16, 64, 128, 512] {
            let keys: Vec<u64> = (0..n).map(|_| rng() % 10_000).collect();
            let mut want = keys.clone();
            want.sort();
            let alg = ColumnSort::<u64>::default();
            let (got, _) = execute(&alg, n, &keys[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn distributed_columnsort_handles_duplicates_and_extremes() {
        let n = 256;
        let keys: Vec<u64> = (0..n).map(|i| [0, u64::MAX, 42, 42][i % 4]).collect();
        let mut want = keys.clone();
        want.sort();
        let alg = ColumnSort::<u64>::default();
        let (got, _) = execute(&alg, n, &keys[..], &RunOptions::default()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn folding_preserves_output_and_metrics() {
        let mut rng = xorshift(3);
        let n = 128;
        let keys: Vec<u64> = (0..n).map(|_| rng()).collect();
        let alg = ColumnSort::<u64>::default();
        let (full, full_trace) = execute(&alg, n, &keys[..], &RunOptions::default()).unwrap();
        for p in [2usize, 8, 32, 128] {
            let (out, trace) =
                execute_folded(&alg, n, &keys[..], p, &RunOptions::default()).unwrap();
            assert_eq!(out, full);
            let mut q = 2;
            while q <= p {
                assert_eq!(trace.fold(q), full_trace.fold(q));
                q *= 2;
            }
        }
    }

    #[test]
    fn bitonic_matches_std_sort() {
        let mut rng = xorshift(17);
        for &n in &[2usize, 8, 64, 256, 1024] {
            let keys: Vec<u64> = (0..n).map(|_| rng() % 1000).collect();
            let mut want = keys.clone();
            want.sort();
            let alg = BitonicSort::<u64>::default();
            let (got, _) = execute(&alg, n, &keys[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn communication_complexity_matches_theorem_4_8() {
        let mut rng = xorshift(23);
        let n = 4096;
        let keys: Vec<u64> = (0..n).map(|_| rng()).collect();
        let alg = ColumnSort::<u64>::new(false);
        let (_, trace) = execute(&alg, n, &keys[..], &RunOptions::default()).unwrap();
        for p in [4usize, 64, 256] {
            let measured = trace.comm_complexity(p, 0.0);
            let theory = nob_core::lower_bounds::upper::sort(n, p, 0.0);
            let ratio = measured / theory;
            assert!(ratio > 0.05 && ratio < 20.0, "p={p}: measured/theory = {ratio}");
        }
    }

    /// Number of supersteps that still communicate after folding onto p
    /// processors — read straight off the static schedule (no execution
    /// needed). For both sorts every such superstep moves Θ(n/p) keys per
    /// processor, so this count is the H(n, p, 0)/(n/p) shape.
    fn crossing_steps<A: nob_machine::NobAlgorithm>(alg: &A, n: usize, p: usize) -> usize {
        let log_p = p.trailing_zeros();
        alg.build(n).labels().iter().filter(|&&l| l < log_p).count()
    }

    #[test]
    fn columnsort_bitonic_crossover() {
        // Columnsort's crossing-superstep count is (log n/log(n/p))^{log_{3/2}4}
        // — constant for p = n^{1−δ} — while bitonic's grows like
        // log p·(log n − log p). The constants favour bitonic at small n; the
        // crossover for δ = 1/2 sits near n = 2^20. We (a) verify that the
        // static schedule predicts the *measured* H at a simulable size, and
        // (b) locate the crossover from the schedules alone (programs are
        // static, so the schedule is the ground truth for S^i).
        let col = ColumnSort::<u64>::new(false);
        let bit = BitonicSort::<u64>::default();

        // (a) Schedule-predicted shape matches measured H at n = 4096, p = 64.
        let mut rng = xorshift(31);
        let n = 4096;
        let p = 64;
        let keys: Vec<u64> = (0..n).map(|_| rng()).collect();
        let (_, t_col) = execute(&col, n, &keys[..], &RunOptions::default()).unwrap();
        let (_, t_bit) = execute(&bit, n, &keys[..], &RunOptions::default()).unwrap();
        let per_proc = (n / p) as f64;
        for (t, alg_steps, name) in [
            (&t_col, crossing_steps(&col, n, p), "columnsort"),
            (&t_bit, crossing_steps(&bit, n, p), "bitonic"),
        ] {
            let measured = t.comm_complexity(p, 0.0);
            let predicted = alg_steps as f64 * per_proc;
            let ratio = measured / predicted;
            assert!(ratio > 0.3 && ratio < 1.5, "{name}: measured {measured} vs predicted {predicted}");
        }
        // Below the crossover, bitonic's smaller step count wins.
        assert!(crossing_steps(&bit, n, p) < crossing_steps(&col, n, p));

        // (b) Above the crossover (n = 2^20, p = 2^10 = n^{1/2}) the
        // oblivious recursion's constant step count beats bitonic's
        // log p·(log n − log p) growth: 84 vs 165 supersteps.
        let n = 1usize << 20;
        let p = 1usize << 10;
        let c = crossing_steps(&col, n, p);
        let b = crossing_steps(&bit, n, p);
        assert!(c < b, "above crossover columnsort should win: {c} vs {b}");
    }
}
