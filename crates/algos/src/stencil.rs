//! The (n,1)-stencil problem (Section 4.4.1): evaluate an n×n space-time DAG
//! where node `(x, t)` depends on `(x−1, t−1)`, `(x, t−1)`, `(x+1, t−1)`.
//!
//! ## Geometry
//!
//! In rotated coordinates `u = x + t`, `w = t − x + (n−1)` the dependencies
//! point in the direction of increasing `u` and `w` (`(u−2, w)`, `(u−1, w−1)`,
//! `(u, w−2)`), and a *diamond* of the paper becomes an axis-aligned box. The
//! whole n×n problem square is a diamond in `(u, w)` — the paper's 5-piece
//! partition corresponds to covering it with boxes; we run one uniform
//! recursive box decomposition over the bounding box of side `2n`, skipping
//! empty blocks (the paper's "dummy diamonds" keep idle submachines in
//! lockstep; our SPMD closures simply no-op).
//!
//! ## The algorithm (Thm. 4.11)
//!
//! With `k = 2^⌈√log n⌉`, each level-ℓ box splits into a k×k grid of child
//! boxes evaluated in `2k−1` wavefront phases (the stripes of Figure 1);
//! phase `q` runs the children with `a + b = q` in parallel, child `(a, b)`
//! on the sub-segment selected by `b`. Each phase opens with a distribution
//! superstep of label `ℓ·log k` delivering the child's input halo (degree
//! `O(1)` per VP), and every block closes with an up-propagation superstep
//! returning its output halo to the parent's owners. Blocks whose segment is
//! smaller than `k` are evaluated time-row by time-row (`2m` supersteps of
//! the segment's label, degree `O(1)`), single-VP blocks locally. This gives
//! `H_1-stencil(n, p, σ) = O(n·4^{√log n})` for `σ = O(n/p)` —
//! `Ω(1/4^{√log n})`-optimal against Lemma 4.10's `Ω(n)`.
//!
//! [`NaiveStencil`] is the time-stepping baseline: `n−1` label-0 supersteps
//! of degree O(1): `H = Θ(n·(1 + σ))` — bandwidth-optimal but paying the
//! full latency `σ` *per time step*; the diamond algorithm wins exactly when
//! latency dominates (E6).
//!
//! Cell values are generic over a [`StencilOp`]; the per-VP store keeps every
//! computed cell (a simulator convenience — the paper's algorithm retains
//! only O(1) halo values per VP; metrics are unaffected).
//!
//! Plan coverage: [`NaiveStencil`]'s halo exchange is a fixed shift and
//! declares an oblivious route (planned execution); the diamond algorithm's
//! distribution/up-propagation supersteps derive their sends by iterating
//! the per-VP value store, whose order is delivery-history-dependent, so
//! they stay on the engine's dynamic path.

use nob_machine::{Ctx, Inbox, NobAlgorithm, Outbox, Program, Route};
use std::collections::BTreeMap;

/// The local rule: combine the three predecessors (absent at the spatial
/// boundary) into the new cell value.
pub trait StencilOp: Clone + Send + Sync + 'static {
    /// Cell value type.
    type V: Clone + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static;
    /// `v(x,t) = apply(v(x−1,t−1), v(x,t−1), v(x+1,t−1))`.
    fn apply(l: Option<&Self::V>, c: Option<&Self::V>, r: Option<&Self::V>) -> Self::V;
}

/// Exact integer test rule: `1 + Σ present predecessors` (wrapping).
#[derive(Debug, Clone, Copy, Default)]
pub struct WrapSumOp;

impl StencilOp for WrapSumOp {
    type V = u64;
    fn apply(l: Option<&u64>, c: Option<&u64>, r: Option<&u64>) -> u64 {
        let mut acc = 1u64;
        for v in [l, c, r].into_iter().flatten() {
            acc = acc.wrapping_add(*v);
        }
        acc
    }
}

/// Jacobi-style averaging (1D heat equation step).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeatOp;

impl StencilOp for HeatOp {
    type V = f64;
    fn apply(l: Option<&f64>, c: Option<&f64>, r: Option<&f64>) -> f64 {
        let vals: Vec<f64> = [l, c, r].into_iter().flatten().copied().collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Sequential reference evaluation: returns the last time row.
pub fn stencil_reference<O: StencilOp>(input: &[O::V]) -> Vec<O::V> {
    let n = input.len();
    let mut cur = input.to_vec();
    for _t in 1..n {
        let mut next = Vec::with_capacity(n);
        for x in 0..n {
            let l = if x > 0 { Some(&cur[x - 1]) } else { None };
            let r = if x + 1 < n { Some(&cur[x + 1]) } else { None };
            next.push(O::apply(l, Some(&cur[x]), r));
        }
        cur = next;
    }
    cur
}

// --------------------------------------------------------------------------
// Rotated-coordinate geometry.
// --------------------------------------------------------------------------

/// `(u, w) = (x + t, t − x + (n−1))`; inverse `x = (u − w + n − 1)/2`,
/// `t = (u + w − (n−1))/2`.
#[inline]
fn to_uw(x: i64, t: i64, n: i64) -> (i64, i64) {
    (x + t, t - x + (n - 1))
}

#[inline]
fn to_xt(u: i64, w: i64, n: i64) -> (i64, i64) {
    ((u - w + n - 1) / 2, (u + w - (n - 1)) / 2)
}

/// Whether `(x, t)` is a node of the problem square.
#[inline]
fn in_region(x: i64, t: i64, n: i64) -> bool {
    0 <= x && x < n && 0 <= t && t < n
}

/// Static per-instance geometry.
#[derive(Debug, Clone, Copy)]
struct Geo {
    n: i64,
    /// The decomposition arity `k = 2^⌈√log n⌉`.
    k: usize,
    log_k: u32,
    /// Box side at each level: `len_ℓ = 2n / k^ℓ`.
    levels: u32,
}

impl Geo {
    fn new(n: usize) -> Geo {
        let log_n = n.trailing_zeros().max(1);
        let k = 1usize << (log_n as f64).sqrt().ceil() as u32;
        // Levels until the segment m_ℓ = n/k^ℓ drops below k (base case).
        let mut levels = 0;
        let mut m = n;
        while m >= k && m > 1 {
            levels += 1;
            m /= k;
        }
        Geo { n: n as i64, k, log_k: k.trailing_zeros(), levels }
    }

    /// Segment size at level ℓ.
    #[inline]
    fn seg(&self, level: u32) -> usize {
        (self.n as usize) / self.k.pow(level)
    }

    /// Box side at level ℓ.
    #[inline]
    fn len(&self, level: u32) -> i64 {
        2 * self.n / self.k.pow(level) as i64
    }

    /// The level-ℓ block containing rotated point `(u, w)` (global indices).
    #[inline]
    fn block_of(&self, u: i64, w: i64, level: u32) -> (i64, i64) {
        let len = self.len(level);
        (u.div_euclid(len), w.div_euclid(len))
    }

    /// The live block on this VP's level-ℓ segment under ancestor phases
    /// `qs`, or `None` when the segment idles. The segment index *is* the
    /// global `B` coordinate; `A`'s base-k digits are forced by the phases.
    fn my_block(&self, vp: usize, level: u32, qs: &[usize]) -> Option<(i64, i64)> {
        debug_assert_eq!(qs.len(), level as usize);
        let m = self.seg(level);
        let b_global = (vp / m) as i64;
        let mut a_global = 0i64;
        let k = self.k as i64;
        for (j, &q) in qs.iter().enumerate() {
            let shift = self.k.pow(level - 1 - j as u32) as i64;
            let b_digit = (b_global / shift) % k;
            let a_digit = q as i64 - b_digit;
            if !(0..k).contains(&a_digit) {
                return None;
            }
            a_global += a_digit * shift;
        }
        let (a, b) = (a_global, b_global);
        // Idle if the box misses the problem square entirely.
        let len = self.len(level);
        let (u0, w0) = (a * len, b * len);
        // The square is the diamond |u−(n−1)| + |w−(n−1)| ≤ n−1; a box
        // intersects it iff the box's closest corner does.
        let cu = (self.n - 1).clamp(u0, u0 + len - 1);
        let cw = (self.n - 1).clamp(w0, w0 + len - 1);
        if (cu - (self.n - 1)).abs() + (cw - (self.n - 1)).abs() < self.n {
            Some((a, b))
        } else {
            None
        }
    }

    /// Owner of column `x` within the segment of block `(…, b)` at level ℓ.
    #[inline]
    fn owner(&self, b: i64, x: i64, level: u32) -> usize {
        let m = self.seg(level);
        b as usize * m + (x.rem_euclid(m as i64)) as usize
    }
}

// --------------------------------------------------------------------------
// VP state and messages.
// --------------------------------------------------------------------------

/// Marker bits: bit ℓ set ⇒ this copy serves the level-(ℓ+1) distributions
/// (it is the canonical copy within its level-ℓ segment). 0 = scratch.
type ServeMask = u32;

/// Per-VP value store. Ordered (not hashed): the distribution supersteps
/// send while iterating the store, so iteration order is send order — and
/// send order must be a deterministic function of `(program, v)` for the
/// engine's trace capture to replay these steps as planned ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StencilState<V> {
    store: BTreeMap<(i64, i64), (V, ServeMask)>,
}

impl<V: Clone> StencilState<V> {
    fn insert(&mut self, key: (i64, i64), val: V, mask: ServeMask) {
        self.store
            .entry(key)
            .and_modify(|e| e.1 |= mask)
            .or_insert((val, mask));
    }

    fn value(&self, x: i64, t: i64) -> Option<&V> {
        self.store.get(&(x, t)).map(|(v, _)| v)
    }
}

/// A cell value in flight: coordinates, payload, and the serve mask the
/// receiver should store it under.
#[derive(Debug, Clone)]
pub struct CellMsg<V> {
    x: i64,
    t: i64,
    val: V,
    mask: ServeMask,
}

fn ingest<V: Clone>(st: &mut StencilState<V>, inbox: &mut Inbox<'_, CellMsg<V>>) {
    for m in inbox.drain(..) {
        st.insert((m.x, m.t), m.val, m.mask);
    }
}

// --------------------------------------------------------------------------
// The network-oblivious diamond algorithm.
// --------------------------------------------------------------------------

/// The recursive diamond-decomposition stencil algorithm on `M(n)`.
/// Supports every power of two `n ≥ 2`.
#[derive(Debug, Clone, Default)]
pub struct DiamondStencil<O> {
    _marker: std::marker::PhantomData<O>,
}

/// Does `(x, t)` — a stored cell — need to be shipped into child block
/// `(a, b)` of `level` for this phase? True when the cell is outside the box
/// but feeds a node inside it, or is a `t = 0` input node inside it.
fn needed_by(geo: &Geo, x: i64, t: i64, a: i64, b: i64, level: u32) -> bool {
    let len = geo.len(level);
    let (u, w) = to_uw(x, t, geo.n);
    let inside = |uu: i64, ww: i64| {
        uu >= a * len && uu < (a + 1) * len && ww >= b * len && ww < (b + 1) * len
    };
    if inside(u, w) {
        return t == 0;
    }
    // Successors: (u+2, w), (u+1, w+1), (u, w+2) — any inside the box and the
    // region?
    for (du, dw) in [(2, 0), (1, 1), (0, 2)] {
        let (su, sw) = (u + du, w + dw);
        let (sx, st) = to_xt(su, sw, geo.n);
        if inside(su, sw) && in_region(sx, st, geo.n) {
            return true;
        }
    }
    false
}

/// Is `(x, t)` on the *output halo* of the level-ℓ block `(a, b)` — i.e.,
/// does some successor of it lie outside the box?
fn on_output_halo(geo: &Geo, x: i64, t: i64, a: i64, b: i64, level: u32) -> bool {
    let len = geo.len(level);
    let (u, w) = to_uw(x, t, geo.n);
    u >= (a + 1) * len - 2 || w >= (b + 1) * len - 2
}

/// Evaluates the row-`t` cells of block `(a, b)` owned by `vp`, storing them
/// with `mask` and sending scratch copies to the x-neighbour owners.
#[allow(clippy::too_many_arguments)]
fn eval_row<O: StencilOp>(
    geo: &Geo,
    st: &mut StencilState<O::V>,
    ctx: &Ctx,
    a: i64,
    b: i64,
    level: u32,
    t: i64,
    mask: ServeMask,
    send_neighbours: bool,
    out: &mut Outbox<CellMsg<O::V>>,
) {
    if t < 1 || t >= geo.n {
        return;
    }
    let len = geo.len(level);
    let m = geo.seg(level) as i64;
    let my_off = (ctx.vp as i64) % m;
    // Row t within the box: u ∈ [u0, u0+len) with w = 2t + (n−1) − u in
    // [w0, w0+len); x = u − t.
    let (u0, w0) = (a * len, b * len);
    let u_lo = u0.max(2 * t + (geo.n - 1) - (w0 + len - 1));
    let u_hi = (u0 + len - 1).min(2 * t + (geo.n - 1) - w0);
    for u in u_lo..=u_hi {
        let x = u - t;
        if !in_region(x, t, geo.n) || x.rem_euclid(m) != my_off {
            continue;
        }
        let l = (x > 0).then(|| st.value(x - 1, t - 1)).flatten();
        let c = st.value(x, t - 1);
        let r = (x + 1 < geo.n).then(|| st.value(x + 1, t - 1)).flatten();
        debug_assert!(
            (x == 0 || l.is_some()) && c.is_some() && (x + 1 == geo.n || r.is_some()),
            "missing in-region predecessor of ({x}, {t}) on VP {}",
            ctx.vp
        );
        let val = O::apply(l, c, r);
        st.insert((x, t), val.clone(), mask);
        if send_neighbours && m > 1 {
            for nx in [x - 1, x + 1] {
                let dst = geo.owner(b, nx, level);
                if dst != ctx.vp {
                    out.send(dst, CellMsg { x, t, val: val.clone(), mask: 0 });
                }
            }
        }
    }
}

/// Appends the up-propagation superstep of a level-ℓ block: its output-halo
/// serve(ℓ) copies are shipped to the parent's owners as serve(ℓ−1) copies.
/// Single-VP base blocks also perform their whole (local) evaluation here.
fn emit_upprop<O: StencilOp>(
    prog: &mut Program<StencilState<O::V>, CellMsg<O::V>>,
    geo: Geo,
    level: u32,
    qs: Vec<usize>,
    eval_local: bool,
) {
    let parent_label = (level - 1) * geo.log_k;
    prog.step(parent_label, "stencil-upprop", move |st, ctx, inbox, out| {
        ingest(st, inbox);
        let Some((a, b)) = geo.my_block(ctx.vp, level, &qs) else {
            return;
        };
        if eval_local {
            // Single-VP block: evaluate the whole box here.
            let len = geo.len(level);
            let t_min = (a * len + b * len - (geo.n - 1)).div_euclid(2);
            for r in 0..2 * len {
                eval_row::<O>(&geo, st, ctx, a, b, level, t_min + r, 1 << level, false, out);
            }
        }
        let parent_b = b.div_euclid(geo.k as i64);
        let mut halo: Vec<CellMsg<O::V>> = Vec::new();
        for (&(x, t), (val, mask)) in st.store.iter() {
            if mask & (1 << level) != 0 && on_output_halo(&geo, x, t, a, b, level) {
                halo.push(CellMsg { x, t, val: val.clone(), mask: 1 << (level - 1) });
            }
        }
        for msg in halo {
            let dst = geo.owner(parent_b, msg.x, level - 1);
            if dst == ctx.vp {
                st.insert((msg.x, msg.t), msg.val, msg.mask);
            } else {
                out.send(dst, msg);
            }
        }
    });
}

/// Emits the schedule evaluating all live level-ℓ blocks (under ancestor
/// phases `qs`), ending with the up-propagation superstep to level ℓ−1
/// (omitted at the top level).
fn emit_eval<O: StencilOp>(
    prog: &mut Program<StencilState<O::V>, CellMsg<O::V>>,
    geo: Geo,
    level: u32,
    qs: Vec<usize>,
) {
    let m = geo.seg(level);

    if level > 0 && (level >= geo.levels || m < geo.k) {
        // ---- Base block ------------------------------------------------
        if m > 1 {
            // Row-by-row evaluation: 2·len supersteps of the segment label.
            let label = level * geo.log_k;
            let len = geo.len(level);
            for r in 0..2 * len {
                let qs_c = qs.clone();
                prog.step(label, "stencil-row", move |st, ctx, inbox, out| {
                    ingest(st, inbox);
                    if let Some((a, b)) = geo.my_block(ctx.vp, level, &qs_c) {
                        let len = geo.len(level);
                        let t_min = (a * len + b * len - (geo.n - 1)).div_euclid(2);
                        eval_row::<O>(&geo, st, ctx, a, b, level, t_min + r, 1 << level, true, out);
                    }
                });
            }
        }
        emit_upprop::<O>(prog, geo, level, qs, m == 1);
        return;
    }

    // ---- Recursive block: 2k−1 wavefront phases ------------------------
    for q in 0..(2 * geo.k - 1) {
        // Phase-start distribution: serve(ℓ) copies feed the live children
        // of phase q with their input halos (and t = 0 input nodes).
        let label = level * geo.log_k;
        let qs_c = qs.clone();
        prog.step(label, "stencil-distribute", move |st, ctx, inbox, out| {
            ingest(st, inbox);
            let k = geo.k as i64;
            let my_parent_b = (ctx.vp / geo.seg(level)) as i64;
            let mut qs_child = Vec::with_capacity(qs_c.len() + 1);
            qs_child.extend_from_slice(&qs_c);
            qs_child.push(q);
            let mut sends: Vec<(usize, CellMsg<O::V>)> = Vec::new();
            for (&(x, t), (val, mask)) in st.store.iter() {
                if mask & (1 << level) == 0 {
                    continue;
                }
                let (u, w) = to_uw(x, t, geo.n);
                let mut targets: Vec<(i64, i64)> = Vec::new();
                for (du, dw) in [(0i64, 0i64), (2, 0), (1, 1), (0, 2)] {
                    let blk = geo.block_of(u + du, w + dw, level + 1);
                    if !targets.contains(&blk) {
                        targets.push(blk);
                    }
                }
                for (a, b) in targets {
                    // In-phase, inside my level-ℓ block, live, and needed.
                    if a.rem_euclid(k) + b.rem_euclid(k) != q as i64 {
                        continue;
                    }
                    if b.div_euclid(k) != my_parent_b || a < 0 || b < 0 {
                        continue;
                    }
                    let child_rep = b as usize * geo.seg(level + 1);
                    if geo.my_block(child_rep, level + 1, &qs_child) != Some((a, b)) {
                        continue;
                    }
                    if !needed_by(&geo, x, t, a, b, level + 1) {
                        continue;
                    }
                    // Serve copy to the canonical owner of column x…
                    let canonical = geo.owner(b, x, level + 1);
                    sends.push((
                        canonical,
                        CellMsg { x, t, val: val.clone(), mask: 1 << (level + 1) },
                    ));
                    // …and scratch copies to the owners computing the cell's
                    // in-box successors (they read it as a predecessor).
                    let len = geo.len(level + 1);
                    let inside = |uu: i64, ww: i64| {
                        uu >= a * len && uu < (a + 1) * len && ww >= b * len && ww < (b + 1) * len
                    };
                    for (du, dw) in [(2i64, 0i64), (1, 1), (0, 2)] {
                        let (su, sw) = (u + du, w + dw);
                        let (sx, st_t) = to_xt(su, sw, geo.n);
                        if inside(su, sw) && in_region(sx, st_t, geo.n) {
                            let dst = geo.owner(b, sx, level + 1);
                            if dst != canonical {
                                sends.push((dst, CellMsg { x, t, val: val.clone(), mask: 0 }));
                            }
                        }
                    }
                }
            }
            for (dst, msg) in sends {
                if dst == ctx.vp {
                    st.insert((msg.x, msg.t), msg.val, msg.mask);
                } else {
                    out.send(dst, msg);
                }
            }
        });
        let mut qs_next = qs.clone();
        qs_next.push(q);
        emit_eval::<O>(prog, geo, level + 1, qs_next);
    }

    if level > 0 {
        emit_upprop::<O>(prog, geo, level, qs, false);
    }
}

impl<O: StencilOp> NobAlgorithm for DiamondStencil<O> {
    type State = StencilState<O::V>;
    type Msg = CellMsg<O::V>;
    type Input = [O::V];
    type Output = Vec<O::V>;

    fn name(&self) -> String {
        "stencil1-diamond".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[O::V]) -> Vec<StencilState<O::V>> {
        assert!(n.is_power_of_two() && n >= 2);
        assert_eq!(input.len(), n);
        (0..n)
            .map(|x| {
                let mut st = StencilState::default();
                // serve(0): the initial input distribution, one column each.
                st.insert((x as i64, 0), input[x].clone(), 1);
                st
            })
            .collect()
    }

    fn build(&self, n: usize) -> Program<StencilState<O::V>, CellMsg<O::V>> {
        let geo = Geo::new(n);
        let mut prog = Program::new(n, n);
        emit_eval::<O>(&mut prog, geo, 0, Vec::new());
        prog
    }

    fn extract(&self, n: usize, states: Vec<StencilState<O::V>>) -> Vec<O::V> {
        let mut out = vec![O::V::default(); n];
        let t_last = (n - 1) as i64;
        for st in &states {
            for (&(x, t), (val, _)) in st.store.iter() {
                if t == t_last {
                    out[x as usize] = val.clone();
                }
            }
        }
        out
    }
}

// --------------------------------------------------------------------------
// Naive time-stepping baseline.
// --------------------------------------------------------------------------

/// The halo-exchange baseline: VP `x` keeps column `x`; each of the `n−1`
/// time steps is one 0-superstep in which every VP sends its current value
/// to both neighbours. `H(n, p, σ) = Θ(n·(1 + σ))` — bandwidth-optimal
/// against Lemma 4.10 but paying σ per *time step*, which is exactly where
/// the diamond algorithm wins (E6).
#[derive(Debug, Clone, Default)]
pub struct NaiveStencil<O> {
    _marker: std::marker::PhantomData<O>,
}

/// Naive VP state: current value plus the neighbour values of the last step.
#[derive(Debug, Clone, Default)]
pub struct NaiveState<V> {
    cur: V,
    left: Option<V>,
    right: Option<V>,
}

/// Neighbour value message: `(from_left, value)`.
pub type NaiveMsg<V> = (bool, V);

impl<O: StencilOp> NobAlgorithm for NaiveStencil<O> {
    type State = NaiveState<O::V>;
    type Msg = NaiveMsg<O::V>;
    type Input = [O::V];
    type Output = Vec<O::V>;

    fn name(&self) -> String {
        "stencil1-naive".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[O::V]) -> Vec<NaiveState<O::V>> {
        assert!(n.is_power_of_two() && n >= 2);
        assert_eq!(input.len(), n);
        input
            .iter()
            .map(|v| NaiveState { cur: v.clone(), left: None, right: None })
            .collect()
    }

    fn build(&self, n: usize) -> Program<NaiveState<O::V>, NaiveMsg<O::V>> {
        let mut prog = Program::new(n, n);
        for step in 0..n {
            // The halo exchange is the canonical fixed-shift pattern: every
            // VP sends to its two spatial neighbours (boundaries skip), and
            // the final time step sends nothing.
            let sends = step + 1 < n;
            prog.step_oblivious(
                0,
                "naive-step",
                if sends { 2 } else { 0 },
                move |ctx, k| {
                    if k == 0 {
                        if ctx.vp > 0 {
                            Route::Data(ctx.vp - 1)
                        } else {
                            Route::Skip
                        }
                    } else if ctx.vp + 1 < ctx.v {
                        Route::Data(ctx.vp + 1)
                    } else {
                        Route::Skip
                    }
                },
                move |st: &mut NaiveState<O::V>, ctx, inbox, out| {
                    for (from_left, v) in inbox.drain(..) {
                        if from_left {
                            st.left = Some(v);
                        } else {
                            st.right = Some(v);
                        }
                    }
                    if step > 0 {
                        st.cur = O::apply(st.left.as_ref(), Some(&st.cur), st.right.as_ref());
                        st.left = None;
                        st.right = None;
                    }
                    if step + 1 < ctx.n {
                        if ctx.vp > 0 {
                            out.send(ctx.vp - 1, (false, st.cur.clone()));
                        }
                        if ctx.vp + 1 < ctx.v {
                            out.send(ctx.vp + 1, (true, st.cur.clone()));
                        }
                    }
                },
            );
        }
        prog
    }

    fn extract(&self, _n: usize, states: Vec<NaiveState<O::V>>) -> Vec<O::V> {
        states.into_iter().map(|s| s.cur).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn input(n: usize) -> Vec<u64> {
        (0..n as u64).map(|x| x.wrapping_mul(0x9e37_79b9) % 1009).collect()
    }

    #[test]
    fn naive_matches_reference() {
        for &n in &[2usize, 4, 16, 64, 128] {
            let xs = input(n);
            let want = stencil_reference::<WrapSumOp>(&xs);
            let alg = NaiveStencil::<WrapSumOp>::default();
            let (got, trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
            assert_eq!(trace.superstep_count(), n);
        }
    }

    #[test]
    fn diamond_matches_reference() {
        for &n in &[4usize, 8, 16, 32, 64, 128, 256] {
            let xs = input(n);
            let want = stencil_reference::<WrapSumOp>(&xs);
            let alg = DiamondStencil::<WrapSumOp>::default();
            let (got, _) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn diamond_matches_reference_heat() {
        let n = 64;
        let xs: Vec<f64> = (0..n).map(|x| (x as f64 * 0.37).sin()).collect();
        let want = stencil_reference::<HeatOp>(&xs);
        let alg = DiamondStencil::<HeatOp>::default();
        let (got, _) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn folding_preserves_output_and_metrics() {
        let n = 64;
        let xs = input(n);
        let alg = DiamondStencil::<WrapSumOp>::default();
        let (full, full_trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        for p in [2usize, 8, 64] {
            let (out, trace) = execute_folded(&alg, n, &xs[..], p, &RunOptions::default()).unwrap();
            assert_eq!(out, full);
            let mut q = 2;
            while q <= p {
                assert_eq!(trace.fold(q), full_trace.fold(q));
                q *= 2;
            }
        }
    }

    #[test]
    fn diamond_beats_naive_when_latency_dominates() {
        // E6: the diamond algorithm trades a 4^√log n bandwidth factor for
        // far fewer supersteps; it wins once σ is large.
        let n = 256;
        let xs = input(n);
        let (_, t_d) =
            execute(&DiamondStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();
        let (_, t_n) =
            execute(&NaiveStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();
        // Bandwidth regime: naive is optimal.
        let p = 8;
        assert!(t_n.comm_complexity(p, 0.0) < t_d.comm_complexity(p, 0.0));
        // Latency regime (σ = Θ(n/p), the largest Thm 4.11 allows): the
        // oblivious decomposition pays ~(2k−1)^{log_k p} supersteps instead
        // of naive's n and wins.
        let sigma = (n / p) as f64;
        assert!(
            t_d.comm_complexity(p, sigma) < t_n.comm_complexity(p, sigma),
            "diamond {} vs naive {}",
            t_d.comm_complexity(p, sigma),
            t_n.comm_complexity(p, sigma)
        );
    }

    #[test]
    fn communication_complexity_matches_theorem_4_11() {
        // H(n, p, 0) = O(n·4^√log n): the measured/closed-form ratio stays
        // bounded across n.
        for &n in &[64usize, 256] {
            let xs = input(n);
            let alg = DiamondStencil::<WrapSumOp>::default();
            let (_, trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            for p in [4usize, 16] {
                let measured = trace.comm_complexity(p, 0.0);
                let theory = nob_core::lower_bounds::upper::stencil1(n, p, 0.0);
                let ratio = measured / theory;
                assert!(ratio < 8.0, "n={n} p={p}: measured/theory = {ratio}");
            }
        }
    }
}
