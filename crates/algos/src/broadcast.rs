//! The n-broadcast problem (Section 4.5): copy `V[0]` to all other entries.
//!
//! Broadcast is the paper's *negative* example: Theorem 4.15 shows any
//! class-C algorithm on `M(p, σ)` needs `H = Ω(max{2,σ}·log_{max{2,σ}} p)`,
//! and the matching algorithm ([`AwareBroadcast`]) must *know* σ to pick its
//! fan-out κ. Theorem 4.16 shows that no network-oblivious algorithm can be
//! `Θ(1)`-optimal across substantially different σ: with `t` supersteps,
//! `H_A = Ω(t·(max{2,σ} + p^{1/t}))`, so a fan-out fixed obliviously is wrong
//! for some σ. [`ObliviousBroadcast`] (the natural cluster-halving tree,
//! `t = log p`) makes the gap concrete: it pays `Θ(log p·(σ + 2))` versus the
//! aware `Θ(σ·log p / log σ)` — a `Θ(log σ)` gap, exactly the
//! `GAP = Ω(log σ₂/(log σ₁ + log log σ₂))` of Thm. 4.16 evaluated at
//! `σ₁ = O(1)`.

use nob_machine::{NobAlgorithm, Program, Route};

/// Per-VP state: the entry of `V` held by this VP (`Some` once known).
pub type BroadcastState = Option<u64>;

/// The network-oblivious cluster-halving broadcast: in the `i`-superstep the
/// leader of each `i`-cluster forwards the value to the leader of the sibling
/// `(i+1)`-cluster; after `log v` supersteps every VP holds it.
#[derive(Debug, Clone, Default)]
pub struct ObliviousBroadcast;

impl NobAlgorithm for ObliviousBroadcast {
    type State = BroadcastState;
    type Msg = u64;
    type Input = u64;
    type Output = Vec<u64>;

    fn name(&self) -> String {
        "broadcast-oblivious".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &u64) -> Vec<BroadcastState> {
        let mut states = vec![None; n];
        states[0] = Some(*input);
        states
    }

    fn build(&self, n: usize) -> Program<BroadcastState, u64> {
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        for i in 0..log_v {
            // Static route: the i-cluster leaders forward to the sibling
            // leaders. (Every leader provably holds the value by round i,
            // so the closure's `if let Some` always fires for them.)
            prog.step_oblivious(
                i,
                "bcast-halve",
                1,
                move |ctx, _| {
                    let cluster = ctx.v >> i;
                    if ctx.vp % cluster == 0 {
                        Route::Data(ctx.vp + cluster / 2)
                    } else {
                        Route::End
                    }
                },
                move |st, ctx, inbox, out| {
                    if let Some(m) = inbox.pop() {
                        *st = Some(m);
                    }
                    let cluster = ctx.v >> i;
                    if ctx.vp % cluster == 0 {
                        if let Some(val) = *st {
                            out.send(ctx.vp + cluster / 2, val);
                        }
                    }
                },
            );
        }
        prog.step_oblivious(
            log_v - 1,
            "bcast-consume",
            0,
            |_, _| Route::Skip,
            |st, _ctx, inbox, _out| {
                if let Some(m) = inbox.pop() {
                    *st = Some(m);
                }
            },
        );
        prog
    }

    fn extract(&self, _n: usize, states: Vec<BroadcastState>) -> Vec<u64> {
        states.into_iter().map(|s| s.expect("broadcast incomplete")).collect()
    }
}

/// The σ-aware broadcast of Section 4.5: a κ-ary tree with
/// `κ = 2^⌈log₂ max{2, σ}⌉`. In superstep `i`, each holder `P_{j·v/κ^i}`
/// sends the value to the κ leaders of the κ-way split of its block. With
/// `t = Θ(log_κ p)` supersteps its communication complexity matches the
/// Theorem 4.15 lower bound — but κ is a function of σ, so the algorithm is
/// parameter-*aware* (this is the knowledge Thm. 4.16 proves necessary).
#[derive(Debug, Clone)]
pub struct AwareBroadcast {
    /// The fan-out κ (a power of two ≥ 2). Choose with [`AwareBroadcast::for_sigma`].
    pub kappa: usize,
}

impl AwareBroadcast {
    /// Picks the optimal fan-out for latency σ: the smallest power of two
    /// `≥ max{2, σ}`.
    pub fn for_sigma(sigma: f64) -> Self {
        let k = sigma.max(2.0).ceil() as usize;
        AwareBroadcast { kappa: k.next_power_of_two() }
    }
}

impl NobAlgorithm for AwareBroadcast {
    type State = BroadcastState;
    type Msg = u64;
    type Input = u64;
    type Output = Vec<u64>;

    fn name(&self) -> String {
        format!("broadcast-aware(kappa={})", self.kappa)
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &u64) -> Vec<BroadcastState> {
        let mut states = vec![None; n];
        states[0] = Some(*input);
        states
    }

    fn build(&self, n: usize) -> Program<BroadcastState, u64> {
        assert!(self.kappa.is_power_of_two() && self.kappa >= 2);
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        let kappa = self.kappa;
        // Holder spacing per round: v, v/κ, v/κ², …, clamped at 1.
        let mut span = n;
        while span > 1 {
            let next = (span / kappa).max(1);
            let label = log_v - nob_core::model::log2_exact(span);
            // Static κ-ary fan-out from each holder to its block's leaders.
            prog.step_oblivious(
                label,
                "bcast-kary",
                span / next - 1,
                move |ctx, k| {
                    if ctx.vp % span == 0 {
                        Route::Data(ctx.vp + (k + 1) * next)
                    } else {
                        Route::End
                    }
                },
                move |st, ctx, inbox, out| {
                    if let Some(m) = inbox.pop() {
                        *st = Some(m);
                    }
                    if ctx.vp % span == 0 {
                        if let Some(val) = *st {
                            let mut dst = ctx.vp + next;
                            while dst < ctx.vp + span {
                                out.send(dst, val);
                                dst += next;
                            }
                        }
                    }
                },
            );
            span = next;
        }
        prog.step_oblivious(
            log_v - 1,
            "bcast-consume",
            0,
            |_, _| Route::Skip,
            |st, _ctx, inbox, _out| {
                if let Some(m) = inbox.pop() {
                    *st = Some(m);
                }
            },
        );
        prog
    }

    fn extract(&self, _n: usize, states: Vec<BroadcastState>) -> Vec<u64> {
        states.into_iter().map(|s| s.expect("broadcast incomplete")).collect()
    }
}

/// The measured optimality gap of an oblivious broadcast at `(p, σ)`:
/// `H_oblivious / H_best-aware` (Thm. 4.16's `GAP`, pointwise).
pub fn measured_gap(
    oblivious: &nob_core::CommTrace,
    aware: &nob_core::CommTrace,
    p: usize,
    sigma: f64,
) -> f64 {
    oblivious.comm_complexity(p, sigma) / aware.comm_complexity(p, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    #[test]
    fn oblivious_broadcast_reaches_everyone() {
        let (out, trace) =
            execute(&ObliviousBroadcast, 64, &42, &RunOptions::default()).unwrap();
        assert!(out.iter().all(|&x| x == 42));
        // One superstep per level, degree 1 each.
        assert_eq!(trace.s_counts(), vec![1, 1, 1, 1, 1, 2]);
        assert_eq!(trace.max_degree(), 1);
    }

    #[test]
    fn aware_broadcast_reaches_everyone_for_all_kappa() {
        for kappa in [2usize, 4, 8, 64] {
            let alg = AwareBroadcast { kappa };
            let (out, _) = execute(&alg, 64, &7, &RunOptions::default()).unwrap();
            assert!(out.iter().all(|&x| x == 7), "kappa = {kappa}");
        }
    }

    #[test]
    fn folding_preserves_output() {
        for p in [2usize, 8, 32] {
            let (out, _) =
                execute_folded(&ObliviousBroadcast, 64, &9, p, &RunOptions::default()).unwrap();
            assert!(out.iter().all(|&x| x == 9));
            let alg = AwareBroadcast { kappa: 8 };
            let (out, _) = execute_folded(&alg, 64, &9, p, &RunOptions::default()).unwrap();
            assert!(out.iter().all(|&x| x == 9));
        }
    }

    #[test]
    fn aware_matches_the_lower_bound_shape() {
        // H_aware(p, σ) / LB(p, σ) stays bounded across a wide σ range when
        // κ is tuned to σ (Theorem 4.15 tightness).
        let n = 1 << 12;
        for sigma in [0.0, 2.0, 16.0, 256.0] {
            let alg = AwareBroadcast::for_sigma(sigma);
            let (_, trace) = execute(&alg, n, &1, &RunOptions::default()).unwrap();
            let measured = trace.comm_complexity(n, sigma);
            let lb = nob_core::lower_bounds::broadcast(n, sigma);
            let ratio = measured / lb;
            assert!(ratio < 8.0, "sigma={sigma}: measured/LB = {ratio}");
        }
    }

    #[test]
    fn gap_grows_with_sigma_as_thm_4_16_predicts() {
        // The oblivious binary tree is Θ(1)-optimal at σ = O(1) but loses a
        // Θ(log σ) factor at large σ.
        let n = 1 << 12;
        let (_, t_obl) = execute(&ObliviousBroadcast, n, &1, &RunOptions::default()).unwrap();
        let mut last_gap = 0.0;
        for sigma in [2.0, 16.0, 256.0, 4096.0] {
            let aware = AwareBroadcast::for_sigma(sigma);
            let (_, t_aw) = execute(&aware, n, &1, &RunOptions::default()).unwrap();
            let gap = measured_gap(&t_obl, &t_aw, n, sigma);
            assert!(gap >= last_gap * 0.9, "gap should grow: {gap} after {last_gap}");
            last_gap = gap;
        }
        assert!(last_gap > 2.0, "large-sigma gap should exceed a constant: {last_gap}");
    }
}
