//! The (n,2)-stencil problem (Section 4.4.2): evaluate an n×n×n space-time
//! DAG where node `(x, y, t)` depends on the nine nodes
//! `(x+δx, y+δy, t−1)`, `δx, δy ∈ {0, ±1}`.
//!
//! ## Geometry
//!
//! Rotate twice: `u = x+t`, `w = t−x+(n−1)` and `p = y+t`, `q = t−y+(n−1)`,
//! with the coupling `u+w = p+q = 2t+(n−1)`. Dependencies decrease in all
//! four rotated coordinates, so blocks defined by a 4D box grid
//! `(a, b, e, f) = (u, w, p, q) div len` admit a wavefront schedule by
//! `ph = a+b+e+f`. Non-empty blocks satisfy `|(a+b) − (e+f)| ≤ 1`; the
//! `(a+b) = (e+f)` family corresponds to the paper's *octahedra*, the
//! off-by-one families to its *tetrahedra*, and the phases `ph = 0 … 4k−4`
//! are the paper's `4k−3` interleaved stripes of at most `k²` polyhedra (we
//! run the two families of an odd phase as two sub-rounds, a ×2 superstep
//! constant). Each live block runs on the k²-way subdivision of its parent's
//! VP segment, selected by `(b mod k, f mod k)`.
//!
//! Specified on `M(n²)` with `k = 2^⌈√log n⌉`; distribution supersteps of
//! label `2ℓ·log k` start every phase and an up-propagation superstep closes
//! every block, giving (Thm. 4.13)
//!
//! ```text
//! H_2-stencil(n, p, σ) = O((n²/√p)·8^{√log n})   for σ = O(n²/p),
//! ```
//!
//! `Ω(1/8^{√log n})`-optimal against Lemma 4.10's `Ω(n²/√p)`.
//!
//! [`NaiveStencil2`] is the time-stepping baseline (`n` label-0 supersteps,
//! `H = Θ(n·(√(n²/p) + σ))`).

use nob_machine::{Ctx, Inbox, NobAlgorithm, Outbox, Program, Route};
use std::collections::BTreeMap;

/// The 9-point local rule. `neigh[dy+1][dx+1]` is `v(x+δx, y+δy, t−1)`
/// (None outside the spatial square).
pub trait Stencil2Op: Clone + Send + Sync + 'static {
    /// Cell value type.
    type V: Clone + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static;
    /// Combine the available predecessors.
    fn apply(neigh: &[[Option<&Self::V>; 3]; 3]) -> Self::V;
}

/// Exact integer test rule: `1 + Σ present predecessors` (wrapping).
#[derive(Debug, Clone, Copy, Default)]
pub struct WrapSum2Op;

impl Stencil2Op for WrapSum2Op {
    type V = u64;
    fn apply(neigh: &[[Option<&u64>; 3]; 3]) -> u64 {
        let mut acc = 1u64;
        for row in neigh {
            for v in row.iter().flatten() {
                acc = acc.wrapping_add(**v);
            }
        }
        acc
    }
}

/// Sequential reference: returns the t = n−1 plane (row-major `x·n + y`).
pub fn stencil2_reference<O: Stencil2Op>(input: &[O::V], n: usize) -> Vec<O::V> {
    assert_eq!(input.len(), n * n);
    let mut cur = input.to_vec();
    let at = |g: &[O::V], x: i64, y: i64| -> Option<O::V> {
        (0 <= x && x < n as i64 && 0 <= y && y < n as i64)
            .then(|| g[x as usize * n + y as usize].clone())
    };
    for _t in 1..n {
        let mut next = Vec::with_capacity(n * n);
        for x in 0..n as i64 {
            for y in 0..n as i64 {
                let vals: Vec<[Option<O::V>; 3]> = (-1..=1)
                    .map(|dy| {
                        [at(&cur, x - 1, y + dy), at(&cur, x, y + dy), at(&cur, x + 1, y + dy)]
                    })
                    .collect();
                let borrowed: [[Option<&O::V>; 3]; 3] = [
                    [vals[0][0].as_ref(), vals[0][1].as_ref(), vals[0][2].as_ref()],
                    [vals[1][0].as_ref(), vals[1][1].as_ref(), vals[1][2].as_ref()],
                    [vals[2][0].as_ref(), vals[2][1].as_ref(), vals[2][2].as_ref()],
                ];
                next.push(O::apply(&borrowed));
            }
        }
        cur = next;
    }
    cur
}

// --------------------------------------------------------------------------
// Geometry.
// --------------------------------------------------------------------------

#[inline]
fn rot(xy: i64, t: i64, n: i64) -> (i64, i64) {
    (xy + t, t - xy + (n - 1))
}

#[inline]
fn in_region(x: i64, y: i64, t: i64, n: i64) -> bool {
    0 <= x && x < n && 0 <= y && y < n && 0 <= t && t < n
}

#[derive(Debug, Clone, Copy)]
struct Geo2 {
    n: i64,
    k: usize,
    log_k: u32,
    levels: u32,
}

/// A level-ℓ block: 4D rotated box indices.
type Block = (i64, i64, i64, i64);

impl Geo2 {
    fn new(n: usize) -> Geo2 {
        let log_n = n.trailing_zeros().max(1);
        let k = 1usize << (log_n as f64).sqrt().ceil() as u32;
        let mut levels = 0;
        let mut m = n;
        while m >= k && m > 1 {
            levels += 1;
            m /= k;
        }
        Geo2 { n: n as i64, k, log_k: k.trailing_zeros(), levels }
    }

    /// Spatial segment side at level ℓ (segment = m² VPs).
    #[inline]
    fn m(&self, level: u32) -> usize {
        (self.n as usize) / self.k.pow(level)
    }

    #[inline]
    fn len(&self, level: u32) -> i64 {
        2 * self.n / self.k.pow(level) as i64
    }

    /// Resolves the digit-sum pair `(g, h)` of a phase unit `(ph, δ)` inside
    /// a parent whose global plane-sum difference is `d = (a+b) − (e+f)`.
    ///
    /// `g + h = ph` and, because the global coupling `|sums(u,w) − sums(p,q)|
    /// ≤ 1` must hold after appending the digits, `g − h = −d·k + (δ − 1)`
    /// with `δ ∈ {0, 1, 2}`. Returns `None` when the unit is empty for this
    /// parent (parity mismatch or out-of-range sums).
    fn digit_sums(&self, ph: usize, delta: usize, d: i64) -> Option<(i64, i64)> {
        let k = self.k as i64;
        let gmh = -d * k + (delta as i64 - 1);
        let gph = ph as i64;
        if (gph + gmh).rem_euclid(2) != 0 {
            return None;
        }
        let g = (gph + gmh) / 2;
        let h = gph - g;
        let max = 2 * k - 2;
        ((0..=max).contains(&g) && (0..=max).contains(&h)).then_some((g, h))
    }

    /// Segment base VP of the block with w-index `b` and q-index `f` at ℓ.
    fn seg_base(&self, b: i64, f: i64, level: u32) -> usize {
        let k = self.k as i64;
        let mut base = 0usize;
        for j in 1..=level {
            let mj = self.m(j);
            let shift = self.k.pow(level - j) as i64;
            let bd = (b / shift).rem_euclid(k) as usize;
            let fd = (f / shift).rem_euclid(k) as usize;
            base += (bd * self.k + fd) * mj * mj;
        }
        base
    }

    /// Owner VP of spatial column `(x, y)` within the level-ℓ block `(…b…f)`.
    fn owner(&self, b: i64, f: i64, x: i64, y: i64, level: u32) -> usize {
        let m = self.m(level) as i64;
        self.seg_base(b, f, level)
            + (x.rem_euclid(m) * m + y.rem_euclid(m)) as usize
    }

    /// The block containing rotated point `(u, w, p, q)` at level ℓ.
    #[inline]
    fn block_of(&self, u: i64, w: i64, p: i64, q: i64, level: u32) -> Block {
        let len = self.len(level);
        (u.div_euclid(len), w.div_euclid(len), p.div_euclid(len), q.div_euclid(len))
    }

    /// Whether the block's box can contain problem nodes.
    fn block_live(&self, (a, b, e, f): Block, level: u32) -> bool {
        if a < 0 || b < 0 || e < 0 || f < 0 {
            return false;
        }
        let len = self.len(level);
        let c = self.n - 1;
        // Each rotated plane must clip its diamond…
        let du = c.clamp(a * len, (a + 1) * len - 1);
        let dw = c.clamp(b * len, (b + 1) * len - 1);
        if (du - c).abs() + (dw - c).abs() > c {
            return false;
        }
        let dp = c.clamp(e * len, (e + 1) * len - 1);
        let dq = c.clamp(f * len, (f + 1) * len - 1);
        if (dp - c).abs() + (dq - c).abs() > c {
            return false;
        }
        // …and the u+w and p+q windows must overlap (coupling u+w = p+q).
        let s_uw = (a + b) * len;
        let s_pq = (e + f) * len;
        s_uw < s_pq + 2 * len - 1 && s_pq < s_uw + 2 * len - 1
    }

    /// The live block on this VP's level-ℓ segment under the phase-unit
    /// trail `qs = [(ph, δ), …]`, if any.
    fn my_block(&self, vp: usize, level: u32, qs: &[(usize, usize)]) -> Option<Block> {
        debug_assert_eq!(qs.len(), level as usize);
        let k = self.k as i64;
        // Decode (b, f) digits from the VP index; force (a, e) digits from
        // the phase units and the running parent sum difference.
        let mut rem = vp;
        let mut b = 0i64;
        let mut f = 0i64;
        let mut a = 0i64;
        let mut e = 0i64;
        for (j, &(ph, delta)) in qs.iter().enumerate() {
            let j = j as u32 + 1;
            let mj = self.m(j);
            let digit_pair = rem / (mj * mj);
            rem %= mj * mj;
            let bd = (digit_pair / self.k) as i64;
            let fd = (digit_pair % self.k) as i64;
            let d = (a + b) - (e + f);
            let (g, h) = self.digit_sums(ph, delta, d)?;
            let ad = g - bd;
            let ed = h - fd;
            if !(0..k).contains(&ad) || !(0..k).contains(&ed) {
                return None;
            }
            b = b * k + bd;
            f = f * k + fd;
            a = a * k + ad;
            e = e * k + ed;
        }
        let blk = (a, b, e, f);
        self.block_live(blk, level).then_some(blk)
    }
}

// --------------------------------------------------------------------------
// State, messages, evaluation.
// --------------------------------------------------------------------------

type ServeMask = u32;

/// Per-VP value store for the (n,2)-stencil. Ordered (not hashed): the
/// distribution supersteps send while iterating the store, so iteration
/// order is send order — and send order must be a deterministic function
/// of `(program, v)` for the engine's trace capture to replay these steps
/// as planned ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stencil2State<V> {
    store: BTreeMap<(i64, i64, i64), (V, ServeMask)>,
}

impl<V: Clone> Stencil2State<V> {
    fn insert(&mut self, key: (i64, i64, i64), val: V, mask: ServeMask) {
        self.store.entry(key).and_modify(|e| e.1 |= mask).or_insert((val, mask));
    }

    fn value(&self, x: i64, y: i64, t: i64) -> Option<&V> {
        self.store.get(&(x, y, t)).map(|(v, _)| v)
    }

    /// Iterates the held cells (diagnostics and tests).
    pub fn store_iter(&self) -> impl Iterator<Item = (&(i64, i64, i64), &(V, ServeMask))> {
        self.store.iter()
    }
}

/// A cell value in flight.
#[derive(Debug, Clone)]
pub struct Cell2Msg<V> {
    x: i64,
    y: i64,
    t: i64,
    val: V,
    mask: ServeMask,
}

fn ingest<V: Clone>(st: &mut Stencil2State<V>, inbox: &mut Inbox<'_, Cell2Msg<V>>) {
    for m in inbox.drain(..) {
        st.insert((m.x, m.y, m.t), m.val, m.mask);
    }
}

/// Is `(x, y, t)` needed inside block `blk` (input-halo cell or t=0 input)?
fn needed_by(geo: &Geo2, x: i64, y: i64, t: i64, blk: Block, level: u32) -> bool {
    let len = geo.len(level);
    let (a, b, e, f) = blk;
    let (u, w) = rot(x, t, geo.n);
    let (p, q) = rot(y, t, geo.n);
    let inside = |uu: i64, ww: i64, pp: i64, qq: i64| {
        uu >= a * len
            && uu < (a + 1) * len
            && ww >= b * len
            && ww < (b + 1) * len
            && pp >= e * len
            && pp < (e + 1) * len
            && qq >= f * len
            && qq < (f + 1) * len
    };
    if inside(u, w, p, q) {
        return t == 0;
    }
    for (du, dw) in [(2i64, 0i64), (1, 1), (0, 2)] {
        for (dp, dq) in [(2i64, 0i64), (1, 1), (0, 2)] {
            let (sx, sy, st) = (x + du - 1, y + dp - 1, t + 1);
            if inside(u + du, w + dw, p + dp, q + dq) && in_region(sx, sy, st, geo.n) {
                return true;
            }
        }
    }
    false
}

/// Is the cell on the output halo of its block?
fn on_output_halo(geo: &Geo2, x: i64, y: i64, t: i64, blk: Block, level: u32) -> bool {
    let len = geo.len(level);
    let (a, b, e, f) = blk;
    let (u, w) = rot(x, t, geo.n);
    let (p, q) = rot(y, t, geo.n);
    u >= (a + 1) * len - 2
        || w >= (b + 1) * len - 2
        || p >= (e + 1) * len - 2
        || q >= (f + 1) * len - 2
}

/// Evaluates row `t` of block `blk` (cells owned by `vp`), storing with
/// `mask` and optionally shipping scratch copies to spatial neighbours.
#[allow(clippy::too_many_arguments)]
fn eval_row2<O: Stencil2Op>(
    geo: &Geo2,
    st: &mut Stencil2State<O::V>,
    ctx: &Ctx,
    blk: Block,
    level: u32,
    t: i64,
    mask: ServeMask,
    send_neighbours: bool,
    out: &mut Outbox<Cell2Msg<O::V>>,
) {
    if t < 1 || t >= geo.n {
        return;
    }
    let len = geo.len(level);
    let (a, b, e, f) = blk;
    let m = geo.m(level) as i64;
    let my_off = (ctx.vp - geo.seg_base(b, f, level)) as i64;
    // x from the (u, w) plane: u ∈ [a·len, (a+1)len) with w = 2t+(n−1)−u in
    // [b·len, (b+1)len); likewise y.
    let u_lo = (a * len).max(2 * t + (geo.n - 1) - ((b + 1) * len - 1));
    let u_hi = ((a + 1) * len - 1).min(2 * t + (geo.n - 1) - b * len);
    let p_lo = (e * len).max(2 * t + (geo.n - 1) - ((f + 1) * len - 1));
    let p_hi = ((e + 1) * len - 1).min(2 * t + (geo.n - 1) - f * len);
    for u in u_lo..=u_hi {
        let x = u - t;
        for p in p_lo..=p_hi {
            let y = p - t;
            if !in_region(x, y, t, geo.n) {
                continue;
            }
            if x.rem_euclid(m) * m + y.rem_euclid(m) != my_off {
                continue;
            }
            let mut vals: [[Option<&O::V>; 3]; 3] = Default::default();
            let mut missing = false;
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let (px, py) = (x + dx, y + dy);
                    if in_region(px, py, t - 1, geo.n) {
                        let v = st.value(px, py, t - 1);
                        if v.is_none() {
                            missing = true;
                        }
                        vals[(dy + 1) as usize][(dx + 1) as usize] = v;
                    }
                }
            }
            debug_assert!(!missing, "missing predecessor of ({x},{y},{t}) on VP {}", ctx.vp);
            let val = O::apply(&vals);
            st.insert((x, y, t), val.clone(), mask);
            if send_neighbours && m > 1 {
                let mut dsts: Vec<usize> = Vec::with_capacity(8);
                for dy in -1..=1i64 {
                    for dx in -1..=1i64 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let dst = geo.owner(b, f, x + dx, y + dy, level);
                        if dst != ctx.vp && !dsts.contains(&dst) {
                            dsts.push(dst);
                        }
                    }
                }
                for dst in dsts {
                    out.send(dst, Cell2Msg { x, y, t, val: val.clone(), mask: 0 });
                }
            }
        }
    }
}

/// Appends the up-propagation superstep of level-ℓ blocks (single-VP blocks
/// also evaluate here).
fn emit_upprop2<O: Stencil2Op>(
    prog: &mut Program<Stencil2State<O::V>, Cell2Msg<O::V>>,
    geo: Geo2,
    level: u32,
    qs: Vec<(usize, usize)>,
    eval_local: bool,
) {
    let parent_label = 2 * (level - 1) * geo.log_k;
    prog.step(parent_label, "stencil2-upprop", move |st, ctx, inbox, out| {
        ingest(st, inbox);
        let Some(blk) = geo.my_block(ctx.vp, level, &qs) else {
            return;
        };
        if eval_local {
            let len = geo.len(level);
            let (a, b, _, _) = blk;
            let t_min = ((a + b) * len - (geo.n - 1)).div_euclid(2);
            for r in 0..2 * len {
                eval_row2::<O>(&geo, st, ctx, blk, level, t_min + r, 1 << level, false, out);
            }
        }
        let (_, b, _, f) = blk;
        let parent_b = b.div_euclid(geo.k as i64);
        let parent_f = f.div_euclid(geo.k as i64);
        let mut halo: Vec<Cell2Msg<O::V>> = Vec::new();
        for (&(x, y, t), (val, mask)) in st.store.iter() {
            if mask & (1 << level) != 0 && on_output_halo(&geo, x, y, t, blk, level) {
                halo.push(Cell2Msg { x, y, t, val: val.clone(), mask: 1 << (level - 1) });
            }
        }
        for msg in halo {
            let dst = geo.owner(parent_b, parent_f, msg.x, msg.y, level - 1);
            if dst == ctx.vp {
                st.insert((msg.x, msg.y, msg.t), msg.val, msg.mask);
            } else {
                out.send(dst, msg);
            }
        }
    });
}

/// Emits the schedule for all live level-ℓ blocks under phase trail `qs`.
fn emit_eval2<O: Stencil2Op>(
    prog: &mut Program<Stencil2State<O::V>, Cell2Msg<O::V>>,
    geo: Geo2,
    level: u32,
    qs: Vec<(usize, usize)>,
) {
    let m = geo.m(level);

    if level > 0 && (level >= geo.levels || m < geo.k) {
        if m > 1 {
            let label = 2 * level * geo.log_k;
            let len = geo.len(level);
            for r in 0..2 * len {
                let qs_c = qs.clone();
                prog.step(label, "stencil2-row", move |st, ctx, inbox, out| {
                    ingest(st, inbox);
                    if let Some(blk) = geo.my_block(ctx.vp, level, &qs_c) {
                        let (a, b, _, _) = blk;
                        let len = geo.len(level);
                        let t_min = ((a + b) * len - (geo.n - 1)).div_euclid(2);
                        eval_row2::<O>(&geo, st, ctx, blk, level, t_min + r, 1 << level, true, out);
                    }
                });
            }
        }
        emit_upprop2::<O>(prog, geo, level, qs, m == 1);
        return;
    }

    // 4k−3 wavefront phases, each in three δ sub-rounds (see
    // `Geo2::digit_sums`: the live digit-sum split depends on the parent's
    // plane-sum difference, which ranges over {−1, 0, +1}).
    for ph in 0..(4 * geo.k - 3) {
        for delta in 0..3usize {
            let label = 2 * level * geo.log_k;
            let qs_c = qs.clone();
            prog.step(label, "stencil2-distribute", move |st, ctx, inbox, out| {
                ingest(st, inbox);
                let k = geo.k as i64;
                let mseg = geo.m(level);
                let my_seg_base = ctx.vp - (ctx.vp % (mseg * mseg));
                let mut qs_child = Vec::with_capacity(qs_c.len() + 1);
                qs_child.extend_from_slice(&qs_c);
                qs_child.push((ph, delta));
                let mut sends: Vec<(usize, Cell2Msg<O::V>)> = Vec::new();
                for (&(x, y, t), (val, mask)) in st.store.iter() {
                    if mask & (1 << level) == 0 {
                        continue;
                    }
                    let (u, w) = rot(x, t, geo.n);
                    let (p, q) = rot(y, t, geo.n);
                    let mut targets: Vec<Block> = Vec::new();
                    for (du, dw) in [(0i64, 0i64), (2, 0), (1, 1), (0, 2)] {
                        for (dp, dq) in [(0i64, 0i64), (2, 0), (1, 1), (0, 2)] {
                            if (du + dw == 0) != (dp + dq == 0) {
                                continue; // successors advance both planes
                            }
                            let blk =
                                geo.block_of(u + du, w + dw, p + dp, q + dq, level + 1);
                            if !targets.contains(&blk) {
                                targets.push(blk);
                            }
                        }
                    }
                    for blk in targets {
                        let (a, b, e, f) = blk;
                        // In-unit check: digit sums must match (ph, δ) under
                        // the target's parent sum difference.
                        let d = (a.div_euclid(k) + b.div_euclid(k))
                            - (e.div_euclid(k) + f.div_euclid(k));
                        let Some((g, h)) = geo.digit_sums(ph, delta, d) else {
                            continue;
                        };
                        if a.rem_euclid(k) + b.rem_euclid(k) != g
                            || e.rem_euclid(k) + f.rem_euclid(k) != h
                        {
                            continue;
                        }
                        // Child must sit inside my level-ℓ segment.
                        let child_base = geo.seg_base(b, f, level + 1);
                        if child_base < my_seg_base
                            || child_base >= my_seg_base + mseg * mseg
                        {
                            continue;
                        }
                        if geo.my_block(child_base, level + 1, &qs_child) != Some(blk) {
                            continue;
                        }
                        if !needed_by(&geo, x, y, t, blk, level + 1) {
                            continue;
                        }
                        let canonical = geo.owner(b, f, x, y, level + 1);
                        sends.push((
                            canonical,
                            Cell2Msg { x, y, t, val: val.clone(), mask: 1 << (level + 1) },
                        ));
                        // Scratch copies to in-box successor owners.
                        let len = geo.len(level + 1);
                        let inside = |uu: i64, ww: i64, pp: i64, qq: i64| {
                            uu >= a * len
                                && uu < (a + 1) * len
                                && ww >= b * len
                                && ww < (b + 1) * len
                                && pp >= e * len
                                && pp < (e + 1) * len
                                && qq >= f * len
                                && qq < (f + 1) * len
                        };
                        let mut dsts: Vec<usize> = Vec::new();
                        for (du, dw) in [(2i64, 0i64), (1, 1), (0, 2)] {
                            for (dp, dq) in [(2i64, 0i64), (1, 1), (0, 2)] {
                                let (sx, sy, stt) = (x + du - 1, y + dp - 1, t + 1);
                                if inside(u + du, w + dw, p + dp, q + dq)
                                    && in_region(sx, sy, stt, geo.n)
                                {
                                    let dst = geo.owner(b, f, sx, sy, level + 1);
                                    if dst != canonical && !dsts.contains(&dst) {
                                        dsts.push(dst);
                                    }
                                }
                            }
                        }
                        for dst in dsts {
                            sends.push((dst, Cell2Msg { x, y, t, val: val.clone(), mask: 0 }));
                        }
                    }
                }
                for (dst, msg) in sends {
                    if dst == ctx.vp {
                        st.insert((msg.x, msg.y, msg.t), msg.val, msg.mask);
                    } else {
                        out.send(dst, msg);
                    }
                }
            });
            let mut qs_next = qs.clone();
            qs_next.push((ph, delta));
            emit_eval2::<O>(prog, geo, level + 1, qs_next);
        }
    }

    if level > 0 {
        emit_upprop2::<O>(prog, geo, level, qs, false);
    }
}

/// The recursive octahedron/tetrahedron (n,2)-stencil algorithm on `M(n²)`.
/// Supports every power of two `n ≥ 2`.
#[derive(Debug, Clone, Default)]
pub struct OctaStencil<O> {
    _marker: std::marker::PhantomData<O>,
}

impl<O: Stencil2Op> NobAlgorithm for OctaStencil<O> {
    type State = Stencil2State<O::V>;
    type Msg = Cell2Msg<O::V>;
    type Input = [O::V];
    type Output = Vec<O::V>;

    fn name(&self) -> String {
        "stencil2-octa".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n * n
    }

    fn init(&self, n: usize, input: &[O::V]) -> Vec<Stencil2State<O::V>> {
        assert!(n.is_power_of_two() && n >= 2);
        assert_eq!(input.len(), n * n);
        (0..n * n)
            .map(|vp| {
                let (x, y) = (vp / n, vp % n);
                let mut st = Stencil2State::default();
                st.insert((x as i64, y as i64, 0), input[x * n + y].clone(), 1);
                st
            })
            .collect()
    }

    fn build(&self, n: usize) -> Program<Stencil2State<O::V>, Cell2Msg<O::V>> {
        let geo = Geo2::new(n);
        let mut prog = Program::new(n * n, n);
        emit_eval2::<O>(&mut prog, geo, 0, Vec::new());
        prog
    }

    fn extract(&self, n: usize, states: Vec<Stencil2State<O::V>>) -> Vec<O::V> {
        let mut out = vec![O::V::default(); n * n];
        let t_last = (n - 1) as i64;
        for st in &states {
            for (&(x, y, t), (val, _)) in st.store.iter() {
                if t == t_last {
                    out[x as usize * n + y as usize] = val.clone();
                }
            }
        }
        out
    }
}

/// Time-stepping baseline on `M(n²)` for the (n,2)-stencil.
#[derive(Debug, Clone, Default)]
pub struct NaiveStencil2<O> {
    _marker: std::marker::PhantomData<O>,
}

/// Naive VP state: my value plus last-step neighbour values keyed by (δx, δy).
#[derive(Debug, Clone, Default)]
pub struct Naive2State<V> {
    cur: V,
    neigh: Vec<((i64, i64), V)>,
}

impl<O: Stencil2Op> NobAlgorithm for NaiveStencil2<O> {
    type State = Naive2State<O::V>;
    type Msg = ((i64, i64), O::V);
    type Input = [O::V];
    type Output = Vec<O::V>;

    fn name(&self) -> String {
        "stencil2-naive".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n * n
    }

    fn init(&self, n: usize, input: &[O::V]) -> Vec<Naive2State<O::V>> {
        assert_eq!(input.len(), n * n);
        input.iter().map(|v| Naive2State { cur: v.clone(), neigh: Vec::new() }).collect()
    }

    fn build(&self, n: usize) -> Program<Naive2State<O::V>, ((i64, i64), O::V)> {
        let mut prog = Program::new(n * n, n);
        // The 8 neighbour offsets in the closure's (δx outer, δy inner)
        // emission order, for the oblivious route declaration.
        const OFFS: [(i64, i64); 8] =
            [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)];
        for step in 0..n {
            let sends = step + 1 < n;
            prog.step_oblivious(
                0,
                "naive2-step",
                if sends { 8 } else { 0 },
                move |ctx, k| {
                    let (dx, dy) = OFFS[k];
                    let (x, y) = ((ctx.vp / ctx.n) as i64, (ctx.vp % ctx.n) as i64);
                    let (nx, ny) = (x + dx, y + dy);
                    if in_region(nx, ny, 0, ctx.n as i64) {
                        Route::Data((nx * ctx.n as i64 + ny) as usize)
                    } else {
                        Route::Skip
                    }
                },
                move |st: &mut Naive2State<O::V>, ctx, inbox, out| {
                    st.neigh.clear();
                    for m in inbox.drain(..) {
                        st.neigh.push(m);
                    }
                    if step > 0 {
                        let mut vals: [[Option<&O::V>; 3]; 3] = Default::default();
                        vals[1][1] = Some(&st.cur);
                        for ((dx, dy), v) in &st.neigh {
                            vals[(dy + 1) as usize][(dx + 1) as usize] = Some(v);
                        }
                        st.cur = O::apply(&vals);
                    }
                    if step + 1 < ctx.n {
                        let (x, y) = ((ctx.vp / ctx.n) as i64, (ctx.vp % ctx.n) as i64);
                        for dx in -1..=1i64 {
                            for dy in -1..=1i64 {
                                if dx == 0 && dy == 0 {
                                    continue;
                                }
                                let (nx, ny) = (x + dx, y + dy);
                                if in_region(nx, ny, 0, ctx.n as i64) {
                                    // The receiver records us at the inverse offset.
                                    out.send(
                                        (nx * ctx.n as i64 + ny) as usize,
                                        ((-dx, -dy), st.cur.clone()),
                                    );
                                }
                            }
                        }
                    }
                },
            );
        }
        prog
    }

    fn extract(&self, _n: usize, states: Vec<Naive2State<O::V>>) -> Vec<O::V> {
        states.into_iter().map(|s| s.cur).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn input(n: usize) -> Vec<u64> {
        (0..(n * n) as u64).map(|x| x.wrapping_mul(0x9e37_79b9) % 911).collect()
    }

    #[test]
    fn naive2_matches_reference() {
        for &n in &[2usize, 4, 8, 16] {
            let xs = input(n);
            let want = stencil2_reference::<WrapSum2Op>(&xs, n);
            let alg = NaiveStencil2::<WrapSum2Op>::default();
            let (got, _) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn octa_matches_reference() {
        for &n in &[4usize, 8, 16] {
            let xs = input(n);
            let want = stencil2_reference::<WrapSum2Op>(&xs, n);
            let alg = OctaStencil::<WrapSum2Op>::default();
            let (got, _) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn octa_folding_is_consistent() {
        let n = 8;
        let xs = input(n);
        let alg = OctaStencil::<WrapSum2Op>::default();
        let (full, full_trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
        for p in [2usize, 4, 16, 64] {
            let (out, trace) = execute_folded(&alg, n, &xs[..], p, &RunOptions::default()).unwrap();
            assert_eq!(out, full);
            assert_eq!(trace.fold(p), full_trace.fold(p));
        }
    }

    #[test]
    fn communication_complexity_matches_theorem_4_13() {
        // H(n, p, 0) = O((n²/√p)·8^√log n): measured/theory bounded.
        for &n in &[8usize, 16] {
            let xs = input(n);
            let alg = OctaStencil::<WrapSum2Op>::default();
            let (_, trace) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
            for p in [4usize, 16] {
                let measured = trace.comm_complexity(p, 0.0);
                let theory = nob_core::lower_bounds::upper::stencil2(n, p, 0.0);
                let ratio = measured / theory;
                assert!(ratio < 8.0, "n={n} p={p}: measured/theory = {ratio}");
            }
        }
    }
}
