//! The n-MM problem (Section 4.1): multiply two √n×√n matrices over a
//! semiring on `M(n)`.
//!
//! Three algorithms:
//!
//! * [`standard::RecursiveMm`] — the paper's 8-way recursive algorithm
//!   (Thm. 4.2): `H_MM(n, p, σ) = O(n/p^{2/3} + σ·log p)`, `Θ(1)`-optimal.
//! * [`space::SpaceEfficientMm`] — the §4.1.1 variant with `O(1)` memory
//!   blow-up per VP: `H = O(n/√p + σ·√p)`, optimal among constant-memory
//!   algorithms (Irony–Toledo–Tiskin bound).
//! * [`cannon::CannonMm`] — Cannon's classic flat algorithm on a Morton
//!   layout, the one-level class-C baseline: `H = O(n/√p + σ·√n)`. It loses
//!   to the recursive algorithm on both the bandwidth term (`√p` vs `p^{2/3}`
//!   denominators) and the latency term (`√n` vs `log p` supersteps).
//!
//! Inputs and outputs are distributed one entry per VP, as the paper
//! prescribes ("no entry initially replicated"; the layout itself is free).

pub mod cannon;
pub mod space;
pub mod standard;

use crate::semiring::{Matrix, Semiring};

/// Input of the n-MM problem: the operand matrices.
#[derive(Debug, Clone)]
pub struct MmInput<V> {
    /// Left operand (√n × √n).
    pub a: Matrix<V>,
    /// Right operand (√n × √n).
    pub b: Matrix<V>,
}

impl<V: Semiring> MmInput<V> {
    /// Bundles two equally sized square matrices.
    pub fn new(a: Matrix<V>, b: Matrix<V>) -> Self {
        assert_eq!(a.side(), b.side(), "operands must agree in shape");
        MmInput { a, b }
    }

    /// The problem size `n` (entries per matrix).
    pub fn n(&self) -> usize {
        self.a.len()
    }
}

/// A matrix entry in flight: global coordinates plus value.
pub type Entry<V> = (u32, u32, V);

/// Message payload of the MM algorithms.
#[derive(Debug, Clone)]
pub enum MmMsg<V> {
    /// An entry of the left operand.
    A(u32, u32, V),
    /// An entry of the right operand.
    B(u32, u32, V),
    /// A partial-product entry headed for a C owner.
    M(u32, u32, V),
}

/// Accumulates `val` into the entry with coordinates `(i, j)` of `acc`,
/// inserting it if absent. Linear scan: per-VP entry counts are `O(n^{1/3})`.
pub(crate) fn accumulate<V: Semiring>(acc: &mut Vec<Entry<V>>, i: u32, j: u32, val: V) {
    for e in acc.iter_mut() {
        if e.0 == i && e.1 == j {
            e.2 = e.2.add(&val);
            return;
        }
    }
    acc.push((i, j, val));
}
