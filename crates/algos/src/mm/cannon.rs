//! Cannon's algorithm on a Morton layout — the one-level baseline for n-MM.
//!
//! A classic *flat* systolic algorithm, included as the class-C competitor
//! the recursive algorithms are measured against (the paper's optimality
//! claims are relative to such algorithms). Specified on `M(n)` like the
//! oblivious algorithms, with VP `morton(i,j)` holding `A[i,j]`, `B[i,j]`,
//! `C[i,j]`: after the initial skew, each of the `√n` rounds multiplies the
//! resident pair and shifts `A` left / `B` up by one.
//!
//! Costs: `1 + √n` supersteps of label 0 and degree `O(1)`; on `M(p, σ)` the
//! Morton blocks give `H_Cannon(n, p, σ) = Θ(√n·(√(n/p) + σ))` — worse than
//! the 8-way recursion on *both* terms (`n/√p` vs `n/p^{2/3}` bandwidth,
//! `σ√n` vs `σ·log p` latency), which is exactly the gap the D-BSP
//! experiments expose.

use super::MmInput;
use crate::common::{morton_decode, morton_encode};
use crate::semiring::{Matrix, Semiring};
use nob_machine::{Inbox, NobAlgorithm, Program, Route};
use std::marker::PhantomData;

/// Per-VP state: the resident entries (values travel; coordinates are
/// positional, as in the systolic original).
#[derive(Debug, Clone, PartialEq)]
pub struct CannonState<V> {
    a: V,
    b: V,
    c: V,
}

/// Message payload: a travelling operand value.
#[derive(Debug, Clone)]
pub enum CannonMsg<V> {
    /// A value of the left operand moving left along its row.
    A(V),
    /// A value of the right operand moving up along its column.
    B(V),
}

/// Cannon's algorithm (flat baseline). Supports every `n = 4^m ≥ 4`.
#[derive(Debug, Clone)]
pub struct CannonMm<V> {
    _marker: PhantomData<V>,
}

impl<V> Default for CannonMm<V> {
    fn default() -> Self {
        CannonMm { _marker: PhantomData }
    }
}

impl<V> CannonMm<V> {
    /// Whether `n` is a supported size (`4^m`, `m ≥ 1`).
    pub fn supports(n: usize) -> bool {
        n >= 4 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2)
    }
}

fn ingest<V>(st: &mut CannonState<V>, inbox: &mut Inbox<'_, CannonMsg<V>>) {
    for msg in inbox.drain(..) {
        match msg {
            CannonMsg::A(v) => st.a = v,
            CannonMsg::B(v) => st.b = v,
        }
    }
}

impl<V: Semiring> NobAlgorithm for CannonMm<V> {
    type State = CannonState<V>;
    type Msg = CannonMsg<V>;
    type Input = MmInput<V>;
    type Output = Matrix<V>;

    fn name(&self) -> String {
        "mm-cannon".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &MmInput<V>) -> Vec<CannonState<V>> {
        assert!(Self::supports(n), "CannonMm supports n = 4^m, got {n}");
        assert_eq!(input.n(), n);
        (0..n)
            .map(|vp| {
                let (i, j) = morton_decode(vp);
                CannonState {
                    a: input.a.get(i, j).clone(),
                    b: input.b.get(i, j).clone(),
                    c: V::zero(),
                }
            })
            .collect()
    }

    fn build(&self, n: usize) -> Program<CannonState<V>, CannonMsg<V>> {
        assert!(Self::supports(n), "CannonMm supports n = 4^m, got {n}");
        let s = 1usize << (n.trailing_zeros() / 2);
        let mut prog = Program::new(n, n);

        // Initial skew: A[i,j] -> (i, j−i), B[i,j] -> (i−j, j) (mod s).
        // Every superstep of the systolic schedule is a fixed block shift —
        // the canonical oblivious pattern, declared as a route.
        prog.step_oblivious(
            0,
            "cannon-skew",
            2,
            move |ctx, k| {
                let (i, j) = morton_decode(ctx.vp);
                if k == 0 {
                    Route::Data(morton_encode(i, (j + s - i % s) % s))
                } else {
                    Route::Data(morton_encode((i + s - j % s) % s, j))
                }
            },
            move |st: &mut CannonState<V>, ctx, _inbox, out| {
                let (i, j) = morton_decode(ctx.vp);
                out.send(morton_encode(i, (j + s - i % s) % s), CannonMsg::A(st.a.clone()));
                out.send(morton_encode((i + s - j % s) % s, j), CannonMsg::B(st.b.clone()));
            },
        );

        // √n systolic rounds: multiply-accumulate, then shift A left / B up.
        for q in 0..s {
            let shifts = q + 1 < s;
            prog.step_oblivious(
                0,
                "cannon-round",
                if shifts { 2 } else { 0 },
                move |ctx, k| {
                    let (i, j) = morton_decode(ctx.vp);
                    if k == 0 {
                        Route::Data(morton_encode(i, (j + s - 1) % s))
                    } else {
                        Route::Data(morton_encode((i + s - 1) % s, j))
                    }
                },
                move |st, ctx, inbox, out| {
                    ingest(st, inbox);
                    st.c = st.c.add(&st.a.mul(&st.b));
                    if q + 1 < s {
                        let (i, j) = morton_decode(ctx.vp);
                        out.send(morton_encode(i, (j + s - 1) % s), CannonMsg::A(st.a.clone()));
                        out.send(morton_encode((i + s - 1) % s, j), CannonMsg::B(st.b.clone()));
                    }
                },
            );
        }
        prog
    }

    fn extract(&self, n: usize, states: Vec<CannonState<V>>) -> Matrix<V> {
        let s = 1usize << (n.trailing_zeros() / 2);
        let mut out = Matrix::zero(s);
        for (vp, st) in states.iter().enumerate() {
            let (i, j) = morton_decode(vp);
            out.set(i, j, st.c.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm::standard::RecursiveMm;
    use crate::semiring::WrapU64;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn random_input(s: usize, seed: u64) -> MmInput<WrapU64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        let b = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        MmInput::new(a, b)
    }

    #[test]
    fn multiplies_correctly() {
        for &s in &[2usize, 4, 8, 16] {
            let input = random_input(s, s as u64 * 3 + 1);
            let expect = input.a.mul_reference(&input.b);
            let alg = CannonMm::<WrapU64>::default();
            let (got, _) = execute(&alg, s * s, &input, &RunOptions::default()).unwrap();
            assert_eq!(got, expect, "failed at side {s}");
        }
    }

    #[test]
    fn superstep_count_is_sqrt_n() {
        let alg = CannonMm::<WrapU64>::default();
        let input = random_input(16, 2);
        let (_, trace) = execute(&alg, 256, &input, &RunOptions::default()).unwrap();
        assert_eq!(trace.superstep_count(), 17); // skew + 16 rounds
        assert_eq!(trace.s_counts()[0], 17);
    }

    #[test]
    fn folding_preserves_output() {
        let input = random_input(8, 77);
        let alg = CannonMm::<WrapU64>::default();
        let (full, _) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        for p in [2usize, 4, 16] {
            let (out, _) = execute_folded(&alg, 64, &input, p, &RunOptions::default()).unwrap();
            assert_eq!(out, full);
        }
    }

    #[test]
    fn recursive_mm_beats_cannon_in_the_evaluation_model() {
        // The headline comparison of E1/E2: at n = 4096 the recursive
        // algorithm's H is strictly smaller for every p, on both the
        // bandwidth (σ = 0) and the latency-dominated (σ large) regimes.
        let n = 4096usize;
        let input = random_input(64, 5);
        let (_, t_rec) =
            execute(&RecursiveMm::<WrapU64>::new(false), n, &input, &RunOptions::default())
                .unwrap();
        let (_, t_can) =
            execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
        for p in [64usize, 512, 4096] {
            for sigma in [0.0, 64.0] {
                let hr = t_rec.comm_complexity(p, sigma);
                let hc = t_can.comm_complexity(p, sigma);
                assert!(hr < hc, "p={p} sigma={sigma}: recursive {hr} vs cannon {hc}");
            }
        }
    }
}
