//! The 8-way recursive network-oblivious MM algorithm (Section 4.1).
//!
//! Specified on `M(n)`. The recursion at level `t` partitions each segment of
//! `V_t = n/8^t` VPs into eight subsegments `S_{hkl}`, replicates the operand
//! quadrants so that `S_{hkl}` receives `A_{hl}` and `B_{lk}`, recurses, and
//! finally sums `C_{hk} = M_{hk0} + M_{hk1}` at the level-`t` owners of `C`.
//! Each level contributes `O(1)` supersteps of label `3t` in which every VP
//! sends/receives `O(2^t)` messages; the recursion bottoms out at
//! `τ = (log n)/3`, where each VP multiplies its `n^{1/6}×n^{1/6}` blocks
//! sequentially (computing `n^{1/3}` of the `n^{3/2}` multiplicative terms).
//!
//! Theorem 4.2: `H_MM(n, p, σ) = O(n/p^{2/3} + σ·log p)`; with the dummy
//! messages (`wise: true`, the default) the algorithm is `(Θ(1), n)`-wise and
//! `Θ(1)`-optimal for `σ = O(n/(p^{2/3}·log p))`.

use super::{accumulate, Entry, MmInput, MmMsg};
use crate::common::{wiseness_dummies, wiseness_route};
use crate::semiring::{Matrix, Semiring};
use nob_machine::{NobAlgorithm, Program, Route};
use std::marker::PhantomData;

/// Per-VP state: current operand entries (descending the recursion) and the
/// accumulated product entries (ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct MmState<V> {
    a: Vec<Entry<V>>,
    b: Vec<Entry<V>>,
    c: Vec<Entry<V>>,
}

/// The subproblem owned by a VP's segment at a recursion level: operand and
/// product offsets, submatrix side, and segment geometry. Derived from the VP
/// index alone — the digits of `vp` in base 8 are the `(h, k, l)` choices of
/// the path from the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubProblem {
    ra: usize,
    ca: usize,
    rb: usize,
    cb: usize,
    rc: usize,
    cc: usize,
    side: usize,
    seg_base: usize,
    seg_size: usize,
}

/// Walks `t` levels of the recursion tree towards `vp`.
fn path(vp: usize, t: usize, s: usize, n: usize) -> SubProblem {
    let mut sub = SubProblem {
        ra: 0,
        ca: 0,
        rb: 0,
        cb: 0,
        rc: 0,
        cc: 0,
        side: s,
        seg_base: 0,
        seg_size: n,
    };
    for _ in 0..t {
        let child = sub.seg_size / 8;
        let digit = (vp - sub.seg_base) / child;
        let (h, k, l) = (digit >> 2 & 1, digit >> 1 & 1, digit & 1);
        let half = sub.side / 2;
        sub.ra += h * half;
        sub.ca += l * half;
        sub.rb += l * half;
        sub.cb += k * half;
        sub.rc += h * half;
        sub.cc += k * half;
        sub.side = half;
        sub.seg_base += digit * child;
        sub.seg_size = child;
    }
    sub
}

/// The owner of the entry with sub-local linear index `e` in a segment whose
/// VPs each hold `2^t` entries.
#[inline]
fn owner(seg_base: usize, e: usize, t: usize) -> usize {
    seg_base + (e >> t)
}

/// The 8-way recursive network-oblivious matrix multiplication.
///
/// Supported sizes: `n = 64^e` (so that the matrix side is a power of two and
/// the recursion depth `log_8 n` is integral, as the paper assumes).
#[derive(Debug, Clone)]
pub struct RecursiveMm<V> {
    /// Emit the wiseness dummy messages of Section 4.1 (default: true).
    pub wise: bool,
    _marker: PhantomData<V>,
}

impl<V> Default for RecursiveMm<V> {
    fn default() -> Self {
        RecursiveMm { wise: true, _marker: PhantomData }
    }
}

impl<V> RecursiveMm<V> {
    /// Creates the algorithm, choosing whether to emit wiseness dummies.
    pub fn new(wise: bool) -> Self {
        RecursiveMm { wise, _marker: PhantomData }
    }

    /// Whether `n` is a supported problem size (`n = 64^e`, `e ≥ 1`).
    pub fn supports(n: usize) -> bool {
        n >= 64 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(6)
    }
}

impl<V: Semiring> NobAlgorithm for RecursiveMm<V> {
    type State = MmState<V>;
    type Msg = MmMsg<V>;
    type Input = MmInput<V>;
    type Output = Matrix<V>;

    fn name(&self) -> String {
        format!("mm-recursive(wise={})", self.wise)
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &MmInput<V>) -> Vec<MmState<V>> {
        assert!(Self::supports(n), "RecursiveMm supports n = 64^e, got {n}");
        assert_eq!(input.n(), n);
        let s = input.a.side();
        (0..n)
            .map(|vp| {
                let (i, j) = ((vp / s) as u32, (vp % s) as u32);
                MmState {
                    a: vec![(i, j, input.a.get(i as usize, j as usize).clone())],
                    b: vec![(i, j, input.b.get(i as usize, j as usize).clone())],
                    c: Vec::new(),
                }
            })
            .collect()
    }

    fn build(&self, n: usize) -> Program<MmState<V>, MmMsg<V>> {
        assert!(Self::supports(n), "RecursiveMm supports n = 64^e, got {n}");
        let s = 1usize << (n.trailing_zeros() / 2); // matrix side √n
        let tau = (n.trailing_zeros() / 3) as usize; // recursion depth
        let mut prog: Program<MmState<V>, MmMsg<V>> = Program::new(n, n);
        let log_v = prog.log_v();
        let wise = self.wise;

        // --- Distribution steps D_0 .. D_{τ−1} ------------------------------
        // D_0 works on the initial one-entry-per-VP layout, so its fan-out
        // (two copies of the A entry, two of B, plus one wiseness dummy) is
        // a closed-form function of the VP index — declared as an oblivious
        // route. Deeper levels (t ≥ 1) send one message per *held* entry,
        // whose in-state order is the arrival order of the previous
        // distribution — reproducible only by replaying that delivery — so
        // they stay on the dynamic path.
        for t in 0..tau {
            let label = (3 * t) as u32;
            let body = move |st: &mut MmState<V>,
                             ctx: &nob_machine::Ctx,
                             inbox: &mut nob_machine::Inbox<'_, MmMsg<V>>,
                             out: &mut nob_machine::Outbox<MmMsg<V>>| {
                // Ingest the operand entries routed here by D_{t−1}.
                if t > 0 {
                    st.a.clear();
                    st.b.clear();
                    for msg in inbox.drain(..) {
                        match msg {
                            MmMsg::A(i, j, v) => st.a.push((i, j, v)),
                            MmMsg::B(i, j, v) => st.b.push((i, j, v)),
                            MmMsg::M(..) => unreachable!("no products during descent"),
                        }
                    }
                }
                let sub = path(ctx.vp, t, s, ctx.v);
                let half = sub.side / 2;
                let child_seg = sub.seg_size / 8;
                let child_side = half;
                for (i, j, val) in &st.a {
                    let (li, lj) = (*i as usize - sub.ra, *j as usize - sub.ca);
                    let (h, l) = ((li >= half) as usize, (lj >= half) as usize);
                    let e = (li - h * half) * child_side + (lj - l * half);
                    for k in 0..2usize {
                        let seg = sub.seg_base + (h * 4 + k * 2 + l) * child_seg;
                        out.send(owner(seg, e, t + 1), MmMsg::A(*i, *j, val.clone()));
                    }
                }
                for (i, j, val) in &st.b {
                    let (li, lj) = (*i as usize - sub.rb, *j as usize - sub.cb);
                    let (l, k) = ((li >= half) as usize, (lj >= half) as usize);
                    let e = (li - l * half) * child_side + (lj - k * half);
                    for h in 0..2usize {
                        let seg = sub.seg_base + (h * 4 + k * 2 + l) * child_seg;
                        out.send(owner(seg, e, t + 1), MmMsg::B(*i, *j, val.clone()));
                    }
                }
                if wise {
                    wiseness_dummies(ctx, label, 1 << t, out);
                }
            };
            if t == 0 {
                let out_degree = 4 + usize::from(wise);
                prog.step_oblivious(
                    label,
                    "mm-distribute",
                    out_degree,
                    move |ctx, k| {
                        let half = s / 2;
                        let child_seg = ctx.v / 8;
                        let (i, j) = (ctx.vp / s, ctx.vp % s);
                        if k < 2 {
                            // The A entry's two replicas (k picks the child's
                            // k-digit).
                            let (h, l) = (usize::from(i >= half), usize::from(j >= half));
                            let e = (i - h * half) * half + (j - l * half);
                            let seg = (h * 4 + k * 2 + l) * child_seg;
                            Route::Data(seg + (e >> 1))
                        } else if k < 4 {
                            // The B entry's two replicas (k − 2 is the h-digit).
                            let h = k - 2;
                            let (l, kd) = (usize::from(i >= half), usize::from(j >= half));
                            let e = (i - l * half) * half + (j - kd * half);
                            let seg = (h * 4 + kd * 2 + l) * child_seg;
                            Route::Data(seg + (e >> 1))
                        } else {
                            wiseness_route(ctx, 0, 1, k - 4)
                        }
                    },
                    body,
                );
            } else {
                prog.step(label, "mm-distribute", body);
            }
        }

        // --- Base: sequential n^{1/6}-side multiply, send M upward ----------
        {
            let label = (3 * (tau - 1)) as u32;
            prog.step(label, "mm-base", move |st, ctx, inbox, out| {
                st.a.clear();
                st.b.clear();
                for msg in inbox.drain(..) {
                    match msg {
                        MmMsg::A(i, j, v) => st.a.push((i, j, v)),
                        MmMsg::B(i, j, v) => st.b.push((i, j, v)),
                        MmMsg::M(..) => unreachable!("no products during descent"),
                    }
                }
                let sub = path(ctx.vp, tau, s, ctx.v);
                let side = sub.side;
                // Dense local blocks.
                let mut a = vec![V::zero(); side * side];
                let mut b = vec![V::zero(); side * side];
                for (i, j, v) in &st.a {
                    a[(*i as usize - sub.ra) * side + (*j as usize - sub.ca)] = v.clone();
                }
                for (i, j, v) in &st.b {
                    b[(*i as usize - sub.rb) * side + (*j as usize - sub.cb)] = v.clone();
                }
                let parent = path(ctx.vp, tau - 1, s, ctx.v);
                for i in 0..side {
                    for j in 0..side {
                        let mut acc = V::zero();
                        for k in 0..side {
                            acc = acc.add(&a[i * side + k].mul(&b[k * side + j]));
                        }
                        let (gi, gj) = (sub.rc + i, sub.cc + j);
                        let e = (gi - parent.rc) * parent.side + (gj - parent.cc);
                        out.send(
                            owner(parent.seg_base, e, tau - 1),
                            MmMsg::M(gi as u32, gj as u32, acc),
                        );
                    }
                }
                if wise {
                    wiseness_dummies(ctx, label, 1 << (tau - 1), out);
                }
            });
        }

        // --- Combine steps K_{τ−1} .. K_1 -----------------------------------
        for t in (1..tau).rev() {
            let label = (3 * (t - 1)) as u32;
            prog.step(label, "mm-combine", move |st, ctx, inbox, out| {
                st.c.clear();
                for msg in inbox.drain(..) {
                    if let MmMsg::M(i, j, v) = msg {
                        accumulate(&mut st.c, i, j, v);
                    }
                }
                let parent = path(ctx.vp, t - 1, s, ctx.v);
                for (i, j, val) in &st.c {
                    let e = (*i as usize - parent.rc) * parent.side + (*j as usize - parent.cc);
                    out.send(owner(parent.seg_base, e, t - 1), MmMsg::M(*i, *j, val.clone()));
                }
                if wise {
                    wiseness_dummies(ctx, label, 1 << (t - 1), out);
                }
            });
        }

        // --- Final ingest: every VP ends with its single C entry ------------
        prog.step_oblivious(
            log_v - 1,
            "mm-finalize",
            0,
            |_, _| Route::Skip,
            move |st, _ctx, inbox, _out| {
                st.c.clear();
                for msg in inbox.drain(..) {
                    if let MmMsg::M(i, j, v) = msg {
                        accumulate(&mut st.c, i, j, v);
                    }
                }
            },
        );
        prog
    }

    fn extract(&self, n: usize, states: Vec<MmState<V>>) -> Matrix<V> {
        let s = 1usize << (n.trailing_zeros() / 2);
        let mut out = Matrix::zero(s);
        for st in &states {
            for (i, j, v) in &st.c {
                out.set(*i as usize, *j as usize, v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, NumF64, WrapU64};
    use nob_machine::{execute, execute_folded, RunOptions};

    fn random_input(s: usize, seed: u64) -> MmInput<WrapU64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        let b = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        MmInput::new(a, b)
    }

    #[test]
    fn supports_only_powers_of_64() {
        assert!(RecursiveMm::<WrapU64>::supports(64));
        assert!(RecursiveMm::<WrapU64>::supports(4096));
        assert!(!RecursiveMm::<WrapU64>::supports(256));
        assert!(!RecursiveMm::<WrapU64>::supports(63));
    }

    #[test]
    fn multiplies_correctly_n64() {
        let input = random_input(8, 42);
        let expect = input.a.mul_reference(&input.b);
        let alg = RecursiveMm::<WrapU64>::default();
        let (got, trace) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        assert_eq!(got, expect);
        // Superstep structure: τ = 2 levels → D0, D1, base, K1, final = 5.
        assert_eq!(trace.superstep_count(), 5);
    }

    #[test]
    fn multiplies_correctly_n4096() {
        let input = random_input(64, 7);
        let expect = input.a.mul_reference(&input.b);
        let alg = RecursiveMm::<WrapU64>::default();
        let (got, _) = execute(&alg, 4096, &input, &RunOptions::default()).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn works_over_the_tropical_semiring() {
        // Min-plus product = one step of APSP.
        let s = 8;
        let a = Matrix::from_fn(s, |i, j| {
            if i == j {
                MinPlus(0.0)
            } else {
                MinPlus(((i * 31 + j * 17) % 9 + 1) as f64)
            }
        });
        let input = MmInput::new(a.clone(), a.clone());
        let expect = a.mul_reference(&a);
        let alg = RecursiveMm::<MinPlus>::default();
        let (got, _) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        assert!(got.close_to(&expect));
    }

    #[test]
    fn works_over_f64() {
        let s = 8;
        let a = Matrix::from_fn(s, |i, j| NumF64((i as f64) + 0.25 * j as f64));
        let b = Matrix::from_fn(s, |i, j| NumF64(1.0 / (1.0 + i as f64 + j as f64)));
        let input = MmInput::new(a.clone(), b.clone());
        let expect = a.mul_reference(&b);
        let alg = RecursiveMm::<NumF64>::default();
        let (got, _) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        assert!(got.close_to(&expect));
    }

    #[test]
    fn folding_preserves_output_and_metrics() {
        let input = random_input(8, 3);
        let alg = RecursiveMm::<WrapU64>::default();
        let (full_out, full_trace) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        for p in [2usize, 8, 16, 64] {
            let (out, trace) =
                execute_folded(&alg, 64, &input, p, &RunOptions::default()).unwrap();
            assert_eq!(out, full_out, "folded output diverges at p = {p}");
            let mut q = 2;
            while q <= p {
                assert_eq!(trace.fold(q), full_trace.fold(q), "metrics diverge at {p}/{q}");
                q *= 2;
            }
        }
    }

    #[test]
    fn degrees_follow_the_theorem_shape() {
        // h of the level-t supersteps is O(2^t) at full granularity.
        let input = random_input(64, 11);
        let alg = RecursiveMm::<WrapU64>::new(false);
        let (_, trace) = execute(&alg, 4096, &input, &RunOptions::default()).unwrap();
        for step in &trace.steps {
            let t = step.label / 3;
            assert!(
                step.h(trace.log_v) <= 6 << t,
                "label {} degree {} too large",
                step.label,
                step.h(trace.log_v)
            );
        }
    }

    #[test]
    fn communication_complexity_matches_theorem_4_2() {
        let input = random_input(64, 5);
        let alg = RecursiveMm::<WrapU64>::default();
        let (_, trace) = execute(&alg, 4096, &input, &RunOptions::default()).unwrap();
        // H(n, p, 0) should scale like n/p^{2/3}: ratios across p follow 4x.
        let h8 = trace.comm_complexity(8, 0.0);
        let h64 = trace.comm_complexity(64, 0.0);
        let h512 = trace.comm_complexity(512, 0.0);
        assert!(h8 / h64 > 2.5 && h8 / h64 < 6.0, "h8/h64 = {}", h8 / h64);
        assert!(h64 / h512 > 2.5 && h64 / h512 < 6.0, "h64/h512 = {}", h64 / h512);
        // Against the closed form, the constant stays modest.
        for p in [8usize, 64, 512, 4096] {
            let measured = trace.comm_complexity(p, 0.0);
            let theory = nob_core::lower_bounds::upper::mm(4096, p, 0.0);
            let ratio = measured / theory;
            assert!(ratio < 16.0, "p={p}: measured/theory = {ratio}");
        }
    }

    #[test]
    fn wiseness_is_constant_with_dummies() {
        let input = random_input(8, 9);
        let alg = RecursiveMm::<WrapU64>::default();
        let (_, trace) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        let w = nob_core::wiseness::alpha_max(&trace, 64);
        assert!(w.alpha >= 0.2, "alpha = {}", w.alpha);
    }
}
