//! The space-efficient network-oblivious MM algorithm (Section 4.1.1).
//!
//! Specified on `M(n)` with **one** entry of `A`, `B` and `C` per VP at all
//! times (constant memory blow-up). The VPs sit in Morton (Z-order) layout,
//! so the four aligned quarters of a segment hold the four quadrants of each
//! matrix. At every level the eight quadrant products are computed in two
//! rounds of four (one per quarter-segment); in round `r`, segment `(h, k)`
//! computes `C_{hk} ⊕= A_{h,x}·B_{x,k}` with `x = h⊕k⊕r`, so each quadrant of
//! `A` and `B` moves to exactly one destination segment (an involutive XOR
//! permutation — the same superstep pattern moves data out and back).
//!
//! Costs (§4.1.1): `Θ(2^i)` supersteps of label `2i` at level `i`, each of
//! degree `O(1)`, giving `H_MM-space(n, p, σ) = O(n/√p + σ·√p)` — optimal
//! among algorithms with `O(n/v)` memory per processing element
//! (Irony–Toledo–Tiskin), at the price of a larger bandwidth term than the
//! 8-way algorithm's `n/p^{2/3}`.

use super::{MmInput, MmMsg};
use crate::common::{morton_decode, wiseness_dummies};
use crate::semiring::{Matrix, Semiring};
use nob_machine::{Ctx, Inbox, NobAlgorithm, Outbox, Program};
use std::marker::PhantomData;

/// Per-VP state: exactly one entry of each matrix.
#[derive(Debug, Clone)]
pub struct SpaceMmState<V> {
    a: (u32, u32, V),
    b: (u32, u32, V),
    c: V,
}

/// The space-efficient recursive MM algorithm. Supports every `n = 4^m ≥ 4`.
#[derive(Debug, Clone)]
pub struct SpaceEfficientMm<V> {
    /// Emit wiseness dummy messages (default: true).
    pub wise: bool,
    _marker: PhantomData<V>,
}

impl<V> Default for SpaceEfficientMm<V> {
    fn default() -> Self {
        SpaceEfficientMm { wise: true, _marker: PhantomData }
    }
}

impl<V> SpaceEfficientMm<V> {
    /// Creates the algorithm, choosing whether to emit wiseness dummies.
    pub fn new(wise: bool) -> Self {
        SpaceEfficientMm { wise, _marker: PhantomData }
    }

    /// Whether `n` is a supported size (`4^m`, `m ≥ 1`).
    pub fn supports(n: usize) -> bool {
        n >= 4 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2)
    }
}

/// Sends this VP's operand entries through the round-`r` quadrant permutation
/// at recursion level `t` (and, because the permutation is an involution, also
/// back home).
fn send_permuted<V: Semiring>(
    st: &SpaceMmState<V>,
    ctx: &Ctx,
    t: usize,
    r: usize,
    out: &mut Outbox<MmMsg<V>>,
) {
    let seg_size = ctx.v >> (2 * t); // level-t segment size n/4^t
    let child = seg_size / 4;
    let seg_base = ctx.vp - ctx.vp % seg_size;
    let digit = (ctx.vp - seg_base) / child;
    let off = (ctx.vp - seg_base) % child;
    let (hi, lo) = (digit >> 1, digit & 1);
    // A_{h,k} at digit (h,k) is needed by segment (h, k⊕h⊕r).
    let a_dst = seg_base + ((hi << 1) | (lo ^ hi ^ r)) * child + off;
    // B_{x,k} at digit (x,k) is needed by segment (x⊕k⊕r, k).
    let b_dst = seg_base + (((hi ^ lo ^ r) << 1) | lo) * child + off;
    let (ai, aj, av) = &st.a;
    let (bi, bj, bv) = &st.b;
    out.send(a_dst, MmMsg::A(*ai, *aj, av.clone()));
    out.send(b_dst, MmMsg::B(*bi, *bj, bv.clone()));
}

/// Replaces the held operand entries with the ones that just arrived.
fn ingest<V: Semiring>(st: &mut SpaceMmState<V>, inbox: &mut Inbox<'_, MmMsg<V>>) {
    for msg in inbox.drain(..) {
        match msg {
            MmMsg::A(i, j, v) => st.a = (i, j, v),
            MmMsg::B(i, j, v) => st.b = (i, j, v),
            MmMsg::M(..) => unreachable!("space-efficient MM sends no product messages"),
        }
    }
}

/// Emits the superstep schedule for level `t` segments (size `n/4^t`).
fn emit<V: Semiring>(
    prog: &mut Program<SpaceMmState<V>, MmMsg<V>>,
    n: usize,
    t: usize,
    wise: bool,
) {
    let child = (n >> (2 * t)) / 4;
    for r in 0..2usize {
        let label = (2 * t) as u32;
        // Move out: route the operand quadrants for round r.
        prog.step(label, "smm-move", move |st, ctx, inbox, out| {
            ingest(st, inbox);
            send_permuted(st, ctx, t, r, out);
            if wise {
                wiseness_dummies(ctx, label, 1, out);
            }
        });
        if child == 1 {
            // Base: the single-VP segment multiplies and sends the operands
            // straight back (same involutive permutation).
            prog.step(label, "smm-base", move |st, ctx, inbox, out| {
                ingest(st, inbox);
                st.c = st.c.add(&st.a.2.mul(&st.b.2));
                send_permuted(st, ctx, t, r, out);
                if wise {
                    wiseness_dummies(ctx, label, 1, out);
                }
            });
        } else {
            emit(prog, n, t + 1, wise);
            // Move back: restore canonical layout for the next round/level.
            prog.step(label, "smm-restore", move |st, ctx, inbox, out| {
                ingest(st, inbox);
                send_permuted(st, ctx, t, r, out);
                if wise {
                    wiseness_dummies(ctx, label, 1, out);
                }
            });
        }
    }
}

impl<V: Semiring> NobAlgorithm for SpaceEfficientMm<V> {
    type State = SpaceMmState<V>;
    type Msg = MmMsg<V>;
    type Input = MmInput<V>;
    type Output = Matrix<V>;

    fn name(&self) -> String {
        format!("mm-space(wise={})", self.wise)
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &MmInput<V>) -> Vec<SpaceMmState<V>> {
        assert!(Self::supports(n), "SpaceEfficientMm supports n = 4^m, got {n}");
        assert_eq!(input.n(), n);
        (0..n)
            .map(|vp| {
                let (i, j) = morton_decode(vp);
                SpaceMmState {
                    a: (i as u32, j as u32, input.a.get(i, j).clone()),
                    b: (i as u32, j as u32, input.b.get(i, j).clone()),
                    c: V::zero(),
                }
            })
            .collect()
    }

    fn build(&self, n: usize) -> Program<SpaceMmState<V>, MmMsg<V>> {
        assert!(Self::supports(n), "SpaceEfficientMm supports n = 4^m, got {n}");
        let mut prog = Program::new(n, n);
        let log_v = prog.log_v();
        emit(&mut prog, n, 0, self.wise);
        // Consume the final restore messages.
        prog.step(log_v - 1, "smm-finalize", |st, _ctx, inbox, _out| {
            ingest(st, inbox);
        });
        prog
    }

    fn extract(&self, n: usize, states: Vec<SpaceMmState<V>>) -> Matrix<V> {
        let s = 1usize << (n.trailing_zeros() / 2);
        let mut out = Matrix::zero(s);
        for (vp, st) in states.iter().enumerate() {
            let (i, j) = morton_decode(vp);
            out.set(i, j, st.c.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::WrapU64;
    use nob_machine::{execute, execute_folded, RunOptions};

    fn random_input(s: usize, seed: u64) -> MmInput<WrapU64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        let b = Matrix::from_fn(s, |_, _| WrapU64(next() % 1000));
        MmInput::new(a, b)
    }

    #[test]
    fn multiplies_correctly_small_sizes() {
        for &s in &[2usize, 4, 8, 16] {
            let n = s * s;
            let input = random_input(s, s as u64);
            let expect = input.a.mul_reference(&input.b);
            let alg = SpaceEfficientMm::<WrapU64>::default();
            let (got, _) = execute(&alg, n, &input, &RunOptions::default()).unwrap();
            assert_eq!(got, expect, "failed at side {s}");
        }
    }

    #[test]
    fn superstep_counts_are_theta_2i_per_level() {
        // S^{2i} = Θ(2^i): the schedule has Θ(2^i) supersteps of label 2i.
        let alg = SpaceEfficientMm::<WrapU64>::default();
        let input = random_input(16, 1);
        let (_, trace) = execute(&alg, 256, &input, &RunOptions::default()).unwrap();
        let s = trace.s_counts();
        assert!(s[0] >= 2 && s[0] <= 6, "S^0 = {}", s[0]);
        assert!(s[2] >= 4 && s[2] <= 12, "S^2 = {}", s[2]);
        assert!(s[4] >= 8 && s[4] <= 24, "S^4 = {}", s[4]);
    }

    #[test]
    fn folding_preserves_output_and_metrics() {
        let input = random_input(8, 5);
        let alg = SpaceEfficientMm::<WrapU64>::default();
        let (full_out, full_trace) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
        assert_eq!(full_out, input.a.mul_reference(&input.b));
        for p in [2usize, 4, 16, 64] {
            let (out, trace) = execute_folded(&alg, 64, &input, p, &RunOptions::default()).unwrap();
            assert_eq!(out, full_out);
            let mut q = 2;
            while q <= p {
                assert_eq!(trace.fold(q), full_trace.fold(q));
                q *= 2;
            }
        }
    }

    #[test]
    fn bandwidth_term_scales_as_n_over_sqrt_p() {
        // The level-by-level sum gives H(n, p, 0) = Θ(n·(√p − 1)/p): check
        // measured ratios against that closed form (the asymptotic "quadruple
        // p, halve H" only emerges once √p ≫ 1).
        let n = 1024usize;
        let input = random_input(32, 9);
        let alg = SpaceEfficientMm::<WrapU64>::new(false);
        let (_, trace) = execute(&alg, n, &input, &RunOptions::default()).unwrap();
        let shape = |p: usize| ((p as f64).sqrt() - 1.0) / p as f64;
        for (pa, pb) in [(4usize, 16usize), (16, 256), (64, 1024)] {
            let measured = trace.comm_complexity(pa, 0.0) / trace.comm_complexity(pb, 0.0);
            let predicted = shape(pa) / shape(pb);
            assert!(
                measured / predicted > 0.6 && measured / predicted < 1.7,
                "H({pa})/H({pb}) = {measured:.2}, closed form {predicted:.2}"
            );
        }
    }

    #[test]
    fn per_vp_memory_is_constant() {
        // The state type itself enforces O(1) entries per VP; sanity-check
        // that messages per VP per superstep stay O(1) too.
        let input = random_input(16, 13);
        let alg = SpaceEfficientMm::<WrapU64>::default();
        let (_, trace) = execute(&alg, 256, &input, &RunOptions::default()).unwrap();
        assert!(trace.max_degree() <= 4, "degree {}", trace.max_degree());
    }
}
