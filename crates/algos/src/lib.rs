//! # nob-algos — the network-oblivious algorithms of Bilardi et al.
//!
//! Executable implementations of every algorithm in Section 4 of
//! *Network-Oblivious Algorithms* (IPDPS'07 / JACM'16), written as static
//! superstep programs for the `nob-machine` VM:
//!
//! * [`mm`] — n-MM: the 8-way recursive algorithm (Thm. 4.2), the
//!   space-efficient variant (§4.1.1), and Cannon's flat algorithm as a
//!   class-C baseline;
//! * [`fft`] — n-FFT: the recursive √n-decomposition algorithm (Thm. 4.5)
//!   and the one-level binary-exchange baseline;
//! * [`sort`] — n-sort: recursive Columnsort (Thm. 4.8) and a bitonic
//!   baseline;
//! * [`stencil`] — the (n,1)-stencil diamond-DAG algorithm (Thm. 4.11) and a
//!   naive time-stepping baseline; [`stencil2`] — the (n,2)-stencil
//!   octahedron/tetrahedron algorithm (Thm. 4.13);
//! * [`broadcast`] — the σ-aware optimal algorithm of §4.5 and oblivious
//!   competitors (the impossibility study of Thms. 4.15/4.16);
//! * [`primitives`] — reduction, prefix sums, matrix transpose: the basic
//!   blocks used by the bigger algorithms and the ascend–descend protocol;
//! * [`semiring`] — the algebraic substrate for MM (numeric, Boolean,
//!   tropical);
//! * [`common`] — layout helpers (Morton order, wiseness dummies, bit
//!   reversal) shared across algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod common;
pub mod fft;
pub mod mm;
pub mod primitives;
pub mod semiring;
pub mod sort;
pub mod stencil;
pub mod stencil2;
