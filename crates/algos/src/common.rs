//! Layout helpers shared by the algorithm implementations.

use nob_machine::{Ctx, Outbox, Route};

/// Emits the paper's wiseness dummy messages for a superstep with the given
/// label: VP `j` sends `count` dummy messages to VP `j + v/2^{label+1}`, for
/// every `j < v/2^{label+1}` (Section 4.1: the device that makes the
/// algorithms `(Θ(1), v)`-wise without changing their asymptotic costs).
#[inline]
pub fn wiseness_dummies<M>(ctx: &Ctx, label: u32, count: u64, out: &mut Outbox<M>) {
    let span = ctx.v >> (label + 1);
    if span == 0 {
        return;
    }
    if ctx.vp < span {
        for _ in 0..count {
            out.send_dummy(ctx.vp + span);
        }
    }
}

/// The oblivious-route declaration of [`wiseness_dummies`]: slot `k` (for
/// `0 ≤ k < count`) of the dummy block a superstep's route reserves after
/// its payload slots. Mirrors the emission exactly, so pattern supersteps
/// can declare `route(ctx, j) = … payloads …, wiseness_route(ctx, label,
/// count, j - payloads)`.
#[inline]
pub fn wiseness_route(ctx: &Ctx, label: u32, count: u64, k: usize) -> Route {
    let span = ctx.v >> (label + 1);
    if span > 0 && ctx.vp < span && (k as u64) < count {
        Route::Dummy(ctx.vp + span)
    } else {
        // The dummy block is always the tail of a route, so terminate the
        // VP's declaration outright (cheap exhaustion checks).
        Route::End
    }
}

/// Interleaves the bits of `(i, j)` into a Morton (Z-order) index: bit `b` of
/// `i` lands at position `2b+1`, bit `b` of `j` at position `2b`. Top-down,
/// the 2-bit digits of the result are the quadrant choices `(i-bit, j-bit)`,
/// so aligned power-of-four VP segments correspond to aligned submatrices.
#[inline]
pub fn morton_encode(i: usize, j: usize) -> usize {
    part1by1(i) << 1 | part1by1(j)
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(z: usize) -> (usize, usize) {
    (compact1by1(z >> 1), compact1by1(z))
}

#[inline]
fn part1by1(mut x: usize) -> usize {
    // Spread the low 32 bits of x to even positions.
    x &= 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact1by1(mut x: usize) -> usize {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0xffff_ffff;
    x
}

/// Reverses the low `bits` bits of `x` (FFT output indexing).
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Integer `log2` of a power of two.
#[inline]
pub fn ilog2(x: usize) -> u32 {
    debug_assert!(x.is_power_of_two());
    x.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_roundtrip() {
        for i in 0..32 {
            for j in 0..32 {
                assert_eq!(morton_decode(morton_encode(i, j)), (i, j));
            }
        }
    }

    #[test]
    fn morton_quadrants_are_aligned_segments() {
        // In an 8x8 matrix, quadrant (i-half, j-half) = contiguous 16-VP block.
        let q = |i: usize, j: usize| morton_encode(i, j) / 16;
        for i in 0..8 {
            for j in 0..8 {
                let expect = ((i >= 4) as usize) * 2 + ((j >= 4) as usize);
                assert_eq!(q(i, j), expect);
            }
        }
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        for x in 0..64 {
            assert_eq!(bit_reverse(bit_reverse(x, 6), 6), x);
        }
    }
}
