//! Semiring substrate for matrix multiplication.
//!
//! Kerr's lower bound (used by Lemma 4.1 and the definition of the n-MM
//! problem in Section 4.1) concerns algorithms using only *semiring*
//! operations — no subtraction, so all `n^{3/2}` multiplicative terms must be
//! computed. The MM algorithms here are generic over a [`Semiring`];
//! instances include the numeric semiring, a wrapping-integer semiring (for
//! exact tests), the Boolean semiring (transitive closure) and the tropical
//! min-plus semiring (shortest paths, used by the APSP example).

use std::fmt::Debug;

/// A (commutative) semiring `(⊕, ⊗, 0, 1)`.
pub trait Semiring: Clone + Send + Sync + PartialEq + Debug + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Semiring addition `⊕`.
    fn add(&self, rhs: &Self) -> Self;
    /// Semiring multiplication `⊗`.
    fn mul(&self, rhs: &Self) -> Self;
    /// Approximate equality for result validation (exact by default).
    fn close_to(&self, rhs: &Self) -> bool {
        self == rhs
    }
}

/// The numeric semiring `(ℝ, +, ×)` on `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumF64(pub f64);

impl Semiring for NumF64 {
    fn zero() -> Self {
        NumF64(0.0)
    }
    fn one() -> Self {
        NumF64(1.0)
    }
    fn add(&self, rhs: &Self) -> Self {
        NumF64(self.0 + rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        NumF64(self.0 * rhs.0)
    }
    fn close_to(&self, rhs: &Self) -> bool {
        let scale = self.0.abs().max(rhs.0.abs()).max(1.0);
        (self.0 - rhs.0).abs() <= 1e-9 * scale
    }
}

/// The wrapping-integer semiring `(ℤ_{2^64}, +, ×)` — exact, used by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapU64(pub u64);

impl Semiring for WrapU64 {
    fn zero() -> Self {
        WrapU64(0)
    }
    fn one() -> Self {
        WrapU64(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        WrapU64(self.0.wrapping_add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        WrapU64(self.0.wrapping_mul(rhs.0))
    }
}

/// The Boolean semiring `({0,1}, ∨, ∧)` — reachability / transitive closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolOrAnd(pub bool);

impl Semiring for BoolOrAnd {
    fn zero() -> Self {
        BoolOrAnd(false)
    }
    fn one() -> Self {
        BoolOrAnd(true)
    }
    fn add(&self, rhs: &Self) -> Self {
        BoolOrAnd(self.0 || rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        BoolOrAnd(self.0 && rhs.0)
    }
}

/// The tropical semiring `(ℝ ∪ {∞}, min, +)` — shortest paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinPlus(pub f64);

impl Semiring for MinPlus {
    fn zero() -> Self {
        MinPlus(f64::INFINITY)
    }
    fn one() -> Self {
        MinPlus(0.0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MinPlus(self.0.min(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        MinPlus(self.0 + rhs.0)
    }
    fn close_to(&self, rhs: &Self) -> bool {
        (self.0.is_infinite() && rhs.0.is_infinite())
            || (self.0 - rhs.0).abs() <= 1e-9 * self.0.abs().max(rhs.0.abs()).max(1.0)
    }
}

/// A dense square matrix over a semiring (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<V> {
    side: usize,
    data: Vec<V>,
}

impl<V: Semiring> Matrix<V> {
    /// The all-zero matrix of the given side.
    pub fn zero(side: usize) -> Self {
        Matrix { side, data: vec![V::zero(); side * side] }
    }

    /// Builds a matrix from row-major data.
    pub fn from_rows(side: usize, data: Vec<V>) -> Self {
        assert_eq!(data.len(), side * side);
        Matrix { side, data }
    }

    /// Builds a matrix from a coordinate function.
    pub fn from_fn(side: usize, mut f: impl FnMut(usize, usize) -> V) -> Self {
        let mut data = Vec::with_capacity(side * side);
        for i in 0..side {
            for j in 0..side {
                data.push(f(i, j));
            }
        }
        Matrix { side, data }
    }

    /// Matrix side length.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of entries (`n` in the paper's n-MM problem).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> &V {
        &self.data[i * self.side + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: V) {
        self.data[i * self.side + j] = v;
    }

    /// Row-major view of the entries.
    #[inline]
    pub fn rows(&self) -> &[V] {
        &self.data
    }

    /// Classic cubic reference product (the correctness oracle for the
    /// network-oblivious algorithms).
    pub fn mul_reference(&self, rhs: &Matrix<V>) -> Matrix<V> {
        assert_eq!(self.side, rhs.side);
        let s = self.side;
        let mut out = Matrix::zero(s);
        for i in 0..s {
            for j in 0..s {
                let mut acc = V::zero();
                for k in 0..s {
                    acc = acc.add(&self.get(i, k).mul(rhs.get(k, j)));
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Entrywise approximate equality.
    pub fn close_to(&self, rhs: &Matrix<V>) -> bool {
        self.side == rhs.side && self.data.iter().zip(&rhs.data).all(|(a, b)| a.close_to(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<V: Semiring>(a: V, b: V, c: V) {
        // Associativity / commutativity of ⊕, identity, distributivity spot checks.
        assert!(a.add(&b).close_to(&b.add(&a)));
        assert!(a.add(&V::zero()).close_to(&a));
        assert!(a.mul(&V::one()).close_to(&a));
        assert!(a.add(&b).add(&c).close_to(&a.add(&b.add(&c))));
        assert!(a.mul(&b.add(&c)).close_to(&a.mul(&b).add(&a.mul(&c))));
        // 0 annihilates.
        assert!(a.mul(&V::zero()).close_to(&V::zero()));
    }

    #[test]
    fn semiring_laws_hold() {
        laws(NumF64(2.5), NumF64(-1.0), NumF64(4.0));
        laws(WrapU64(7), WrapU64(u64::MAX - 3), WrapU64(12));
        laws(BoolOrAnd(true), BoolOrAnd(false), BoolOrAnd(true));
        laws(MinPlus(3.0), MinPlus(1.5), MinPlus(9.0));
    }

    #[test]
    fn reference_product_identity() {
        let id = Matrix::from_fn(4, |i, j| if i == j { WrapU64::one() } else { WrapU64::zero() });
        let a = Matrix::from_fn(4, |i, j| WrapU64((i * 4 + j) as u64));
        assert_eq!(a.mul_reference(&id), a);
        assert_eq!(id.mul_reference(&a), a);
    }

    #[test]
    fn tropical_product_is_min_plus() {
        // 2x2 shortest-path step.
        let a = Matrix::from_rows(2, vec![MinPlus(0.0), MinPlus(5.0), MinPlus(2.0), MinPlus(0.0)]);
        let sq = a.mul_reference(&a);
        assert!(sq.get(0, 1).close_to(&MinPlus(5.0)));
        assert!(sq.get(1, 0).close_to(&MinPlus(2.0)));
    }
}
