use std::time::Instant;

pub fn startup_stamp() -> Instant {
    // instant-ok: one-shot at process start, never on the superstep path.
    Instant::now()
}
