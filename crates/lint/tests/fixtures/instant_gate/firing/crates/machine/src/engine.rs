use std::time::Instant;

pub fn hot_loop() -> Instant {
    Instant::now()
}
