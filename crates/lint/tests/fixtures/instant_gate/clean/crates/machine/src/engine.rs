use std::time::Instant;

pub struct Tele;

impl Tele {
    pub fn map<T>(&self, f: impl FnOnce(&Tele) -> T) -> Option<T> {
        Some(f(self))
    }
    pub fn is_some(&self) -> bool {
        true
    }
}

pub fn guarded(tele: Option<&Tele>) -> Option<Instant> {
    let tele = tele?;
    // Same-line guard: the clock read only happens on the armed branch.
    tele.map(|_| Instant::now())
}

pub fn guarded_window(telemetry: Option<&Tele>) -> Option<Instant> {
    let telemetry = telemetry?;
    if telemetry.is_some() {
        // The armed-branch check sits within the 3-line window above.
        return Some(Instant::now());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_read_the_clock() {
        let _ = Instant::now();
    }
}
