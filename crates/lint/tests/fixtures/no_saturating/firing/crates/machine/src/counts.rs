pub fn bump(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}
