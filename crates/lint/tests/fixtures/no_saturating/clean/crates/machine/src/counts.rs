//! `saturating_add` in docs is fine.

pub fn bump(a: u32, b: u32) -> Option<u32> {
    let _doc = "saturating_mul belongs in strings";
    a.checked_add(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(u32::MAX.saturating_add(1), u32::MAX);
    }
}
