pub fn clamp_for_display(a: u64, b: u64) -> u64 {
    // allow-saturating: display-only clamp, never a scatter count.
    a.saturating_add(b)
}
