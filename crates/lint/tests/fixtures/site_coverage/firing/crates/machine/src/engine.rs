pub const FAULT_COVERED: &str = "f:covered";
pub const FAULT_UNCHECKED: &str = "f:unchecked";
pub const FAULT_UNTESTED: &str = "f:untested";

pub fn run(observe: impl Fn(&'static str), armed: impl Fn(&str) -> bool) {
    observe(Site::Covered.name());
    observe(Site::Untested.name());
    if armed(FAULT_COVERED) {
        return;
    }
    if armed(FAULT_UNTESTED) {
        return;
    }
}
