pub fn exercise() {
    let _ = ("x:covered", "f:covered");
    let _ = Site::Uninstrumented;
}
