//! Fixture telemetry module — every site instrumented and tested.

pub enum Site {
    Covered,
    Uninstrumented,
    Untested,
}

impl Site {
    pub fn name(self) -> &'static str {
        match self {
            Site::Covered => "x:covered",
            Site::Uninstrumented => "x:uninst",
            Site::Untested => "x:untested",
        }
    }
}
