pub const FAULT_COVERED: &str = "f:covered";

pub fn run(observe: impl Fn(&'static str), armed: impl Fn(&str) -> bool) {
    observe(Site::Covered.name());
    observe(Site::Uninstrumented.name());
    observe(Site::Untested.name());
    if armed(FAULT_COVERED) {
        return;
    }
}
