pub fn exercise() {
    // Name-string coverage for two sites and the failpoint …
    let _ = ("x:covered", "x:uninst", "f:covered");
    // … and code-path coverage for the third.
    let _ = Site::Untested;
}
