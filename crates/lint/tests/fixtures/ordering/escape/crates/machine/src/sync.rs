use std::sync::atomic::{AtomicU64, Ordering};

pub fn observe(a: &AtomicU64) -> u64 {
    // ordering: SeqCst — this fixture needs a single total order over
    // publications and checks.
    a.load(Ordering::SeqCst)
}
