use std::sync::atomic::{AtomicU64, Ordering};

pub fn observe(a: &AtomicU64) -> u64 {
    // Relaxed and acquire/release orderings need no justification.
    let _ = a.load(Ordering::Relaxed);
    a.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqcst_fine_in_tests() {
        let a = AtomicU64::new(0);
        assert_eq!(a.load(Ordering::SeqCst), 0);
    }
}
