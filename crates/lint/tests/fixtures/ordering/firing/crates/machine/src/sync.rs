use std::sync::atomic::{AtomicU64, Ordering};

pub fn observe(a: &AtomicU64) -> u64 {
    a.load(Ordering::SeqCst)
}
