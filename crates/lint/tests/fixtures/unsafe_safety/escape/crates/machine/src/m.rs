pub struct Grid {
    cell: std::cell::UnsafeCell<u8>,
}

// SAFETY: a multi-line justification block whose header sits more than
// three lines above the keyword still documents it — the contiguous
// comment block immediately above is searched as a unit, matching how
// real invariant write-ups read.
unsafe impl Send for Grid {}
// SAFETY: same discipline as the Send impl above.
unsafe impl Sync for Grid {}

impl Grid {
    /// Reads the cell.
    ///
    /// # Safety
    /// The rustdoc `# Safety` section is the documented convention for
    /// `unsafe fn` contracts and satisfies the rule too.
    pub unsafe fn get(&self) -> u8 {
        // SAFETY: the fn's contract above.
        unsafe { *self.cell.get() }
    }
}
