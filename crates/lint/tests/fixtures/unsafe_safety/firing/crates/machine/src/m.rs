pub unsafe fn no_docs(p: *const u8) -> u8 {
    unsafe { *p }
}
