//! No unsafe code at all; the word unsafe in docs does not count.

pub fn safe(x: u8) -> u8 {
    let _s = "unsafe in a string is not the keyword";
    x
}
