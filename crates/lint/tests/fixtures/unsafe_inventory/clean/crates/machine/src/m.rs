pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture — documented and counted in the baseline.
    unsafe { *p }
}
