pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture — the --update-baseline workflow records this one.
    unsafe { *p }
}
