pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture — documented, so only the inventory rule fires.
    unsafe { *p }
}
