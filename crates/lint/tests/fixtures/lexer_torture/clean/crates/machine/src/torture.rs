//! Doc comment mentioning .unwrap() and panic!("x") and unsafe { *p } —
//! comments never count as code.

/* Block comment: a.load(Ordering::SeqCst) and Instant::now().
   /* Nested block: x.saturating_add(1) and assert!(false). */
   Still inside the outer comment: .expect("boom").
*/

pub fn strings_do_not_fire() -> usize {
    let s = "call .unwrap() then panic!(\"no\") inside a plain string";
    let r = r#"raw string with unsafe { *p } and Ordering::SeqCst"#;
    let rr = r##"raw# string with "quotes" and Instant::now()"##;
    let b = b"byte string with .expect(oops)";
    let br = br#"raw byte: assert!(x.saturating_mul(2) > 0)"#;
    let decoy = "const FAULT_PHANTOM: &str = \"f:phantom\";";
    let q = '"'; // a char literal holding a quote must not open a string
    let esc = '\u{1F600}';
    let nl = '\n';
    s.len()
        + r.len()
        + rr.len()
        + b.len()
        + br.len()
        + decoy.len()
        + (q as usize)
        + (esc as usize)
        + (nl as usize)
}

pub fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    // The 'a above must not be lexed as an unterminated char literal —
    // that would blank the rest of the file as "string".
    x
}
