pub fn early() {}

#[cfg(test)]
mod tests {
    #[test]
    fn fine_here() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}

pub fn after_tests(x: Option<u32>) -> u32 {
    // The old awk gate stopped scanning at the first #[cfg(test)] above;
    // everything from here down is the false-negative class it missed.
    let a = x.unwrap();
    let b = x.expect("boom");
    assert!(a > 0);
    if a == 3 {
        panic!("bad");
    }
    a + b
}
