pub fn escape(x: Option<u32>) -> u32 {
    // allow-panic: demonstration of the escape hatch.
    x.unwrap()
}

pub fn same_line(x: Option<u32>) -> u32 {
    x.expect("checked by caller") // allow-panic: caller invariant
}

pub fn window(x: Option<u32>) -> u32 {
    // allow-panic: marker three lines above still counts.
    //
    //
    x.unwrap()
}
