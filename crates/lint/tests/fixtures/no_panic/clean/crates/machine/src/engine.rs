//! Docs mentioning `.unwrap()` and `panic!` never fire.

/// Call `.unwrap()` at your peril — this doc comment is not code.
pub fn clean(x: Option<u32>) -> u32 {
    let s = "contains .unwrap() and panic! and assert!(false)";
    let t = r#"raw with .expect("x")"#;
    /* block comment: .unwrap() panic! assert!(true) */
    debug_assert!(!s.is_empty());
    assert_eq!(s.len(), s.len());
    assert_ne!(t.len(), 0);
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
        panic!("fine in tests");
    }
}
