//! Fixture tests: every rule demonstrated by a firing tree, a clean
//! tree, and (where the rule has one) an escape-hatch tree, plus a
//! lexer-torture tree proving that tokens inside comments and strings
//! never fire, and a self-test pinning the real repository lint-clean.

use std::path::PathBuf;

use nob_lint::{run, Config, Report, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint(name: &str) -> Report {
    run(&Config::new(fixture(name))).expect("fixture tree scans")
}

/// Asserts the report's findings are exactly `want`, given as
/// `(rule, file, line)` triples in the report's sort order.
fn assert_findings(report: &Report, want: &[(Rule, &str, usize)]) {
    let got: Vec<(Rule, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.file.as_str(), f.line)).collect();
    assert_eq!(got, want, "findings:\n{}", render(report));
}

fn render(report: &Report) -> String {
    report.findings.iter().map(|f| format!("  {f}\n")).collect()
}

// --- NL001 no-panic ---------------------------------------------------

#[test]
fn no_panic_fires_after_a_test_module() {
    let r = lint("no_panic/firing");
    let f = "crates/machine/src/engine.rs";
    assert_findings(
        &r,
        &[
            (Rule::NoPanic, f, 15), // .unwrap()
            (Rule::NoPanic, f, 16), // .expect(
            (Rule::NoPanic, f, 17), // bare assert!
            (Rule::NoPanic, f, 19), // panic!
        ],
    );
}

#[test]
fn no_panic_ignores_comments_strings_tests_and_benign_macros() {
    assert_findings(&lint("no_panic/clean"), &[]);
}

#[test]
fn no_panic_escape_hatch_silences() {
    assert_findings(&lint("no_panic/escape"), &[]);
}

// --- NL002 no-saturating ----------------------------------------------

#[test]
fn no_saturating_fires_on_engine_arithmetic() {
    let r = lint("no_saturating/firing");
    assert_findings(&r, &[(Rule::NoSaturating, "crates/machine/src/counts.rs", 2)]);
}

#[test]
fn no_saturating_clean_tree() {
    assert_findings(&lint("no_saturating/clean"), &[]);
}

#[test]
fn no_saturating_escape_hatch_silences() {
    assert_findings(&lint("no_saturating/escape"), &[]);
}

// --- NL003 unsafe-safety ----------------------------------------------

#[test]
fn unsafe_safety_fires_on_undocumented_unsafe() {
    let r = lint("unsafe_safety/firing");
    let f = "crates/machine/src/m.rs";
    // The fixture baseline records both occurrences, so only NL003 fires.
    assert_findings(&r, &[(Rule::UnsafeSafety, f, 1), (Rule::UnsafeSafety, f, 2)]);
}

#[test]
fn unsafe_safety_clean_tree() {
    assert_findings(&lint("unsafe_safety/clean"), &[]);
}

#[test]
fn unsafe_safety_accepts_block_headers_and_rustdoc_sections() {
    // Multi-line `// SAFETY:` block whose header sits >3 lines up, a
    // rustdoc `# Safety` section, and a plain same-window comment.
    assert_findings(&lint("unsafe_safety/escape"), &[]);
}

// --- NL004 unsafe-inventory -------------------------------------------

#[test]
fn unsafe_inventory_flags_new_surface_and_stale_entries() {
    let r = lint("unsafe_inventory/firing");
    assert_findings(
        &r,
        &[
            (Rule::UnsafeInventory, "crates/machine/src/gone.rs", 0), // stale
            (Rule::UnsafeInventory, "crates/machine/src/m.rs", 0),    // new surface
        ],
    );
}

#[test]
fn unsafe_inventory_clean_when_baseline_matches() {
    let r = lint("unsafe_inventory/clean");
    assert_findings(&r, &[]);
    assert_eq!(r.inventory.get("crates/machine/src/m.rs"), Some(&1));
}

#[test]
fn unsafe_inventory_update_baseline_roundtrips() {
    let root = fixture("unsafe_inventory/workflow");
    let baseline = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("workflow_baseline.txt");

    // First pass: the file has unsafe surface but no baseline yet.
    let mut config = Config::new(&root);
    config.baseline = baseline.clone();
    let _ = std::fs::remove_file(&baseline);
    let before = run(&config).expect("scan");
    assert_eq!(before.findings.len(), 1, "missing baseline flags the new surface");
    assert_eq!(before.findings[0].rule, Rule::UnsafeInventory);

    // `--update-baseline` records the tree …
    config.update_baseline = true;
    let during = run(&config).expect("update");
    assert!(during.ok(), "update pass reports nothing");

    // … and the next normal run is clean.
    config.update_baseline = false;
    let after = run(&config).expect("rescan");
    assert!(after.ok(), "findings after update:\n{}", render(&after));

    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("crates/machine/src/m.rs 1"), "baseline body: {text}");
}

// --- NL005 ordering-justified -------------------------------------------

#[test]
fn ordering_fires_on_bare_seqcst() {
    let r = lint("ordering/firing");
    assert_findings(&r, &[(Rule::OrderingJustified, "crates/machine/src/sync.rs", 4)]);
}

#[test]
fn ordering_ignores_weaker_orderings_and_tests() {
    assert_findings(&lint("ordering/clean"), &[]);
}

#[test]
fn ordering_justification_comment_silences() {
    assert_findings(&lint("ordering/escape"), &[]);
}

// --- NL006 site-coverage ----------------------------------------------

#[test]
fn site_coverage_flags_uninstrumented_and_untested_sites() {
    let r = lint("site_coverage/firing");
    let tele = "crates/core/src/telemetry.rs";
    let eng = "crates/machine/src/engine.rs";
    assert_findings(
        &r,
        &[
            (Rule::SiteCoverage, tele, 5), // Uninstrumented: no executor call site
            (Rule::SiteCoverage, tele, 6), // Untested: never under tests/
            (Rule::SiteCoverage, eng, 2),  // FAULT_UNCHECKED: declared, never checked
            (Rule::SiteCoverage, eng, 2),  // FAULT_UNCHECKED: never under tests/
            (Rule::SiteCoverage, eng, 3),  // FAULT_UNTESTED: never under tests/
        ],
    );
}

#[test]
fn site_coverage_clean_via_code_paths_and_name_strings() {
    // Coverage counts through either mechanism: a `Site::X` path in test
    // code or the site's wire string in a test string literal.
    assert_findings(&lint("site_coverage/clean"), &[]);
}

// --- NL007 instant-gate -----------------------------------------------

#[test]
fn instant_gate_fires_on_unguarded_clock_reads() {
    let r = lint("instant_gate/firing");
    assert_findings(&r, &[(Rule::InstantGate, "crates/machine/src/engine.rs", 4)]);
}

#[test]
fn instant_gate_accepts_armed_guards_and_tests() {
    assert_findings(&lint("instant_gate/clean"), &[]);
}

#[test]
fn instant_gate_escape_hatch_silences() {
    assert_findings(&lint("instant_gate/escape"), &[]);
}

// --- Lexer false positives ----------------------------------------------

#[test]
fn lexer_never_fires_on_comments_strings_or_char_literals() {
    // Every rule's tokens appear in doc comments, nested block comments,
    // plain/raw/byte/raw-byte strings, and around char literals and
    // lifetimes — none of it is code, so nothing fires.
    let r = lint("lexer_torture/clean");
    assert_findings(&r, &[]);
    assert!(r.inventory.is_empty(), "no unsafe surface in the torture file");
}

// --- Self-test ----------------------------------------------------------

#[test]
fn the_real_tree_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = run(&Config::new(root)).expect("repo scans");
    assert!(r.ok(), "the repository must stay lint-clean:\n{}", render(&r));
    assert!(r.files_scanned > 20, "scanned {} files — scan roots moved?", r.files_scanned);
}
