//! The engine-invariant rules.
//!
//! Every rule works on the [`crate::lexer::Lexed`] views of the
//! scanned tree: token searches run on the blanked *code* view (so a
//! `panic!` inside a doc comment or a format string never fires),
//! justification markers are looked up in the *comment* view (so a marker
//! inside a string cannot silence a rule), and site-string searches in
//! test files run on the *string* view (a chaos test names its failpoint
//! as `"shard:prepare"`). Non-test scoping is module-granular: a
//! `#[cfg(test)]` item is skipped by brace matching, not by truncating
//! the file at its first occurrence.

use std::collections::BTreeMap;

use crate::lexer::Lexed;
use crate::{Finding, Rule};

/// How many lines above an occurrence a justification comment may sit
/// (same window the old awk gate used for `allow-panic:`).
const JUSTIFY_WINDOW: usize = 3;

/// One scanned source file.
pub struct SourceFile {
    /// Root-relative path with forward slashes (stable across hosts).
    pub path: String,
    pub lex: Lexed,
}

impl SourceFile {
    fn is_engine_src(&self) -> bool {
        self.path.starts_with("crates/machine/src/")
    }

    /// The panic-freedom contract extends to the core runtime files the
    /// executors call on their hot/fault paths.
    fn is_guarded_core(&self) -> bool {
        matches!(
            self.path.as_str(),
            "crates/core/src/fault.rs" | "crates/core/src/telemetry.rs" | "crates/core/src/metrics.rs"
        )
    }

    fn is_core_src(&self) -> bool {
        self.path.starts_with("crates/core/src/")
    }

    /// Integration-test trees: workspace `tests/` and any crate's
    /// `tests/` directory.
    pub fn is_test_file(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }
}

/// Whether `line[at..]` starts token `tok` on identifier boundaries.
/// Each boundary check only applies where the token edge is itself an
/// identifier character: `.unwrap()` is legitimately preceded by an
/// identifier (the `.` delimits), `saturating_` is a prefix so its tail
/// is open, but `unsafe` must not match inside `unsafely`.
fn token_at(line: &str, at: usize, tok: &str) -> bool {
    if !line[at..].starts_with(tok) {
        return false;
    }
    if at > 0 && tok.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_') {
        let prev = line[..at].chars().next_back().unwrap_or(' ');
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    if tok.chars().next_back().is_some_and(|c| c.is_alphanumeric()) {
        let next = line[at + tok.len()..].chars().next().unwrap_or(' ');
        if next.is_alphanumeric() || next == '_' {
            return false;
        }
    }
    true
}

/// All boundary-checked occurrences of `tok` in `line`.
fn find_token(line: &str, tok: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let at = from + pos;
        if token_at(line, at, tok) {
            hits.push(at);
        }
        from = at + tok.len();
    }
    hits
}

/// How far up a contiguous comment/attribute block is searched for a
/// marker before giving up (bounds pathological comment walls).
const BLOCK_WALK_CAP: usize = 25;

/// Whether a comment containing any of `markers` justifies an occurrence
/// on `line`: on the same line, within [`JUSTIFY_WINDOW`] lines above
/// (parity with the old awk gate, which tolerated a couple of code lines
/// between marker and occurrence), or anywhere in the contiguous
/// comment/attribute block immediately above (so a multi-line
/// `// SAFETY: …` block whose header sits 5 lines up still counts).
fn justified_any(lex: &Lexed, line: usize, markers: &[&str]) -> bool {
    let hit = |l: usize| lex.comments.get(l).is_some_and(|c| markers.iter().any(|m| c.contains(m)));
    let lo = line.saturating_sub(JUSTIFY_WINDOW);
    if (lo..=line).any(hit) {
        return true;
    }
    // Walk the contiguous comment block above: pure-comment lines, blank
    // lines, and attribute lines (`#[inline]` between doc and item) are
    // transparent; the first real code line ends the block.
    let mut l = line;
    let mut steps = 0;
    while l > 0 && steps < BLOCK_WALK_CAP {
        l -= 1;
        steps += 1;
        if hit(l) {
            return true;
        }
        let code = lex.code.get(l).map(|c| c.trim()).unwrap_or("");
        if !code.is_empty() && !code.starts_with("#[") && !code.starts_with("#![") {
            return false; // a real code line ends the block
        }
    }
    false
}

fn justified(lex: &Lexed, line: usize, marker: &str) -> bool {
    justified_any(lex, line, &[marker])
}

/// NL001 `no-panic`: non-test engine code must surface failures as
/// structured `ModelError`s — `unwrap()` / `expect(` / `panic!` / bare
/// `assert!` need an `allow-panic:` justification.
pub fn no_panic(files: &[SourceFile], out: &mut Vec<Finding>) {
    const TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "assert!"];
    for f in files.iter().filter(|f| f.is_engine_src() || f.is_guarded_core()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            if f.lex.test[li] {
                continue;
            }
            for tok in TOKENS {
                // `assert!` is the bare macro only: the boundary check
                // rejects `debug_assert!`, and `assert_eq!`/`assert_ne!`
                // don't contain the token.
                for _ in find_token(line, tok) {
                    if !justified(&f.lex, li, "allow-panic:") {
                        out.push(Finding::new(
                            Rule::NoPanic,
                            &f.path,
                            li + 1,
                            format!(
                                "`{tok}` in non-test engine code: return a ModelError or \
                                 justify with an `allow-panic:` comment within {JUSTIFY_WINDOW} lines"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// NL002 `no-saturating`: per-destination counts feed the unsafe
/// counting-sort scatters; a silently capped count corrupts prefix-sum
/// offsets, so the engine must use checked adds.
pub fn no_saturating(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| f.is_engine_src()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            if f.lex.test[li] || find_token(line, "saturating_").is_empty() {
                continue;
            }
            if !justified(&f.lex, li, "allow-saturating:") {
                out.push(Finding::new(
                    Rule::NoSaturating,
                    &f.path,
                    li + 1,
                    format!(
                        "`saturating_*` arithmetic in engine code: use a checked add \
                         (ModelError on overflow) or justify with an `allow-saturating:` \
                         comment within {JUSTIFY_WINDOW} lines"
                    ),
                ));
            }
        }
    }
}

/// NL003 `unsafe-safety`: every `unsafe` keyword (block, fn, impl) in
/// non-test engine/core code must carry a `// SAFETY:` comment within
/// `JUSTIFY_WINDOW` lines above (or on the same line).
pub fn unsafe_safety(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| f.is_engine_src() || f.is_core_src()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            if f.lex.test[li] {
                continue;
            }
            for _ in find_token(line, "unsafe") {
                // Either comment convention documents the obligation:
                // `// SAFETY:` on blocks/impls, or a rustdoc `# Safety`
                // section on an `unsafe fn`.
                if !justified_any(&f.lex, li, &["SAFETY:", "# Safety"]) {
                    out.push(Finding::new(
                        Rule::UnsafeSafety,
                        &f.path,
                        li + 1,
                        format!(
                            "`unsafe` without a `// SAFETY:` comment within \
                             {JUSTIFY_WINDOW} lines above"
                        ),
                    ));
                }
            }
        }
    }
}

/// Per-file count of non-test `unsafe` keyword occurrences — the
/// quantity the NL004 baseline pins.
pub fn unsafe_counts(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for f in files.iter().filter(|f| f.is_engine_src() || f.is_core_src()) {
        let n: usize = f
            .lex
            .code
            .iter()
            .enumerate()
            .filter(|(li, _)| !f.lex.test[*li])
            .map(|(_, line)| find_token(line, "unsafe").len())
            .sum();
        if n > 0 {
            counts.insert(f.path.clone(), n);
        }
    }
    counts
}

/// NL004 `unsafe-inventory`: the scanned tree's per-file unsafe counts
/// must match the checked-in baseline, so growing the unsafe surface
/// requires an explicit baseline edit in the same diff.
pub fn unsafe_inventory(
    actual: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
    baseline_path: &str,
    out: &mut Vec<Finding>,
) {
    for (path, &n) in actual {
        match baseline.get(path) {
            Some(&b) if b == n => {}
            Some(&b) if n > b => out.push(Finding::new(
                Rule::UnsafeInventory,
                path,
                0,
                format!(
                    "unsafe surface grew: {n} occurrences vs {b} in the baseline — \
                     document each with // SAFETY: and update {baseline_path}"
                ),
            )),
            Some(&b) => out.push(Finding::new(
                Rule::UnsafeInventory,
                path,
                0,
                format!("stale baseline: {n} unsafe occurrences vs {b} recorded — update {baseline_path}"),
            )),
            None => out.push(Finding::new(
                Rule::UnsafeInventory,
                path,
                0,
                format!(
                    "new unsafe surface: {n} occurrences in a file absent from the \
                     baseline — document each with // SAFETY: and update {baseline_path}"
                ),
            )),
        }
    }
    for (path, &b) in baseline {
        if !actual.contains_key(path) {
            out.push(Finding::new(
                Rule::UnsafeInventory,
                path,
                0,
                format!("stale baseline: records {b} unsafe occurrences but the file has none — update {baseline_path}"),
            ));
        }
    }
}

/// NL005 `ordering-justified`: `Ordering::SeqCst` is the strongest (and
/// slowest) fence; every non-test use in engine/core code must either be
/// downgraded or carry an `// ordering:` comment saying why sequential
/// consistency is required.
pub fn ordering_justified(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| f.is_engine_src() || f.is_core_src()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            if f.lex.test[li] || !line.contains("Ordering::SeqCst") {
                continue;
            }
            if !justified(&f.lex, li, "ordering:") {
                out.push(Finding::new(
                    Rule::OrderingJustified,
                    &f.path,
                    li + 1,
                    format!(
                        "`Ordering::SeqCst` without an `// ordering:` justification \
                         within {JUSTIFY_WINDOW} lines: downgrade or say why a total \
                         order is required"
                    ),
                ));
            }
        }
    }
}

/// NL007 `instant-gate`: the telemetry zero-cost contract — engine
/// sources may only read the clock behind an armed-sink guard
/// (`tele.map(…)`, `telemetry.is_some()…`) or a span helper built from
/// one, so a disarmed run never pays for `Instant::now`.
pub fn instant_gate(files: &[SourceFile], out: &mut Vec<Finding>) {
    const GUARDS: [&str; 4] = ["telemetry.map(", "tele.map(", "telemetry.is_some()", "tele.is_some()"];
    for f in files.iter().filter(|f| f.is_engine_src()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            if f.lex.test[li] || !line.contains("Instant::now") {
                continue;
            }
            let lo = li.saturating_sub(JUSTIFY_WINDOW);
            let guarded = (lo..=li).any(|l| {
                f.lex.code.get(l).is_some_and(|c| GUARDS.iter().any(|g| c.contains(g)))
            });
            if !guarded && !justified(&f.lex, li, "instant-ok:") {
                out.push(Finding::new(
                    Rule::InstantGate,
                    &f.path,
                    li + 1,
                    format!(
                        "`Instant::now` outside an armed-telemetry guard \
                         (`tele.map(`/`telemetry.is_some()` within {JUSTIFY_WINDOW} \
                         lines): disarmed runs must not read the clock — gate it or \
                         justify with `instant-ok:`"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// NL006 site-coverage: static reachability mirror of the chaos sweep.
// ---------------------------------------------------------------------

/// A telemetry `Site` variant with, when the `name()` match is found,
/// its wire string.
struct TelemetrySite {
    variant: String,
    name: Option<String>,
    line: usize,
}

/// A `const FAULT_*: &str = "…"` failpoint declaration.
struct FaultSite {
    const_name: String,
    site: String,
    file: String,
    line: usize,
}

/// NL006 `site-coverage`: every telemetry `Site` and every failpoint
/// string must appear at ≥1 instrumentation call site in the executors
/// and ≥1 time under a `tests/` tree — an uninstrumented or untested
/// site is dead observability surface.
pub fn site_coverage(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(tele) = files.iter().find(|f| f.path == "crates/core/src/telemetry.rs") else {
        return; // fixture trees without a telemetry module skip the rule
    };
    let tele_path = tele.path.clone();
    let sites = parse_site_enum(tele);
    let faults = parse_fault_consts(files);

    let exec: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            matches!(
                f.path.as_str(),
                "crates/machine/src/engine.rs"
                    | "crates/machine/src/shard.rs"
                    | "crates/machine/src/server.rs"
                    | "crates/machine/src/mailbox.rs"
            )
        })
        .collect();
    let tests: Vec<&SourceFile> = files.iter().filter(|f| f.is_test_file()).collect();

    for s in &sites {
        let qualified = format!("Site::{}", s.variant);
        let instrumented = exec
            .iter()
            .any(|f| f.lex.code.iter().any(|l| code_path_used(l, &qualified)));
        if !instrumented {
            out.push(Finding::new(
                Rule::SiteCoverage,
                &tele_path,
                s.line + 1,
                format!("telemetry site `{qualified}` has no instrumentation call site in the executors"),
            ));
        }
        let tested = tests.iter().any(|f| {
            f.lex.code.iter().any(|l| code_path_used(l, &qualified))
                || s.name.as_deref().is_some_and(|n| f.lex.strings.iter().any(|l| l.contains(n)))
        });
        if !tested {
            out.push(Finding::new(
                Rule::SiteCoverage,
                &tele_path,
                s.line + 1,
                format!(
                    "telemetry site `{qualified}` never appears under tests/ (by path or by \
                     its `{}` string)",
                    s.name.as_deref().unwrap_or("?")
                ),
            ));
        }
    }

    for fs in &faults {
        let used = files
            .iter()
            .filter(|f| f.is_engine_src())
            .flat_map(|f| f.lex.code.iter().enumerate().map(move |(li, l)| (f, li, l)))
            .any(|(f, li, l)| {
                (f.path != fs.file || li + 1 != fs.line) && !find_token(l, &fs.const_name).is_empty()
            });
        if !used {
            out.push(Finding::new(
                Rule::SiteCoverage,
                &fs.file,
                fs.line,
                format!("failpoint `{}` (`{}`) is declared but never checked", fs.const_name, fs.site),
            ));
        }
        let tested = tests.iter().any(|f| f.lex.strings.iter().any(|l| l.contains(&fs.site)));
        if !tested {
            out.push(Finding::new(
                Rule::SiteCoverage,
                &fs.file,
                fs.line,
                format!(
                    "failpoint `{}` never appears under tests/ — the chaos sweep cannot reach it",
                    fs.site
                ),
            ));
        }
    }
}

/// Whether `line` uses path `q` (e.g. `Site::ShardPrepare`) on an
/// identifier boundary on both sides (`Site::ShardExec` must not match
/// `Site::ShardExecPlanned`).
fn code_path_used(line: &str, q: &str) -> bool {
    !find_token(line, q).is_empty()
}

/// Extracts the `Site` enum's variants from the telemetry module, and
/// each variant's wire string from the `fn name` match arms
/// (`Site::X => "shard:x"`).
fn parse_site_enum(tele: &SourceFile) -> Vec<TelemetrySite> {
    let mut sites = Vec::new();
    let Some(start) = tele.lex.code.iter().position(|l| l.contains("enum Site")) else {
        return sites;
    };
    let mut depth = 0usize;
    for (li, line) in tele.lex.code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    if depth <= 1 {
                        finish_site_names(tele, &mut sites);
                        return sites;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if depth == 1 && li > start {
            let t = line.trim().trim_end_matches(',');
            if !t.is_empty()
                && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && t.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                sites.push(TelemetrySite { variant: t.to_string(), name: None, line: li });
            }
        }
    }
    finish_site_names(tele, &mut sites);
    sites
}

/// Fills each parsed variant's wire string from a `Site::X =>` match arm
/// whose line carries exactly one string literal.
fn finish_site_names(tele: &SourceFile, sites: &mut [TelemetrySite]) {
    for s in sites.iter_mut() {
        let arm = format!("Site::{} =>", s.variant);
        for (li, line) in tele.lex.code.iter().enumerate() {
            if line.contains(&arm) {
                let lit = tele.lex.strings[li].trim();
                if !lit.is_empty() {
                    s.name = Some(lit.to_string());
                    break;
                }
            }
        }
    }
}

/// Collects every `const FAULT_*: &str = "…"` declaration in the engine
/// sources.
fn parse_fault_consts(files: &[SourceFile]) -> Vec<FaultSite> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| f.is_engine_src()) {
        for (li, line) in f.lex.code.iter().enumerate() {
            let Some(at) = line.find("const FAULT_") else { continue };
            if !line.contains(": &str") {
                continue;
            }
            let ident: String = line[at + "const ".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let site = f.lex.strings[li].trim().to_string();
            if !ident.is_empty() && !site.is_empty() {
                out.push(FaultSite { const_name: ident, site, file: f.path.clone(), line: li + 1 });
            }
        }
    }
    out
}
