//! CLI: `nob-lint [--root DIR] [--baseline FILE] [--json FILE]
//! [--update-baseline] [--quiet]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--update-baseline" => update_baseline = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "nob-lint: static analysis of the engine's unsafe/panic/ordering/site invariants\n\n\
                     USAGE: nob-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline] [--quiet]\n\n\
                     --root DIR          repository root to scan (default: .)\n\
                     --baseline FILE     unsafe-inventory baseline (default: ROOT/crates/lint/unsafe_inventory.txt)\n\
                     --json FILE         also write the machine-readable nob-lint-v1 report\n\
                     --update-baseline   rewrite the baseline from the scanned tree\n\
                     --quiet             suppress the per-finding lines (summary only)\n\n\
                     Exit codes: 0 clean, 1 findings, 2 usage/I-O error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nob-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut config = nob_lint::Config::new(root.unwrap_or_else(|| PathBuf::from(".")));
    if let Some(b) = baseline {
        config.baseline = b;
    }
    config.update_baseline = update_baseline;

    let report = match nob_lint::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nob-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("nob-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if update_baseline {
        eprintln!("nob-lint: baseline rewritten: {}", config.baseline.display());
    }
    eprintln!(
        "nob-lint: {} finding(s) across {} file(s) scanned",
        report.findings.len(),
        report.files_scanned
    );
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
