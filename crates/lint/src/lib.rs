//! `nob-lint`: the engine's invariant checker.
//!
//! An offline, zero-dependency static analyzer for the contracts no
//! compiler checks but the engine's correctness story rests on:
//!
//! | id    | rule                 | invariant |
//! |-------|----------------------|-----------|
//! | NL001 | `no-panic`           | non-test engine code surfaces failures as `ModelError`s, never `unwrap`/`expect`/`panic!`/bare `assert!` (escape: `allow-panic:`) |
//! | NL002 | `no-saturating`      | counts feeding the unsafe counting-sort scatters are checked, never silently capped (escape: `allow-saturating:`) |
//! | NL003 | `unsafe-safety`      | every `unsafe` block/fn/impl carries a `// SAFETY:` comment within 3 lines |
//! | NL004 | `unsafe-inventory`   | per-file unsafe counts match the checked-in baseline — new unsafe surface requires an explicit baseline edit |
//! | NL005 | `ordering-justified` | every `Ordering::SeqCst` outside tests carries an `// ordering:` justification |
//! | NL006 | `site-coverage`      | every telemetry `Site` and failpoint string is instrumented in the executors and reachable from a test |
//! | NL007 | `instant-gate`       | `Instant::now` in engine sources only behind an armed-telemetry guard (escape: `instant-ok:`) |
//!
//! The scanner ([`lexer`]) is comment/string/attribute-aware, so a
//! `panic!` in a doc comment never fires and a marker inside a string
//! never silences a rule; `#[cfg(test)]` items are skipped by brace
//! matching at module granularity, not by truncating the file at the
//! first occurrence (both false-positive/false-negative classes of the
//! awk/grep gates this tool replaced).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;

use rules::SourceFile;

/// Stable rule identifiers (the JSON report keys scripts may diff on).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    NoPanic,
    NoSaturating,
    UnsafeSafety,
    UnsafeInventory,
    OrderingJustified,
    SiteCoverage,
    InstantGate,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::NoPanic,
        Rule::NoSaturating,
        Rule::UnsafeSafety,
        Rule::UnsafeInventory,
        Rule::OrderingJustified,
        Rule::SiteCoverage,
        Rule::InstantGate,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "NL001",
            Rule::NoSaturating => "NL002",
            Rule::UnsafeSafety => "NL003",
            Rule::UnsafeInventory => "NL004",
            Rule::OrderingJustified => "NL005",
            Rule::SiteCoverage => "NL006",
            Rule::InstantGate => "NL007",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoSaturating => "no-saturating",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::UnsafeInventory => "unsafe-inventory",
            Rule::OrderingJustified => "ordering-justified",
            Rule::SiteCoverage => "site-coverage",
            Rule::InstantGate => "instant-gate",
        }
    }
}

/// One lint violation, printed as `file:line: rule: message`.
#[derive(Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Root-relative path, forward slashes.
    pub file: String,
    /// 1-based; 0 for whole-file findings (inventory drift).
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(rule: Rule, file: &str, line: usize, message: String) -> Self {
        Finding { rule, file: file.to_string(), line, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.file, self.rule.name(), self.message)
        } else {
            write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule.name(), self.message)
        }
    }
}

/// What to lint and against which unsafe baseline.
pub struct Config {
    /// Repository root (the directory holding `crates/`).
    pub root: PathBuf,
    /// The unsafe-inventory baseline file.
    pub baseline: PathBuf,
    /// Rewrite the baseline from the scanned tree instead of diffing
    /// against it (NL004 then reports nothing).
    pub update_baseline: bool,
}

impl Config {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let baseline = root.join("crates/lint/unsafe_inventory.txt");
        Config { root, baseline, update_baseline: false }
    }
}

/// The full result of a lint run.
pub struct Report {
    /// Sorted by (file, line, rule id).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Per-file non-test `unsafe` occurrence counts of the scanned tree.
    pub inventory: BTreeMap<String, usize>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable report (`nob-lint-v1`): stable key order, no
    /// timestamps — byte-identical across runs on an identical tree, so
    /// it can be checked in and diffed like the bench JSONs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"nob-lint-v1\",\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"rules\": [\n");
        for (i, r) in Rule::ALL.iter().enumerate() {
            let n = self.findings.iter().filter(|f| f.rule == *r).count();
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"name\": \"{}\", \"findings\": {}}}{}\n",
                r.id(),
                r.name(),
                n,
                if i + 1 < Rule::ALL.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                f.rule.id(),
                f.rule.name(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"unsafe_inventory\": {\n");
        for (i, (path, n)) in self.inventory.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {}{}\n",
                json_escape(path),
                n,
                if i + 1 < self.inventory.len() { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The directories scanned, relative to the root. Fixture trees mirror
/// this layout, so the whole pipeline is testable end to end.
const SCAN_ROOTS: [&str; 5] =
    ["crates/machine/src", "crates/machine/tests", "crates/core/src", "crates/core/tests", "tests"];

/// Runs every rule over the tree under `config.root`.
pub fn run(config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for rel in SCAN_ROOTS {
        collect_rs(&config.root, &config.root.join(rel), &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let mut findings = Vec::new();
    rules::no_panic(&files, &mut findings);
    rules::no_saturating(&files, &mut findings);
    rules::unsafe_safety(&files, &mut findings);
    rules::ordering_justified(&files, &mut findings);
    rules::site_coverage(&files, &mut findings);
    rules::instant_gate(&files, &mut findings);

    let inventory = rules::unsafe_counts(&files);
    if config.update_baseline {
        fs::write(&config.baseline, render_baseline(&inventory))?;
    } else {
        let baseline = load_baseline(&config.baseline)?;
        let shown = config
            .baseline
            .strip_prefix(&config.root)
            .unwrap_or(&config.baseline)
            .to_string_lossy()
            .replace('\\', "/");
        rules::unsafe_inventory(&inventory, &baseline, &shown, &mut findings);
    }

    findings.sort_by(|a, b| (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id())));
    Ok(Report { findings, files_scanned: files.len(), inventory })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(()); // optional scan root (e.g. crates/core/tests)
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile { path: rel, lex: lexer::lex(&src) });
        }
    }
    Ok(())
}

/// Baseline format: `# comment` lines, then `path count` per line,
/// sorted by path.
pub fn render_baseline(inventory: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# nob-lint unsafe inventory baseline (rule NL004).\n\
         # One `path count` line per file with non-test `unsafe` occurrences.\n\
         # Regenerate after an intentional change with:\n\
         #   cargo run --release -p nob-lint -- --update-baseline\n",
    );
    for (path, n) in inventory {
        s.push_str(&format!("{path} {n}\n"));
    }
    s
}

fn load_baseline(path: &Path) -> io::Result<BTreeMap<String, usize>> {
    let mut map = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        // Missing baseline = empty baseline: every unsafe occurrence is
        // "new surface" until one is checked in.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, n)) = line.rsplit_once(' ') {
            if let Ok(n) = n.parse::<usize>() {
                map.insert(path.trim().to_string(), n);
            }
        }
    }
    Ok(map)
}
