//! A minimal comment/string/attribute-aware scanner for Rust source.
//!
//! Not a parser: it classifies every character of a file as CODE, COMMENT,
//! or STRING and derives three per-line views, plus the line spans of
//! `#[cfg(test)]`-gated items. That is exactly the power the lint rules
//! need — token presence/absence with justification comments nearby — and
//! exactly what the old awk/grep tier-1 gates lacked (they matched inside
//! strings and doc comments, and stopped at a file's *first*
//! `#[cfg(test)]` line, truncating the scan instead of skipping the
//! module).
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`), string literals with escapes, raw and byte strings
//! (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`), char literals vs lifetimes
//! (`'a'` vs `'a`), and multi-item / nested `#[cfg(test)]` regions found
//! by brace matching rather than first-occurrence truncation.

/// The classified views of one source file.
pub struct Lexed {
    /// Source lines with comment text and string/char-literal contents
    /// blanked to spaces (delimiters included). Token searches run here.
    pub code: Vec<String>,
    /// Per-line comment text (line, block, and doc comments), delimiters
    /// stripped. Justification markers (`allow-panic:`, `SAFETY:`, …) are
    /// looked up here, so a marker inside a string cannot satisfy a rule.
    pub comments: Vec<String>,
    /// Per-line string-literal contents. Site-string searches in test
    /// files run here (`"shard:prepare"` in a chaos test is a string).
    pub strings: Vec<String>,
    /// `test[i]` is true when line `i` belongs to a `#[cfg(test)]`-gated
    /// item (the attribute line through the item's closing brace).
    pub test: Vec<bool>,
}

enum State {
    Code,
    LineComment,
    /// Nesting depth.
    BlockComment(u32),
    /// Ordinary or byte string; escapes active.
    Str,
    /// Raw (byte) string terminated by `"` followed by N hashes.
    RawStr(u32),
}

/// Where the next character of each class lands.
struct Sink {
    code: Vec<String>,
    comments: Vec<String>,
    strings: Vec<String>,
}

impl Sink {
    fn new() -> Self {
        Sink { code: vec![String::new()], comments: vec![String::new()], strings: vec![String::new()] }
    }

    fn newline(&mut self) {
        self.code.push(String::new());
        self.comments.push(String::new());
        self.strings.push(String::new());
    }

    fn put_code(&mut self, c: char) {
        self.code.last_mut().expect("sink always holds one line").push(c);
        self.comments.last_mut().expect("sink always holds one line").push(' ');
        self.strings.last_mut().expect("sink always holds one line").push(' ');
    }

    fn put_comment(&mut self, c: char) {
        self.code.last_mut().expect("sink always holds one line").push(' ');
        self.comments.last_mut().expect("sink always holds one line").push(c);
        self.strings.last_mut().expect("sink always holds one line").push(' ');
    }

    fn put_string(&mut self, c: char) {
        self.code.last_mut().expect("sink always holds one line").push(' ');
        self.comments.last_mut().expect("sink always holds one line").push(' ');
        self.strings.last_mut().expect("sink always holds one line").push(c);
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Classifies `src` into per-line code/comment/string views and marks
/// `#[cfg(test)]` item spans.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut sink = Sink::new();
    let mut state = State::Code;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; every other state
            // (block comment, string) carries across it.
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            sink.newline();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    sink.put_comment(' ');
                    sink.put_comment(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    sink.put_comment(' ');
                    sink.put_comment(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    sink.put_string(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident(chars[i - 1]))
                    && raw_or_byte_prefix(&chars, i).is_some()
                {
                    let (consumed, raw_hashes) =
                        raw_or_byte_prefix(&chars, i).expect("checked by the guard above");
                    for _ in 0..consumed {
                        sink.put_string(' ');
                    }
                    i += consumed;
                    state = match raw_hashes {
                        Some(h) => State::RawStr(h),
                        None => State::Str,
                    };
                } else if c == '\'' {
                    if let Some(len) = char_literal_len(&chars, i) {
                        for _ in 0..len {
                            sink.put_string(' ');
                        }
                        i += len;
                    } else {
                        // Lifetime: the quote and its ident are code.
                        sink.put_code(c);
                        i += 1;
                    }
                } else {
                    sink.put_code(c);
                    i += 1;
                }
            }
            State::LineComment => {
                sink.put_comment(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    sink.put_comment(' ');
                    sink.put_comment(' ');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    sink.put_comment(' ');
                    sink.put_comment(' ');
                    i += 2;
                } else {
                    sink.put_comment(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    sink.put_string(' ');
                    if let Some(&esc) = chars.get(i + 1) {
                        if esc != '\n' {
                            sink.put_string(' ');
                        } else {
                            sink.newline();
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    sink.put_string(' ');
                    state = State::Code;
                    i += 1;
                } else {
                    sink.put_string(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..(1 + hashes as usize) {
                        sink.put_string(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    sink.put_string(c);
                    i += 1;
                }
            }
        }
    }

    let test = test_spans(&sink.code);
    Lexed { code: sink.code, comments: sink.comments, strings: sink.strings, test }
}

/// If `chars[i..]` starts a raw/byte string prefix (`r"`, `r#…#"`, `b"`,
/// `br"`, `br#…#"`), returns `(prefix_len_including_quote, raw_hashes)`
/// where `raw_hashes` is `None` for the escapable `b"…"` form.
fn raw_or_byte_prefix(chars: &[char], i: usize) -> Option<(usize, Option<u32>)> {
    let mut j = i;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0u32;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, raw.then_some(hashes)))
    } else {
        None
    }
}

/// Whether the `"` at `chars[i]` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If `chars[i] == '\''` begins a char literal (not a lifetime), returns
/// its total length including both quotes.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: scan to the closing quote within a short window
            // (`'\u{10FFFF}'` is the longest form).
            let mut j = i + 2;
            let limit = (i + 12).min(chars.len());
            while j < limit {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        _ => {
            // `'x'` is a literal; `'x` (no closing quote) is a lifetime.
            (chars.get(i + 2) == Some(&'\'')).then_some(3)
        }
    }
}

/// Marks the line span of every `#[cfg(test)]`-gated item by brace
/// matching from the attribute, so a file may hold any number of test
/// modules anywhere, and code after them is still scanned.
fn test_spans(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    for start in 0..code.len() {
        if test[start] || !is_cfg_test_attr(&code[start]) {
            continue;
        }
        // Find the gated item's body: the first `{` (brace-match to its
        // close) or terminating `;` after the attribute. Later attributes
        // and the item header are scanned through transparently.
        let col0 = code[start].chars().collect::<Vec<_>>().windows(2).position(|w| w == ['#', '[']).unwrap_or(0);
        let mut depth = 0usize;
        let mut end = start;
        'scan: for (li, line) in code.iter().enumerate().skip(start) {
            let from = if li == start { col0 } else { 0 };
            for ch in line.chars().skip(from) {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = li;
                            break 'scan;
                        }
                    }
                    ';' if depth == 0 => {
                        end = li;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = li;
        }
        for t in test.iter_mut().take(end + 1).skip(start) {
            *t = true;
        }
    }
    test
}

/// Whether a code line carries a `#[cfg(test)]` (or `#![cfg(test)]`)
/// attribute. Runs on the blanked code view, so the phrase inside a
/// comment or string does not count.
fn is_cfg_test_attr(code_line: &str) -> bool {
    if !code_line.contains("#[") && !code_line.contains("#![") {
        return false;
    }
    let squashed: String = code_line.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("cfg(test)")
}
