//! D-BSP machine presets.
//!
//! The D-BSP parameter vectors describing concrete point-to-point topologies,
//! in the forms used by the D-BSP literature the paper builds on (de la
//! Torre–Kruskal; Bilardi–Pietracaprina–Pucci). An `i`-cluster of a
//! D-BSP(p, g, ℓ) holds `p/2^i` processors; for a network of diameter-type
//! exponent `1/d` (a d-dimensional array), a cluster of `q` processors routes
//! an h-relation in `Θ(h·q^{1/d} + q^{1/d})` time, giving
//! `g_i = Θ((p/2^i)^{1/d})` and `ℓ_i = Θ((p/2^i)^{1/d})`. For a hypercube,
//! `g_i = Θ(1)` and `ℓ_i = Θ(log(p/2^i))`.
//!
//! All presets satisfy the monotonicity assumptions of Thm. 3.4
//! (non-increasing `g_i` and `ℓ_i/g_i`); `nob-networks` grounds the mesh and
//! hypercube presets empirically.

use crate::model::DbspMachine;

/// Uniform (flat) BSP: `g_i = g`, `ℓ_i = ℓ` at every level. With `g = 1`,
/// `ℓ = σ` this is exactly the evaluation model `M(p, σ)`.
pub fn uniform(p: usize, g: f64, ell: f64) -> DbspMachine {
    let len = (p.trailing_zeros().max(1)) as usize;
    DbspMachine::new(p, vec![g; len], vec![ell; len])
        .expect("uniform preset parameters are valid")
        .named(format!("uniform(g={g},l={ell})"))
}

/// The evaluation model `M(p, σ)` seen as a D-BSP: `g_i = 1`, `ℓ_i = σ`.
pub fn evaluation(p: usize, sigma: f64) -> DbspMachine {
    uniform(p, 1.0, sigma).named(format!("M(p={p},sigma={sigma})"))
}

/// d-dimensional array/torus of `p` processors:
/// `g_i = max(1, (p/2^i)^{1/d})`, `ℓ_i = max(1, (p/2^i)^{1/d})·ell_scale`.
pub fn mesh(p: usize, d: u32, ell_scale: f64) -> DbspMachine {
    let len = (p.trailing_zeros().max(1)) as usize;
    let mut g = Vec::with_capacity(len);
    let mut ell = Vec::with_capacity(len);
    for i in 0..len {
        let cluster = (p >> i) as f64;
        let side = cluster.powf(1.0 / d as f64).max(1.0);
        g.push(side);
        ell.push(side * ell_scale);
    }
    DbspMachine::new(p, g, ell)
        .expect("mesh preset parameters are valid")
        .named(format!("mesh{d}d(p={p})"))
}

/// Linear array (1D mesh): `g_i = ℓ_i = p/2^i`.
pub fn linear_array(p: usize) -> DbspMachine {
    mesh(p, 1, 1.0).named(format!("array(p={p})"))
}

/// 2D mesh: `g_i = ℓ_i = √(p/2^i)`.
pub fn mesh2d(p: usize) -> DbspMachine {
    mesh(p, 2, 1.0).named(format!("mesh2d(p={p})"))
}

/// 3D mesh: `g_i = ℓ_i = (p/2^i)^{1/3}`.
pub fn mesh3d(p: usize) -> DbspMachine {
    mesh(p, 3, 1.0).named(format!("mesh3d(p={p})"))
}

/// Hypercube (multiport): constant bandwidth per level, logarithmic latency:
/// `g_i = 1`, `ℓ_i = max(1, log2(p/2^i))`.
pub fn hypercube(p: usize) -> DbspMachine {
    let len = (p.trailing_zeros().max(1)) as usize;
    let log_p = p.trailing_zeros() as usize;
    let g = vec![1.0; len];
    let ell = (0..len).map(|i| ((log_p - i) as f64).max(1.0)).collect();
    DbspMachine::new(p, g, ell)
        .expect("hypercube preset parameters are valid")
        .named(format!("hypercube(p={p})"))
}

/// Fat-tree with capacity exponent `a ∈ (0, 1]`: `g_i = (p/2^i)^a`,
/// `ℓ_i = g_i·log2(p/2^i)` (pin-limited area-universal interconnect).
pub fn fat_tree(p: usize, a: f64) -> DbspMachine {
    let len = (p.trailing_zeros().max(1)) as usize;
    let log_p = p.trailing_zeros() as usize;
    let mut g = Vec::with_capacity(len);
    let mut ell = Vec::with_capacity(len);
    for i in 0..len {
        let cluster = (p >> i) as f64;
        let gi = cluster.powf(a).max(1.0);
        g.push(gi);
        ell.push(gi * ((log_p - i) as f64).max(1.0));
    }
    DbspMachine::new(p, g, ell)
        .expect("fat-tree preset parameters are valid")
        .named(format!("fattree(p={p},a={a})"))
}

/// The standard suite of presets used by the experiment harnesses.
pub fn standard_suite(p: usize) -> Vec<DbspMachine> {
    vec![
        evaluation(p, 0.0),
        uniform(p, 1.0, 16.0),
        linear_array(p),
        mesh2d(p),
        mesh3d(p),
        hypercube(p),
        fat_tree(p, 0.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_monotone() {
        for p in [2usize, 8, 64, 1024] {
            for m in standard_suite(p) {
                assert!(m.is_monotone(), "{} not monotone: g={:?} l={:?}", m.name, m.g, m.ell);
                assert_eq!(m.p, p);
            }
        }
    }

    #[test]
    fn mesh2d_parameters() {
        let m = mesh2d(64);
        assert_eq!(m.g[0], 8.0); // √64
        assert!((m.g[3] - 8.0f64.sqrt()).abs() < 1e-9); // (64/8)^{1/2}
        assert_eq!(m.ell, m.g);
    }

    #[test]
    fn hypercube_latency_decreases_by_level() {
        let m = hypercube(256);
        assert_eq!(m.ell[0], 8.0);
        assert_eq!(m.ell[7], 1.0);
        assert!(m.g.iter().all(|&g| g == 1.0));
    }

    #[test]
    fn evaluation_preset_matches_eq1() {
        use crate::metrics::{CommTrace, SuperstepRecord};
        let mut t = CommTrace::new(8, 8);
        let msgs: Vec<(usize, usize)> = (0..4).map(|k| (k, k + 4)).collect();
        t.steps.push(SuperstepRecord::from_messages(0, 3, msgs));
        let sigma = 7.0;
        let m = evaluation(8, sigma);
        assert_eq!(t.comm_time(&m), t.comm_complexity(8, sigma));
    }
}
