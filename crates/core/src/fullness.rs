//! (γ, p)-fullness (Definition 5.2).
//!
//! A static network-oblivious algorithm on `M(v(n))` is *(γ, p)-full* if for
//! every `1 ≤ j ≤ log p`
//!
//! ```text
//! Σ_{i<j} F^i(n, 2^j)  ≥  γ · (p / 2^j) · Σ_{i<j} S^i(n).
//! ```
//!
//! Fullness is strictly weaker than wiseness (the single-sender pattern that
//! is only (Θ(1/p), p)-wise is (Θ(1), p)-full provided it sends enough
//! messages); it suffices for the Section-5 optimality transfer (Thm. 5.3)
//! when algorithms are executed with the ascend–descend protocol.

use crate::metrics::CommTrace;

/// The outcome of a fullness measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fullness {
    /// Largest `γ` for which the trace is (γ, p)-full (`f64::INFINITY` when
    /// the algorithm executes no superstep with label `< log p`).
    pub gamma: f64,
    /// The fold `2^j` at which the constraint binds, if any.
    pub binding_fold: Option<usize>,
    /// The `p` the measurement was taken against.
    pub p: usize,
}

/// Computes the largest `γ` such that the trace is (γ, p)-full.
///
/// # Panics
/// Panics if `p` is not a power of two in `[2, v]`.
pub fn gamma_max(trace: &CommTrace, p: usize) -> Fullness {
    let s_all = trace.s_counts();
    let log_p = crate::model::log2_exact(p);
    let mut gamma = f64::INFINITY;
    let mut binding = None;
    for j in 1..=log_p {
        let lhs: u64 = trace.fold(1usize << j).f.iter().sum();
        let rhs: u64 = s_all[..j as usize].iter().sum();
        if rhs == 0 {
            continue;
        }
        let ratio = (lhs as f64) * (1u64 << j) as f64 / (p as f64 * rhs as f64);
        if ratio < gamma {
            gamma = ratio;
            binding = Some(1usize << j);
        }
    }
    Fullness { gamma, binding_fold: binding, p }
}

/// Checks Definition 5.2 directly for a given `γ`.
pub fn is_full(trace: &CommTrace, gamma: f64, p: usize) -> bool {
    gamma_max(trace, p).gamma >= gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SuperstepRecord;

    fn unbalanced_trace(log_v: u32, n: u64) -> CommTrace {
        let v = 1usize << log_v;
        let mut t = CommTrace::new(v, n as usize);
        t.steps
            .push(SuperstepRecord::from_counted_edges(0, log_v, &[(0, v / 2, n)]));
        t
    }

    #[test]
    fn single_sender_is_full_but_not_wise() {
        // Section 5's motivating example: one 0-superstep, VP0 sends n = v
        // messages to VP_{v/2}. F^0(n, 2^j) = n, S^0 = 1, so
        // γ = min_j 2^j·n/(p·1) = 2n/p = 2 when n = p = v.
        let t = unbalanced_trace(4, 16);
        let f = gamma_max(&t, 16);
        assert!((f.gamma - 2.0).abs() < 1e-12, "gamma = {}", f.gamma);
        // ...while wiseness degrades to 2/p:
        let w = crate::wiseness::alpha_max(&t, 16);
        assert!(w.alpha < 0.2);
    }

    #[test]
    fn empty_supersteps_hurt_fullness() {
        // A trace with one message-bearing 0-superstep and many silent ones.
        let v = 8usize;
        let mut t = CommTrace::new(v, v);
        t.steps
            .push(SuperstepRecord::from_counted_edges(0, 3, &[(0, 4, 4)]));
        for _ in 0..7 {
            t.steps.push(SuperstepRecord::from_counted_edges(0, 3, &[]));
        }
        // Σ S^i = 8, F at fold 2 is 4: γ = min_j 2^j·F_j/(8·8): j=1 gives 8/64 = 1/8... actually
        // lhs at j=1 is 4: 2·4/(8·8) = 1/8.
        let f = gamma_max(&t, 8);
        assert!((f.gamma - 0.125).abs() < 1e-12, "gamma = {}", f.gamma);
        assert!(is_full(&t, 0.1, 8));
        assert!(!is_full(&t, 0.2, 8));
    }
}
