//! Phase-level telemetry: zero-cost spans, counters, and run reports.
//!
//! The engine's communication metrics ([`crate::metrics`]) are analytic —
//! they count messages and degrees the paper's cost model talks about. This
//! module adds the *time* axis: where a run's wall-clock actually goes, per
//! executor phase and per worker, plus the serving-layer counters (queue
//! wait, plan-cache behavior, pool reuse) that the `JobServer` exports.
//!
//! The design discipline mirrors [`crate::fault`]:
//!
//! * **Addressing is static.** Every instrumented phase is a variant of the
//!   [`Site`] enum; recording indexes a flat per-worker slot array — no
//!   hashing, no locks, no allocation on the hot path.
//! * **Arming is an `Option`.** Executors thread an
//!   `Option<Arc<TelemetrySink>>` through their run options; a disarmed run
//!   pays one discriminant test per phase and never calls
//!   `Instant::now()` — the same zero-cost rule the fault framework obeys,
//!   pinned by the same counting-allocator tests and bench guard.
//! * **Slots are pre-sized.** [`TelemetrySink::for_workers`] allocates every
//!   slot up front, so armed steady-state recording is allocation-free too.
//!   Recording against a worker index beyond the sink's size is silently
//!   dropped (bounds-checked), never a panic.
//!
//! Counters use relaxed atomics: totals are exact because every increment
//! lands, but a snapshot taken while a run is in flight is a racy read —
//! take reports after the run (or job) completes.
//!
//! Reports serialize to a stable, hand-rolled JSON schema tagged
//! `nob-telemetry-v1` (see [`RunReport::to_json`] and
//! [`ServerReport::to_json`]) so shell tooling can validate them with `jq`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// An instrumented phase of one of the executors. Variant order is the slot
/// index; names (see [`Site::name`]) reuse the fault-site vocabulary where a
/// failpoint exists at the same boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Serial engine: one planned superstep (compile-time routed).
    SerialPlanned,
    /// Serial engine: one dynamic superstep's VP execution sweep.
    SerialExec,
    /// Serial engine: plan capture over a program's trace run.
    SerialCapture,
    /// Sharded executor: per-worker planned-path sizing (route enumeration
    /// or cached-total application).
    ShardPrepare,
    /// Sharded executor: dynamic-tier VP execution chunk.
    ShardExec,
    /// Sharded executor: planned-tier VP execution chunk.
    ShardExecPlanned,
    /// Sharded executor: zero-barrier fused planned step.
    ShardFusedExec,
    /// Sharded executor: planned-tier post-barrier commit.
    ShardCommit,
    /// Sharded executor: dynamic-tier mailbox flush.
    ShardFlush,
    /// Sharded executor: dynamic-tier gather of inbound messages.
    ShardGather,
    /// Coordinator: per-superstep epoch merge.
    ShardMerge,
    /// Sharded executor: time spent blocked in the gang barrier.
    ShardBarrierWait,
}

impl Site {
    /// Number of instrumented sites (the slot-array length).
    pub const COUNT: usize = 12;

    /// Every site, in slot order — iterate this to build a full report.
    pub const ALL: [Site; Site::COUNT] = [
        Site::SerialPlanned,
        Site::SerialExec,
        Site::SerialCapture,
        Site::ShardPrepare,
        Site::ShardExec,
        Site::ShardExecPlanned,
        Site::ShardFusedExec,
        Site::ShardCommit,
        Site::ShardFlush,
        Site::ShardGather,
        Site::ShardMerge,
        Site::ShardBarrierWait,
    ];

    /// The site's stable name, matching the fault-site string where one
    /// instruments the same phase boundary.
    pub fn name(self) -> &'static str {
        match self {
            Site::SerialPlanned => "serial:planned",
            Site::SerialExec => "serial:exec",
            Site::SerialCapture => "serial:capture",
            Site::ShardPrepare => "shard:prepare",
            Site::ShardExec => "shard:exec",
            Site::ShardExecPlanned => "shard:exec_planned",
            Site::ShardFusedExec => "shard:fused_exec",
            Site::ShardCommit => "shard:commit",
            Site::ShardFlush => "shard:flush",
            Site::ShardGather => "shard:gather",
            Site::ShardMerge => "shard:merge",
            Site::ShardBarrierWait => "shard:barrier_wait",
        }
    }

    /// The site's slot index (its variant order).
    pub fn index(self) -> usize {
        self as usize
    }

    fn from_index(i: usize) -> Option<Site> {
        Site::ALL.get(i).copied()
    }
}

/// A serving-layer counter slot. Variant order is the slot index; the
/// [`ServerReport`] snapshot names each one in its JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Jobs popped from the admission queue (dispatched to either path).
    Jobs,
    /// Total nanoseconds jobs spent queued before dispatch.
    QueueWaitNanos,
    /// Total nanoseconds jobs spent in service (dispatch to fulfillment).
    ServiceNanos,
    /// Total nanoseconds spent handing a job's shared view to the gang.
    DispatchNanos,
    /// Gang dispatches performed.
    DispatchCount,
    /// Total nanoseconds spent resetting pooled gang state between jobs.
    EpochResetNanos,
    /// Gang epoch resets performed.
    EpochResetCount,
    /// Admission-queue overtakes (a small job jumped a large head).
    Overtakes,
    /// Plan-cache hits.
    CacheHits,
    /// Plan-cache misses (cold builds).
    CacheMisses,
    /// Plan-cache evictions (LRU-by-bytes budget pressure).
    CacheEvictions,
    /// Gauge: compiled bytes currently resident in the plan cache.
    CacheBytes,
    /// Gauge: the widest single worker's double-buffered mailbox-arena
    /// footprint seen so far, in slab bytes (a high-water mark recorded
    /// via [`TelemetrySink::set_max`] as each worker retires a run).
    ArenaBytes,
    /// Worker kits reused from the pool instead of freshly allocated.
    PoolReuses,
    /// Jobs routed to the scheduler's serial path.
    SerialJobs,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 15;

    /// The counter's slot index (its variant order).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One worker's flat telemetry slots. All interior-mutable so the sink can
/// be shared as `Arc<TelemetrySink>` across a gang.
#[derive(Debug)]
struct WorkerSlots {
    nanos: [AtomicU64; Site::COUNT],
    count: [AtomicU64; Site::COUNT],
    /// Last phase this worker *entered* (site index + 1; 0 = none yet).
    last_site: AtomicU64,
    /// Superstep of the last phase entry.
    last_superstep: AtomicU64,
    /// Last barrier round this worker arrived at (round + 1; 0 = never).
    arrived_round: AtomicU64,
}

fn zero_slots<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

impl WorkerSlots {
    fn new() -> Self {
        WorkerSlots {
            nanos: zero_slots(),
            count: zero_slots(),
            last_site: AtomicU64::new(0),
            last_superstep: AtomicU64::new(0),
            arrived_round: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for a in self.nanos.iter().chain(self.count.iter()) {
            a.store(0, Ordering::Relaxed);
        }
        self.last_site.store(0, Ordering::Relaxed);
        self.last_superstep.store(0, Ordering::Relaxed);
        self.arrived_round.store(0, Ordering::Relaxed);
    }
}

/// The phase-level telemetry recorder: per-worker span slots plus a block
/// of serving-layer counters. See the module docs for the arming model and
/// the zero-cost rule.
#[derive(Debug)]
pub struct TelemetrySink {
    workers: Vec<WorkerSlots>,
    counters: [AtomicU64; Counter::COUNT],
}

impl Default for TelemetrySink {
    fn default() -> Self {
        TelemetrySink::for_workers(1)
    }
}

impl TelemetrySink {
    /// A sink with every slot pre-sized for `n` workers, so armed
    /// steady-state recording allocates nothing. Size it for the widest
    /// gang that will record into it (recording beyond the size is
    /// dropped, not grown).
    pub fn for_workers(n: usize) -> Self {
        TelemetrySink {
            workers: (0..n.max(1)).map(|_| WorkerSlots::new()).collect(),
            counters: zero_slots(),
        }
    }

    /// Number of worker slot rows.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stamps the phase a worker is *entering* (for stall attribution:
    /// see [`TelemetrySink::last_phase`]). Allocation-free.
    pub fn enter(&self, worker: usize, site: Site, superstep: usize) {
        if let Some(w) = self.workers.get(worker) {
            w.last_site.store(site.index() as u64 + 1, Ordering::Relaxed);
            w.last_superstep.store(superstep as u64, Ordering::Relaxed);
        }
    }

    /// Adds one completed span at a site for a worker. Allocation-free.
    pub fn record(&self, worker: usize, site: Site, dur: Duration) {
        if let Some(w) = self.workers.get(worker) {
            w.nanos[site.index()].fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
            w.count[site.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stamps a worker's arrival at barrier round `round` (1-based), so a
    /// stall report can tell arrived workers from missing ones.
    pub fn arrive(&self, worker: usize, round: u64) {
        if let Some(w) = self.workers.get(worker) {
            w.arrived_round.store(round.wrapping_add(1), Ordering::Relaxed);
        }
    }

    /// Adds `delta` to a serving-layer counter.
    pub fn add(&self, c: Counter, delta: u64) {
        self.counters[c.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets a serving-layer counter (for gauges like
    /// [`Counter::CacheBytes`]).
    pub fn set(&self, c: Counter, value: u64) {
        self.counters[c.index()].store(value, Ordering::Relaxed);
    }

    /// Raises a gauge to `value` if it is below it (high-water marks like
    /// [`Counter::ArenaBytes`], where concurrent workers race to record
    /// and only the maximum is meaningful).
    pub fn set_max(&self, c: Counter, value: u64) {
        self.counters[c.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Reads a serving-layer counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// The last phase a worker entered and at which superstep, or `None`
    /// if it never entered one (or the index is out of range).
    pub fn last_phase(&self, worker: usize) -> Option<(Site, u64)> {
        let w = self.workers.get(worker)?;
        let tag = w.last_site.load(Ordering::Relaxed);
        let site = Site::from_index(tag.checked_sub(1)? as usize)?;
        Some((site, w.last_superstep.load(Ordering::Relaxed)))
    }

    /// The last barrier round (1-based) a worker arrived at, or `None` if
    /// it never arrived at one.
    pub fn arrived_round(&self, worker: usize) -> Option<u64> {
        let w = self.workers.get(worker)?;
        let tag = w.arrived_round.load(Ordering::Relaxed);
        tag.checked_sub(1)
    }

    /// Total `(nanos, spans)` recorded at a site, summed across workers.
    pub fn site_totals(&self, site: Site) -> (u64, u64) {
        let i = site.index();
        let mut nanos = 0u64;
        let mut count = 0u64;
        for w in &self.workers {
            nanos += w.nanos[i].load(Ordering::Relaxed);
            count += w.count[i].load(Ordering::Relaxed);
        }
        (nanos, count)
    }

    /// Zeroes every slot and counter so the sink can observe a fresh run.
    pub fn reset(&self) {
        for w in &self.workers {
            w.reset();
        }
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshots the per-site span totals into a [`RunReport`].
    pub fn run_report(&self) -> RunReport {
        RunReport {
            workers: self.workers.len(),
            sites: Site::ALL
                .iter()
                .map(|&s| {
                    let (nanos, count) = self.site_totals(s);
                    SiteReport { site: s.name(), nanos, count }
                })
                .collect(),
        }
    }

    /// Snapshots the serving-layer counters into a [`ServerReport`].
    pub fn server_report(&self) -> ServerReport {
        ServerReport {
            jobs: self.get(Counter::Jobs),
            queue_wait_nanos: self.get(Counter::QueueWaitNanos),
            service_nanos: self.get(Counter::ServiceNanos),
            dispatch_nanos: self.get(Counter::DispatchNanos),
            dispatch_count: self.get(Counter::DispatchCount),
            epoch_reset_nanos: self.get(Counter::EpochResetNanos),
            epoch_reset_count: self.get(Counter::EpochResetCount),
            overtakes: self.get(Counter::Overtakes),
            cache_hits: self.get(Counter::CacheHits),
            cache_misses: self.get(Counter::CacheMisses),
            cache_evictions: self.get(Counter::CacheEvictions),
            cache_bytes: self.get(Counter::CacheBytes),
            arena_bytes: self.get(Counter::ArenaBytes),
            pool_reuses: self.get(Counter::PoolReuses),
            serial_jobs: self.get(Counter::SerialJobs),
        }
    }
}

/// Aggregated span totals for one run (or a series of runs sharing a
/// sink): every [`Site`], in slot order, with nanoseconds and span count
/// summed across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Worker slot rows the sink was sized for.
    pub workers: usize,
    /// One entry per [`Site`], in [`Site::ALL`] order — always all of
    /// them, zeros included, so consumers can rely on the site list.
    pub sites: Vec<SiteReport>,
}

/// One site's aggregated totals inside a [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteReport {
    /// The site's stable name.
    pub site: &'static str,
    /// Total nanoseconds spent in the phase, across workers.
    pub nanos: u64,
    /// Number of spans recorded.
    pub count: u64,
}

impl RunReport {
    /// Total nanoseconds recorded at a named site, `0` if unknown.
    pub fn nanos(&self, site: Site) -> u64 {
        self.sites.iter().find(|s| s.site == site.name()).map_or(0, |s| s.nanos)
    }

    /// Span count recorded at a named site, `0` if unknown.
    pub fn count(&self, site: Site) -> u64 {
        self.sites.iter().find(|s| s.site == site.name()).map_or(0, |s| s.count)
    }

    /// The `nob-telemetry-v1` JSON form:
    /// `{"schema":"nob-telemetry-v1","kind":"run","workers":N,
    ///   "sites":[{"site":"serial:exec","nanos":0,"count":0},...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.sites.len() * 48);
        out.push_str("{\"schema\":\"nob-telemetry-v1\",\"kind\":\"run\",\"workers\":");
        out.push_str(&self.workers.to_string());
        out.push_str(",\"sites\":[");
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"site\":\"");
            out.push_str(s.site);
            out.push_str("\",\"nanos\":");
            out.push_str(&s.nanos.to_string());
            out.push_str(",\"count\":");
            out.push_str(&s.count.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A snapshot of the serving-layer counters (see [`Counter`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Jobs dispatched from the admission queue.
    pub jobs: u64,
    /// Total queue-wait nanoseconds across jobs.
    pub queue_wait_nanos: u64,
    /// Total service nanoseconds across jobs.
    pub service_nanos: u64,
    /// Total gang-dispatch nanoseconds.
    pub dispatch_nanos: u64,
    /// Gang dispatches.
    pub dispatch_count: u64,
    /// Total pooled-state epoch-reset nanoseconds.
    pub epoch_reset_nanos: u64,
    /// Epoch resets.
    pub epoch_reset_count: u64,
    /// Admission overtakes.
    pub overtakes: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Compiled bytes resident in the plan cache (gauge).
    pub cache_bytes: u64,
    /// Widest single worker's mailbox-arena slab bytes (high-water gauge).
    pub arena_bytes: u64,
    /// Worker-kit pool reuses.
    pub pool_reuses: u64,
    /// Serial-path jobs.
    pub serial_jobs: u64,
}

impl ServerReport {
    /// The `nob-telemetry-v1` JSON form: a flat object of the counter
    /// fields plus the schema tags.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"nob-telemetry-v1\",\"kind\":\"server\",\
             \"jobs\":{},\"queue_wait_nanos\":{},\"service_nanos\":{},\
             \"dispatch_nanos\":{},\"dispatch_count\":{},\
             \"epoch_reset_nanos\":{},\"epoch_reset_count\":{},\
             \"overtakes\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"cache_evictions\":{},\"cache_bytes\":{},\"arena_bytes\":{},\
             \"pool_reuses\":{},\"serial_jobs\":{}}}",
            self.jobs,
            self.queue_wait_nanos,
            self.service_nanos,
            self.dispatch_nanos,
            self.dispatch_count,
            self.epoch_reset_nanos,
            self.epoch_reset_count,
            self.overtakes,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_bytes,
            self.arena_bytes,
            self.pool_reuses,
            self.serial_jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report_roundtrip() {
        let sink = TelemetrySink::for_workers(2);
        sink.record(0, Site::ShardExec, Duration::from_nanos(100));
        sink.record(1, Site::ShardExec, Duration::from_nanos(50));
        sink.record(1, Site::ShardBarrierWait, Duration::from_nanos(7));
        let report = sink.run_report();
        assert_eq!(report.workers, 2);
        assert_eq!(report.sites.len(), Site::COUNT);
        assert_eq!(report.nanos(Site::ShardExec), 150);
        assert_eq!(report.count(Site::ShardExec), 2);
        assert_eq!(report.nanos(Site::ShardBarrierWait), 7);
        assert_eq!(report.nanos(Site::SerialExec), 0);
    }

    #[test]
    fn out_of_range_worker_is_dropped_not_panicked() {
        let sink = TelemetrySink::for_workers(1);
        sink.record(5, Site::ShardExec, Duration::from_nanos(9));
        sink.enter(5, Site::ShardExec, 3);
        sink.arrive(5, 1);
        assert_eq!(sink.run_report().nanos(Site::ShardExec), 0);
        assert_eq!(sink.last_phase(5), None);
        assert_eq!(sink.arrived_round(5), None);
    }

    #[test]
    fn last_phase_and_arrival_stamps() {
        let sink = TelemetrySink::for_workers(2);
        assert_eq!(sink.last_phase(0), None);
        assert_eq!(sink.arrived_round(0), None);
        sink.enter(0, Site::ShardFlush, 4);
        sink.arrive(0, 2);
        assert_eq!(sink.last_phase(0), Some((Site::ShardFlush, 4)));
        assert_eq!(sink.arrived_round(0), Some(2));
        // Round 0 arrival is distinguishable from "never arrived".
        sink.arrive(1, 0);
        assert_eq!(sink.arrived_round(1), Some(0));
    }

    #[test]
    fn counters_and_server_report() {
        let sink = TelemetrySink::for_workers(1);
        sink.add(Counter::Jobs, 3);
        sink.add(Counter::CacheHits, 2);
        sink.add(Counter::CacheMisses, 1);
        sink.set(Counter::CacheBytes, 4096);
        sink.set(Counter::CacheBytes, 2048);
        sink.set_max(Counter::ArenaBytes, 100);
        sink.set_max(Counter::ArenaBytes, 40);
        let r = sink.server_report();
        assert_eq!(r.jobs, 3);
        assert_eq!(r.cache_hits + r.cache_misses, r.jobs);
        assert_eq!(r.cache_bytes, 2048);
        assert_eq!(r.arena_bytes, 100, "high-water gauge keeps the maximum");
    }

    #[test]
    fn reset_zeroes_everything() {
        let sink = TelemetrySink::for_workers(1);
        sink.record(0, Site::SerialExec, Duration::from_nanos(10));
        sink.enter(0, Site::SerialExec, 1);
        sink.arrive(0, 3);
        sink.add(Counter::Jobs, 1);
        sink.reset();
        assert_eq!(sink.run_report().nanos(Site::SerialExec), 0);
        assert_eq!(sink.last_phase(0), None);
        assert_eq!(sink.arrived_round(0), None);
        assert_eq!(sink.server_report(), ServerReport::default());
    }

    #[test]
    fn json_schemas_are_stable() {
        let sink = TelemetrySink::for_workers(1);
        let run = sink.run_report().to_json();
        assert!(run.starts_with("{\"schema\":\"nob-telemetry-v1\",\"kind\":\"run\""));
        for s in Site::ALL {
            assert!(run.contains(s.name()), "run report lists {}", s.name());
        }
        let srv = sink.server_report().to_json();
        assert!(srv.starts_with("{\"schema\":\"nob-telemetry-v1\",\"kind\":\"server\""));
        for key in ["queue_wait_nanos", "cache_evictions", "pool_reuses"] {
            assert!(srv.contains(key), "server report has {key}");
        }
    }

    #[test]
    fn site_names_are_unique_and_index_matches_order() {
        for (i, s) in Site::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut names: Vec<_> = Site::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Site::COUNT);
    }
}
