//! Deterministic fault injection for the executors.
//!
//! A [`FaultPlan`] is a set of *arms*, each addressing an instrumented
//! failpoint by `(site, shard, superstep, occurrence)` and specifying what
//! to inject when it matches: a structured [`ModelError::FaultInjected`] or
//! a panic. Executors thread a plan through their run options and call
//! [`FaultPlan::check`] at phase boundaries; a run without a plan pays one
//! `Option` discriminant test per phase and nothing per message, so the hot
//! path stays allocation- and branch-free (pinned by the engine's counting
//! allocator tests and the tier-1 bench guard).
//!
//! # Addressing and determinism
//!
//! Sites are named by `&'static str` constants owned by the executor that
//! instruments them (e.g. `"shard:gather"`, `"serial:exec"`). An arm may
//! pin the shard and superstep exactly or wildcard either; `occurrence`
//! selects the n-th (0-based) match of the remaining coordinates. An arm
//! with exact shard *and* superstep fires at a deterministic point of the
//! execution. A wildcard arm on a multi-worker run matches in whatever
//! order the gang's shards reach the site, so only "fires at least once"
//! is deterministic — exact addressing is what the chaos suite sweeps.
//!
//! Arm hit counters are interior-mutable so a plan can be shared as
//! `Arc<FaultPlan>` across the worker gang; call [`FaultPlan::reset`]
//! before reusing a plan for a second run.

use crate::error::ModelError;
use std::sync::atomic::{AtomicU64, Ordering};

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a [`ModelError::FaultInjected`] from the instrumented phase,
    /// exercising the executor's structured error path.
    Error,
    /// Panic at the instrumented site, exercising the executor's
    /// unwind-recovery path (`catch_unwind` + gang abort).
    Panic,
}

/// One armed failpoint: fire `kind` at the `occurrence`-th match of
/// `(site, shard, superstep)`.
#[derive(Debug)]
pub struct FaultArm {
    /// The instrumented site name this arm matches.
    pub site: &'static str,
    /// Shard (worker index) to match; `None` matches every shard.
    pub shard: Option<usize>,
    /// Superstep index to match; `None` matches every superstep.
    pub superstep: Option<usize>,
    /// Fire on the n-th (0-based) match of the coordinates above.
    pub occurrence: u64,
    /// What to inject when the arm fires.
    pub kind: FaultKind,
    hits: AtomicU64,
}

impl FaultArm {
    /// Builds an arm. See the field docs for the matching semantics.
    pub fn new(
        site: &'static str,
        shard: Option<usize>,
        superstep: Option<usize>,
        occurrence: u64,
        kind: FaultKind,
    ) -> Self {
        FaultArm { site, shard, superstep, occurrence, kind, hits: AtomicU64::new(0) }
    }

    /// How many times this arm's coordinates have matched so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// A deterministic fault-injection plan: a set of [`FaultArm`]s checked by
/// the executors at their instrumented phase boundaries.
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<FaultArm>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no arms; every check passes).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arm to the plan. Plans are built before the run starts;
    /// arming requires `&mut self`, checking only `&self`.
    pub fn arm(&mut self, arm: FaultArm) -> &mut Self {
        self.arms.push(arm);
        self
    }

    /// Convenience: a single-arm plan injecting a [`ModelError`] at the
    /// first match of `(site, shard, superstep)`.
    pub fn error_at(site: &'static str, shard: usize, superstep: usize) -> Self {
        let mut plan = FaultPlan::new();
        plan.arm(FaultArm::new(site, Some(shard), Some(superstep), 0, FaultKind::Error));
        plan
    }

    /// Convenience: a single-arm plan panicking at the first match of
    /// `(site, shard, superstep)`.
    pub fn panic_at(site: &'static str, shard: usize, superstep: usize) -> Self {
        let mut plan = FaultPlan::new();
        plan.arm(FaultArm::new(site, Some(shard), Some(superstep), 0, FaultKind::Panic));
        plan
    }

    /// Evaluates every arm against an instrumented site. Called by the
    /// executors at phase boundaries with the worker's shard index and the
    /// current superstep. Fires the first matching arm whose occurrence
    /// count is reached: `FaultKind::Error` returns the structured error,
    /// `FaultKind::Panic` unwinds with a recognizable message.
    pub fn check(&self, site: &'static str, shard: usize, superstep: usize) -> Result<(), ModelError> {
        for arm in &self.arms {
            if arm.site != site {
                continue;
            }
            if arm.shard.is_some_and(|s| s != shard) {
                continue;
            }
            if arm.superstep.is_some_and(|t| t != superstep) {
                continue;
            }
            let seen = arm.hits.fetch_add(1, Ordering::Relaxed);
            if seen == arm.occurrence {
                self.fired.fetch_add(1, Ordering::Relaxed);
                match arm.kind {
                    FaultKind::Error => {
                        return Err(ModelError::FaultInjected {
                            site,
                            shard,
                            superstep,
                            occurrence: seen,
                        })
                    }
                    // allow-panic: this IS the injected fault — the panic
                    // flavor exists to traverse the executor's real unwind
                    // path.
                    FaultKind::Panic => panic!(
                        "injected panic at site `{site}` (shard {shard}, superstep {superstep})"
                    ),
                }
            }
        }
        Ok(())
    }

    /// How many arms have fired since construction or the last [`reset`].
    ///
    /// [`reset`]: FaultPlan::reset
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Zeroes all hit and fired counters so the plan can drive a fresh run.
    pub fn reset(&self) {
        self.fired.store(0, Ordering::Relaxed);
        for arm in &self.arms {
            arm.hits.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arm_fires_once_at_its_occurrence() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultArm::new("site:a", Some(1), Some(2), 1, FaultKind::Error));
        // Wrong shard / step / site: no match, no hit.
        assert_eq!(plan.check("site:a", 0, 2), Ok(()));
        assert_eq!(plan.check("site:a", 1, 0), Ok(()));
        assert_eq!(plan.check("site:b", 1, 2), Ok(()));
        // First match is occurrence 0 — arm wants occurrence 1.
        assert_eq!(plan.check("site:a", 1, 2), Ok(()));
        assert_eq!(
            plan.check("site:a", 1, 2),
            Err(ModelError::FaultInjected { site: "site:a", shard: 1, superstep: 2, occurrence: 1 })
        );
        assert_eq!(plan.fired(), 1);
        // Past its occurrence the arm stays quiet.
        assert_eq!(plan.check("site:a", 1, 2), Ok(()));
    }

    #[test]
    fn wildcards_match_any_shard_and_step() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultArm::new("site:w", None, None, 0, FaultKind::Error));
        assert!(plan.check("site:w", 7, 31).is_err());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn reset_rearms_the_plan() {
        let plan = FaultPlan::error_at("site:r", 0, 0);
        assert!(plan.check("site:r", 0, 0).is_err());
        assert_eq!(plan.check("site:r", 0, 0), Ok(()));
        plan.reset();
        assert_eq!(plan.fired(), 0);
        assert!(plan.check("site:r", 0, 0).is_err());
    }

    #[test]
    fn panic_arm_unwinds_with_the_site_name() {
        let plan = FaultPlan::panic_at("site:p", 0, 0);
        let err = std::panic::catch_unwind(|| {
            let _ = plan.check("site:p", 0, 0);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("site:p"), "payload names the site: {msg}");
    }
}
