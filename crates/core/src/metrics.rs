//! Communication metrics: per-superstep degrees, the `F^i`/`S^i` aggregates,
//! communication complexity `H` (Eq. 1) and communication time `D` (Eq. 2).
//!
//! A [`CommTrace`] is the record of one execution of a *static* algorithm on
//! the specification machine `M(v)`. Because the communication pattern of a
//! static algorithm depends only on the input size, a single trace at full
//! granularity determines the metrics of **every** folding `M(2^j)`: a message
//! `u → w` is external at fold `2^j` iff the top `j` index bits of `u` and `w`
//! differ ([`crate::folding::external_at_fold`]). Each [`SuperstepRecord`]
//! therefore stores the superstep degree `h^s(n, 2^j)` for all folds `j` at
//! once, and [`CommTrace::fold`] assembles the cumulative degrees
//! `F^i(n, 2^j)` analytically.

use crate::error::ModelError;
use crate::model::{log2_exact, DbspMachine};
use serde::{Deserialize, Serialize};

/// Metrics of a single superstep, for every folding of the machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperstepRecord {
    /// The superstep label `i` (it is an `i`-superstep).
    pub label: u32,
    /// `h_by_fold[j-1]` is the degree `h^s(n, 2^j)` of this superstep when the
    /// algorithm is folded onto `2^j` processors, for `1 ≤ j ≤ log v`:
    /// the maximum over processors of the larger of (messages sent, messages
    /// received), counting only messages that cross processor boundaries.
    pub h_by_fold: Vec<u64>,
    /// Total number of (point-to-point, constant-size) messages exchanged.
    pub total_msgs: u64,
}

impl SuperstepRecord {
    /// Builds the record of a superstep from streaming [`DegreeCounters`]
    /// filled during the engine's send phase. Equivalent to
    /// [`SuperstepRecord::from_counted_edges`] over the same message multiset
    /// (the property tests assert bit-for-bit equality), but costs `O(log v)`
    /// here because the per-fold maxima were maintained incrementally.
    pub fn from_degree_counters(label: u32, counters: &DegreeCounters) -> Self {
        SuperstepRecord {
            label,
            h_by_fold: (1..=counters.levels()).map(|j| counters.level_max(j)).collect(),
            total_msgs: counters.total(),
        }
    }

    /// Builds the record of a superstep from its message multiset, given as
    /// counted edges `(src VP, dst VP, multiplicity)`.
    ///
    /// Cost: `O(|edges| · log v + v)` time, `O(v)` scratch.
    pub fn from_counted_edges(label: u32, log_v: u32, edges: &[(usize, usize, u64)]) -> Self {
        let v = 1usize << log_v;
        let mut h_by_fold = Vec::with_capacity(log_v as usize);
        let mut out = vec![0u64; v];
        let mut inc = vec![0u64; v];
        let mut total = 0u64;
        for &(_, _, c) in edges {
            total += c;
        }
        for j in 1..=log_v {
            let shift = log_v - j;
            let procs = 1usize << j;
            out[..procs].fill(0);
            inc[..procs].fill(0);
            for &(src, dst, c) in edges {
                let ps = src >> shift;
                let pd = dst >> shift;
                if ps != pd {
                    out[ps] += c;
                    inc[pd] += c;
                }
            }
            let h = (0..procs).map(|k| out[k].max(inc[k])).max().unwrap_or(0);
            h_by_fold.push(h);
        }
        SuperstepRecord { label, h_by_fold, total_msgs: total }
    }

    /// Builds the record from unit-multiplicity messages.
    pub fn from_messages<I>(label: u32, log_v: u32, msgs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let edges: Vec<(usize, usize, u64)> = msgs.into_iter().map(|(s, d)| (s, d, 1)).collect();
        Self::from_counted_edges(label, log_v, &edges)
    }

    /// The degree `h^s(n, 2^j)` of this superstep at fold `2^j` (`1 ≤ j ≤ log v`).
    ///
    /// For `j ≤ label` the superstep is local after folding, so the degree is 0
    /// (guaranteed by the cluster constraint on messages).
    #[inline]
    pub fn h(&self, j: u32) -> u64 {
        if j == 0 {
            0
        } else {
            self.h_by_fold[(j - 1) as usize]
        }
    }
}

/// Streaming per-fold degree counters: the allocation-free replacement for
/// materializing one `(src, dst, 1)` edge per message and re-scanning the
/// edge list once per fold level.
///
/// One `DegreeCounters` instance is reused across all supersteps of a run.
/// For every fold level `j` (`1 ≤ j ≤ levels`) it maintains per-processor
/// sent/received counts plus a *running maximum* `max_k max(out_k, in_k)`;
/// since counts only grow within a superstep, the running maximum equals the
/// final maximum, so producing a [`SuperstepRecord`] costs `O(levels)` with
/// no scan. Stale counts from previous supersteps are invalidated by an
/// epoch stamp instead of zeroing, so [`DegreeCounters::begin_superstep`] is
/// `O(1)`.
///
/// Per message the work is `O(#levels at which the message is external)`:
/// the externality threshold comes from one `xor`/`leading_zeros`, and a
/// message internal at every tracked level (e.g. a VP sending to itself, or
/// a processor-internal message in a folded run) costs `O(1)`.
///
/// # Shard-local counters
///
/// The sharded executor gives every shard (a contiguous block of
/// `2^(log_v - log_shards)` VPs) a private instance built with
/// [`DegreeCounters::shard_full`] / [`DegreeCounters::shard_folded`]. The
/// tracked levels split at `split = log_shards`:
///
/// * **Fine levels** (`split < j ≤ levels`): a fold-level processor is
///   contained in exactly one shard, so its sent counter is bumped only by
///   the shard owning the source VP ([`DegreeCounters::record`] for
///   shard-internal messages, [`DegreeCounters::record_sent`] for outgoing
///   ones) and its received counter only by the shard owning the
///   destination ([`DegreeCounters::record_received`], called by the
///   receiving shard while draining its incoming lanes). Slot ownership is
///   disjoint across shards, so each shard's running maximum is exact and
///   the global maximum is the max over shards. Only the `2^(j - split)`
///   processors owned by the shard are allocated per level, keeping total
///   slot memory independent of the shard count.
/// * **Coarse levels** (`1 ≤ j ≤ split`): a fold-level processor spans
///   whole shards, so per-shard counts are partial sums — but each shard
///   maps into exactly *one* processor per coarse level, so two scalars per
///   level suffice. [`EpochMerge`] adds them up per processor and takes the
///   maximum once per superstep, replacing the per-message level walk with
///   one `O(shards · log shards)` batch at the barrier.
///
/// With `log_shards = 0` (the serial engine) every level is fine and the
/// layout is identical to the pre-shard counters.
#[derive(Debug, Clone)]
pub struct DegreeCounters {
    /// `log2 v` of the id space messages are expressed in (VP granularity).
    log_v: u32,
    /// Number of fold levels tracked: `log_v` for full-granularity runs,
    /// `log p` for folded runs.
    levels: u32,
    /// Number of coarse levels (`= log_shards`; 0 when not sharded).
    split: u32,
    /// Index of the owning shard (0 when not sharded).
    shard: usize,
    /// Whether messages internal at every tracked level count toward
    /// `total()`. Full-granularity traces count them (a self-send is still a
    /// message); folded traces only count processor-external messages,
    /// matching the paper's folding semantics.
    count_internal: bool,
    /// Flattened fine-level counters; level `j` occupies the
    /// `2^(j - split)` slots starting at `2^(j - split) - 2`, covering the
    /// processors owned by `shard` (all of them when `split = 0`).
    out_cnt: Vec<u64>,
    in_cnt: Vec<u64>,
    out_epoch: Vec<u32>,
    in_epoch: Vec<u32>,
    /// Per-shard scalars for coarse levels `1..=split`: messages external at
    /// that level sent by (resp. received by) this shard's VPs.
    out_coarse: Vec<u64>,
    in_coarse: Vec<u64>,
    /// `max_by_level[j - 1]` = running `max_k max(out_k, in_k)` at fine
    /// level `j` over the slots this instance owns (unused for coarse
    /// levels — [`EpochMerge`] computes those).
    max_by_level: Vec<u64>,
    total: u64,
    epoch: u32,
}

impl DegreeCounters {
    /// Counters for a full-granularity run on `M(2^log_v)`: all `log_v` fold
    /// levels are tracked and internal (self-send) messages count toward the
    /// total, mirroring [`SuperstepRecord::from_counted_edges`].
    pub fn full(log_v: u32) -> Self {
        Self::with_layout(log_v, log_v, 0, 0, true)
    }

    /// Counters for a folded run on `M(2^log_p)` whose messages are given at
    /// VP granularity (`2^log_v` ids): only `log_p` levels are tracked, and
    /// messages internal to a processor are not counted at all.
    pub fn folded(log_v: u32, log_p: u32) -> Self {
        Self::with_levels(log_v, log_p, false)
    }

    /// Shard-local counters for shard `shard` of `2^log_shards` in a
    /// full-granularity run (see the type docs on the fine/coarse split).
    pub fn shard_full(log_v: u32, log_shards: u32, shard: usize) -> Self {
        Self::with_layout(log_v, log_v, log_shards, shard, true)
    }

    /// Shard-local counters for shard `shard` of `2^log_shards` in a run
    /// folded onto `M(2^log_p)`; requires `log_shards ≤ log_p` (a shard
    /// never spans fold-level processors).
    pub fn shard_folded(log_v: u32, log_p: u32, log_shards: u32, shard: usize) -> Self {
        Self::with_layout(log_v, log_p, log_shards, shard, false)
    }

    fn with_levels(log_v: u32, levels: u32, count_internal: bool) -> Self {
        Self::with_layout(log_v, levels, 0, 0, count_internal)
    }

    fn with_layout(
        log_v: u32,
        levels: u32,
        split: u32,
        shard: usize,
        count_internal: bool,
    ) -> Self {
        // allow-panic: constructor contract on engine-internal wiring.
        assert!(levels <= log_v, "cannot track more fold levels than log v");
        assert!(split <= levels, "shards must not outnumber fold-level processors");
        assert!(shard < (1usize << split) || (split == 0 && shard == 0), "shard out of range");
        let slots = (1usize << (levels - split + 1)) - 2;
        DegreeCounters {
            log_v,
            levels,
            split,
            shard,
            count_internal,
            out_cnt: vec![0; slots],
            in_cnt: vec![0; slots],
            out_epoch: vec![0; slots],
            in_epoch: vec![0; slots],
            out_coarse: vec![0; split as usize],
            in_coarse: vec![0; split as usize],
            max_by_level: vec![0; levels as usize],
            total: 0,
            epoch: 0,
        }
    }

    /// Invalidates all counts in `O(1)` (epoch bump); call between
    /// supersteps.
    pub fn begin_superstep(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (after 2^32 supersteps): hard-reset the stamps so
            // stale epoch-0 counts cannot be mistaken for current ones.
            self.out_epoch.fill(u32::MAX);
            self.in_epoch.fill(u32::MAX);
            self.epoch = 1;
        }
        self.max_by_level.fill(0);
        self.out_coarse.fill(0);
        self.in_coarse.fill(0);
        self.total = 0;
    }

    /// Slot index of fine level `j` (`split < j ≤ levels`) for the global
    /// fold-level processor `p_global`, which must be owned by this shard.
    #[inline]
    fn fine_index(&self, j: u32, p_global: usize) -> usize {
        let w = j - self.split;
        ((1usize << w) - 2) + p_global - (self.shard << w)
    }

    /// Records one message `src → dst` (VP-granularity ids) whose endpoints
    /// are both owned by this instance — any message for the serial engine,
    /// shard-internal messages for the sharded one. Dummy messages are
    /// recorded exactly like payload messages — the paper's wiseness device
    /// counts them in every degree metric.
    #[inline]
    pub fn record(&mut self, src: usize, dst: usize) {
        let x = src ^ dst;
        if x == 0 {
            if self.count_internal {
                self.total += 1;
            }
            return;
        }
        // The message is external at fold 2^j iff the top j bits differ,
        // i.e. for all j > common_prefix = log_v - bitlen(x).
        let bitlen = usize::BITS - x.leading_zeros();
        let j_min = (self.log_v - bitlen) + 1;
        if j_min > self.levels {
            if self.count_internal {
                self.total += 1;
            }
            return;
        }
        debug_assert!(
            j_min > self.split,
            "record() is for shard-internal messages; use record_sent/record_received"
        );
        self.total += 1;
        for j in j_min..=self.levels {
            let shift = self.log_v - j;
            let ps = self.fine_index(j, src >> shift);
            let pd = self.fine_index(j, dst >> shift);
            let sent = Self::bump(&mut self.out_cnt, &mut self.out_epoch, ps, self.epoch);
            let recv = Self::bump(&mut self.in_cnt, &mut self.in_epoch, pd, self.epoch);
            let m = &mut self.max_by_level[(j - 1) as usize];
            *m = (*m).max(sent.max(recv));
        }
    }

    /// Records the *send side* of a message leaving this shard (`src` owned
    /// here, `dst` owned by another shard). Counts toward `total()`; the
    /// receiving shard accounts the in-side via
    /// [`DegreeCounters::record_received`].
    #[inline]
    pub fn record_sent(&mut self, src: usize, dst: usize) {
        let x = src ^ dst;
        debug_assert!(x != 0, "a cross-shard message cannot be a self-send");
        let bitlen = usize::BITS - x.leading_zeros();
        let j_min = (self.log_v - bitlen) + 1;
        debug_assert!(
            j_min <= self.split,
            "record_sent() requires a shard-external message"
        );
        self.total += 1;
        for j in j_min..=self.split {
            self.out_coarse[(j - 1) as usize] += 1;
        }
        // A shard-external message is external at every fine level.
        for j in (self.split + 1)..=self.levels {
            let shift = self.log_v - j;
            let ps = self.fine_index(j, src >> shift);
            let sent = Self::bump(&mut self.out_cnt, &mut self.out_epoch, ps, self.epoch);
            let m = &mut self.max_by_level[(j - 1) as usize];
            *m = (*m).max(sent);
        }
    }

    /// Records the *receive side* of a message arriving from another shard
    /// (`dst` owned here). Does **not** count toward `total()` — the sender
    /// already did.
    #[inline]
    pub fn record_received(&mut self, src: usize, dst: usize) {
        let x = src ^ dst;
        debug_assert!(x != 0, "a cross-shard message cannot be a self-send");
        let bitlen = usize::BITS - x.leading_zeros();
        let j_min = (self.log_v - bitlen) + 1;
        debug_assert!(
            j_min <= self.split,
            "record_received() requires a shard-external message"
        );
        for j in j_min..=self.split {
            self.in_coarse[(j - 1) as usize] += 1;
        }
        for j in (self.split + 1)..=self.levels {
            let shift = self.log_v - j;
            let pd = self.fine_index(j, dst >> shift);
            let recv = Self::bump(&mut self.in_cnt, &mut self.in_epoch, pd, self.epoch);
            let m = &mut self.max_by_level[(j - 1) as usize];
            *m = (*m).max(recv);
        }
    }

    #[inline]
    fn bump(cnt: &mut [u64], epoch: &mut [u32], idx: usize, cur: u32) -> u64 {
        if epoch[idx] != cur {
            epoch[idx] = cur;
            cnt[idx] = 0;
        }
        cnt[idx] += 1;
        cnt[idx]
    }

    /// Number of tracked fold levels.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The superstep degree `h^s` at fold `2^j` so far (`1 ≤ j ≤ levels`).
    /// For shard-local counters this is only exact at fine levels
    /// (`j > log_shards`); coarse levels are assembled by [`EpochMerge`].
    #[inline]
    pub fn level_max(&self, j: u32) -> u64 {
        debug_assert!(j > self.split, "coarse levels are only exact after an EpochMerge");
        self.max_by_level[(j - 1) as usize]
    }

    /// Messages recorded this superstep (per the `count_internal` policy).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Precomputed metrics of one *oblivious* superstep: the analytic record of
/// a message multiset that is a static function of the VP index.
///
/// Communication-plan layers compile these once per program — streaming the
/// declared route through the same [`DegreeCounters`] the engine would use
/// at run time, so the stored values are **bit-for-bit identical** to what
/// the streamed counters would produce for the same multiset (dummy
/// messages included) — and then emit a superstep record in `O(log v)` per
/// run via [`TraceBuilder::push_precomputed`], instead of paying the
/// per-message `O(log v)` counter walk on every execution.
///
/// One instance serves **every** granularity at once: a folded run on
/// `M(2^L)` reads the first `L` degree levels (identical, level by level,
/// to what folded counters would have accumulated) and the
/// externality-prefix total `ext(L)` (folded traces count only messages
/// external at fold `2^L`, exactly the `count_internal = false` policy of
/// [`DegreeCounters::folded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepMetrics {
    /// Fold levels covered (`log v` of the machine the step was declared on).
    levels: u32,
    /// `h_by_fold[j-1]` = superstep degree at fold `2^j`, `1 ≤ j ≤ levels`.
    h_by_fold: Vec<u64>,
    /// `ext_prefix[j-1]` = number of declared messages external at fold
    /// `2^j` (monotone non-decreasing in `j`).
    ext_prefix: Vec<u64>,
    /// All declared messages, internal ones (self-sends) included.
    total: u64,
}

/// Streaming accumulator for [`StepMetrics`]: feed every declared message
/// once (in any order), then [`StepMetricsBuilder::finish`].
#[derive(Debug)]
pub struct StepMetricsBuilder {
    counters: DegreeCounters,
    ext_hist: Vec<u64>,
    total: u64,
}

impl StepMetricsBuilder {
    /// An accumulator for a machine of `2^log_v` VPs (`log_v ≥ 1`).
    pub fn new(log_v: u32) -> Self {
        let mut counters = DegreeCounters::full(log_v);
        counters.begin_superstep();
        StepMetricsBuilder { counters, ext_hist: vec![0; log_v as usize], total: 0 }
    }

    /// Records one declared message `src → dst` (data or dummy — the degree
    /// metrics never distinguish them).
    #[inline]
    pub fn record(&mut self, src: usize, dst: usize) {
        self.counters.record(src, dst);
        self.total += 1;
        let x = src ^ dst;
        if x != 0 {
            // External at every fold 2^j with j ≥ j_min (same threshold
            // arithmetic as DegreeCounters::record).
            let bitlen = usize::BITS - x.leading_zeros();
            let j_min = (self.counters.log_v - bitlen) + 1;
            self.ext_hist[(j_min - 1) as usize] += 1;
        }
    }

    /// Seals the accumulated multiset into immutable [`StepMetrics`].
    pub fn finish(self) -> StepMetrics {
        let levels = self.counters.levels();
        let h_by_fold = (1..=levels).map(|j| self.counters.level_max(j)).collect();
        let mut ext_prefix = self.ext_hist;
        for j in 1..ext_prefix.len() {
            ext_prefix[j] += ext_prefix[j - 1];
        }
        StepMetrics { levels, h_by_fold, ext_prefix, total: self.total }
    }
}

impl StepMetrics {
    /// Fold levels covered.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The degree vector for a trace of granularity `2^levels`
    /// (`1 ≤ levels ≤ self.levels()`): `h(2^1) … h(2^levels)`.
    #[inline]
    pub fn h_prefix(&self, levels: u32) -> &[u64] {
        &self.h_by_fold[..levels as usize]
    }

    /// The message total a trace at granularity `2^levels` records for this
    /// superstep: every message when `count_internal` (full-granularity
    /// traces), otherwise only messages external at fold `2^levels` (folded
    /// traces, cf. [`DegreeCounters::folded`]).
    #[inline]
    pub fn total_at(&self, levels: u32, count_internal: bool) -> u64 {
        if count_internal {
            self.total
        } else {
            self.ext_prefix[(levels - 1) as usize]
        }
    }
}

/// Combines the shard-local [`DegreeCounters`] of one superstep into the
/// global per-fold degrees — the barrier-time half of the sharded metric
/// pipeline for *dynamic* supersteps. Planned (oblivious) supersteps never
/// merge at all: their record is the plan's precomputed [`StepMetrics`],
/// pushed by the coordinator via [`TraceBuilder::push_precomputed`] during
/// its own exec phase — overlapped with the other workers' execution, with
/// no merge barrier behind it.
///
/// Fine-level maxima are exact per shard (disjoint slot ownership), so the
/// merge is a plain `max` per level. Coarse levels are reassembled from the
/// per-shard scalars: shard `w` maps into processor `w >> (log_shards - j)`
/// at level `j`, its scalars are added there, and the processor maximum is
/// taken once in [`EpochMerge::finish`]. One instance is allocated per run
/// and reused across supersteps (allocation-free in steady state).
#[derive(Debug)]
pub struct EpochMerge {
    levels: u32,
    split: u32,
    /// Flattened coarse sums; level `j` occupies `2^j` slots at `2^j - 2`.
    out_sum: Vec<u64>,
    in_sum: Vec<u64>,
    max_by_level: Vec<u64>,
    total: u64,
}

impl EpochMerge {
    /// A merger for `2^log_shards` shards tracking `levels` fold levels.
    pub fn new(levels: u32, log_shards: u32) -> Self {
        // allow-panic: constructor contract on engine-internal wiring.
        assert!(log_shards <= levels, "shards must not outnumber fold-level processors");
        let coarse_slots = (1usize << (log_shards + 1)) - 2;
        EpochMerge {
            levels,
            split: log_shards,
            out_sum: vec![0; coarse_slots],
            in_sum: vec![0; coarse_slots],
            max_by_level: vec![0; levels as usize],
            total: 0,
        }
    }

    /// Resets the merge state; call once per superstep before
    /// [`EpochMerge::add_shard`].
    pub fn begin_superstep(&mut self) {
        self.out_sum.fill(0);
        self.in_sum.fill(0);
        self.max_by_level.fill(0);
        self.total = 0;
    }

    /// Folds shard `shard`'s counters for the current superstep into the
    /// merge.
    pub fn add_shard(&mut self, shard: usize, c: &DegreeCounters) {
        debug_assert_eq!(c.levels, self.levels, "level count mismatch");
        debug_assert_eq!(c.split, self.split, "shard-split mismatch");
        debug_assert_eq!(c.shard, shard, "counters added under the wrong shard id");
        self.total += c.total;
        for j in (self.split + 1)..=self.levels {
            let m = &mut self.max_by_level[(j - 1) as usize];
            *m = (*m).max(c.max_by_level[(j - 1) as usize]);
        }
        for j in 1..=self.split {
            let proc = shard >> (self.split - j);
            let base = (1usize << j) - 2;
            self.out_sum[base + proc] += c.out_coarse[(j - 1) as usize];
            self.in_sum[base + proc] += c.in_coarse[(j - 1) as usize];
        }
    }

    /// Computes the coarse-level maxima from the accumulated sums; call
    /// after the last [`EpochMerge::add_shard`] of the superstep.
    pub fn finish(&mut self) {
        for j in 1..=self.split {
            let base = (1usize << j) - 2;
            let procs = 1usize << j;
            self.max_by_level[(j - 1) as usize] = (0..procs)
                .map(|k| self.out_sum[base + k].max(self.in_sum[base + k]))
                .max()
                .unwrap_or(0);
        }
    }

    /// The merged superstep degree `h^s` at fold `2^j` (`1 ≤ j ≤ levels`);
    /// valid after [`EpochMerge::finish`].
    #[inline]
    pub fn level_max(&self, j: u32) -> u64 {
        self.max_by_level[(j - 1) as usize]
    }

    /// Merged message total of the superstep.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of tracked fold levels.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

/// Accumulates superstep records in flat, pre-reserved storage.
///
/// The engine's steady-state loop must not allocate; pushing a
/// [`SuperstepRecord`] directly would allocate its `h_by_fold` vector per
/// superstep. A `TraceBuilder` instead appends `(label, total, h…)` to three
/// flat vectors reserved up front (the program length bounds the superstep
/// count), and materializes the [`CommTrace`] once at the end of the run.
#[derive(Debug)]
pub struct TraceBuilder {
    /// `log2` of the trace granularity (`log v` or `log p`).
    log_gran: u32,
    n: usize,
    labels: Vec<u32>,
    totals: Vec<u64>,
    /// Row-major `[step][fold level]` degree matrix.
    flat_h: Vec<u64>,
}

impl TraceBuilder {
    /// A builder for a trace at granularity `gran` with room for
    /// `expected_steps` supersteps without reallocation.
    pub fn new(gran: usize, n: usize, expected_steps: usize) -> Self {
        let log_gran = log2_exact(gran);
        TraceBuilder {
            log_gran,
            n,
            labels: Vec::with_capacity(expected_steps),
            totals: Vec::with_capacity(expected_steps),
            flat_h: Vec::with_capacity(expected_steps * log_gran as usize),
        }
    }

    /// Appends one superstep's metrics from its streaming counters.
    /// Allocation-free while within the reserved capacity.
    pub fn push_superstep(&mut self, label: u32, counters: &DegreeCounters) {
        debug_assert_eq!(counters.levels(), self.log_gran, "granularity mismatch");
        self.labels.push(label);
        self.totals.push(counters.total());
        for j in 1..=counters.levels() {
            self.flat_h.push(counters.level_max(j));
        }
    }

    /// Appends one superstep's metrics from the precomputed [`StepMetrics`]
    /// of a planned oblivious superstep: `O(log gran)`, no per-message work
    /// — and, on the sharded path, no [`EpochMerge`] and no merge barrier
    /// (the coordinator pushes the record inside its own exec phase,
    /// overlapped with the other workers' execution). `count_internal`
    /// selects the total policy (`true` for full-granularity traces,
    /// `false` for folded ones). Allocation-free while within the reserved
    /// capacity.
    pub fn push_precomputed(&mut self, label: u32, metrics: &StepMetrics, count_internal: bool) {
        debug_assert!(metrics.levels() >= self.log_gran, "plan narrower than the trace");
        self.labels.push(label);
        self.totals.push(metrics.total_at(self.log_gran, count_internal));
        self.flat_h.extend_from_slice(metrics.h_prefix(self.log_gran));
    }

    /// Appends one superstep's metrics from a completed [`EpochMerge`] of
    /// shard-local counters. Allocation-free while within the reserved
    /// capacity.
    pub fn push_merged(&mut self, label: u32, merged: &EpochMerge) {
        debug_assert_eq!(merged.levels(), self.log_gran, "granularity mismatch");
        self.labels.push(label);
        self.totals.push(merged.total());
        for j in 1..=merged.levels() {
            self.flat_h.push(merged.level_max(j));
        }
    }

    /// Re-targets a pooled builder at a new run: records are cleared (the
    /// flat storage keeps its capacity) and the granularity and problem size
    /// are replaced, so a serving layer can recycle one builder across jobs
    /// without re-paying its three vector allocations. Grows only when
    /// `expected_steps` exceeds every previous run's reservation.
    pub fn reset(&mut self, gran: usize, n: usize, expected_steps: usize) {
        self.log_gran = log2_exact(gran);
        self.n = n;
        self.labels.clear();
        self.totals.clear();
        self.flat_h.clear();
        self.labels.reserve(expected_steps);
        self.totals.reserve(expected_steps);
        self.flat_h.reserve(expected_steps * self.log_gran as usize);
    }

    /// Materializes the accumulated records as a [`CommTrace`] without
    /// consuming the builder — the pooled counterpart of
    /// [`TraceBuilder::finish`], for builders that outlive the run.
    pub fn snapshot(&self) -> CommTrace {
        let levels = self.log_gran as usize;
        let steps = self
            .labels
            .iter()
            .zip(&self.totals)
            .enumerate()
            .map(|(i, (&label, &total))| SuperstepRecord {
                label,
                h_by_fold: self.flat_h[i * levels..(i + 1) * levels].to_vec(),
                total_msgs: total,
            })
            .collect();
        CommTrace { log_v: self.log_gran, n: self.n, steps }
    }

    /// Number of supersteps pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no superstep has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Materializes the accumulated records as a [`CommTrace`].
    pub fn finish(self) -> CommTrace {
        let levels = self.log_gran as usize;
        let steps = self
            .labels
            .iter()
            .zip(&self.totals)
            .enumerate()
            .map(|(i, (&label, &total))| SuperstepRecord {
                label,
                h_by_fold: self.flat_h[i * levels..(i + 1) * levels].to_vec(),
                total_msgs: total,
            })
            .collect();
        CommTrace { log_v: self.log_gran, n: self.n, steps }
    }
}

/// The `F^i`/`S^i` aggregates of a trace folded onto `p` processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldedMetrics {
    /// Number of processors of the folded machine.
    pub p: usize,
    /// `f[i] = F^i(n, p)`: cumulative degree of all i-supersteps, `0 ≤ i < log p`.
    pub f: Vec<u64>,
    /// `s[i] = S^i(n)`: number of i-supersteps, `0 ≤ i < log p`.
    pub s: Vec<u64>,
}

impl FoldedMetrics {
    /// Communication complexity `H(n, p, σ) = Σ_i (F^i + S^i·σ)` (Eq. 1).
    pub fn comm_complexity(&self, sigma: f64) -> f64 {
        self.f
            .iter()
            .zip(&self.s)
            .map(|(&f, &s)| f as f64 + s as f64 * sigma)
            .sum()
    }

    /// Communication time `D(n, p, g, ℓ) = Σ_i (F^i·g_i + S^i·ℓ_i)` (Eq. 2)
    /// on a D-BSP machine with `p` processors.
    pub fn comm_time(&self, machine: &DbspMachine) -> Result<f64, ModelError> {
        if machine.p != self.p {
            return Err(ModelError::BadFold { p: machine.p, v: self.p });
        }
        Ok(self
            .f
            .iter()
            .zip(&self.s)
            .zip(machine.g.iter().zip(&machine.ell))
            .map(|((&f, &s), (&g, &l))| f as f64 * g + s as f64 * l)
            .sum())
    }

    /// Total message volume charged at this fold: `Σ_i F^i`.
    pub fn total_f(&self) -> u64 {
        self.f.iter().sum()
    }

    /// Total superstep count charged at this fold: `Σ_i S^i`.
    pub fn total_s(&self) -> u64 {
        self.s.iter().sum()
    }
}

/// The complete communication record of one execution on `M(v)`.
///
/// ```
/// use nob_core::metrics::{CommTrace, SuperstepRecord};
/// use nob_core::machines;
///
/// // One 0-superstep on M(8): a bisection exchange of degree 1.
/// let mut trace = CommTrace::new(8, 8);
/// let msgs: Vec<(usize, usize)> = (0..4).map(|k| (k, k + 4)).collect();
/// trace.steps.push(SuperstepRecord::from_messages(0, 3, msgs));
///
/// // Eq. (1) on M(p, σ): H = F^0 + S^0·σ.
/// assert_eq!(trace.comm_complexity(2, 10.0), 4.0 + 10.0);
/// assert_eq!(trace.comm_complexity(8, 0.0), 1.0);
///
/// // Eq. (2) on a D-BSP preset.
/// let d = trace.comm_time(&machines::mesh2d(4));
/// assert_eq!(d, 2.0 * 2.0 + 2.0); // h·g_0 + ℓ_0 on the 2x2 mesh
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTrace {
    /// `log2 v` where `v` is the number of processing elements of the machine.
    pub log_v: u32,
    /// Input size `n` the algorithm was run on (carried for reporting).
    pub n: usize,
    /// One record per superstep, in execution order.
    pub steps: Vec<SuperstepRecord>,
}

impl CommTrace {
    /// Creates an empty trace for a machine of `v` processing elements.
    pub fn new(v: usize, n: usize) -> Self {
        CommTrace { log_v: log2_exact(v), n, steps: Vec::new() }
    }

    /// Number of processing elements `v`.
    #[inline]
    pub fn v(&self) -> usize {
        1usize << self.log_v
    }

    /// Number of supersteps executed.
    #[inline]
    pub fn superstep_count(&self) -> usize {
        self.steps.len()
    }

    /// Total number of messages exchanged over the whole execution.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.total_msgs).sum()
    }

    /// Maximum per-VP degree over the execution (fold at full granularity).
    pub fn max_degree(&self) -> u64 {
        self.steps.iter().map(|s| s.h(self.log_v)).max().unwrap_or(0)
    }

    /// `S^i(n)` for `0 ≤ i < log v`: the number of i-supersteps.
    pub fn s_counts(&self) -> Vec<u64> {
        let mut s = vec![0u64; (self.log_v.max(1)) as usize];
        for step in &self.steps {
            s[step.label as usize] += 1;
        }
        s
    }

    /// Folds the trace onto `p` processors, producing the `F^i(n, p)` and
    /// `S^i(n)` aggregates for `0 ≤ i < log p`.
    ///
    /// # Panics
    /// Panics if `p` is not a power of two in `[2, v]`.
    pub fn fold(&self, p: usize) -> FoldedMetrics {
        // allow-panic: documented `# Panics` API contract.
        assert!(
            p.is_power_of_two() && p >= 2 && p <= self.v(),
            "fold target p = {p} must be a power of two in [2, {}]",
            self.v()
        );
        let j = log2_exact(p);
        let len = j as usize;
        let mut f = vec![0u64; len];
        let mut s = vec![0u64; len];
        for step in &self.steps {
            if step.label < j {
                f[step.label as usize] += step.h(j);
                s[step.label as usize] += 1;
            }
        }
        FoldedMetrics { p, f, s }
    }

    /// Communication complexity `H(n, p, σ)` (Eq. 1) of the folding on `M(p, σ)`.
    pub fn comm_complexity(&self, p: usize, sigma: f64) -> f64 {
        self.fold(p).comm_complexity(sigma)
    }

    /// Communication time `D(n, p, g, ℓ)` (Eq. 2) of the folding on a D-BSP.
    ///
    /// # Panics
    /// Panics if the machine is larger than the trace's `M(v)`.
    pub fn comm_time(&self, machine: &DbspMachine) -> f64 {
        // allow-panic: fold(machine.p) yields matching metrics by construction.
        self.fold(machine.p)
            .comm_time(machine)
            .expect("fold(machine.p) produces matching metrics")
    }

    /// Appends the records of `other` (executed on the same machine size) to
    /// this trace, as if the two programs ran back to back.
    pub fn extend(&mut self, other: &CommTrace) {
        // allow-panic: documented API contract (same machine size).
        assert_eq!(self.log_v, other.log_v, "traces from different machine sizes");
        self.steps.extend(other.steps.iter().cloned());
    }

    /// Serializes the trace to a compact line-oriented text format (one
    /// header line, then one line per superstep: `label total h(2) h(4) …`).
    /// Used by the experiment harness to archive runs without extra
    /// dependencies.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        // allow-panic: fmt::Write to a String is infallible.
        writeln!(out, "commtrace v1 log_v={} n={} steps={}", self.log_v, self.n, self.steps.len())
            .unwrap();
        for s in &self.steps {
            // allow-panic: as above — writing to a String cannot fail.
            write!(out, "{} {}", s.label, s.total_msgs).unwrap();
            for h in &s.h_by_fold {
                write!(out, " {h}").unwrap();
            }
            // allow-panic: as above.
            writeln!(out).unwrap();
        }
        out
    }

    /// Parses the [`CommTrace::to_text`] format.
    pub fn from_text(text: &str) -> Result<CommTrace, ModelError> {
        let bad = |reason: &'static str| ModelError::BadParameter { what: "trace", reason };
        let mut lines = text.lines();
        let header = lines.next().ok_or(bad("empty input"))?;
        let mut log_v = None;
        let mut n = None;
        for tok in header.split_whitespace() {
            if let Some(v) = tok.strip_prefix("log_v=") {
                log_v = v.parse::<u32>().ok();
            } else if let Some(v) = tok.strip_prefix("n=") {
                n = v.parse::<usize>().ok();
            }
        }
        let (log_v, n) = (log_v.ok_or(bad("missing log_v"))?, n.ok_or(bad("missing n"))?);
        let mut steps = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let label: u32 =
                it.next().and_then(|t| t.parse().ok()).ok_or(bad("missing label"))?;
            let total_msgs: u64 =
                it.next().and_then(|t| t.parse().ok()).ok_or(bad("missing total"))?;
            let h_by_fold: Vec<u64> =
                it.map(|t| t.parse().map_err(|_| bad("bad degree"))).collect::<Result<_, _>>()?;
            if h_by_fold.len() != log_v as usize {
                return Err(bad("degree vector length mismatch"));
            }
            steps.push(SuperstepRecord { label, h_by_fold, total_msgs });
        }
        Ok(CommTrace { log_v, n, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One superstep on v = 8 where VP 0 sends one message to each other VP.
    fn star_step() -> SuperstepRecord {
        let msgs: Vec<(usize, usize)> = (1..8).map(|d| (0, d)).collect();
        SuperstepRecord::from_messages(0, 3, msgs)
    }

    #[test]
    fn star_degrees_by_fold() {
        let s = star_step();
        // Fold to 2 procs: proc 0 = VPs 0..4 sends 4 external messages (to 4,5,6,7).
        assert_eq!(s.h(1), 4);
        // Fold to 4 procs: proc 0 = VPs {0,1} sends 6 external; max recv = 2.
        assert_eq!(s.h(2), 6);
        // Full granularity: VP0 sends 7.
        assert_eq!(s.h(3), 7);
        assert_eq!(s.total_msgs, 7);
    }

    #[test]
    fn internal_messages_do_not_count() {
        // All messages stay within the first half: invisible at fold 2.
        let msgs = vec![(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
        let s = SuperstepRecord::from_messages(1, 3, msgs);
        assert_eq!(s.h(1), 0);
        // At fold 4: procs {0,1} and {2,3} exchange: 1->2 and 3->0 cross.
        assert_eq!(s.h(2), 1);
        assert_eq!(s.h(3), 1);
    }

    /// Streams unit edges through counters; multiplicity `c` becomes `c`
    /// calls, as the engine produces.
    fn stream(label: u32, counters: &mut DegreeCounters, edges: &[(usize, usize, u64)]) -> SuperstepRecord {
        counters.begin_superstep();
        for &(s, d, c) in edges {
            for _ in 0..c {
                counters.record(s, d);
            }
        }
        SuperstepRecord::from_degree_counters(label, counters)
    }

    #[test]
    fn degree_counters_match_counted_edges_exactly() {
        let log_v = 4u32;
        let v = 1usize << log_v;
        let mut counters = DegreeCounters::full(log_v);
        // A deterministic pseudo-random pattern including self-sends, bursts
        // and cross-bisection traffic; reuse the counters across "supersteps"
        // to exercise the epoch invalidation.
        let mut state = 0x1234_5678u64;
        for round in 0..32 {
            let mut edges = Vec::new();
            for _ in 0..(round % 7) * 3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = (state >> 20) as usize % v;
                let d = (state >> 40) as usize % v;
                let c = 1 + (state % 3);
                edges.push((s, d, c));
            }
            let label = round % log_v;
            let want = SuperstepRecord::from_counted_edges(label, log_v, &edges);
            let got = stream(label, &mut counters, &edges);
            assert_eq!(got, want, "divergence at round {round}: {edges:?}");
        }
    }

    /// Replays `edges` the way the sharded executor does — send side on the
    /// source shard, receive side on the destination shard — and merges.
    fn stream_sharded(
        label: u32,
        log_v: u32,
        levels: u32,
        log_shards: u32,
        edges: &[(usize, usize, u64)],
    ) -> SuperstepRecord {
        let shards = 1usize << log_shards;
        let shard_shift = log_v - log_shards;
        let mut locals: Vec<DegreeCounters> = (0..shards)
            .map(|w| {
                if levels == log_v {
                    DegreeCounters::shard_full(log_v, log_shards, w)
                } else {
                    DegreeCounters::shard_folded(log_v, levels, log_shards, w)
                }
            })
            .collect();
        for c in &mut locals {
            c.begin_superstep();
        }
        for &(s, d, cnt) in edges {
            let (ws, wd) = (s >> shard_shift, d >> shard_shift);
            for _ in 0..cnt {
                if ws == wd {
                    locals[ws].record(s, d);
                } else {
                    locals[ws].record_sent(s, d);
                    locals[wd].record_received(s, d);
                }
            }
        }
        let mut merge = EpochMerge::new(levels, log_shards);
        merge.begin_superstep();
        for (w, c) in locals.iter().enumerate() {
            merge.add_shard(w, c);
        }
        merge.finish();
        SuperstepRecord {
            label,
            h_by_fold: (1..=levels).map(|j| merge.level_max(j)).collect(),
            total_msgs: merge.total(),
        }
    }

    #[test]
    fn sharded_counters_match_counted_edges_exactly() {
        let log_v = 5u32;
        let v = 1usize << log_v;
        let mut state = 0xdead_beefu64;
        for round in 0..48 {
            let mut edges = Vec::new();
            for _ in 0..(round % 9) * 2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = (state >> 20) as usize % v;
                let d = (state >> 40) as usize % v;
                edges.push((s, d, 1 + state % 2));
            }
            // Full granularity, every shard width that fits.
            for log_shards in 0..=log_v {
                let got = stream_sharded(0, log_v, log_v, log_shards, &edges);
                let want = SuperstepRecord::from_counted_edges(0, log_v, &edges);
                assert_eq!(got, want, "full-gran divergence at 2^{log_shards} shards: {edges:?}");
            }
            // Folded granularity p = 8, shard counts up to p.
            for log_shards in 0..=3u32 {
                let got = stream_sharded(0, log_v, 3, log_shards, &edges);
                let shift = log_v - 3;
                let ext: Vec<(usize, usize, u64)> = edges
                    .iter()
                    .map(|&(s, d, c)| (s >> shift, d >> shift, c))
                    .filter(|(ps, pd, _)| ps != pd)
                    .collect();
                let want = SuperstepRecord::from_counted_edges(0, 3, &ext);
                assert_eq!(got, want, "folded divergence at 2^{log_shards} shards: {edges:?}");
            }
        }
    }

    #[test]
    fn step_metrics_match_streamed_counters_at_every_granularity() {
        // The precomputed plan metrics must be bit-for-bit what the engine's
        // streamed counters produce for the same multiset — full granularity
        // *and* every folded granularity (h levels and total policy alike).
        let log_v = 5u32;
        let v = 1usize << log_v;
        let mut state = 0x5eed_cafeu64;
        for round in 0..24 {
            let mut b = StepMetricsBuilder::new(log_v);
            let mut edges = Vec::new();
            for _ in 0..round * 2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = (state >> 20) as usize % v;
                let d = (state >> 40) as usize % v;
                edges.push((s, d, 1u64));
                b.record(s, d);
            }
            let m = b.finish();
            // Full granularity: identical record.
            let mut full = DegreeCounters::full(log_v);
            full.begin_superstep();
            for &(s, d, _) in &edges {
                full.record(s, d);
            }
            let want = SuperstepRecord::from_degree_counters(0, &full);
            assert_eq!(m.h_prefix(log_v), &want.h_by_fold[..], "round {round}");
            assert_eq!(m.total_at(log_v, true), want.total_msgs, "round {round}");
            // Every folded granularity: identical level prefix and total.
            for levels in 1..=log_v {
                let mut folded = DegreeCounters::folded(log_v, levels);
                folded.begin_superstep();
                for &(s, d, _) in &edges {
                    folded.record(s, d);
                }
                let want = SuperstepRecord::from_degree_counters(0, &folded);
                assert_eq!(m.h_prefix(levels), &want.h_by_fold[..], "round {round} L{levels}");
                assert_eq!(m.total_at(levels, false), want.total_msgs, "round {round} L{levels}");
            }
        }
    }

    #[test]
    fn trace_builder_precomputed_matches_streamed_push() {
        let log_v = 4u32;
        let edges = [(0usize, 9usize), (3, 3), (7, 8), (0, 9), (15, 0)];
        let mut b = StepMetricsBuilder::new(log_v);
        let mut c = DegreeCounters::full(log_v);
        c.begin_superstep();
        for &(s, d) in &edges {
            b.record(s, d);
            c.record(s, d);
        }
        let m = b.finish();
        let mut t1 = TraceBuilder::new(16, 16, 1);
        t1.push_superstep(0, &c);
        let mut t2 = TraceBuilder::new(16, 16, 1);
        t2.push_precomputed(0, &m, true);
        assert_eq!(t1.finish(), t2.finish());
        // Folded granularity: internal messages drop out of the total.
        let mut cf = DegreeCounters::folded(log_v, 2);
        cf.begin_superstep();
        for &(s, d) in &edges {
            cf.record(s, d);
        }
        let mut t1 = TraceBuilder::new(4, 16, 1);
        t1.push_superstep(0, &cf);
        let mut t2 = TraceBuilder::new(4, 16, 1);
        t2.push_precomputed(0, &m, false);
        assert_eq!(t1.finish(), t2.finish());
    }

    #[test]
    fn epoch_merge_is_reusable_across_supersteps() {
        // The same counters + merger across two supersteps must not leak
        // counts from the first into the second (epoch stamps + scalar
        // resets).
        let log_v = 4u32;
        let mut a = DegreeCounters::shard_full(log_v, 1, 0);
        let mut b = DegreeCounters::shard_full(log_v, 1, 1);
        let mut merge = EpochMerge::new(log_v, 1);
        // Superstep 1: a burst across the bisection.
        a.begin_superstep();
        b.begin_superstep();
        for _ in 0..5 {
            a.record_sent(0, 12);
            b.record_received(0, 12);
        }
        merge.begin_superstep();
        merge.add_shard(0, &a);
        merge.add_shard(1, &b);
        merge.finish();
        assert_eq!(merge.level_max(1), 5);
        assert_eq!(merge.total(), 5);
        // Superstep 2: a single local message; the bisection count is gone.
        a.begin_superstep();
        b.begin_superstep();
        a.record(1, 2);
        merge.begin_superstep();
        merge.add_shard(0, &a);
        merge.add_shard(1, &b);
        merge.finish();
        assert_eq!(merge.level_max(1), 0);
        assert_eq!(merge.level_max(4), 1);
        assert_eq!(merge.total(), 1);
    }

    #[test]
    fn folded_counters_drop_internal_messages() {
        // v = 16 folded to p = 4 (levels = 2). A message 0 -> 3 is internal
        // at p = 4 (same top-2 bits): not counted at all.
        let mut c = DegreeCounters::folded(4, 2);
        c.begin_superstep();
        c.record(0, 3);
        assert_eq!(c.total(), 0);
        // 0 -> 12 crosses the bisection: external at both tracked levels.
        c.record(0, 12);
        assert_eq!(c.total(), 1);
        let rec = SuperstepRecord::from_degree_counters(0, &c);
        assert_eq!(rec.h_by_fold, vec![1, 1]);
        // Matches the legacy path over processor-granularity external edges.
        let want = SuperstepRecord::from_counted_edges(0, 2, &[(0, 3, 1)]);
        assert_eq!(rec, want);
    }

    #[test]
    fn counted_edges_match_unit_messages() {
        let unit: Vec<(usize, usize)> = vec![(0, 5); 10];
        let a = SuperstepRecord::from_messages(0, 3, unit);
        let b = SuperstepRecord::from_counted_edges(0, 3, &[(0, 5, 10)]);
        assert_eq!(a, b);
        assert_eq!(a.h(1), 10);
    }

    #[test]
    fn h_relation_is_max_of_in_and_out() {
        // VP0 sends 3 to VP4; VP5, VP6 each send 1 to VP1.
        let msgs = vec![(0, 4), (0, 4), (0, 4), (5, 1), (6, 1)];
        let s = SuperstepRecord::from_messages(0, 3, msgs);
        // Fold 2: proc0 out=3 in=2 -> 3; proc1 out=2 in=3 -> 3.
        assert_eq!(s.h(1), 3);
        assert_eq!(s.h(3), 3); // VP0 out=3; VP1 in=2; VP4 in=3.
    }

    fn two_step_trace() -> CommTrace {
        let mut t = CommTrace::new(8, 8);
        // A 0-superstep: bisection exchange, each VP k <-> k+4. Degree 1 everywhere.
        let msgs: Vec<(usize, usize)> =
            (0..4).flat_map(|k| [(k, k + 4), (k + 4, k)]).collect();
        t.steps.push(SuperstepRecord::from_messages(0, 3, msgs));
        // A 1-superstep: within each half, k <-> k+2.
        let msgs: Vec<(usize, usize)> = (0..2)
            .flat_map(|k| [(k, k + 2), (k + 2, k), (k + 4, k + 6), (k + 6, k + 4)])
            .collect();
        t.steps.push(SuperstepRecord::from_messages(1, 3, msgs));
        t
    }

    #[test]
    fn fold_aggregates_by_label() {
        let t = two_step_trace();
        let m8 = t.fold(8);
        assert_eq!(m8.f, vec![1, 1, 0]);
        assert_eq!(m8.s, vec![1, 1, 0]);
        let m4 = t.fold(4);
        // At p = 4 the 0-superstep still has degree... each proc of 2 VPs
        // sends 2 external in step 0 (k and k+1 both cross halves): h = 2.
        // Step 1 (label 1): VPs {0,1} -> {2,3}: proc0 sends 2: h = 2.
        assert_eq!(m4.f, vec![2, 2]);
        assert_eq!(m4.s, vec![1, 1]);
        let m2 = t.fold(2);
        // Step 0: 4 messages each way across the bisection: h = 4.
        // Step 1 label >= log p: local, dropped.
        assert_eq!(m2.f, vec![4]);
        assert_eq!(m2.s, vec![1]);
    }

    #[test]
    fn comm_complexity_eq1() {
        let t = two_step_trace();
        // H(n, 8, σ) = (1 + σ) + (1 + σ) + 0 = 2 + 2σ.
        assert_eq!(t.comm_complexity(8, 0.0), 2.0);
        assert_eq!(t.comm_complexity(8, 3.0), 8.0);
        // H(n, 2, σ) = 4 + σ.
        assert_eq!(t.comm_complexity(2, 5.0), 9.0);
    }

    #[test]
    fn comm_time_eq2() {
        let t = two_step_trace();
        let m = DbspMachine::new(8, vec![4.0, 2.0, 1.0], vec![16.0, 4.0, 1.0]).unwrap();
        // D = F0*g0 + S0*l0 + F1*g1 + S1*l1 + 0 = 4 + 16 + 2 + 4 = 26.
        assert_eq!(t.comm_time(&m), 26.0);
        let m2 = DbspMachine::new(2, vec![1.0], vec![10.0]).unwrap();
        assert_eq!(t.comm_time(&m2), 14.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fold_rejects_bad_p() {
        two_step_trace().fold(3);
    }

    #[test]
    fn extend_concatenates() {
        let mut t = two_step_trace();
        let u = two_step_trace();
        t.extend(&u);
        assert_eq!(t.superstep_count(), 4);
        assert_eq!(t.comm_complexity(8, 0.0), 4.0);
    }

    #[test]
    fn text_roundtrip() {
        let t = two_step_trace();
        let text = t.to_text();
        let back = CommTrace::from_text(&text).unwrap();
        assert_eq!(back, t);
        // Malformed inputs are rejected, not mis-parsed.
        assert!(CommTrace::from_text("").is_err());
        assert!(CommTrace::from_text("commtrace v1 log_v=3 steps=1\n0 1 9 9").is_err());
        assert!(CommTrace::from_text("commtrace v1 log_v=3 n=8 steps=1\n0 x 1 1 1").is_err());
    }
}
