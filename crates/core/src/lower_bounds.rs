//! Communication-complexity lower bounds quoted by Section 4 of the paper.
//!
//! These are the Scquizzato–Silvestri (STACS'14) bounds the paper's Lemmas
//! 4.1, 4.4, 4.7 and 4.10 instantiate on `M(p, σ)`, plus the broadcast bound
//! proved in Theorem 4.15. They are exposed as closed-form functions of
//! `(n, p, σ)` so that experiment harnesses can report *optimality factors*
//! `ρ = H_measured / H_lower` — the quantity the paper's Θ(1)-optimality
//! claims bound.
//!
//! All bounds are Ω-bounds; the constants here are normalized to 1, so a
//! measured factor `ρ` is meaningful up to the (unknown) constant of the
//! original proof. What the reproduction checks is that `ρ` stays *bounded*
//! across the parameter ranges where the paper claims optimality, and how it
//! degrades outside them.

use crate::model::paper_log2;

/// Lemma 4.1: any semiring `n`-MM algorithm in class `C` on `M(p, σ)` has
/// `H = Ω(n/p^{2/3} + σ)`.
pub fn mm(n: usize, p: usize, sigma: f64) -> f64 {
    n as f64 / (p as f64).powf(2.0 / 3.0) + sigma
}

/// Section 4.1.1 (after Irony–Toledo–Tiskin): `n`-MM with `O(n/v)` memory per
/// processing element has `H = Ω(n/√p)` (plus the trivial `σ` term).
pub fn mm_space(n: usize, p: usize, sigma: f64) -> f64 {
    n as f64 / (p as f64).sqrt() + sigma
}

/// Lemma 4.4: `n`-FFT (no recomputation) has
/// `H = Ω((n·log n)/(p·log(n/p)) + σ)`.
pub fn fft(n: usize, p: usize, sigma: f64) -> f64 {
    let n_f = n as f64;
    n_f * paper_log2(n_f) / (p as f64 * paper_log2(n_f / p as f64)) + sigma
}

/// Lemma 4.7: comparison-based `n`-sort has the same form as FFT:
/// `H = Ω((n·log n)/(p·log(n/p)) + σ)`.
pub fn sort(n: usize, p: usize, sigma: f64) -> f64 {
    fft(n, p, sigma)
}

/// Lemma 4.10: the `(n, d)`-stencil has `H = Ω(n^d / p^{(d−1)/d} + σ)`.
pub fn stencil(n: usize, d: u32, p: usize, sigma: f64) -> f64 {
    let d_f = d as f64;
    (n as f64).powi(d as i32) / (p as f64).powf((d_f - 1.0) / d_f) + sigma
}

/// Theorem 4.15: `n`-broadcast on `M(p, σ)` has
/// `H = Ω(max{2, σ}·log_{max{2,σ}} p)`.
pub fn broadcast(p: usize, sigma: f64) -> f64 {
    let kappa = sigma.max(2.0);
    let log_p = paper_log2(p as f64);
    kappa * (log_p / kappa.log2().max(1.0))
}

/// The closed-form *upper* bounds proved in Section 4, for shape comparison
/// against measured complexities (constants normalized to 1).
pub mod upper {
    use crate::model::paper_log2;

    /// Theorem 4.2: `H_MM(n, p, σ) = O(n/p^{2/3} + σ·log p)`.
    pub fn mm(n: usize, p: usize, sigma: f64) -> f64 {
        n as f64 / (p as f64).powf(2.0 / 3.0) + sigma * paper_log2(p as f64)
    }

    /// Section 4.1.1: `H_MM-space(n, p, σ) = O(n/√p + σ·√p)`.
    pub fn mm_space(n: usize, p: usize, sigma: f64) -> f64 {
        let p_f = p as f64;
        n as f64 / p_f.sqrt() + sigma * p_f.sqrt()
    }

    /// Theorem 4.5: `H_FFT(n, p, σ) = O((n/p + σ)·log n/log(n/p))`.
    pub fn fft(n: usize, p: usize, sigma: f64) -> f64 {
        let n_f = n as f64;
        (n_f / p as f64 + sigma) * paper_log2(n_f) / paper_log2(n_f / p as f64)
    }

    /// Theorem 4.8: `H_sort(n, p, σ) = O((n/p + σ)·(log n/log(n/p))^{log_{3/2} 4})`.
    pub fn sort(n: usize, p: usize, sigma: f64) -> f64 {
        let n_f = n as f64;
        let e = 4.0f64.ln() / 1.5f64.ln();
        (n_f / p as f64 + sigma) * (paper_log2(n_f) / paper_log2(n_f / p as f64)).powf(e)
    }

    /// Theorem 4.11: `H_1-stencil(n, p, σ) = O(n·4^√(log n))` for σ = O(n/p).
    pub fn stencil1(n: usize, _p: usize, _sigma: f64) -> f64 {
        let n_f = n as f64;
        n_f * 4.0f64.powf(paper_log2(n_f).sqrt())
    }

    /// Theorem 4.13: `H_2-stencil(n, p, σ) = O((n²/√p)·8^√(log n))` for σ = O(n²/p).
    pub fn stencil2(n: usize, p: usize, _sigma: f64) -> f64 {
        let n_f = n as f64;
        n_f * n_f / (p as f64).sqrt() * 8.0f64.powf(paper_log2(n_f).sqrt())
    }

    /// The σ-aware broadcast of Section 4.5:
    /// `H = O(max{2, σ}·log_{max{2,σ}} p)` (matches the lower bound).
    pub fn broadcast_aware(p: usize, sigma: f64) -> f64 {
        super::broadcast(p, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_bound_shape() {
        // Doubling p by 8 shrinks the bandwidth term by 4.
        let a = mm(1 << 12, 8, 0.0);
        let b = mm(1 << 12, 64, 0.0);
        assert!((a / b - 4.0).abs() < 1e-9);
        // σ enters additively.
        assert_eq!(mm(64, 8, 5.0) - mm(64, 8, 0.0), 5.0);
    }

    #[test]
    fn fft_bound_degenerates_gracefully_at_p_eq_n() {
        // log(n/p) clamps at 1, so the bound stays finite.
        let b = fft(1024, 1024, 0.0);
        assert!(b.is_finite() && b > 0.0);
        // For p << n the ratio log n / log(n/p) ≈ 1: bound ≈ n/p.
        let b2 = fft(1 << 20, 2, 0.0);
        assert!(b2 < 1.2 * (1 << 19) as f64);
    }

    #[test]
    fn stencil_bound_by_dimension() {
        // d = 1: Ω(n); d = 2: Ω(n²/√p).
        assert_eq!(stencil(256, 1, 64, 0.0), 256.0);
        assert!((stencil(256, 2, 64, 0.0) - 256.0 * 256.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_bound_interpolates() {
        // σ ≤ 2: Θ(log p).
        assert_eq!(broadcast(1 << 10, 0.0), 2.0 * 10.0 / 1.0);
        // Large σ: Θ(σ·log_σ p) = Θ(σ·log p/log σ).
        let b = broadcast(1 << 16, 256.0);
        assert!((b - 256.0 * 16.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bounds_dominate_lower_bounds() {
        for &n in &[1usize << 10, 1 << 14] {
            for &p in &[2usize, 16, 256] {
                for &s in &[0.0, 1.0, 32.0] {
                    assert!(upper::mm(n, p, s) + 1e-9 >= mm(n, p, s) - s * (paper_log2(p as f64) - 1.0));
                    assert!(upper::fft(n, p, s) + 1e-9 >= fft(n, p, s) - s);
                    assert!(upper::sort(n, p, s) + 1e-9 >= sort(n, p, s) - s);
                }
            }
        }
    }
}
