//! # nob-core — the model stack for network-oblivious algorithms
//!
//! This crate implements the three computational models of Bilardi, Pietracaprina,
//! Pucci, Scquizzato and Silvestri, *Network-Oblivious Algorithms* (IPDPS'07; J. ACM
//! 63(1), 2016), together with the quantitative machinery the paper builds on them:
//!
//! * the **specification model** `M(v(n))` — labelled-superstep machines on which
//!   network-oblivious algorithms are written ([`model::SpecModel`]);
//! * the **evaluation model** `M(p, σ)` and its *communication complexity*
//!   `H_A(n, p, σ)` (Eq. (1) of the paper) ([`model::EvalModel`],
//!   [`metrics::CommTrace::comm_complexity`]);
//! * the **execution machine model** D-BSP(p, **g**, **ℓ**) and its *communication
//!   time* `D_A(n, p, g, ℓ)` (Eq. (2)) ([`model::DbspMachine`],
//!   [`metrics::CommTrace::comm_time`]);
//! * **folding** of an algorithm for `M(v)` onto any smaller `M(2^j)`
//!   ([`folding`]);
//! * **(α, p)-wiseness** (Def. 3.2) and **(γ, p)-fullness** (Def. 5.2)
//!   ([`wiseness`], [`fullness`]);
//! * the **optimality theorem** (Thm. 3.4) and its Section-5 extension (Thm. 5.3)
//!   as executable inequality checkers ([`theorem`]);
//! * the **communication lower bounds** quoted by the paper for matrix
//!   multiplication, FFT, sorting, stencils and broadcast ([`lower_bounds`]);
//! * **machine presets**: D-BSP parameter vectors describing meshes, hypercubes and
//!   uniform BSP machines ([`machines`]).
//!
//! Algorithms themselves live in the `nob-algos` crate and are executed by the
//! instrumented superstep virtual machine in `nob-machine`; both produce
//! [`metrics::CommTrace`] values that this crate evaluates.
//!
//! ## Conventions
//!
//! Processor and virtual-processor counts are powers of two. Following the paper,
//! `log x` denotes `max(1, log2 x)` where real-valued ([`model::paper_log2`]).
//! Superstep labels `i` range over `0 ≤ i < log v`; an `i`-superstep confines
//! communication and synchronization to *i-clusters*, the groups of `v/2^i`
//! processing elements whose indices share the `i` most significant bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod folding;
pub mod fullness;
pub mod lower_bounds;
pub mod machines;
pub mod metrics;
pub mod model;
pub mod telemetry;
pub mod theorem;
pub mod wiseness;

pub use error::{ModelError, StalledWorker};
pub use fault::{FaultArm, FaultKind, FaultPlan};
pub use telemetry::{RunReport, ServerReport, TelemetrySink};
pub use metrics::{CommTrace, DegreeCounters, FoldedMetrics, SuperstepRecord};
pub use model::{DbspMachine, EvalModel, SpecModel};
