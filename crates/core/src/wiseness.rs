//! (α, p)-wiseness (Definition 3.2).
//!
//! A static network-oblivious algorithm specified on `M(v(n))` is *(α, p)-wise*
//! if for every `1 ≤ j ≤ log p`
//!
//! ```text
//! Σ_{i<j} F^i(n, 2^j)  ≥  α · (p / 2^j) · Σ_{i<j} F^i(n, p).
//! ```
//!
//! Wiseness measures how tight the folding upper bound of Lemma 3.1 is: it
//! asks that, on average, communication observed at coarse granularity does
//! not evaporate when the algorithm is folded. `α = 1` means the bound is
//! tight at every fold; the paper's algorithms achieve `α = Θ(1)` by adding
//! dummy messages.

use crate::metrics::CommTrace;

/// The outcome of a wiseness measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wiseness {
    /// The largest `α` for which the trace is (α, p)-wise. `f64::INFINITY`
    /// when every constraint is vacuous (the algorithm never communicates at
    /// fold `p`), in which case any α works.
    pub alpha: f64,
    /// The fold `j` (as a processor count `2^j`) at which the minimum was
    /// attained, if any constraint was binding.
    pub binding_fold: Option<usize>,
    /// The `p` the measurement was taken against.
    pub p: usize,
}

/// Computes the largest `α` such that the trace is (α, p)-wise, together with
/// the fold where the constraint binds.
///
/// ```
/// use nob_core::metrics::{CommTrace, SuperstepRecord};
/// use nob_core::wiseness::alpha_max;
///
/// // The paper's non-wise pattern: VP0 sends the whole volume to VP_{v/2}.
/// let mut t = CommTrace::new(16, 16);
/// t.steps.push(SuperstepRecord::from_counted_edges(0, 4, &[(0, 8, 100)]));
/// assert!((alpha_max(&t, 16).alpha - 2.0 / 16.0).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `p` is not a power of two in `[2, v]`.
pub fn alpha_max(trace: &CommTrace, p: usize) -> Wiseness {
    let at_p = trace.fold(p);
    let log_p = at_p.f.len() as u32;
    let mut alpha = f64::INFINITY;
    let mut binding = None;
    for j in 1..=log_p {
        let lhs: u64 = trace.fold(1usize << j).f.iter().sum();
        let rhs: u64 = at_p.f[..j as usize].iter().sum();
        if rhs == 0 {
            // Vacuous: no communication survives at fold p among labels < j.
            continue;
        }
        let ratio = (lhs as f64) * (1u64 << j) as f64 / (p as f64 * rhs as f64);
        if ratio < alpha {
            alpha = ratio;
            binding = Some(1usize << j);
        }
    }
    Wiseness { alpha, binding_fold: binding, p }
}

/// Checks Definition 3.2 directly for a given `α`.
pub fn is_wise(trace: &CommTrace, alpha: f64, p: usize) -> bool {
    alpha_max(trace, p).alpha >= alpha
}

/// The monotonicity fact noted after Definition 3.2: an (α, p)-wise algorithm
/// is also (α′, p′)-wise for `p′ ≤ p`, `α′ ≤ α`. Exposed for tests and
/// experiment tables.
pub fn alpha_profile(trace: &CommTrace, p_max: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let mut p = 2usize;
    while p <= p_max {
        out.push((p, alpha_max(trace, p).alpha));
        p *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SuperstepRecord;

    /// The paper's canonical *non-wise* example: a single 0-superstep where
    /// VP0 sends n messages to VP_{v/2}.
    fn unbalanced_trace(log_v: u32, n: u64) -> CommTrace {
        let v = 1usize << log_v;
        let mut t = CommTrace::new(v, n as usize);
        t.steps
            .push(SuperstepRecord::from_counted_edges(0, log_v, &[(0, v / 2, n)]));
        t
    }

    /// A perfectly balanced bisection exchange: every VP sends one message to
    /// its partner in the opposite half.
    fn balanced_trace(log_v: u32) -> CommTrace {
        let v = 1usize << log_v;
        let msgs: Vec<(usize, usize)> = (0..v / 2).map(|k| (k, k + v / 2)).collect();
        let mut t = CommTrace::new(v, v);
        t.steps.push(SuperstepRecord::from_messages(0, log_v, msgs));
        t
    }

    #[test]
    fn unbalanced_pattern_has_alpha_one_over_p() {
        // F^0(n, 2^j) = n for every j, so α = min_j 2^j·n/(p·n) = 2/p.
        let t = unbalanced_trace(4, 100);
        let w = alpha_max(&t, 16);
        assert!((w.alpha - 2.0 / 16.0).abs() < 1e-12, "alpha = {}", w.alpha);
        assert_eq!(w.binding_fold, Some(2));
    }

    #[test]
    fn balanced_pattern_is_one_wise() {
        // F^0(n, 2^j) = (v/2)/2^{j-1}·... : each proc of v/2^j VPs sends
        // v/2^j messages (every VP in the lower half), receives v/2^j in the
        // upper half: h = v/2^j, so Σ F = v/2^j and α = 2^j·(v/2^j)/(p·(v/p)) = 1.
        let t = balanced_trace(4);
        let w = alpha_max(&t, 16);
        assert!((w.alpha - 1.0).abs() < 1e-12);
        assert!(is_wise(&t, 0.99, 16));
    }

    #[test]
    fn wiseness_is_monotone_in_p() {
        let t = unbalanced_trace(5, 7);
        let prof = alpha_profile(&t, 32);
        for w in prof.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn silent_trace_is_vacuously_wise() {
        let t = CommTrace::new(8, 8);
        assert_eq!(alpha_max(&t, 8).alpha, f64::INFINITY);
    }
}
