//! Folding: executing an `M(v)` algorithm on a smaller machine `M(2^j)`.
//!
//! Under folding (Section 2 of the paper), processor `r` of `M(2^j)` carries
//! out the work of the `v/2^j` consecutively numbered virtual processors
//! starting at `r·v/2^j`. Supersteps with label `i < j` remain communication
//! supersteps; supersteps with label `i ≥ j` become local computation.
//!
//! This module provides the index arithmetic shared by the metric machinery
//! and the folded executor: ownership of VPs, cluster membership, and the
//! *externality threshold* of a message (the smallest fold at which it still
//! crosses a processor boundary).

/// The processor of `M(2^j)` that owns virtual processor `vp` of `M(2^log_v)`.
///
/// Ownership is the paper's folding map: blocks of `v/2^j` consecutive VPs.
#[inline]
pub fn proc_of_vp(vp: usize, log_v: u32, j: u32) -> usize {
    debug_assert!(j <= log_v);
    vp >> (log_v - j)
}

/// The `i`-cluster containing processing element `r` in a machine with
/// `2^log_v` elements: elements sharing the `i` most significant index bits.
#[inline]
pub fn cluster_of(r: usize, log_v: u32, i: u32) -> usize {
    debug_assert!(i <= log_v);
    r >> (log_v - i)
}

/// Whether `a` and `b` lie in the same `i`-cluster of a `2^log_v`-element machine.
#[inline]
pub fn same_cluster(a: usize, b: usize, log_v: u32, i: u32) -> bool {
    cluster_of(a, log_v, i) == cluster_of(b, log_v, i)
}

/// Number of leading index bits shared by `a` and `b` (out of `log_v`).
///
/// Equivalently: the deepest cluster level at which `a` and `b` are still
/// together. A message `a → b` is *external* at fold `2^j` iff
/// `j > common_prefix(a, b, log_v)`.
#[inline]
pub fn common_prefix(a: usize, b: usize, log_v: u32) -> u32 {
    let x = a ^ b;
    if x == 0 {
        log_v
    } else {
        let bitlen = usize::BITS - x.leading_zeros();
        debug_assert!(bitlen <= log_v, "ids wider than log_v bits");
        log_v - bitlen
    }
}

/// Whether the message `src → dst` crosses a processor boundary when the
/// machine is folded onto `2^j` processors.
#[inline]
pub fn external_at_fold(src: usize, dst: usize, log_v: u32, j: u32) -> bool {
    j > common_prefix(src, dst, log_v)
}

/// Range of virtual processors simulated by processor `r` of `M(2^j)`.
#[inline]
pub fn vps_of_proc(r: usize, log_v: u32, j: u32) -> std::ops::Range<usize> {
    let width = 1usize << (log_v - j);
    r * width..(r + 1) * width
}

/// Validates the i-superstep cluster constraint for a message.
///
/// In an `i`-superstep, a processing element may only send to peers whose
/// index agrees with its own on the `i` most significant bits.
#[inline]
pub fn message_allowed(src: usize, dst: usize, log_v: u32, label: u32) -> bool {
    common_prefix(src, dst, log_v) >= label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_ownership_is_block_cyclic_free() {
        // v = 16, fold to p = 4: blocks of 4 consecutive VPs.
        for vp in 0..16 {
            assert_eq!(proc_of_vp(vp, 4, 2), vp / 4);
        }
        // Identity fold.
        for vp in 0..16 {
            assert_eq!(proc_of_vp(vp, 4, 4), vp);
        }
        // Fold to a single processor.
        for vp in 0..16 {
            assert_eq!(proc_of_vp(vp, 4, 0), 0);
        }
    }

    #[test]
    fn common_prefix_counts_shared_msb() {
        // log_v = 4: ids are 4-bit.
        assert_eq!(common_prefix(0b0000, 0b0001, 4), 3);
        assert_eq!(common_prefix(0b0000, 0b1000, 4), 0);
        assert_eq!(common_prefix(0b0101, 0b0101, 4), 4);
        assert_eq!(common_prefix(0b0100, 0b0110, 4), 2);
    }

    #[test]
    fn externality_threshold_matches_prefix() {
        // Message 2 -> 3 in a 16-VP machine: shares 3 leading bits, so it is
        // internal at folds 2^0..2^3 and external only at full granularity.
        for j in 0..=3 {
            assert!(!external_at_fold(2, 3, 4, j));
        }
        assert!(external_at_fold(2, 3, 4, 4));
        // Message 0 -> 8 crosses the top-level bisection: external at every
        // non-trivial fold.
        for j in 1..=4 {
            assert!(external_at_fold(0, 8, 4, j));
        }
        assert!(!external_at_fold(0, 8, 4, 0));
    }

    #[test]
    fn cluster_constraint() {
        // label 1 in an 8-VP machine: halves {0..4} and {4..8}.
        assert!(message_allowed(0, 3, 3, 1));
        assert!(!message_allowed(0, 4, 3, 1));
        // label 0: everything goes.
        assert!(message_allowed(0, 7, 3, 0));
    }

    #[test]
    fn vp_ranges_partition_the_machine() {
        let log_v = 5;
        let j = 3;
        let mut seen = [false; 32];
        for r in 0..(1usize << j) {
            for vp in vps_of_proc(r, log_v, j) {
                assert!(!seen[vp]);
                seen[vp] = true;
                assert_eq!(proc_of_vp(vp, log_v, j), r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
