//! Error type shared by the model-stack constructors and checkers.

use std::fmt;

/// Where a worker that missed a gang barrier was last seen — the phase it
/// most recently *entered* per its telemetry slot, attached to
/// [`ModelError::GangStall`] when telemetry is armed so a stall report says
/// *where* the gang wedged, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledWorker {
    /// The missing worker's shard index.
    pub worker: usize,
    /// Stable name of the last phase it entered (`None` if it never
    /// entered one — it wedged before its first instrumented phase).
    pub site: Option<&'static str>,
    /// Superstep of that last phase entry.
    pub superstep: u64,
}

impl fmt::Display for StalledWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            Some(site) => {
                write!(f, "worker {} last in `{site}` at superstep {}", self.worker, self.superstep)
            }
            None => write!(f, "worker {} never entered a phase", self.worker),
        }
    }
}

/// Errors raised when constructing or combining model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A processor / virtual-processor count that must be a power of two was not.
    NotPowerOfTwo {
        /// Name of the offending quantity (e.g. `"p"`, `"v"`).
        what: &'static str,
        /// The value supplied.
        value: usize,
    },
    /// A parameter vector has the wrong length (must be `log2 p` entries).
    BadVectorLength {
        /// Name of the offending vector (`"g"` or `"ell"`).
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Number of entries supplied.
        got: usize,
    },
    /// A parameter that must be non-negative (or finite) was not.
    BadParameter {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// A fold target exceeded the machine size or was zero.
    BadFold {
        /// Requested number of processors.
        p: usize,
        /// Number of processing elements of the machine being folded.
        v: usize,
    },
    /// A superstep label outside the admissible range `[0, log v)`.
    BadLabel {
        /// The offending label.
        label: u32,
        /// `log2` of the machine size.
        log_v: u32,
    },
    /// A message violated the i-superstep cluster constraint: in an `i`-superstep
    /// a processing element may only address peers whose index agrees on the `i`
    /// most significant bits.
    ClusterViolation {
        /// Superstep label.
        label: u32,
        /// Source processing element.
        src: usize,
        /// Destination processing element.
        dst: usize,
    },
    /// A superstep's declared oblivious communication plan disagreed with the
    /// messages its SPMD closure actually sent (mis-declared route).
    PlanMismatch {
        /// Name of the offending superstep.
        step: &'static str,
        /// The processing element where the divergence was detected.
        vp: usize,
        /// Human-readable description of the divergence.
        reason: &'static str,
    },
    /// A virtual processor's SPMD closure panicked mid-superstep. The panic
    /// is caught at the phase boundary and downgraded to this structured
    /// error (uniform across the serial and sharded executors); the payload
    /// message is preserved when it was a string.
    VpPanic {
        /// Name of the superstep whose closure panicked.
        step: &'static str,
        /// The virtual processor that was executing when the panic unwound.
        vp: usize,
        /// The panic payload rendered as a string (`&str` / `String`
        /// payloads verbatim, otherwise a placeholder).
        payload: String,
    },
    /// The gang barrier's watchdog fired: at least one worker failed to
    /// arrive within the run's `stall_timeout`, so the surviving workers
    /// drained instead of deadlocking.
    GangStall {
        /// The barrier round (1-based) at which the gang stalled.
        round: u64,
        /// Number of workers that had not arrived when the watchdog fired.
        missing: usize,
        /// Where each missing worker was last seen, read from the run's
        /// telemetry slots. Empty when telemetry was disarmed (attribution
        /// needs the armed per-worker phase stamps).
        stalled: Vec<StalledWorker>,
    },
    /// A deterministic test fault fired at an instrumented failpoint
    /// (see [`crate::fault::FaultPlan`]). Never produced outside fault
    /// injection.
    FaultInjected {
        /// Name of the instrumented site that fired.
        site: &'static str,
        /// The shard (worker) that hit the site; `0` on the serial path.
        shard: usize,
        /// The superstep index at which the site fired.
        superstep: usize,
        /// How many times this site had matched before firing (0-based).
        occurrence: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} = {value} is not a power of two")
            }
            ModelError::BadVectorLength { what, expected, got } => {
                write!(f, "vector {what} has {got} entries, expected {expected}")
            }
            ModelError::BadParameter { what, reason } => {
                write!(f, "parameter {what}: {reason}")
            }
            ModelError::BadFold { p, v } => {
                write!(f, "cannot fold a machine of {v} processing elements onto p = {p}")
            }
            ModelError::BadLabel { label, log_v } => {
                write!(f, "superstep label {label} outside [0, {log_v})")
            }
            ModelError::ClusterViolation { label, src, dst } => write!(
                f,
                "message {src} -> {dst} leaves its {label}-cluster in a {label}-superstep"
            ),
            ModelError::PlanMismatch { step, vp, reason } => write!(
                f,
                "superstep `{step}`: VP {vp} diverged from the declared communication plan ({reason})"
            ),
            ModelError::VpPanic { step, vp, payload } => {
                write!(f, "superstep `{step}`: VP {vp} panicked: {payload}")
            }
            ModelError::GangStall { round, missing, stalled } => {
                write!(
                    f,
                    "gang stalled at barrier round {round}: {missing} worker(s) never arrived"
                )?;
                for (i, s) in stalled.iter().enumerate() {
                    f.write_str(if i == 0 { " (" } else { "; " })?;
                    write!(f, "{s}")?;
                }
                if !stalled.is_empty() {
                    f.write_str(")")?;
                }
                Ok(())
            }
            ModelError::FaultInjected { site, shard, superstep, occurrence } => write!(
                f,
                "injected fault at site `{site}` (shard {shard}, superstep {superstep}, \
                 occurrence {occurrence})"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
