//! Error type shared by the model-stack constructors and checkers.

use std::fmt;

/// Errors raised when constructing or combining model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A processor / virtual-processor count that must be a power of two was not.
    NotPowerOfTwo {
        /// Name of the offending quantity (e.g. `"p"`, `"v"`).
        what: &'static str,
        /// The value supplied.
        value: usize,
    },
    /// A parameter vector has the wrong length (must be `log2 p` entries).
    BadVectorLength {
        /// Name of the offending vector (`"g"` or `"ell"`).
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Number of entries supplied.
        got: usize,
    },
    /// A parameter that must be non-negative (or finite) was not.
    BadParameter {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// A fold target exceeded the machine size or was zero.
    BadFold {
        /// Requested number of processors.
        p: usize,
        /// Number of processing elements of the machine being folded.
        v: usize,
    },
    /// A superstep label outside the admissible range `[0, log v)`.
    BadLabel {
        /// The offending label.
        label: u32,
        /// `log2` of the machine size.
        log_v: u32,
    },
    /// A message violated the i-superstep cluster constraint: in an `i`-superstep
    /// a processing element may only address peers whose index agrees on the `i`
    /// most significant bits.
    ClusterViolation {
        /// Superstep label.
        label: u32,
        /// Source processing element.
        src: usize,
        /// Destination processing element.
        dst: usize,
    },
    /// A superstep's declared oblivious communication plan disagreed with the
    /// messages its SPMD closure actually sent (mis-declared route).
    PlanMismatch {
        /// Name of the offending superstep.
        step: &'static str,
        /// The processing element where the divergence was detected.
        vp: usize,
        /// Human-readable description of the divergence.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} = {value} is not a power of two")
            }
            ModelError::BadVectorLength { what, expected, got } => {
                write!(f, "vector {what} has {got} entries, expected {expected}")
            }
            ModelError::BadParameter { what, reason } => {
                write!(f, "parameter {what}: {reason}")
            }
            ModelError::BadFold { p, v } => {
                write!(f, "cannot fold a machine of {v} processing elements onto p = {p}")
            }
            ModelError::BadLabel { label, log_v } => {
                write!(f, "superstep label {label} outside [0, {log_v})")
            }
            ModelError::ClusterViolation { label, src, dst } => write!(
                f,
                "message {src} -> {dst} leaves its {label}-cluster in a {label}-superstep"
            ),
            ModelError::PlanMismatch { step, vp, reason } => write!(
                f,
                "superstep `{step}`: VP {vp} diverged from the declared communication plan ({reason})"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
