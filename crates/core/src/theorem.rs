//! Executable forms of the paper's Section-3 machinery: Lemma 3.1, Lemma 3.3,
//! the optimality theorem (Thm. 3.4) and the Section-5 extension (Thm. 5.3).
//!
//! A simulator cannot quantify over the whole algorithm class `C`, so the
//! checkers here work on *pairs* of concrete traces: the network-oblivious
//! algorithm `A` and a competitor `C ∈ C`. From the pair we *measure* the
//! largest premise constant `β` (the evaluation-model optimality degree of
//! `A` against `C` at exactly the `σ` values the proof of Thm. 3.4
//! instantiates), measure the wiseness `α` of `A`, and then verify the
//! conclusion `D_A ≤ (1+α)/(αβ) · D_C` on any admissible D-BSP machine.
//!
//! Because Thm. 3.4 is a theorem, a violation reported by these checkers
//! indicates a bug in the metric pipeline — which is precisely what the
//! property tests in `tests/` exploit.

use crate::metrics::CommTrace;
use crate::model::{log2_exact, DbspMachine};

/// The σ-ranges of the premise of Thm. 3.4: `σ^m_j ≤ σ ≤ σ^M_j` for
/// `0 ≤ j < log p̄` (entry `j` of each vector is `σ^m_j` / `σ^M_j`).
///
/// `σ^M` entries may be `f64::INFINITY` (as in Cor. 4.9).
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaRanges {
    /// Lower endpoints `σ^m_0 … σ^m_{log p̄ − 1}`.
    pub sigma_min: Vec<f64>,
    /// Upper endpoints `σ^M_0 … σ^M_{log p̄ − 1}`.
    pub sigma_max: Vec<f64>,
}

impl SigmaRanges {
    /// Ranges `[0, ∞)` at every level (the least restrictive premise).
    pub fn unrestricted(p_bar: usize) -> Self {
        let len = log2_exact(p_bar).max(1) as usize;
        SigmaRanges { sigma_min: vec![0.0; len], sigma_max: vec![f64::INFINITY; len] }
    }

    /// Ranges `[0, σ^M_j]` with the given upper endpoints.
    pub fn zero_to(sigma_max: Vec<f64>) -> Self {
        SigmaRanges { sigma_min: vec![0.0; sigma_max.len()], sigma_max }
    }

    /// The window `[ψ^m_p, ψ^M_p]` of Thm. 3.4 for a target machine size `p`:
    ///
    /// ```text
    /// ψ^m_p = max_{1≤k≤log p} σ^m_{k−1}·2^k / p,
    /// ψ^M_p = min_{1≤k≤log p} σ^M_{k−1}·2^k / p.
    /// ```
    ///
    /// The machine condition of the theorem is `ψ^m_p ≤ ℓ_i/g_i ≤ ψ^M_p`.
    pub fn psi_window(&self, p: usize) -> (f64, f64) {
        let log_p = log2_exact(p).max(1);
        let mut psi_m = 0.0f64;
        let mut psi_big = f64::INFINITY;
        for k in 1..=log_p {
            let scale = (1u64 << k) as f64 / p as f64;
            psi_m = psi_m.max(self.sigma_min[(k - 1) as usize] * scale);
            psi_big = psi_big.min(self.sigma_max[(k - 1) as usize] * scale);
        }
        (psi_m, psi_big)
    }
}

/// Lemma 3.3: if `Σ_{i<k} X_i ≤ Σ_{i<k} Y_i` for every `1 ≤ k ≤ m` and `f` is
/// non-increasing and non-negative, then `Σ X_i f_i ≤ Σ Y_i f_i`.
///
/// Returns `None` if the premise fails, otherwise `Some(Σ X f ≤ Σ Y f)` —
/// which the lemma guarantees is `true` (used by property tests).
pub fn lemma_3_3(xs: &[f64], ys: &[f64], fs: &[f64]) -> Option<bool> {
    assert!(xs.len() == ys.len() && ys.len() == fs.len());
    assert!(fs.windows(2).all(|w| w[0] >= w[1]) && fs.iter().all(|&f| f >= 0.0));
    let mut sx = 0.0;
    let mut sy = 0.0;
    for k in 0..xs.len() {
        sx += xs[k];
        sy += ys[k];
        if sx > sy + 1e-9 * sy.abs().max(1.0) {
            return None;
        }
    }
    let dot = |a: &[f64]| a.iter().zip(fs).map(|(x, f)| x * f).sum::<f64>();
    Some(dot(xs) <= dot(ys) + 1e-6 * dot(ys).abs().max(1.0))
}

/// Lemma 3.1 for a recorded trace: for every `1 ≤ j ≤ log p`,
/// `Σ_{i<j} F^i(n, 2^j) ≤ (p/2^j)·Σ_{i<j} F^i(n, p)`.
///
/// Holds for any message pattern by construction; a failure indicates a bug
/// in the degree bookkeeping.
pub fn lemma_3_1_holds(trace: &CommTrace, p: usize) -> bool {
    let at_p = trace.fold(p);
    let log_p = at_p.f.len() as u32;
    for j in 1..=log_p {
        let lhs: u64 = trace.fold(1usize << j).f.iter().sum();
        let rhs: u64 = at_p.f[..j as usize].iter().sum();
        let scale = (p >> j) as u64;
        if lhs > scale * rhs {
            return false;
        }
    }
    true
}

/// `H` as an affine function of σ at a given fold: `H(σ) = F + S·σ`.
fn h_affine(trace: &CommTrace, p: usize) -> (f64, f64) {
    let m = trace.fold(p);
    (m.total_f() as f64, m.total_s() as f64)
}

/// Ratio `H_C(σ)/H_A(σ)` handling `σ = ∞` via the slope ratio; `None` when
/// both sides vanish (vacuous).
fn h_ratio(a: (f64, f64), c: (f64, f64), sigma: f64) -> Option<f64> {
    let (num, den) = if sigma.is_infinite() {
        (c.1, a.1)
    } else {
        (c.0 + sigma * c.1, a.0 + sigma * a.1)
    };
    if den == 0.0 && num == 0.0 {
        None
    } else if den == 0.0 {
        Some(f64::INFINITY)
    } else {
        Some(num / den)
    }
}

/// The measured premise constant of Thm. 3.4 for the pair `(A, C)` and target
/// machine size `p`: the largest `β ≤ 1` such that
/// `H_A(n, 2^j, σ) ≤ (1/β)·H_C(n, 2^j, σ)` at the `σ` values the proof uses
/// (`σ = ψ·p/2^j` for `ψ ∈ {ψ^m_p, ψ^M_p}`, `1 ≤ j ≤ log p`).
pub fn beta_measured(a: &CommTrace, c: &CommTrace, ranges: &SigmaRanges, p: usize) -> f64 {
    let (psi_m, psi_big) = ranges.psi_window(p);
    let log_p = log2_exact(p).max(1);
    let mut beta = 1.0f64;
    for j in 1..=log_p {
        let fold = 1usize << j;
        let ha = h_affine(a, fold);
        let hc = h_affine(c, fold);
        for psi in [psi_m, psi_big] {
            let sigma = if psi.is_infinite() { f64::INFINITY } else { psi * p as f64 / fold as f64 };
            if let Some(r) = h_ratio(ha, hc, sigma) {
                beta = beta.min(r);
            }
        }
    }
    beta.max(0.0)
}

/// Result of checking Thm. 3.4's conclusion on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCheck {
    /// The machine's name (preset label).
    pub machine: String,
    /// Number of processors.
    pub p: usize,
    /// Communication time of the oblivious algorithm `A`.
    pub d_a: f64,
    /// Communication time of the competitor `C`.
    pub d_c: f64,
    /// The theorem's bound `(1+α)/(αβ)·D_C`.
    pub bound: f64,
    /// Whether the machine satisfied the admissibility conditions (monotone
    /// `g`, monotone `ℓ/g`, and `ℓ_i/g_i` within the ψ-window).
    pub admissible: bool,
    /// Whether `D_A ≤ bound` (meaningful only when `admissible`).
    pub holds: bool,
}

/// Full report of a Thm. 3.4 verification over a family of machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Thm34Report {
    /// Wiseness of `A` at `p̄` (clamped to `(0, 1]` as the theorem requires).
    pub alpha: f64,
    /// Measured premise constant `β` (see [`beta_measured`]; the worst over
    /// all machine sizes appearing in `machines`).
    pub beta: f64,
    /// `(1+α)/(αβ)` — the optimality loss guaranteed by the theorem.
    pub factor: f64,
    /// Per-machine outcomes.
    pub machines: Vec<MachineCheck>,
}

impl Thm34Report {
    /// Whether the theorem's conclusion held on every admissible machine.
    pub fn all_hold(&self) -> bool {
        self.machines.iter().filter(|m| m.admissible).all(|m| m.holds)
    }
}

/// Verifies the conclusion of Thm. 3.4 for the pair `(A, C)` on each machine.
///
/// `p_bar` is the wiseness reference `p̄` (machines must have `p ≤ p̄`);
/// `ranges` the premise σ-intervals. Machines failing the admissibility
/// conditions are reported with `admissible = false` and are not required to
/// satisfy the bound.
pub fn check_thm_3_4(
    a: &CommTrace,
    c: &CommTrace,
    p_bar: usize,
    ranges: &SigmaRanges,
    machines: &[DbspMachine],
) -> Thm34Report {
    let alpha = crate::wiseness::alpha_max(a, p_bar).alpha.min(1.0);
    let mut beta = 1.0f64;
    let mut checks = Vec::with_capacity(machines.len());
    for m in machines {
        let (psi_m, psi_big) = ranges.psi_window(m.p);
        let ratios = m.ell_over_g();
        let admissible = m.p <= p_bar
            && m.is_monotone()
            && psi_m <= psi_big
            && ratios.iter().all(|&r| r >= psi_m - 1e-12 && r <= psi_big + 1e-12);
        let b = beta_measured(a, c, ranges, m.p);
        if admissible {
            beta = beta.min(b);
        }
        let d_a = a.comm_time(m);
        let d_c = c.comm_time(m);
        let factor = if alpha > 0.0 && b > 0.0 { (1.0 + alpha) / (alpha * b) } else { f64::INFINITY };
        let bound = factor * d_c;
        // A non-finite factor means the premise degenerated (α or β = 0): the
        // theorem is vacuous on this machine.
        let holds = !factor.is_finite() || d_a <= bound * (1.0 + 1e-9);
        checks.push(MachineCheck { machine: m.name.clone(), p: m.p, d_a, d_c, bound, admissible, holds });
    }
    let factor = if alpha > 0.0 && beta > 0.0 { (1.0 + alpha) / (alpha * beta) } else { f64::INFINITY };
    Thm34Report { alpha, beta, factor, machines: checks }
}

/// The optimality factor of Thm. 5.3: an algorithm that is `β`-optimal in the
/// evaluation model and `(γ, p̄)-full` is `Θ(β / ((1 + 1/γ)·log² p̄))`-optimal
/// on admissible D-BSP machines when run under the ascend–descend protocol.
pub fn thm_5_3_factor(beta: f64, gamma: f64, p_bar: usize) -> f64 {
    let lp = (log2_exact(p_bar).max(1)) as f64;
    if gamma <= 0.0 || beta <= 0.0 {
        return 0.0;
    }
    beta / ((1.0 + 1.0 / gamma) * lp * lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SuperstepRecord;

    fn bisection_trace(log_v: u32, reps: usize) -> CommTrace {
        let v = 1usize << log_v;
        let mut t = CommTrace::new(v, v);
        for _ in 0..reps {
            let msgs: Vec<(usize, usize)> = (0..v / 2).map(|k| (k, k + v / 2)).collect();
            t.steps.push(SuperstepRecord::from_messages(0, log_v, msgs));
        }
        t
    }

    #[test]
    fn sigma_window() {
        // σ^m = 0 everywhere, σ^M_j = 8/2^j at p̄ = 8.
        let r = SigmaRanges::zero_to(vec![8.0, 4.0, 2.0]);
        let (lo, hi) = r.psi_window(8);
        assert_eq!(lo, 0.0);
        // min over k of σ^M_{k−1}·2^k/8 = min(8·2/8, 4·4/8, 2·8/8) = 2.
        assert_eq!(hi, 2.0);
    }

    #[test]
    fn lemma_3_3_basic() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 2.0, 3.0];
        let fs = [3.0, 2.0, 1.0];
        assert_eq!(lemma_3_3(&xs, &ys, &fs), Some(true));
        // Premise violated at k = 1.
        let xs = [3.0, 0.0, 0.0];
        let ys = [2.0, 2.0, 3.0];
        assert_eq!(lemma_3_3(&xs, &ys, &fs), None);
    }

    #[test]
    fn lemma_3_1_on_simple_traces() {
        assert!(lemma_3_1_holds(&bisection_trace(4, 3), 16));
        // Unbalanced single-sender pattern also satisfies the lemma.
        let mut t = CommTrace::new(16, 16);
        t.steps.push(SuperstepRecord::from_counted_edges(0, 4, &[(0, 8, 77)]));
        assert!(lemma_3_1_holds(&t, 16));
    }

    #[test]
    fn beta_of_identical_traces_is_one() {
        let t = bisection_trace(3, 2);
        let r = SigmaRanges::unrestricted(8);
        assert_eq!(beta_measured(&t, &t, &r, 8), 1.0);
    }

    #[test]
    fn thm_3_4_holds_for_identical_traces() {
        let t = bisection_trace(3, 2);
        let machines = vec![
            DbspMachine::new(8, vec![4.0, 2.0, 1.0], vec![16.0, 4.0, 1.0]).unwrap().named("geo"),
            DbspMachine::new(8, vec![1.0; 3], vec![2.0; 3]).unwrap().named("uniform"),
        ];
        let r = SigmaRanges::unrestricted(8);
        let rep = check_thm_3_4(&t, &t, 8, &r, &machines);
        assert!(rep.all_hold(), "{rep:?}");
        assert_eq!(rep.beta, 1.0);
        assert_eq!(rep.alpha, 1.0);
        // factor (1+α)/(αβ) = 2 for α = β = 1.
        assert_eq!(rep.factor, 2.0);
    }

    #[test]
    fn inadmissible_machines_are_flagged() {
        let t = bisection_trace(3, 1);
        // g increasing: not monotone.
        let bad = DbspMachine::new(8, vec![1.0, 2.0, 3.0], vec![3.0, 3.0, 3.0]).unwrap();
        let r = SigmaRanges::unrestricted(8);
        let rep = check_thm_3_4(&t, &t, 8, &r, &[bad]);
        assert!(!rep.machines[0].admissible);
        assert!(rep.all_hold()); // vacuously: no admissible machines.
    }

    #[test]
    fn beta_detects_asymmetry() {
        // A twice as expensive as C: β = 1/2 (A is only 1/2-optimal vs C).
        let a = bisection_trace(3, 4);
        let c = bisection_trace(3, 2);
        let r = SigmaRanges::unrestricted(8);
        assert_eq!(beta_measured(&a, &c, &r, 8), 0.5);
        // The better algorithm measures β = 1 (clamped).
        assert_eq!(beta_measured(&c, &a, &r, 8), 1.0);
    }

    #[test]
    fn psi_window_with_infinite_upper_bounds() {
        let r = SigmaRanges::unrestricted(8);
        let (lo, hi) = r.psi_window(8);
        assert_eq!(lo, 0.0);
        assert!(hi.is_infinite());
        // Mixed finite/infinite: the finite entry rules.
        let r = SigmaRanges {
            sigma_min: vec![0.0; 3],
            sigma_max: vec![f64::INFINITY, 8.0, f64::INFINITY],
        };
        let (_, hi) = r.psi_window(8);
        assert_eq!(hi, 8.0 * 4.0 / 8.0); // σ^M_1·2²/8
    }

    #[test]
    fn nonempty_sigma_window_is_required_for_admissibility() {
        // σ^m too large relative to σ^M at another level → ψm > ψM: the
        // theorem's footnote-4 condition fails and machines are inadmissible.
        let t = bisection_trace(3, 1);
        let r = SigmaRanges { sigma_min: vec![100.0, 0.0, 0.0], sigma_max: vec![200.0, 1.0, 1.0] };
        let (lo, hi) = r.psi_window(8);
        assert!(lo > hi);
        let m = DbspMachine::new(8, vec![1.0; 3], vec![1.0; 3]).unwrap();
        let rep = check_thm_3_4(&t, &t, 8, &r, &[m]);
        assert!(!rep.machines[0].admissible);
    }

    #[test]
    fn thm_5_3_factor_shape() {
        // β = 1, γ = 1, p̄ = 16: factor = 1/(2·16) = 1/32.
        assert!((thm_5_3_factor(1.0, 1.0, 16) - 1.0 / 32.0).abs() < 1e-12);
        assert_eq!(thm_5_3_factor(1.0, 0.0, 16), 0.0);
    }
}
