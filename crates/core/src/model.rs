//! The three models of the framework: `M(v)` (specification), `M(p, σ)`
//! (evaluation) and D-BSP(p, **g**, **ℓ**) (execution machine model).
//!
//! All three share the organization of Section 2 of the paper: a set of
//! CPU/memory nodes, indexed `0..count`, communicating in labelled supersteps.
//! The structs here carry only the *parameters* of each model; executable
//! semantics live in the `nob-machine` crate, and cost evaluation in
//! [`crate::metrics`].

use crate::error::ModelError;

/// The paper's logarithm convention: `log x = max(1, log2 x)`.
///
/// Used wherever a logarithm appears in a cost bound, so that expressions such
/// as `log(n/p)` stay well-defined (and ≥ 1) when `n = p`.
#[inline]
pub fn paper_log2(x: f64) -> f64 {
    debug_assert!(x > 0.0, "paper_log2 of non-positive value");
    x.log2().max(1.0)
}

/// Exact base-2 logarithm of a power of two.
///
/// # Panics
/// Panics in debug builds if `x` is not a positive power of two.
#[inline]
pub fn log2_exact(x: usize) -> u32 {
    debug_assert!(x.is_power_of_two(), "log2_exact({x}): not a power of two");
    x.trailing_zeros()
}

/// Validates that `value` is a power of two, returning its log.
pub fn require_pow2(what: &'static str, value: usize) -> Result<u32, ModelError> {
    if value == 0 || !value.is_power_of_two() {
        Err(ModelError::NotPowerOfTwo { what, value })
    } else {
        Ok(value.trailing_zeros())
    }
}

/// The specification model `M(v(n))`: the machine a network-oblivious algorithm
/// is written for. Its only parameter is the number of *virtual processors*,
/// chosen by the algorithm designer as a function of the input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecModel {
    /// Number of virtual processors `v(n)` (a power of two).
    pub v: usize,
}

impl SpecModel {
    /// Creates a specification model with `v` virtual processors.
    pub fn new(v: usize) -> Result<Self, ModelError> {
        require_pow2("v", v)?;
        Ok(SpecModel { v })
    }

    /// `log2 v`: the number of distinct superstep labels `0 ≤ i < log v`.
    #[inline]
    pub fn log_v(&self) -> u32 {
        log2_exact(self.v)
    }

    /// Checks that `label` is an admissible superstep label for this machine.
    pub fn check_label(&self, label: u32) -> Result<(), ModelError> {
        // For v = 2 the paper's convention log v = max(1, log2 v) = 1 admits label 0.
        let log_v = self.log_v().max(1);
        if label >= log_v {
            Err(ModelError::BadLabel { label, log_v })
        } else {
            Ok(())
        }
    }
}

/// The evaluation model `M(p, σ)`: `p` processors with a fixed
/// latency-plus-synchronization cost `σ` per superstep. Coincides with BSP at
/// `g = 1`, `ℓ = σ` (Section 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalModel {
    /// Number of processors (a power of two).
    pub p: usize,
    /// Latency/synchronization cost charged once per superstep (`σ ≥ 0`).
    pub sigma: f64,
}

impl EvalModel {
    /// Creates an evaluation model `M(p, σ)`.
    pub fn new(p: usize, sigma: f64) -> Result<Self, ModelError> {
        require_pow2("p", p)?;
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(ModelError::BadParameter {
                what: "sigma",
                reason: "must be finite and >= 0",
            });
        }
        Ok(EvalModel { p, sigma })
    }

    /// `log2 p`.
    #[inline]
    pub fn log_p(&self) -> u32 {
        log2_exact(self.p)
    }
}

/// The execution machine model D-BSP(p, **g**, **ℓ**).
///
/// Processors are partitioned into nested *i-clusters* (the `p/2^i` processors
/// sharing the `i` most significant index bits). An `i`-superstep of degree `h`
/// costs `h·g_i + ℓ_i` time units: `g_i` is an inverse bandwidth and `ℓ_i` a
/// latency-plus-synchronization cost for communication confined to i-clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct DbspMachine {
    /// Number of processors (a power of two).
    pub p: usize,
    /// Inverse-bandwidth vector `g = (g_0, …, g_{log p − 1})`, time per message.
    pub g: Vec<f64>,
    /// Latency vector `ℓ = (ℓ_0, …, ℓ_{log p − 1})`, time per superstep.
    pub ell: Vec<f64>,
    /// Optional human-readable name (used by presets and experiment tables).
    pub name: String,
}

impl DbspMachine {
    /// Creates a D-BSP machine, validating vector lengths and non-negativity.
    pub fn new(p: usize, g: Vec<f64>, ell: Vec<f64>) -> Result<Self, ModelError> {
        let log_p = require_pow2("p", p)?.max(1) as usize;
        if g.len() != log_p {
            return Err(ModelError::BadVectorLength { what: "g", expected: log_p, got: g.len() });
        }
        if ell.len() != log_p {
            return Err(ModelError::BadVectorLength {
                what: "ell",
                expected: log_p,
                got: ell.len(),
            });
        }
        for (what, v) in [("g", &g), ("ell", &ell)] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(ModelError::BadParameter { what, reason: "entries must be finite and >= 0" });
            }
        }
        if g.contains(&0.0) {
            // ℓ_i/g_i ratios appear throughout Thm 3.4; keep them well-defined.
            return Err(ModelError::BadParameter { what: "g", reason: "entries must be > 0" });
        }
        Ok(DbspMachine { p, g, ell, name: String::new() })
    }

    /// Attaches a preset name (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// `log2 p`.
    #[inline]
    pub fn log_p(&self) -> u32 {
        log2_exact(self.p)
    }

    /// The ratio vector `ℓ_i / g_i` (a capacity measure; see Thm. 3.4).
    pub fn ell_over_g(&self) -> Vec<f64> {
        self.g.iter().zip(&self.ell).map(|(g, l)| l / g).collect()
    }

    /// The monotonicity assumption of Theorem 3.4: both `g_i` and `ℓ_i/g_i`
    /// must be non-increasing in `i` (larger submachines communicate more
    /// expensively and have more capacity).
    pub fn is_monotone(&self) -> bool {
        let ratios = self.ell_over_g();
        self.g.windows(2).all(|w| w[0] >= w[1] - 1e-12)
            && ratios.windows(2).all(|w| w[0] >= w[1] - 1e-12)
    }

    /// Folds this machine description onto the top `2^j`-processor view:
    /// the machine D-BSP(2^j, (g_0..g_{j−1}), (ℓ_0..ℓ_{j−1})).
    ///
    /// This is the machine "seen" by an algorithm using only supersteps of
    /// label `< j`.
    pub fn prefix(&self, p: usize) -> Result<DbspMachine, ModelError> {
        let j = require_pow2("p", p)?;
        if p > self.p {
            return Err(ModelError::BadFold { p, v: self.p });
        }
        let j = (j.max(1)) as usize;
        Ok(DbspMachine {
            p,
            g: self.g[..j].to_vec(),
            ell: self.ell[..j].to_vec(),
            name: format!("{}[..{}]", self.name, p),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_log_is_clamped_at_one() {
        assert_eq!(paper_log2(1.0), 1.0);
        assert_eq!(paper_log2(2.0), 1.0);
        assert_eq!(paper_log2(8.0), 3.0);
        assert!((paper_log2(1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spec_model_validates_power_of_two() {
        assert!(SpecModel::new(8).is_ok());
        assert_eq!(
            SpecModel::new(12),
            Err(ModelError::NotPowerOfTwo { what: "v", value: 12 })
        );
        assert!(SpecModel::new(0).is_err());
    }

    #[test]
    fn labels_are_bounded_by_log_v() {
        let m = SpecModel::new(8).unwrap();
        assert!(m.check_label(0).is_ok());
        assert!(m.check_label(2).is_ok());
        assert!(m.check_label(3).is_err());
        // v = 2: only label 0 is admissible.
        let m2 = SpecModel::new(2).unwrap();
        assert!(m2.check_label(0).is_ok());
        assert!(m2.check_label(1).is_err());
    }

    #[test]
    fn eval_model_rejects_negative_sigma() {
        assert!(EvalModel::new(4, 0.0).is_ok());
        assert!(EvalModel::new(4, -1.0).is_err());
        assert!(EvalModel::new(4, f64::NAN).is_err());
    }

    #[test]
    fn dbsp_validates_vector_lengths() {
        assert!(DbspMachine::new(8, vec![2.0, 1.5, 1.0], vec![9.0, 4.0, 1.0]).is_ok());
        assert!(DbspMachine::new(8, vec![1.0; 2], vec![1.0; 3]).is_err());
        assert!(DbspMachine::new(8, vec![1.0; 3], vec![1.0; 2]).is_err());
        // p = 2 needs exactly one entry.
        assert!(DbspMachine::new(2, vec![1.0], vec![0.5]).is_ok());
    }

    #[test]
    fn dbsp_monotonicity() {
        let m = DbspMachine::new(8, vec![4.0, 2.0, 1.0], vec![16.0, 4.0, 1.0]).unwrap();
        assert!(m.is_monotone()); // ratios 4, 2, 1
        let m = DbspMachine::new(8, vec![1.0, 2.0, 1.0], vec![1.0; 3]).unwrap();
        assert!(!m.is_monotone()); // g increases
        let m = DbspMachine::new(8, vec![1.0, 1.0, 1.0], vec![1.0, 4.0, 1.0]).unwrap();
        assert!(!m.is_monotone()); // ℓ/g increases then decreases
    }

    #[test]
    fn dbsp_prefix_takes_leading_levels() {
        let m = DbspMachine::new(8, vec![4.0, 2.0, 1.0], vec![16.0, 4.0, 1.0]).unwrap();
        let m2 = m.prefix(4).unwrap();
        assert_eq!(m2.p, 4);
        assert_eq!(m2.g, vec![4.0, 2.0]);
        assert_eq!(m2.ell, vec![16.0, 4.0]);
        assert!(m.prefix(16).is_err());
    }

    #[test]
    fn dbsp_rejects_zero_bandwidth() {
        assert!(DbspMachine::new(4, vec![1.0, 0.0], vec![1.0, 1.0]).is_err());
    }
}
