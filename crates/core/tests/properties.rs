//! Property-based tests of the model stack.
//!
//! The key idea: Lemma 3.1, Lemma 3.3 and Theorem 3.4 are *theorems* about
//! the quantities the paper defines. If our metric bookkeeping implements the
//! definitions correctly, the theorems must hold on every randomly generated
//! static program and every admissible machine — any counterexample found by
//! proptest is a bug in the pipeline, not in the paper.

use nob_core::folding::message_allowed;
use nob_core::machines;
use nob_core::metrics::{CommTrace, SuperstepRecord};
use nob_core::model::DbspMachine;
use nob_core::theorem::{check_thm_3_4, lemma_3_1_holds, lemma_3_3, SigmaRanges};
use nob_core::wiseness::alpha_profile;
use proptest::prelude::*;

/// A randomly generated static program trace on M(2^log_v): a list of
/// supersteps, each with a label and a set of cluster-respecting messages.
fn arb_trace(log_v: u32) -> impl Strategy<Value = CommTrace> {
    let v = 1usize << log_v;
    let step = (0..log_v, proptest::collection::vec((0..v, 0..v, 1u64..5), 0..24)).prop_map(
        move |(label, raw)| {
            // Clamp each message into the sender's label-cluster.
            let cluster = v >> label;
            let edges: Vec<(usize, usize, u64)> = raw
                .into_iter()
                .map(|(src, dst, c)| {
                    let base = (src / cluster) * cluster;
                    let dst = base + dst % cluster;
                    debug_assert!(message_allowed(src, dst, log_v, label));
                    (src, dst, c)
                })
                .filter(|(s, d, _)| s != d)
                .collect();
            SuperstepRecord::from_counted_edges(label, log_v, &edges)
        },
    );
    proptest::collection::vec(step, 1..10).prop_map(move |steps| {
        let mut t = CommTrace::new(v, v);
        t.steps = steps;
        t
    })
}

/// A random D-BSP machine satisfying the monotonicity assumptions of Thm 3.4.
fn arb_monotone_machine(p: usize) -> impl Strategy<Value = DbspMachine> {
    let len = p.trailing_zeros().max(1) as usize;
    (
        1.0f64..8.0,
        proptest::collection::vec(0.3f64..1.0, len),
        0.0f64..64.0,
        proptest::collection::vec(0.3f64..1.0, len),
    )
        .prop_map(move |(g0, g_decay, r0, r_decay)| {
            let mut g = Vec::with_capacity(len);
            let mut ell = Vec::with_capacity(len);
            let mut gi = g0;
            let mut ri = r0;
            for k in 0..len {
                g.push(gi);
                ell.push(gi * ri);
                gi *= g_decay[k];
                ri *= r_decay[k];
            }
            DbspMachine::new(p, g, ell).unwrap().named("random-monotone")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 3.1 holds on arbitrary cluster-respecting message patterns.
    #[test]
    fn lemma_3_1_universal(t in (2u32..7).prop_flat_map(arb_trace)) {
        let v = t.v();
        prop_assert!(lemma_3_1_holds(&t, v));
        // ... and between every intermediate pair of folds.
        let mut p = 2;
        while p <= v {
            prop_assert!(lemma_3_1_holds(&t, p));
            p *= 2;
        }
    }

    /// The evaluation model is the D-BSP with g = 1, ℓ = σ (Section 2).
    #[test]
    fn eval_model_is_flat_dbsp(t in (2u32..6).prop_flat_map(arb_trace), sigma in 0.0f64..100.0) {
        let v = t.v();
        let mut p = 2;
        while p <= v {
            let m = machines::evaluation(p, sigma);
            prop_assert!((t.comm_time(&m) - t.comm_complexity(p, sigma)).abs() < 1e-6);
            p *= 2;
        }
    }

    /// Degrees can only grow with message multiplicity.
    #[test]
    fn h_monotone_in_multiplicity(log_v in 2u32..6, src in 0usize..32, dst in 0usize..32, c in 1u64..50) {
        let v = 1usize << log_v;
        let (src, dst) = (src % v, dst % v);
        prop_assume!(src != dst);
        let small = SuperstepRecord::from_counted_edges(0, log_v, &[(src, dst, c)]);
        let big = SuperstepRecord::from_counted_edges(0, log_v, &[(src, dst, c + 1)]);
        for j in 1..=log_v {
            prop_assert!(small.h(j) <= big.h(j));
        }
    }

    /// Lemma 3.3 on random sequences whose prefixes are dominated.
    #[test]
    fn lemma_3_3_universal(
        ys in proptest::collection::vec(0.0f64..10.0, 1..8),
        deficit in proptest::collection::vec(0.0f64..1.0, 8),
        f0 in 0.0f64..5.0,
        decay in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        // Construct xs with every prefix sum below ys's prefix sum.
        let m = ys.len();
        let mut xs = vec![0.0; m];
        let mut slack = 0.0;
        for k in 0..m {
            xs[k] = ys[k] - deficit[k].min(ys[k] + slack).max(0.0);
            slack += ys[k] - xs[k];
        }
        let mut fs = vec![0.0; m];
        let mut f = f0;
        for k in 0..m {
            fs[k] = f;
            f *= decay[k];
        }
        // Premise holds by construction, so the lemma must conclude true.
        prop_assert_eq!(lemma_3_3(&xs, &ys, &fs), Some(true));
    }

    /// Theorem 3.4's inequality chain holds end-to-end on random trace pairs
    /// and random admissible machines (with the unrestricted σ premise).
    #[test]
    fn thm_3_4_universal(
        (a, c) in (3u32..6).prop_flat_map(|lv| (arb_trace(lv), arb_trace(lv))),
        ms in proptest::collection::vec((1u32..6).prop_flat_map(|j| arb_monotone_machine(1usize << j)), 1..4),
    ) {
        let p_bar = a.v();
        let ranges = SigmaRanges::unrestricted(p_bar);
        let machines: Vec<DbspMachine> = ms.into_iter().filter(|m| m.p <= p_bar).collect();
        prop_assume!(!machines.is_empty());
        let report = check_thm_3_4(&a, &c, p_bar, &ranges, &machines);
        // When α or β degenerate the theorem is vacuous (bound = ∞): all_hold
        // accounts for that via the infinite bound.
        prop_assert!(report.all_hold(), "violation: {report:#?}");
    }

    /// Wiseness is monotone: (α, p)-wise implies (α, p′)-wise for p′ ≤ p.
    #[test]
    fn wiseness_monotone(t in (3u32..7).prop_flat_map(arb_trace)) {
        let prof = alpha_profile(&t, t.v());
        for w in prof.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
    }
}
