//! Flat, double-buffered mailbox arenas and shard message lanes: the
//! zero-allocation message path.
//!
//! All of the engine's `unsafe` lives here, behind four small abstractions:
//!
//! * `Arena` — a contiguous message slab (`Vec<MaybeUninit<M>>`) plus
//!   per-VP offset ranges. Each shard (the whole machine, for the serial
//!   engine) owns two arenas swapped each superstep: the shard *reads* the
//!   messages delivered by the previous superstep from one while the gather
//!   pass *writes* this superstep's messages into the other. Steady-state
//!   supersteps reuse the slabs' capacity and allocate nothing.
//! * [`Inbox`] — the per-VP view handed to superstep closures. It yields
//!   messages **by value** straight out of the slab (`pop`, `drain`) and
//!   drops whatever the closure did not consume, mirroring the semantics of
//!   the per-VP `Vec` inboxes it replaces.
//! * `route_serial` — the serial counting-sort scatter that moves staged
//!   messages from the staging outbox into the write arena, grouped by
//!   destination VP in ascending-source order (stable, so delivery order is
//!   identical to the legacy per-VP delivery loop).
//! * `DirectOut` — the *planned* alternative to staging + counting sort:
//!   for supersteps with a compiled communication plan, VP closures write
//!   payloads straight into their destination arena slots through
//!   cursor-guarded raw writes (see invariant 4).
//! * `DirectShard` / `DirectGrid` — the sharded form of the same idea:
//!   each worker *publishes* a window onto its write arena (slab pointer
//!   plus a per-(source shard, destination VP) slot-region table) before a
//!   planned superstep, and every peer's VP closures then write payloads
//!   straight into the remote arena slots their route owns — no lane
//!   staging, no per-shard counting sort, one barrier per planned
//!   superstep (see invariant 5).
//! * `Lane` / `LaneGrid` — the sharded executor's cross-shard message
//!   path for *dynamic* supersteps: one lane per (source shard,
//!   destination shard) pair, staged in structure-of-arrays form
//!   (`LaneHdr` headers separate from payloads) so metric/validation scans
//!   touch only the compact header stream and dummy messages carry no
//!   payload slot at all. The grid replaces the legacy global scatter, in
//!   which every worker re-scanned the entire staging buffer.
//!
//! # Safety invariants
//!
//! 1. `Arena.slab[..Arena.filled]` is initialized; everything past `filled`
//!    is uninitialized. `filled` is only nonzero between a completed scatter
//!    and the next read phase.
//! 2. The read phase takes the initialized prefix with `Arena::take_read`,
//!    which resets `filled` to 0 first: from that point the [`Inbox`] views
//!    own the messages (each slab slot is covered by exactly one inbox, per
//!    the offsets built during scatter), and [`Inbox`]'s `Drop` consumes the
//!    leftovers. If a VP closure panics, inboxes not yet constructed leak
//!    their messages — safe, never observed as initialized again because
//!    `filled` is already 0.
//! 3. `LaneGrid` access is phase-disciplined: during a superstep's *send*
//!    phase, lane `(s, d)` is touched only by shard `s` (via
//!    `LaneGrid::lane_out`); during the *gather* phase, only by shard `d`
//!    (via `LaneGrid::lane_in`). The two phases are separated by the
//!    executor's barrier, which also provides the necessary happens-before
//!    edges. Lanes themselves are plain `Vec`s — payload moves go through
//!    safe `drain`, so a superstep abandoned mid-phase (validation error,
//!    panic) drops any staged payloads through normal `Vec` destructors.
//! 4. `DirectOut` never trusts the declared route: every write is
//!    bounds-checked against its destination's planned slot range (disjoint
//!    ranges ⇒ each slot written at most once) and the engine compares the
//!    written total against the plan *before* `commit_write`, so a slab is
//!    only ever published fully initialized. On the mismatch path nothing
//!    is committed; partially written payloads are leaked (never dropped,
//!    never re-observed), bounded by one superstep's traffic.
//! 5. `DirectGrid` slot ownership is phase-disciplined like the lane grid,
//!    but at *slot-region* granularity. A window for write-arena parity `x`
//!    is published only by the arena's owner during a *prepare* phase and
//!    read by peers only in the *exec* phases that follow the next barrier;
//!    consecutive planned supersteps alternate parities, so a window is
//!    never republished while a peer may still read it. Within an exec
//!    phase, the cursor table row of source shard `s` (and the disjoint
//!    slot regions those cursors index) is touched only by worker `s`; the
//!    immutable `starts` table is shared read-only. Region bounds are
//!    enforced on every write exactly as in invariant 4 — `cursors[s][d] <
//!    starts[s + 1][d]`, regions disjoint by the prefix-sum construction —
//!    and each worker's written total is compared against its declared
//!    payload total before any arena is committed, so a committed slab is
//!    fully initialized with each slot written exactly once no matter what
//!    the routes declared. The executor's barrier provides every
//!    happens-before edge (publish → read, peer writes → owner commit).
//!    During *fused* (shard-local planned) supersteps this discipline
//!    degenerates to exclusivity: the plan proved every payload of worker
//!    `w` stays inside shard `w`, so the window slot at `(parity, w)` — its
//!    publication, its cursor row, its slot regions and the commit — is
//!    touched only by worker `w` itself, and no barrier (hence no
//!    happens-before edge to any peer) is required at all.
#![allow(unsafe_code)]

use crate::program::Envelope;
use nob_core::ModelError;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::RangeFull;

/// Checked increment of a per-destination payload count. A wrapped `u32`
/// count would mis-size the write arena and send the unsafe scatter out of
/// bounds, and a silently *capped* count would corrupt the counting-sort
/// offsets downstream — so hitting the design limit is a [`ModelError`],
/// surfaced like any other model violation, never a saturation.
#[inline]
pub(crate) fn bump_count(count: &mut u32) -> Result<(), ModelError> {
    *count = count.checked_add(1).ok_or(ModelError::BadParameter {
        what: "dst_counts",
        reason: "superstep exceeds the 2^32 - 1 messages-per-destination design limit",
    })?;
    Ok(())
}

/// Names of the fault-injection edges owned by this module: the
/// per-destination counting pass feeding [`bump_count`] and the arena
/// (re)growth in [`Arena::prepare_write`]. Both executors call
/// [`fault_edge`] with these right before entering the edge, so the chaos
/// suite can prove that a failure while sizing or growing the arenas rides
/// the normal abort protocol (no partially committed arena is ever read).
pub(crate) const FAULT_BUMP_COUNT: &str = "mailbox:bump_count";
/// See [`FAULT_BUMP_COUNT`].
pub(crate) const FAULT_PREPARE_WRITE: &str = "mailbox:prepare_write";

/// Fault-injection check at one of this module's instrumented edges:
/// delegates to the run's [`nob_core::fault::FaultPlan`] when one is armed;
/// a run without a plan pays a single `Option` discriminant test.
#[inline]
pub(crate) fn fault_edge(
    faults: Option<&nob_core::fault::FaultPlan>,
    site: &'static str,
    shard: usize,
    superstep: usize,
) -> Result<(), ModelError> {
    match faults {
        Some(plan) => plan.check(site, shard, superstep),
        None => Ok(()),
    }
}

/// One half of the double buffer: a message slab grouped by destination VP.
pub(crate) struct Arena<M> {
    slab: Vec<MaybeUninit<M>>,
    /// Half-open ranges: VP `r`'s inbox is `slab[offsets[r] .. offsets[r+1]]`.
    offsets: Vec<u32>,
    /// Initialized prefix length of `slab` (invariant 1).
    filled: usize,
    /// `Some(k)` when `offsets` currently holds the affine prefix sum of a
    /// uniform per-destination count `k` (`offsets[d] = d * k`), letting
    /// [`Arena::prepare_write_uniform`] skip rebuilding an unchanged table.
    /// Any general prepare invalidates it.
    uniform_k: Option<u32>,
}

impl<M> Arena<M> {
    pub(crate) fn new(v: usize) -> Self {
        Arena { slab: Vec::new(), offsets: vec![0; v + 1], filled: 0, uniform_k: Some(0) }
    }

    /// Heap footprint of the message slab in bytes (capacity, not fill) —
    /// the double buffer's high-water memory signal, recorded as the
    /// [`nob_core::telemetry::Counter::ArenaBytes`] gauge when a worker
    /// retires a run with telemetry armed.
    pub(crate) fn slab_bytes(&self) -> u64 {
        (self.slab.capacity() * std::mem::size_of::<M>()) as u64
    }

    /// Hands the initialized prefix and the offset table to the read phase,
    /// transferring ownership of the messages to the inboxes the engine will
    /// carve out of the returned slice (invariant 2).
    pub(crate) fn take_read(&mut self) -> (&mut [MaybeUninit<M>], &[u32]) {
        let filled = std::mem::replace(&mut self.filled, 0);
        (&mut self.slab[..filled], &self.offsets)
    }

    /// Rebuilds the offset table from per-destination counts (prefix sum)
    /// and returns the total; the slab is grown to fit. Also leaves
    /// `cursors[d] = offsets[d]` ready for the scatter, and **zeroes
    /// `counts` as it consumes them** — fused into the prefix-sum pass so
    /// the engine never pays a separate `O(v)` clear per superstep (sparse
    /// supersteps of 853-step folded sorts used to pay a full `fill(0)`
    /// sweep on top of this loop).
    pub(crate) fn prepare_write(&mut self, counts: &mut [u32], cursors: &mut [u32]) -> usize {
        debug_assert_eq!(self.filled, 0, "arena overwritten while holding messages");
        self.uniform_k = None;
        let v = counts.len();
        debug_assert_eq!(self.offsets.len(), v + 1);
        // Accumulate in u64 and check the fit: a wrapped u32 offset table
        // would send the unsafe scatter out of bounds, so an over-capacity
        // superstep must fail loudly instead (2^32 messages per superstep is
        // the arena's design limit).
        let mut acc = 0u64;
        for d in 0..v {
            self.offsets[d] = acc as u32;
            cursors[d] = acc as u32;
            acc += u64::from(counts[d]);
            counts[d] = 0;
        }
        // allow-panic: release-mode hard guard — a saturated per-destination
        // count (u32::MAX) must fail here rather than under-size the slab
        // and send the unsafe scatter out of bounds.
        assert!(acc < u64::from(u32::MAX), "superstep exceeds the 2^32 - 1 message design limit");
        self.offsets[v] = acc as u32;
        let total = acc as usize;
        if self.slab.len() < total {
            self.slab.resize_with(total, MaybeUninit::uninit);
        }
        total
    }

    /// [`Arena::prepare_write`] with the per-destination counts supplied by
    /// a closure instead of a materialized slice: the layout fast path of
    /// planned supersteps reads counts straight from an `O(1)`
    /// [`crate::plan::PlanLayout`] summary, skipping both the route
    /// enumeration that would fill a counts vector and the zeroing contract
    /// that comes with it (no counts slice is touched, so the caller's
    /// all-zero `dst_counts` invariant is trivially preserved).
    pub(crate) fn prepare_write_counts(
        &mut self,
        count_of: impl Fn(usize) -> u32,
        cursors: &mut [u32],
    ) -> usize {
        debug_assert_eq!(self.filled, 0, "arena overwritten while holding messages");
        self.uniform_k = None;
        let v = cursors.len();
        debug_assert_eq!(self.offsets.len(), v + 1);
        // Same u64 accumulation + fit check as `prepare_write`: a wrapped
        // u32 offset table would send the unsafe scatter out of bounds.
        let mut acc = 0u64;
        for (d, cursor) in cursors.iter_mut().enumerate() {
            self.offsets[d] = acc as u32;
            *cursor = acc as u32;
            acc += u64::from(count_of(d));
        }
        // allow-panic: release-mode hard guard — a wrapped u32 offset table
        // would send the unsafe scatter out of bounds.
        assert!(acc < u64::from(u32::MAX), "superstep exceeds the 2^32 - 1 message design limit");
        self.offsets[v] = acc as u32;
        let total = acc as usize;
        if self.slab.len() < total {
            self.slab.resize_with(total, MaybeUninit::uninit);
        }
        total
    }

    /// [`Arena::prepare_write_counts`] specialized to a uniform
    /// per-destination count `k` (`offsets[d] = d * k`): the affine table
    /// is rebuilt only when `k` changed since this arena's last uniform
    /// prepare — pipelines of same-shape planned steps (butterflies,
    /// shuffles, transposes) pay one cursor-reset `memcpy` per superstep
    /// instead of a loop-carried prefix sum over both tables.
    /// `cursors` is `None` when the caller delivers through the unit-layout
    /// seen-bitmap (no cursor table consumed that superstep).
    pub(crate) fn prepare_write_uniform(&mut self, k: u32, cursors: Option<&mut [u32]>) -> usize {
        debug_assert_eq!(self.filled, 0, "arena overwritten while holding messages");
        let v = self.offsets.len() - 1;
        // Same release-mode fit check as `prepare_write` — a wrapped u32
        // offset table would send the unsafe scatter out of bounds.
        // allow-panic: the hard guard must survive release builds.
        let acc = v as u64 * u64::from(k);
        assert!(acc < u64::from(u32::MAX), "superstep exceeds the 2^32 - 1 message design limit");
        if self.uniform_k != Some(k) {
            for (d, o) in self.offsets.iter_mut().enumerate() {
                *o = d as u32 * k;
            }
            self.uniform_k = Some(k);
        }
        if let Some(cursors) = cursors {
            debug_assert_eq!(cursors.len(), v);
            cursors.copy_from_slice(&self.offsets[..v]);
        }
        let total = acc as usize;
        if self.slab.len() < total {
            self.slab.resize_with(total, MaybeUninit::uninit);
        }
        total
    }

    /// The scatter's working views: the first `total` slab slots (about to
    /// be filled) and the offset table built by [`Arena::prepare_write`].
    pub(crate) fn split_for_scatter(&mut self, total: usize) -> (&mut [MaybeUninit<M>], &[u32]) {
        (&mut self.slab[..total], &self.offsets)
    }

    /// Marks `total` slots as initialized after a completed scatter.
    #[inline]
    pub(crate) fn commit_write(&mut self, total: usize) {
        debug_assert!(total <= self.slab.len());
        self.filled = total;
    }

    /// Re-targets a pooled arena at a machine of `v` VPs for the next job:
    /// any still-owned messages are dropped (a finished run leaves its final
    /// superstep's sends undelivered; a failed one may leave a whole
    /// committed arena), the offset table is rebuilt all-zero — the state
    /// [`Arena::new`] establishes and the first `take_read` of a run relies
    /// on to carve empty inboxes — and the slab keeps its high-water
    /// capacity, so warm same-shape jobs allocate nothing here.
    pub(crate) fn recycle(&mut self, v: usize) {
        for slot in &mut self.slab[..self.filled] {
            // SAFETY: invariant 1 — the prefix is initialized and owned.
            unsafe { slot.assume_init_drop() };
        }
        self.filled = 0;
        self.offsets.clear();
        self.offsets.resize(v + 1, 0);
        self.uniform_k = Some(0);
    }
}

impl<M> Drop for Arena<M> {
    fn drop(&mut self) {
        // Drop messages sent by the final superstep (never delivered), like
        // the legacy engine's inbox Vecs did on drop.
        for slot in &mut self.slab[..self.filled] {
            // SAFETY: invariant 1 — the prefix is initialized and owned.
            unsafe { slot.assume_init_drop() };
        }
        self.filled = 0;
    }
}

enum InboxRepr<'a, M> {
    /// View into an arena slab; `buf[start..end]` is initialized and owned.
    Slab { buf: &'a mut [MaybeUninit<M>], start: usize, end: usize },
    /// Compatibility backing used by the reference engine: owns the messages
    /// outright (front/back consumption are both O(1) on `vec::IntoIter`).
    Owned(std::vec::IntoIter<M>),
}

/// The messages delivered to one VP at the start of a superstep.
///
/// Behaves like the `Vec<M>` inbox it replaces — `pop` takes the most
/// recently delivered message, `drain(..)` consumes front to back, and
/// anything left over is discarded when the superstep ends — but reads
/// directly from the engine's flat mailbox arena.
pub struct Inbox<'a, M> {
    repr: InboxRepr<'a, M>,
}

impl<'a, M> Inbox<'a, M> {
    /// Wraps a fully initialized slab segment (engine-internal).
    ///
    /// SAFETY contract (upheld by the engine): every slot of `buf` is
    /// initialized, and this inbox is the unique owner of those messages.
    pub(crate) fn over_slab(buf: &'a mut [MaybeUninit<M>]) -> Self {
        let end = buf.len();
        Inbox { repr: InboxRepr::Slab { buf, start: 0, end } }
    }

    /// Takes ownership of a vector's messages (reference engine). The
    /// vector's buffer is consumed — the reference engine pays one
    /// allocation per delivered-to VP per superstep, like the legacy engine
    /// paid for its per-VP outboxes.
    pub(crate) fn over_vec(buf: &mut Vec<M>) -> Self {
        Inbox { repr: InboxRepr::Owned(std::mem::take(buf).into_iter()) }
    }

    /// Number of unconsumed messages.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            InboxRepr::Slab { start, end, .. } => end - start,
            InboxRepr::Owned(it) => it.len(),
        }
    }

    /// Whether every delivered message has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the most recently delivered message, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<M> {
        match &mut self.repr {
            InboxRepr::Slab { buf, start, end } => {
                if start == end {
                    None
                } else {
                    *end -= 1;
                    // SAFETY: buf[start..end] initialized & owned; the slot
                    // leaves the owned range before being read, exactly once.
                    Some(unsafe { buf[*end].assume_init_read() })
                }
            }
            InboxRepr::Owned(it) => it.next_back(),
        }
    }

    /// Consumes all messages front to back (delivery order: ascending source
    /// VP, then send order). Messages not iterated are still removed, like
    /// `Vec::drain`.
    #[inline]
    pub fn drain(&mut self, _: RangeFull) -> Drain<'_, 'a, M> {
        Drain { inbox: self }
    }

    /// The unconsumed messages as a slice, front (oldest) first.
    pub fn as_slice(&self) -> &[M] {
        match &self.repr {
            InboxRepr::Slab { buf, start, end } => {
                // SAFETY: buf[start..end] is initialized; MaybeUninit<M> is
                // layout-compatible with M.
                unsafe {
                    std::slice::from_raw_parts(buf.as_ptr().add(*start).cast::<M>(), end - start)
                }
            }
            InboxRepr::Owned(it) => it.as_slice(),
        }
    }

    /// Iterates the unconsumed messages without removing them.
    pub fn iter(&self) -> std::slice::Iter<'_, M> {
        self.as_slice().iter()
    }

    /// Discards all unconsumed messages.
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<M> Drop for Inbox<'_, M> {
    fn drop(&mut self) {
        // Undelivered messages are discarded at the superstep boundary.
        self.clear();
    }
}

/// Front-to-back consuming iterator over an [`Inbox`].
pub struct Drain<'i, 'a, M> {
    inbox: &'i mut Inbox<'a, M>,
}

impl<M> Iterator for Drain<'_, '_, M> {
    type Item = M;
    fn next(&mut self) -> Option<M> {
        match &mut self.inbox.repr {
            InboxRepr::Slab { buf, start, end } => {
                if start == end {
                    None
                } else {
                    let i = *start;
                    *start += 1;
                    // SAFETY: as in `pop`; the slot leaves the owned range
                    // before being read, exactly once.
                    Some(unsafe { buf[i].assume_init_read() })
                }
            }
            InboxRepr::Owned(it) => it.next(),
        }
    }
}

impl<M> Drop for Drain<'_, '_, M> {
    fn drop(&mut self) {
        // Vec::drain semantics: un-iterated messages are removed too.
        self.inbox.clear();
    }
}

/// Staged messages of one chunk of consecutive VPs, reused across supersteps.
pub(crate) struct ChunkStage<M> {
    /// Contiguous `(dst, envelope)` pairs in send order.
    pub(crate) outbox: crate::program::Outbox<M>,
    /// `vp_ends[i]` = end index (into `outbox.msgs`) of the messages sent by
    /// the chunk's `i`-th VP.
    pub(crate) vp_ends: Vec<u32>,
}

impl<M> ChunkStage<M> {
    pub(crate) fn new(chunk_vps: usize) -> Self {
        ChunkStage { outbox: crate::program::Outbox::new(), vp_ends: Vec::with_capacity(chunk_vps) }
    }

    pub(crate) fn reset(&mut self) {
        self.outbox.reset();
        self.vp_ends.clear();
    }
}

/// Serial counting-sort scatter: drains every staged message in ascending
/// source order into its destination's slab range. Stable, so per-inbox
/// delivery order matches the legacy nested delivery loop exactly.
pub(crate) fn route_serial<M>(
    stage: &mut ChunkStage<M>,
    cursors: &mut [u32],
    slab: &mut [MaybeUninit<M>],
) {
    for (dst, env) in stage.outbox.msgs.drain(..) {
        if let Envelope::Data(m) = env {
            let cur = &mut cursors[dst as usize];
            slab[*cur as usize].write(m);
            *cur += 1;
        }
    }
    stage.vp_ends.clear();
}

/// The direct-write scatter of a *planned* superstep: lets VP closures write
/// payloads straight into the destination arena slot, replacing the staging
/// copy and the counting sort of the dynamic serial path.
///
/// Installed into the shared [`crate::program::Outbox`] for the duration of
/// one planned superstep (raw pointers into the engine's write slab, cursor
/// and offset tables — all sized and fixed before installation). A stable
/// counting sort assigns slot `cursors[d]++` to each message in send order,
/// which is exactly what this writer does online, so per-inbox delivery
/// order is identical to the staged scatter's.
///
/// # Safety model
///
/// The *declared route* sized the destination ranges, but the *closure*
/// chooses destinations at run time — the two can disagree (mis-declared
/// plan). Soundness never depends on the declaration being honest:
///
/// * every write is bounds-checked against its destination's planned slot
///   range (`cursors[d] < offsets[d+1]`), so writes stay inside the slab
///   and no slot is written twice;
/// * the engine compares the total written count against the plan before
///   committing the arena, so an under-filled slab (uninitialized slots) is
///   reported as a [`nob_core::ModelError::PlanMismatch`] instead of ever
///   being published to inboxes.
///
/// Together these make every committed slab fully initialized with each
/// slot written exactly once. On the error path nothing is committed; the
/// partially written payloads are leaked (not dropped) — safe, and bounded
/// by one superstep's traffic. With validation on, the writer additionally
/// walks the declared route in lockstep ([`DirectCheck`]) and flags the
/// first divergence in destination, kind, order or count — dummies
/// included, since those feed the precomputed metrics.
pub(crate) struct DirectOut<M> {
    slab: *mut MaybeUninit<M>,
    slab_len: usize,
    cursors: *mut u32,
    /// Offsets table (`v + 1` entries): destination `d` owns slots
    /// `[offsets[d], offsets[d+1])`.
    limits: *const u32,
    /// Non-zero when the offsets table is the affine prefix sum of a
    /// uniform per-destination count `k` (`offsets[d] = d * k`): slot
    /// limits are then computed as `(d + 1) * k` instead of loaded, saving
    /// one scattered table read per payload on the fused fast path.
    uniform_k: u32,
    /// Unit-layout fast path (`uniform_k == 1`): a zeroed `v`-bit map the
    /// engine lends for the superstep. The slot for `dst` is exactly `dst`,
    /// so delivery test-and-sets one L1-resident bit instead of
    /// read-modify-writing the `O(v)`-byte cursor table — one scattered
    /// cache miss per payload less once `v` outgrows the cache. A repeated
    /// destination finds its bit set (same fault as a cursor at its limit),
    /// and `finish`'s written-total gate still catches starved
    /// destinations, so drift detection is bit-for-bit the cursor policy's.
    bits: Option<*mut u64>,
    core: DirectCore,
}

/// Validation-mode state of the direct writers: the declared route of the
/// current VP, walked send by send.
pub(crate) struct DirectCheck {
    /// The plan's route function. A raw pointer so [`DirectOut`] needs no
    /// lifetime (it lives inside the recycled `Outbox`); the engine installs
    /// and removes the writer within one superstep, during which the
    /// `&Program` (and thus the boxed route) is borrowed and immovable.
    route: *const crate::plan::RouteDyn,
    ctx: crate::program::Ctx,
    k: usize,
    out_degree: usize,
}

impl DirectCheck {
    /// The next declared non-skip slot: `(dst, is_data)`. Delegates to the
    /// one shared walking implementation ([`crate::plan::walk_next`]) so
    /// the serial and sharded mis-declaration detectors cannot drift apart.
    #[inline]
    fn next_expected(&mut self) -> Option<(usize, bool)> {
        // SAFETY: `route` outlives the superstep this checker is installed
        // for (see the field docs).
        let route = unsafe { &*self.route };
        crate::plan::walk_next(route, &self.ctx, &mut self.k, self.out_degree)
    }
}

/// State shared by both planned direct writers — [`DirectOut`] (serial)
/// and [`DirectShard`] (sharded): per-VP send accounting, the first
/// recorded fault, and the optional validation-mode lockstep checker. One
/// implementation of the send preamble (fault short-circuit, lockstep
/// route check, machine-range check) and of dummy metering, so the two
/// paths' mis-declaration detectors cannot drift apart.
pub(crate) struct DirectCore {
    v: usize,
    /// Payload messages written so far (whole superstep).
    written: u64,
    /// Messages (data + dummy) sent by the current VP, for
    /// [`crate::program::Outbox::len`] semantics.
    vp_sent: usize,
    cur_vp: usize,
    /// First divergence from the plan: `(vp, reason)`.
    fault: Option<(usize, &'static str)>,
    /// Lockstep route checking (validation mode only).
    check: Option<DirectCheck>,
}

impl DirectCore {
    fn new(v: usize, check: Option<(*const crate::plan::RouteDyn, usize)>) -> Self {
        DirectCore {
            v,
            written: 0,
            vp_sent: 0,
            cur_vp: 0,
            fault: None,
            check: check.map(|(route, out_degree)| DirectCheck {
                route,
                ctx: crate::program::Ctx { vp: 0, v, log_v: 0, n: 0 },
                k: 0,
                out_degree,
            }),
        }
    }

    /// Starts the given VP's sends (resets the per-VP counter and the
    /// lockstep checker).
    #[inline]
    fn begin_vp(&mut self, ctx: &crate::program::Ctx) {
        self.cur_vp = ctx.vp;
        self.vp_sent = 0;
        if let Some(c) = self.check.as_mut() {
            c.ctx = *ctx;
            c.k = 0;
        }
    }

    /// Ends the current VP's sends: with lockstep checking on, the VP must
    /// have exhausted its declared slots.
    #[inline]
    fn end_vp(&mut self) {
        if self.fault.is_none() {
            if let Some(c) = self.check.as_mut() {
                if c.next_expected().is_some() {
                    self.fault =
                        Some((self.cur_vp, "sent fewer messages than the route declares"));
                }
            }
        }
    }

    #[inline]
    fn fail(&mut self, reason: &'static str) {
        if self.fault.is_none() {
            self.fault = Some((self.cur_vp, reason));
        }
    }

    /// The shared preamble of a payload send: counts it, short-circuits on
    /// a recorded fault (drop quietly, the run aborts), walks the lockstep
    /// checker and checks the machine range. Returns whether the write may
    /// proceed.
    #[inline]
    fn admit_data(&mut self, dst: usize) -> bool {
        self.vp_sent += 1;
        if self.fault.is_some() {
            return false;
        }
        if let Some(c) = self.check.as_mut() {
            match c.next_expected() {
                Some((d, true)) if d == dst => {}
                _ => {
                    self.fail("send disagrees with the declared route");
                    return false;
                }
            }
        }
        if dst >= self.v {
            self.fail("message destination out of machine range");
            return false;
        }
        true
    }

    /// Meters a dummy message in full — no slot, no write, on either path;
    /// the precomputed metrics already account for it.
    #[inline]
    fn send_dummy(&mut self, dst: usize) {
        self.vp_sent += 1;
        if self.fault.is_some() {
            return;
        }
        if let Some(c) = self.check.as_mut() {
            match c.next_expected() {
                Some((d, false)) if d == dst => {}
                _ => {
                    self.fail("dummy send disagrees with the declared route");
                    return;
                }
            }
        }
        if dst >= self.v {
            self.fail("message destination out of machine range");
        }
    }
}

// SAFETY: the raw pointers target engine-owned buffers only ever accessed
// from the thread executing the superstep; `DirectOut` is `None` inside any
// `Outbox` that crosses threads (it is installed and removed within one
// serial superstep). `M: Send` because payloads are moved through the slab.
unsafe impl<M: Send> Send for DirectOut<M> {}

impl<M> DirectOut<M> {
    /// Arms a writer over the engine's scatter state for one superstep.
    /// `check` enables lockstep route validation (`(route, out_degree)`).
    ///
    /// SAFETY contract (upheld by the engine): the three buffers outlive the
    /// superstep, are not accessed through any other path while the writer
    /// is installed, `cursors` was initialized to the offsets prefix, and
    /// `limits` is the matching `v + 1`-entry offsets table.
    /// `uniform_k`, when non-zero, asserts the offsets table is the affine
    /// prefix sum `offsets[d] = d * uniform_k` (the engine passes the
    /// plan's detected [`crate::plan::PlanLayout::Uniform`] count); 0 means
    /// general table limits. `bits` (unit layouts only, `uniform_k == 1`)
    /// lends an all-zero `v`-bit seen-map that replaces the cursor table
    /// for the superstep; it must outlive the writer like the buffers do.
    pub(crate) fn new(
        slab: &mut [MaybeUninit<M>],
        cursors: &mut [u32],
        limits: &[u32],
        check: Option<(*const crate::plan::RouteDyn, usize)>,
        uniform_k: u32,
        bits: Option<&mut [u64]>,
    ) -> Self {
        let v = cursors.len();
        debug_assert_eq!(limits.len(), v + 1);
        debug_assert!(
            uniform_k == 0 || limits.iter().enumerate().all(|(d, &o)| o == d as u32 * uniform_k),
            "uniform_k disagrees with the offsets table"
        );
        let bits = bits.map(|b| {
            debug_assert!(uniform_k == 1, "seen-bitmap mode requires a unit layout");
            debug_assert!(b.len() * 64 >= v && b.iter().all(|&w| w == 0));
            b.as_mut_ptr()
        });
        DirectOut {
            slab: slab.as_mut_ptr(),
            slab_len: slab.len(),
            cursors: cursors.as_mut_ptr(),
            limits: limits.as_ptr(),
            uniform_k,
            bits,
            core: DirectCore::new(v, check),
        }
    }

    /// Delivers a payload message into its planned slot.
    #[inline]
    pub(crate) fn send(&mut self, dst: usize, msg: M) {
        if !self.core.admit_data(dst) {
            return;
        }
        // SAFETY: dst < v bounds the bit/cursor/limit accesses; the seen-bit
        // (unit layouts) or cursor check bounds the slab write inside the
        // destination's planned range (ranges are disjoint and within
        // `slab_len` by construction of the offsets prefix sum; for unit
        // layouts the range is exactly slot `dst`).
        unsafe {
            if let Some(bits) = self.bits {
                let word = bits.add(dst >> 6);
                let mask = 1u64 << (dst & 63);
                if *word & mask != 0 {
                    self.core.fail("more payload messages to a destination than planned");
                    return;
                }
                *word |= mask;
                debug_assert!(dst < self.slab_len);
                (*self.slab.add(dst)).write(msg);
            } else {
                let cur = *self.cursors.add(dst);
                let limit = if self.uniform_k != 0 {
                    (dst as u32 + 1) * self.uniform_k
                } else {
                    *self.limits.add(dst + 1)
                };
                if cur >= limit {
                    self.core.fail("more payload messages to a destination than planned");
                    return;
                }
                debug_assert!((cur as usize) < self.slab_len);
                (*self.slab.add(cur as usize)).write(msg);
                *self.cursors.add(dst) = cur + 1;
            }
        }
        self.core.written += 1;
    }

    /// Disarms the writer: `(payloads written, first fault)`. The engine
    /// must refuse to commit the arena unless the fault is `None` and the
    /// written count equals the plan's payload total.
    pub(crate) fn finish(self) -> (u64, Option<(usize, &'static str)>) {
        (self.core.written, self.core.fault)
    }
}

/// The direct writer installed in an [`crate::program::Outbox`] for one
/// planned superstep: the serial whole-machine form or the sharded
/// cross-shard form. Algorithm closures use the same `send`/`send_dummy`
/// API either way and cannot observe the difference.
pub(crate) enum DirectSink<M> {
    /// Serial path: one arena covering the whole machine ([`DirectOut`]).
    Serial(DirectOut<M>),
    /// Sharded path: cross-shard writes through published arena windows
    /// ([`DirectShard`]).
    Sharded(DirectShard<M>),
}

impl<M> DirectSink<M> {
    /// The shared accounting/checker state of whichever writer is armed.
    #[inline]
    fn core(&self) -> &DirectCore {
        match self {
            DirectSink::Serial(d) => &d.core,
            DirectSink::Sharded(d) => &d.core,
        }
    }

    #[inline]
    fn core_mut(&mut self) -> &mut DirectCore {
        match self {
            DirectSink::Serial(d) => &mut d.core,
            DirectSink::Sharded(d) => &mut d.core,
        }
    }

    /// Starts the given VP's sends.
    #[inline]
    pub(crate) fn begin_vp(&mut self, ctx: &crate::program::Ctx) {
        self.core_mut().begin_vp(ctx);
    }

    /// Ends the current VP's sends (lockstep exhaustion check).
    #[inline]
    pub(crate) fn end_vp(&mut self) {
        self.core_mut().end_vp();
    }

    /// Messages sent by the current VP so far.
    #[inline]
    pub(crate) fn vp_sent(&self) -> usize {
        self.core().vp_sent
    }

    /// The VP whose sends are in progress (panic attribution).
    #[inline]
    pub(crate) fn current_vp(&self) -> usize {
        self.core().cur_vp
    }

    /// Delivers a payload message into its planned slot (the slot lives in
    /// the whole-machine arena or a destination shard's arena, depending on
    /// the armed writer).
    #[inline]
    pub(crate) fn send(&mut self, dst: usize, msg: M) {
        match self {
            DirectSink::Serial(d) => d.send(dst, msg),
            DirectSink::Sharded(d) => d.send(dst, msg),
        }
    }

    /// Meters a dummy message (identical on both paths).
    #[inline]
    pub(crate) fn send_dummy(&mut self, dst: usize) {
        self.core_mut().send_dummy(dst);
    }
}

/// A shard's published view of its write arena for one planned superstep:
/// the raw scatter state peers write through (invariant 5).
///
/// `starts` points at an `(n_shards + 1) × vps` region table (row-major,
/// row = source shard): destination VP `d` (shard-relative) owns the slab
/// slots `[starts[s][d], starts[s + 1][d])` for payloads arriving from
/// shard `s` — the counting-sort layout pre-partitioned by source shard, so
/// delivery order (ascending source VP, then send order) is preserved
/// without any receive-side pass. `cursors` is the matching `n_shards ×
/// vps` live-cursor table; row `s` is advanced only by worker `s`.
pub(crate) struct DirectWindow<M> {
    slab: *mut MaybeUninit<M>,
    slab_len: usize,
    starts: *const u32,
    cursors: *mut u32,
    /// First VP owned by the window's shard (global id).
    vp_lo: u32,
}

impl<M> Clone for DirectWindow<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for DirectWindow<M> {}

impl<M> DirectWindow<M> {
    /// A window no one may write through (pre-publication placeholder).
    fn empty() -> Self {
        DirectWindow {
            slab: std::ptr::null_mut(),
            slab_len: 0,
            starts: std::ptr::null(),
            cursors: std::ptr::null_mut(),
            vp_lo: 0,
        }
    }

    /// Builds a window over an arena's scatter state.
    ///
    /// SAFETY contract (upheld by the publishing worker): the three buffers
    /// outlive every exec phase the window is read in, `starts` has
    /// `(n_shards + 1) · vps` entries forming disjoint in-bounds regions
    /// over `slab`, and `cursors` (`n_shards · vps` entries) was initialized
    /// to the region starts.
    pub(crate) fn new(
        slab: &mut [MaybeUninit<M>],
        starts: &[u32],
        cursors: &mut [u32],
        vp_lo: u32,
    ) -> Self {
        DirectWindow {
            slab: slab.as_mut_ptr(),
            slab_len: slab.len(),
            starts: starts.as_ptr(),
            cursors: cursors.as_mut_ptr(),
            vp_lo,
        }
    }
}

/// The published arena windows of all shards, double-buffered by
/// write-arena parity so a prepare for superstep `t + 1` never races the
/// exec-phase reads of superstep `t` (invariant 5).
pub(crate) struct DirectGrid<M> {
    /// `2 × shards` windows: parity-major, then shard.
    windows: Vec<UnsafeCell<DirectWindow<M>>>,
    shards: usize,
}

// SAFETY: invariant 5 — window publication and every access through the
// published pointers are phase-disciplined by the executor's barrier, and
// `M` only ever moves between threads.
unsafe impl<M: Send> Send for DirectGrid<M> {}
// SAFETY: same phase discipline as the Send impl above (invariant 5).
unsafe impl<M: Send> Sync for DirectGrid<M> {}

impl<M> DirectGrid<M> {
    pub(crate) fn new(shards: usize) -> Self {
        DirectGrid {
            windows: (0..2 * shards).map(|_| UnsafeCell::new(DirectWindow::empty())).collect(),
            shards,
        }
    }

    /// Publishes shard `shard`'s window for write-arena parity `parity`.
    ///
    /// # Safety
    /// The caller must be the worker owning `shard`, during a prepare phase
    /// for that parity (invariant 5): no other thread may touch this slot
    /// until the next barrier, and the previous window of this parity must
    /// have no remaining readers (guaranteed by parity alternation).
    pub(crate) unsafe fn publish(&self, parity: usize, shard: usize, window: DirectWindow<M>) {
        debug_assert!(parity < 2 && shard < self.shards);
        // SAFETY: the fn's contract — this slot is the calling worker's
        // exclusively during this parity's prepare phase.
        unsafe { *self.windows[parity * self.shards + shard].get() = window };
    }
}

/// The cross-shard direct writer of one worker for one planned superstep:
/// the sharded counterpart of [`DirectOut`], writing payloads straight into
/// the *peer* shard arenas through the windows published in the preceding
/// prepare phase — no lane staging, no receive-side counting sort.
///
/// # Safety model
///
/// Identical in spirit to [`DirectOut`] (soundness never trusts the
/// declared route), with the region table replacing the flat offsets:
///
/// * a send outside the superstep's shard cluster — impossible for an
///   honest closure, since the declaration was cluster-proven at compile
///   time — faults immediately (windows outside the cluster span carry
///   stale tables and must never be consulted);
/// * every write is bounds-checked against its `(source shard,
///   destination)` region (`cursors[s][d] < starts[s + 1][d]`), so writes
///   stay inside the destination slab and no slot is written twice;
/// * the executor compares each worker's written total against its declared
///   payload total before any arena is committed. Region capacities sum to
///   exactly the declared totals, so all checks passing implies every
///   region exactly full — every committed slab fully initialized, each
///   slot written exactly once.
///
/// On the fault path nothing is committed and partially written payloads
/// are leaked (never dropped, never re-observed), bounded by one
/// superstep's traffic — the same policy as the serial writer. With
/// validation on, the writer walks the declared route in lockstep
/// ([`DirectCheck`]) exactly like the serial path.
pub(crate) struct DirectShard<M> {
    /// Window slots of this superstep's parity (`shards` entries).
    windows: *const UnsafeCell<DirectWindow<M>>,
    /// This worker's shard id — its row in every cursor table.
    shard: usize,
    /// Shard cluster of the superstep: only `[span_lo, span_hi)` windows
    /// carry tables prepared for this superstep.
    span_lo: usize,
    span_hi: usize,
    shard_shift: u32,
    /// VPs per shard (row stride of the region tables).
    vps: usize,
    core: DirectCore,
}

// SAFETY: the raw pointers target executor-owned buffers whose access is
// phase-disciplined per invariant 5; a `DirectShard` is installed and
// removed within one worker's exec phase and `M: Send` because payloads
// move through peer slabs.
unsafe impl<M: Send> Send for DirectShard<M> {}

impl<M> DirectShard<M> {
    /// Arms a writer for worker `shard` over the windows of write-arena
    /// parity `parity`, for a superstep whose shard cluster is `span`.
    ///
    /// # Safety
    /// Exec phase only: every window in `span` must have been published for
    /// `parity` before the barrier this phase follows, and cursor row
    /// `shard` of those windows must not be touched by any other thread
    /// until the next barrier (invariant 5).
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn new(
        grid: &DirectGrid<M>,
        parity: usize,
        shard: usize,
        span: std::ops::Range<usize>,
        shard_shift: u32,
        vps: usize,
        v: usize,
        check: Option<(*const crate::plan::RouteDyn, usize)>,
    ) -> Self {
        debug_assert!(parity < 2 && span.end <= grid.shards && span.contains(&shard));
        DirectShard {
            // SAFETY: `parity < 2` (debug-asserted), so the offset stays
            // inside the grid's `2 × shards` window array.
            windows: unsafe { grid.windows.as_ptr().add(parity * grid.shards) },
            shard,
            span_lo: span.start,
            span_hi: span.end,
            shard_shift,
            vps,
            core: DirectCore::new(v, check),
        }
    }

    /// Delivers a payload message into its planned slot of the destination
    /// shard's arena.
    #[inline]
    pub(crate) fn send(&mut self, dst: usize, msg: M) {
        if !self.core.admit_data(dst) {
            return;
        }
        let ds = dst >> self.shard_shift;
        if ds < self.span_lo || ds >= self.span_hi {
            // The declaration is cluster-proven, so an out-of-span send is
            // necessarily a divergence from it; windows outside the span
            // hold stale tables and must never be consulted.
            self.core.fail("send leaves the declared route's shard cluster");
            return;
        }
        // SAFETY: ds is in this superstep's span, so the window was
        // published for this parity before the barrier; cursor row
        // `self.shard` is this worker's exclusively; the region check
        // bounds the slab write inside the destination's planned range
        // (regions disjoint and within `slab_len` by the prefix-sum
        // construction). See invariant 5.
        unsafe {
            let w = (*self.windows.add(ds)).get().read();
            let d_rel = dst - w.vp_lo as usize;
            debug_assert!(d_rel < self.vps);
            let cur_ptr = w.cursors.add(self.shard * self.vps + d_rel);
            let cur = *cur_ptr;
            let limit = *w.starts.add((self.shard + 1) * self.vps + d_rel);
            if cur >= limit {
                self.core.fail("more payload messages to a destination than planned");
                return;
            }
            debug_assert!((cur as usize) < w.slab_len);
            (*w.slab.add(cur as usize)).write(msg);
            *cur_ptr = cur + 1;
        }
        self.core.written += 1;
    }

    /// Payload messages written by this worker so far (whole superstep).
    #[inline]
    pub(crate) fn written(&self) -> u64 {
        self.core.written
    }

    /// The first divergence from the plan, if any: `(vp, reason)`.
    #[inline]
    pub(crate) fn fault_info(&self) -> Option<(usize, &'static str)> {
        self.core.fault
    }

    /// The first destination VP whose slot region from this shard was left
    /// short — the starved receiver to blame when the written total falls
    /// below the declared total without lockstep checking.
    ///
    /// # Safety
    /// Exec phase only (same discipline as [`DirectShard::send`]): reads
    /// this worker's own cursor rows and the immutable region tables.
    pub(crate) unsafe fn first_starved(&self) -> Option<usize> {
        for ds in self.span_lo..self.span_hi {
            // SAFETY: in-span window published before this phase; cursor
            // row `self.shard` is this worker's own.
            unsafe {
                let w = (*self.windows.add(ds)).get().read();
                for d in 0..self.vps {
                    let cur = *w.cursors.add(self.shard * self.vps + d);
                    let limit = *w.starts.add((self.shard + 1) * self.vps + d);
                    if cur < limit {
                        return Some(w.vp_lo as usize + d);
                    }
                }
            }
        }
        None
    }
}

/// Header of one staged cross-shard message: the `(src, dst)` pair plus a
/// payload flag, kept apart from the payloads (structure-of-arrays) so the
/// gather's metric/counting scan streams through 12-byte records regardless
/// of the message type `M`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneHdr {
    /// Source VP (global id; the receiving shard needs it for in-side
    /// degree accounting).
    pub(crate) src: u32,
    /// Destination VP (global id).
    pub(crate) dst: u32,
    /// Whether a payload slot accompanies this header (`false` for the
    /// paper's dummy messages, which are metered but never delivered).
    pub(crate) data: bool,
}

/// One cross-shard message lane: the staged traffic of a single (source
/// shard → destination shard) pair for the current superstep, in send order.
///
/// Headers and payloads are parallel sequences: payload `k` belongs to the
/// `k`-th header with `data == true`. Both vectors grow to the pair's
/// high-water traffic and are recycled, so steady-state supersteps push
/// within capacity and allocate nothing.
#[derive(Debug)]
pub(crate) struct Lane<M> {
    pub(crate) hdrs: Vec<LaneHdr>,
    payloads: Vec<M>,
}

impl<M> Lane<M> {
    pub(crate) fn new() -> Self {
        Lane { hdrs: Vec::new(), payloads: Vec::new() }
    }

    /// Stages a payload message.
    #[inline]
    pub(crate) fn push_data(&mut self, src: u32, dst: u32, msg: M) {
        self.hdrs.push(LaneHdr { src, dst, data: true });
        self.payloads.push(msg);
    }

    /// Stages a dummy message (header only).
    #[inline]
    pub(crate) fn push_dummy(&mut self, src: u32, dst: u32) {
        self.hdrs.push(LaneHdr { src, dst, data: false });
    }

    /// Number of staged messages (payload + dummy).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.hdrs.len()
    }

    /// Pre-sizes the lane for a statically known traffic peak (communication
    /// plans let the sharded executor compute each pair's high-water volume
    /// before the first superstep, instead of growing lanes lazily).
    pub(crate) fn reserve(&mut self, hdrs: usize, payloads: usize) {
        debug_assert!(self.hdrs.is_empty() && self.payloads.is_empty());
        self.hdrs.reserve(hdrs);
        self.payloads.reserve(payloads);
    }

    /// Drains every staged *payload* message in send order, invoking
    /// `deliver(dst, payload)` for each, then clears the lane (capacity
    /// kept). Dummy headers are discarded.
    pub(crate) fn drain_deliveries(&mut self, mut deliver: impl FnMut(u32, M)) {
        let mut payloads = self.payloads.drain(..);
        for hdr in &self.hdrs {
            if hdr.data {
                // allow-panic: push_data pairs every data header with a payload
                let m = payloads.next().expect("one payload per data header");
                deliver(hdr.dst, m);
            }
        }
        debug_assert!(payloads.next().is_none(), "payloads without headers");
        drop(payloads);
        self.hdrs.clear();
    }
}

/// The full `shards × shards` matrix of message [`Lane`]s, shared by all
/// executor workers.
///
/// Interior mutability is required because lane `(s, d)` is written by
/// worker `s` and drained by worker `d` — but never in the same phase:
/// access follows invariant 3 (send phase: row-exclusive via
/// [`LaneGrid::lane_out`]; gather phase: column-exclusive via
/// [`LaneGrid::lane_in`]; phases separated by the executor barrier). The
/// two accessors are the same pointer cast — the distinct names exist so
/// call sites document which phase's discipline they rely on.
pub(crate) struct LaneGrid<M> {
    lanes: Vec<UnsafeCell<Lane<M>>>,
    shards: usize,
}

// SAFETY: invariant 3 — the executor's barrier protocol makes all lane
// accesses data-race-free and `M` only ever moves between threads.
unsafe impl<M: Send> Send for LaneGrid<M> {}
unsafe impl<M: Send> Sync for LaneGrid<M> {}

impl<M> LaneGrid<M> {
    pub(crate) fn new(shards: usize) -> Self {
        LaneGrid {
            lanes: (0..shards * shards).map(|_| UnsafeCell::new(Lane::new())).collect(),
            shards,
        }
    }

    /// The outgoing lane `src → dst`, for the send phase.
    ///
    /// # Safety
    /// The caller must be the worker owning shard `src`, during a send
    /// phase (invariant 3): no other thread may touch row `src` until the
    /// next barrier.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn lane_out(&self, src: usize, dst: usize) -> &mut Lane<M> {
        debug_assert!(src < self.shards && dst < self.shards);
        // SAFETY: the fn's contract — row `src` is the calling worker's
        // exclusively until the next barrier (invariant 3).
        unsafe { &mut *self.lanes[src * self.shards + dst].get() }
    }

    /// The incoming lane `src → dst`, for the gather phase.
    ///
    /// # Safety
    /// The caller must be the worker owning shard `dst`, during a gather
    /// phase (invariant 3): no other thread may touch column `dst` until
    /// the next barrier.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn lane_in(&self, src: usize, dst: usize) -> &mut Lane<M> {
        debug_assert!(src < self.shards && dst < self.shards);
        // SAFETY: the fn's contract — column `dst` is the calling worker's
        // exclusively until the next barrier (invariant 3).
        unsafe { &mut *self.lanes[src * self.shards + dst].get() }
    }

    /// Empties every lane, keeping capacities — the between-jobs reset of a
    /// pooled grid. A job that aborted mid-superstep can leave staged
    /// headers and payloads behind; draining them here (payloads dropped)
    /// keeps them out of the next job's gather. `&mut self` proves no
    /// worker holds a lane, so no unsafe access is involved.
    pub(crate) fn clear_all(&mut self) {
        for cell in &mut self.lanes {
            let lane = cell.get_mut();
            lane.hdrs.clear();
            lane.payloads.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(msgs: &[(u32, Option<String>)]) -> ChunkStage<String> {
        let mut stage = ChunkStage::new(4);
        for (dst, payload) in msgs {
            match payload {
                Some(m) => stage.outbox.send(*dst as usize, m.clone()),
                None => stage.outbox.send_dummy(*dst as usize),
            }
        }
        stage
    }

    fn arena_contents(arena: &mut Arena<String>, v: usize) -> Vec<Vec<String>> {
        let (slab, offsets) = arena.take_read();
        let mut out = Vec::new();
        let mut rest = slab;
        for vp in 0..v {
            let len = (offsets[vp + 1] - offsets[vp]) as usize;
            let take = std::mem::take(&mut rest);
            let (mine, r) = take.split_at_mut(len);
            rest = r;
            let mut inbox = Inbox::over_slab(mine);
            out.push(inbox.drain(..).collect());
        }
        out
    }

    #[test]
    fn serial_scatter_groups_by_destination_in_source_order() {
        let v = 4;
        let mut arena: Arena<String> = Arena::new(v);
        let mut stage = staged(&[
            (2, Some("a".into())),
            (0, Some("b".into())),
            (2, None),
            (2, Some("c".into())),
            (3, Some("d".into())),
        ]);
        let mut counts = vec![0u32; v];
        for (dst, env) in &stage.outbox.msgs {
            if matches!(env, Envelope::Data(_)) {
                counts[*dst as usize] += 1;
            }
        }
        let mut cursors = vec![0u32; v];
        let total = arena.prepare_write(&mut counts, &mut cursors);
        assert_eq!(total, 4, "dummies are not delivered");
        assert!(counts.iter().all(|&c| c == 0), "prepare_write recycles the counts");
        {
            let (slab, _) = (&mut arena.slab[..total], ());
            route_serial(&mut stage, &mut cursors, slab);
        }
        arena.commit_write(total);
        assert_eq!(
            arena_contents(&mut arena, v),
            vec![vec!["b".to_string()], vec![], vec!["a".into(), "c".into()], vec!["d".into()]],
        );
    }

    #[test]
    fn lane_preserves_order_and_skips_dummies() {
        let mut lane: Lane<String> = Lane::new();
        lane.push_data(0, 9, "x".into());
        lane.push_dummy(1, 9);
        lane.push_data(2, 8, "y".into());
        assert_eq!(lane.len(), 3);
        let mut got = Vec::new();
        lane.drain_deliveries(|dst, m| got.push((dst, m)));
        assert_eq!(got, vec![(9, "x".to_string()), (8, "y".to_string())]);
        assert_eq!(lane.len(), 0, "lane recycled empty");
        // Reuse after draining: capacity path, same semantics.
        lane.push_data(3, 7, "z".into());
        let mut got = Vec::new();
        lane.drain_deliveries(|dst, m| got.push((dst, m)));
        assert_eq!(got, vec![(7, "z".to_string())]);
    }

    #[test]
    fn abandoned_lane_drops_payloads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let grid: LaneGrid<Tracked> = LaneGrid::new(2);
            // SAFETY: single-threaded test; trivially phase-exclusive.
            let lane = unsafe { grid.lane_out(0, 1) };
            lane.push_data(0, 4, Tracked);
            lane.push_dummy(1, 5);
            lane.push_data(2, 6, Tracked);
            // Grid dropped with staged traffic (as after a validation
            // error): plain Vec destructors reclaim the payloads.
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn inbox_pop_and_drain_follow_vec_semantics() {
        let mut backing: Vec<MaybeUninit<u64>> =
            (1..=4u64).map(MaybeUninit::new).collect();
        let mut inbox = Inbox::over_slab(&mut backing);
        assert_eq!(inbox.len(), 4);
        assert_eq!(inbox.pop(), Some(4));
        assert_eq!(inbox.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        let first_two: Vec<u64> = inbox.drain(..).take(2).collect();
        assert_eq!(first_two, vec![1, 2]);
        // Drain drop removed the rest, like Vec::drain.
        assert!(inbox.is_empty());
    }

    #[test]
    fn bump_count_fails_loudly_at_the_overflow_boundary() {
        // Regression: the sharded gather used to saturate these counts,
        // silently capping at u32::MAX instead of surfacing the capacity
        // violation as a ModelError.
        let mut c = u32::MAX - 2;
        assert!(bump_count(&mut c).is_ok());
        assert_eq!(c, u32::MAX - 1);
        assert!(bump_count(&mut c).is_ok());
        assert_eq!(c, u32::MAX);
        let err = bump_count(&mut c).expect_err("count past u32::MAX must error, not cap");
        assert!(
            matches!(err, ModelError::BadParameter { what: "dst_counts", .. }),
            "got {err:?}"
        );
        assert_eq!(c, u32::MAX, "failed bump must leave the count unchanged");
    }

    #[test]
    fn undelivered_messages_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let mut backing: Vec<MaybeUninit<Tracked>> =
                (0..3).map(|_| MaybeUninit::new(Tracked)).collect();
            let mut inbox = Inbox::over_slab(&mut backing);
            drop(inbox.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
