//! Flat, double-buffered mailbox arenas: the zero-allocation message path.
//!
//! All of the engine's `unsafe` lives here, behind three small abstractions:
//!
//! * [`Arena`] — a contiguous message slab (`Vec<MaybeUninit<M>>`) plus
//!   per-VP offset ranges. Two arenas are swapped each superstep: the engine
//!   *reads* the messages delivered by the previous superstep from one while
//!   the routing pass *writes* this superstep's messages into the other.
//!   Steady-state supersteps reuse the slabs' capacity and allocate nothing.
//! * [`Inbox`] — the per-VP view handed to superstep closures. It yields
//!   messages **by value** straight out of the slab (`pop`, `drain`) and
//!   drops whatever the closure did not consume, mirroring the semantics of
//!   the per-VP `Vec` inboxes it replaces.
//! * [`route_serial`] / [`route_parallel`] — the counting-sort scatter that
//!   moves staged messages from the per-chunk outboxes into the write arena,
//!   grouped by destination VP in ascending-source order (stable, so
//!   delivery order is identical to the legacy per-VP delivery loop).
//!
//! # Safety invariants
//!
//! 1. `Arena.slab[..Arena.filled]` is initialized; everything past `filled`
//!    is uninitialized. `filled` is only nonzero between a completed scatter
//!    and the next read phase.
//! 2. The read phase takes the initialized prefix with [`Arena::take_read`],
//!    which resets `filled` to 0 first: from that point the [`Inbox`] views
//!    own the messages (each slab slot is covered by exactly one inbox, per
//!    the offsets built during scatter), and [`Inbox`]'s `Drop` consumes the
//!    leftovers. If a VP closure panics, inboxes not yet constructed leak
//!    their messages — safe, never observed as initialized again because
//!    `filled` is already 0.
//! 3. The parallel scatter partitions destinations into disjoint contiguous
//!    ranges; each worker writes only slots and cursors of its range, and
//!    reads each staged payload exactly once (ranges partition `[0, v)`).
//!    Afterwards [`clear_after_parallel_scatter`] resets the staging buffers
//!    without running destructors: every `Data` payload has been moved out,
//!    and `Dummy` envelopes hold nothing.
#![allow(unsafe_code)]

use crate::program::Envelope;
use std::mem::MaybeUninit;
use std::ops::RangeFull;

/// One half of the double buffer: a message slab grouped by destination VP.
pub(crate) struct Arena<M> {
    slab: Vec<MaybeUninit<M>>,
    /// Half-open ranges: VP `r`'s inbox is `slab[offsets[r] .. offsets[r+1]]`.
    offsets: Vec<u32>,
    /// Initialized prefix length of `slab` (invariant 1).
    filled: usize,
}

impl<M> Arena<M> {
    pub(crate) fn new(v: usize) -> Self {
        Arena { slab: Vec::new(), offsets: vec![0; v + 1], filled: 0 }
    }

    /// Hands the initialized prefix and the offset table to the read phase,
    /// transferring ownership of the messages to the inboxes the engine will
    /// carve out of the returned slice (invariant 2).
    pub(crate) fn take_read(&mut self) -> (&mut [MaybeUninit<M>], &[u32]) {
        let filled = std::mem::replace(&mut self.filled, 0);
        (&mut self.slab[..filled], &self.offsets)
    }

    /// Rebuilds the offset table from per-destination counts (prefix sum)
    /// and returns the total; the slab is grown to fit. Also leaves
    /// `cursors[d] = offsets[d]` ready for the scatter.
    pub(crate) fn prepare_write(&mut self, counts: &[u32], cursors: &mut [u32]) -> usize {
        debug_assert_eq!(self.filled, 0, "arena overwritten while holding messages");
        let v = counts.len();
        debug_assert_eq!(self.offsets.len(), v + 1);
        // Accumulate in u64 and check the fit: a wrapped u32 offset table
        // would send the unsafe scatter out of bounds, so an over-capacity
        // superstep must fail loudly instead (2^32 messages per superstep is
        // the arena's design limit).
        let mut acc = 0u64;
        for d in 0..v {
            self.offsets[d] = acc as u32;
            cursors[d] = acc as u32;
            acc += u64::from(counts[d]);
        }
        // Strict: a saturated per-destination count (u32::MAX) must also
        // fail here rather than under-size the slab.
        assert!(acc < u64::from(u32::MAX), "superstep exceeds the 2^32 - 1 message design limit");
        self.offsets[v] = acc as u32;
        let total = acc as usize;
        if self.slab.len() < total {
            self.slab.resize_with(total, MaybeUninit::uninit);
        }
        total
    }

    /// The scatter's working views: the first `total` slab slots (about to
    /// be filled) and the offset table built by [`Arena::prepare_write`].
    pub(crate) fn split_for_scatter(&mut self, total: usize) -> (&mut [MaybeUninit<M>], &[u32]) {
        (&mut self.slab[..total], &self.offsets)
    }

    /// Marks `total` slots as initialized after a completed scatter.
    #[inline]
    pub(crate) fn commit_write(&mut self, total: usize) {
        debug_assert!(total <= self.slab.len());
        self.filled = total;
    }
}

impl<M> Drop for Arena<M> {
    fn drop(&mut self) {
        // Drop messages sent by the final superstep (never delivered), like
        // the legacy engine's inbox Vecs did on drop.
        for slot in &mut self.slab[..self.filled] {
            // SAFETY: invariant 1 — the prefix is initialized and owned.
            unsafe { slot.assume_init_drop() };
        }
        self.filled = 0;
    }
}

enum InboxRepr<'a, M> {
    /// View into an arena slab; `buf[start..end]` is initialized and owned.
    Slab { buf: &'a mut [MaybeUninit<M>], start: usize, end: usize },
    /// Compatibility backing used by the reference engine: owns the messages
    /// outright (front/back consumption are both O(1) on `vec::IntoIter`).
    Owned(std::vec::IntoIter<M>),
}

/// The messages delivered to one VP at the start of a superstep.
///
/// Behaves like the `Vec<M>` inbox it replaces — `pop` takes the most
/// recently delivered message, `drain(..)` consumes front to back, and
/// anything left over is discarded when the superstep ends — but reads
/// directly from the engine's flat mailbox arena.
pub struct Inbox<'a, M> {
    repr: InboxRepr<'a, M>,
}

impl<'a, M> Inbox<'a, M> {
    /// Wraps a fully initialized slab segment (engine-internal).
    ///
    /// SAFETY contract (upheld by the engine): every slot of `buf` is
    /// initialized, and this inbox is the unique owner of those messages.
    pub(crate) fn over_slab(buf: &'a mut [MaybeUninit<M>]) -> Self {
        let end = buf.len();
        Inbox { repr: InboxRepr::Slab { buf, start: 0, end } }
    }

    /// Takes ownership of a vector's messages (reference engine). The
    /// vector's buffer is consumed — the reference engine pays one
    /// allocation per delivered-to VP per superstep, like the legacy engine
    /// paid for its per-VP outboxes.
    pub(crate) fn over_vec(buf: &mut Vec<M>) -> Self {
        Inbox { repr: InboxRepr::Owned(std::mem::take(buf).into_iter()) }
    }

    /// Number of unconsumed messages.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            InboxRepr::Slab { start, end, .. } => end - start,
            InboxRepr::Owned(it) => it.len(),
        }
    }

    /// Whether every delivered message has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the most recently delivered message, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<M> {
        match &mut self.repr {
            InboxRepr::Slab { buf, start, end } => {
                if start == end {
                    None
                } else {
                    *end -= 1;
                    // SAFETY: buf[start..end] initialized & owned; the slot
                    // leaves the owned range before being read, exactly once.
                    Some(unsafe { buf[*end].assume_init_read() })
                }
            }
            InboxRepr::Owned(it) => it.next_back(),
        }
    }

    /// Consumes all messages front to back (delivery order: ascending source
    /// VP, then send order). Messages not iterated are still removed, like
    /// `Vec::drain`.
    #[inline]
    pub fn drain(&mut self, _: RangeFull) -> Drain<'_, 'a, M> {
        Drain { inbox: self }
    }

    /// The unconsumed messages as a slice, front (oldest) first.
    pub fn as_slice(&self) -> &[M] {
        match &self.repr {
            InboxRepr::Slab { buf, start, end } => {
                // SAFETY: buf[start..end] is initialized; MaybeUninit<M> is
                // layout-compatible with M.
                unsafe {
                    std::slice::from_raw_parts(buf.as_ptr().add(*start).cast::<M>(), end - start)
                }
            }
            InboxRepr::Owned(it) => it.as_slice(),
        }
    }

    /// Iterates the unconsumed messages without removing them.
    pub fn iter(&self) -> std::slice::Iter<'_, M> {
        self.as_slice().iter()
    }

    /// Discards all unconsumed messages.
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<M> Drop for Inbox<'_, M> {
    fn drop(&mut self) {
        // Undelivered messages are discarded at the superstep boundary.
        self.clear();
    }
}

/// Front-to-back consuming iterator over an [`Inbox`].
pub struct Drain<'i, 'a, M> {
    inbox: &'i mut Inbox<'a, M>,
}

impl<M> Iterator for Drain<'_, '_, M> {
    type Item = M;
    fn next(&mut self) -> Option<M> {
        match &mut self.inbox.repr {
            InboxRepr::Slab { buf, start, end } => {
                if start == end {
                    None
                } else {
                    let i = *start;
                    *start += 1;
                    // SAFETY: as in `pop`; the slot leaves the owned range
                    // before being read, exactly once.
                    Some(unsafe { buf[i].assume_init_read() })
                }
            }
            InboxRepr::Owned(it) => it.next(),
        }
    }
}

impl<M> Drop for Drain<'_, '_, M> {
    fn drop(&mut self) {
        // Vec::drain semantics: un-iterated messages are removed too.
        self.inbox.clear();
    }
}

/// Staged messages of one chunk of consecutive VPs, reused across supersteps.
pub(crate) struct ChunkStage<M> {
    /// Contiguous `(dst, envelope)` pairs in send order.
    pub(crate) outbox: crate::program::Outbox<M>,
    /// `vp_ends[i]` = end index (into `outbox.msgs`) of the messages sent by
    /// the chunk's `i`-th VP.
    pub(crate) vp_ends: Vec<u32>,
}

impl<M> ChunkStage<M> {
    pub(crate) fn new(chunk_vps: usize) -> Self {
        ChunkStage { outbox: crate::program::Outbox::new(), vp_ends: Vec::with_capacity(chunk_vps) }
    }

    pub(crate) fn reset(&mut self) {
        self.outbox.reset();
        self.vp_ends.clear();
    }
}

/// Serial counting-sort scatter: drains every staged message in ascending
/// source order into its destination's slab range. Stable, so per-inbox
/// delivery order matches the legacy nested delivery loop exactly.
pub(crate) fn route_serial<M>(
    stages: &mut [ChunkStage<M>],
    cursors: &mut [u32],
    slab: &mut [MaybeUninit<M>],
) {
    for stage in stages {
        for (dst, env) in stage.outbox.msgs.drain(..) {
            if let Envelope::Data(m) = env {
                let cur = &mut cursors[dst as usize];
                slab[*cur as usize].write(m);
                *cur += 1;
            }
        }
        stage.vp_ends.clear();
    }
}

struct SendPtr<T>(*mut T);

// Manual impls: the derive would bound `T: Copy`, but the pointer itself is
// always copyable.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the scatter workers write disjoint slots (invariant 3).
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper, keeping the `Send` impl in effect under disjoint capture.
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

/// Shared view of the staging buffers for the scatter workers. `M: Send`
/// suffices (rather than `M: Sync`) because each payload is *moved* to
/// exactly one worker — the one owning its destination range — and the only
/// shared reads are of the plain-data `dst` tags (invariant 3).
struct SharedStages<M> {
    ptr: *const ChunkStage<M>,
    len: usize,
}

impl<M> Clone for SharedStages<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for SharedStages<M> {}
// SAFETY: see the type docs; constructed only by `route_parallel`, whose
// workers partition payload ownership by destination.
unsafe impl<M: Send> Send for SharedStages<M> {}
unsafe impl<M: Send> Sync for SharedStages<M> {}

impl<M> SharedStages<M> {
    /// # Safety
    /// Callers must uphold invariant 3: no concurrent mutation of the
    /// stages, and by-value payload reads partitioned by destination.
    unsafe fn as_slice<'s>(self) -> &'s [ChunkStage<M>] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// Parallel counting-sort scatter: destinations are partitioned into
/// `parts` contiguous ranges balanced by message count; each worker scans
/// every staged message and places the ones targeting its range. Stability
/// per destination is preserved (each worker scans in ascending source
/// order). Afterwards the caller must invoke
/// [`clear_after_parallel_scatter`].
pub(crate) fn route_parallel<M: Send>(
    stages: &[ChunkStage<M>],
    offsets: &[u32],
    cursors: &mut [u32],
    slab: &mut [MaybeUninit<M>],
    parts: usize,
) {
    let v = cursors.len();
    let total = offsets[v];
    let base = SendPtr(slab.as_mut_ptr());
    let shared = SharedStages { ptr: stages.as_ptr(), len: stages.len() };
    rayon::scope(|s| {
        let mut cursors_rest = &mut cursors[..];
        let mut dst_lo = 0usize;
        for k in 1..=parts {
            // Cut destinations where the cumulative message count reaches
            // k/parts of the total (count-balanced, not VP-balanced).
            let target = (total as u64 * k as u64 / parts as u64) as u32;
            let dst_hi = if k == parts {
                v
            } else {
                offsets[dst_lo..=v].partition_point(|&o| o < target) + dst_lo
            };
            let dst_hi = dst_hi.clamp(dst_lo, v);
            if dst_hi == dst_lo {
                continue;
            }
            let take = std::mem::take(&mut cursors_rest);
            let (cur_part, rest) = take.split_at_mut(dst_hi - dst_lo);
            cursors_rest = rest;
            let lo = dst_lo;
            s.spawn(move |_| {
                // SAFETY: invariant 3 — shared read-only view during the
                // scatter; payload ownership is partitioned by destination.
                let stages = unsafe { shared.as_slice() };
                for stage in stages {
                    for (dst, env) in &stage.outbox.msgs {
                        let d = *dst as usize;
                        if d >= lo && d < dst_hi {
                            if let Envelope::Data(m) = env {
                                let cur = &mut cur_part[d - lo];
                                // SAFETY: invariant 3 — this worker owns
                                // destination range [lo, dst_hi): each slot
                                // is written once, each payload read once.
                                unsafe {
                                    let payload = std::ptr::read(m);
                                    (*base.get().add(*cur as usize)).write(payload);
                                }
                                *cur += 1;
                            }
                        }
                    }
                }
            });
            dst_lo = dst_hi;
        }
    });
}

/// Resets the staging buffers after [`route_parallel`] without running
/// destructors: every `Data` payload has already been moved into the arena.
pub(crate) fn clear_after_parallel_scatter<M>(stages: &mut [ChunkStage<M>]) {
    for stage in stages {
        // SAFETY: invariant 3 — all payloads were moved out by the scatter;
        // the remaining envelope shells (and `Dummy`s) own nothing.
        unsafe { stage.outbox.msgs.set_len(0) };
        stage.outbox.vp_start = 0;
        stage.vp_ends.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(msgs: &[(u32, Option<String>)]) -> ChunkStage<String> {
        let mut stage = ChunkStage::new(4);
        for (dst, payload) in msgs {
            match payload {
                Some(m) => stage.outbox.send(*dst as usize, m.clone()),
                None => stage.outbox.send_dummy(*dst as usize),
            }
        }
        stage
    }

    fn arena_contents(arena: &mut Arena<String>, v: usize) -> Vec<Vec<String>> {
        let (slab, offsets) = arena.take_read();
        let mut out = Vec::new();
        let mut rest = slab;
        for vp in 0..v {
            let len = (offsets[vp + 1] - offsets[vp]) as usize;
            let take = std::mem::take(&mut rest);
            let (mine, r) = take.split_at_mut(len);
            rest = r;
            let mut inbox = Inbox::over_slab(mine);
            out.push(inbox.drain(..).collect());
        }
        out
    }

    #[test]
    fn serial_scatter_groups_by_destination_in_source_order() {
        let v = 4;
        let mut arena: Arena<String> = Arena::new(v);
        let mut stages = vec![
            staged(&[(2, Some("a".into())), (0, Some("b".into())), (2, None)]),
            staged(&[(2, Some("c".into())), (3, Some("d".into()))]),
        ];
        let mut counts = vec![0u32; v];
        for stage in &stages {
            for (dst, env) in &stage.outbox.msgs {
                if matches!(env, Envelope::Data(_)) {
                    counts[*dst as usize] += 1;
                }
            }
        }
        let mut cursors = vec![0u32; v];
        let total = arena.prepare_write(&counts, &mut cursors);
        assert_eq!(total, 4, "dummies are not delivered");
        {
            let (slab, _) = (&mut arena.slab[..total], ());
            route_serial(&mut stages, &mut cursors, slab);
        }
        arena.commit_write(total);
        assert_eq!(
            arena_contents(&mut arena, v),
            vec![vec!["b".to_string()], vec![], vec!["a".into(), "c".into()], vec!["d".into()]],
        );
    }

    #[test]
    fn parallel_scatter_matches_serial() {
        let v = 8;
        let build = || {
            (0..3)
                .map(|c| {
                    staged(
                        &(0..10)
                            .map(|i| {
                                let dst = (c * 7 + i * 3) % v;
                                ((dst as u32), Some(format!("m{c}-{i}")))
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let run = |parallel: bool| -> Vec<Vec<String>> {
            let mut stages = build();
            let mut arena: Arena<String> = Arena::new(v);
            let mut counts = vec![0u32; v];
            for stage in &stages {
                for (dst, env) in &stage.outbox.msgs {
                    if matches!(env, Envelope::Data(_)) {
                        counts[*dst as usize] += 1;
                    }
                }
            }
            let mut cursors = vec![0u32; v];
            let total = arena.prepare_write(&counts, &mut cursors);
            if parallel {
                let (slab, offsets) = (&mut arena.slab[..total], &arena.offsets[..]);
                route_parallel(&stages, offsets, &mut cursors, slab, 3);
                clear_after_parallel_scatter(&mut stages);
            } else {
                route_serial(&mut stages, &mut cursors, &mut arena.slab[..total]);
            }
            arena.commit_write(total);
            assert!(stages.iter().all(|s| s.outbox.msgs.is_empty()));
            arena_contents(&mut arena, v)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn inbox_pop_and_drain_follow_vec_semantics() {
        let mut backing: Vec<MaybeUninit<u64>> =
            (1..=4u64).map(MaybeUninit::new).collect();
        let mut inbox = Inbox::over_slab(&mut backing);
        assert_eq!(inbox.len(), 4);
        assert_eq!(inbox.pop(), Some(4));
        assert_eq!(inbox.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        let first_two: Vec<u64> = inbox.drain(..).take(2).collect();
        assert_eq!(first_two, vec![1, 2]);
        // Drain drop removed the rest, like Vec::drain.
        assert!(inbox.is_empty());
    }

    #[test]
    fn undelivered_messages_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let mut backing: Vec<MaybeUninit<Tracked>> =
                (0..3).map(|_| MaybeUninit::new(Tracked)).collect();
            let mut inbox = Inbox::over_slab(&mut backing);
            drop(inbox.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
