//! Multi-tenant job server: many program runs multiplexed over one
//! persistent worker gang.
//!
//! Everything below `crate::engine::run` executes **one** program and tears
//! the world down afterwards: the gang is spawned and joined per run, plans
//! are compiled per program instance, and every arena/table/trace buffer is
//! allocated from scratch. That is the right shape for a batch experiment
//! and the wrong one for serving — the paper's one-specification-everywhere
//! argument has a serving corollary: one *compiled* specification should
//! run many times at near-zero marginal setup cost. A [`JobServer`]
//! delivers that with three mechanisms:
//!
//! * **A persistent gang.** `n_shards` OS threads are spawned once, at
//!   server creation, and block on per-worker job slots instead of exiting
//!   after a run. Dispatching a job costs one slot handoff to each worker
//!   and one handshake back — two condvar rendezvous per worker — instead
//!   of `n_shards` thread spawns and joins. The scheduler thread doubles as
//!   worker 0 (the coordinator), exactly like the calling thread does in
//!   `run`.
//! * **A compiled-plan cache** keyed by `(program shape fingerprint, v,
//!   n_shards)`: repeat requests reuse the built [`Program`] — its
//!   `StepPlan`s and `PlanLayout`s included — plus the lane plan and the
//!   per-shard declared send totals, so a warm job skips program
//!   construction, plan compilation *and* the per-worker route enumeration
//!   of `prepare_run`. Captured plans (see [`Program::capture_plans`])
//!   additionally key on a fingerprint of the initial states, the PR-7
//!   validity rule: a lookalike job with different states misses and
//!   re-captures instead of replaying someone else's routes.
//! * **Arena pooling.** Worker kits (arenas, staging, scatter scratch,
//!   direct-write tables), shard cells, the epoch-merge scratch, the trace
//!   builder and the lane grid are all recycled between jobs, so warm
//!   steady state allocates nothing *across* jobs — extended from the
//!   engine's long-standing within-one-run guarantee and proven by the
//!   cross-job case in `tests/allocation.rs`.
//!
//! # Trust model of the cache key
//!
//! Program routes are closures, so the server cannot fingerprint a program
//! structurally; the submitter names its shape with a [`ShapeKey`] instead,
//! and the cache trusts that name the same way the engine trusts a declared
//! oblivious route. A key that misdescribes its program degrades exactly
//! like a mis-declared route: the planned path's bounds and written-total
//! checks surface a [`ModelError::PlanMismatch`] (or a
//! [`PlanFallback::Dynamic`] degrade) — never corruption and never an
//! out-of-bounds write. For [`ProgramSource::Prebuilt`] jobs the submitted
//! program is authoritative (the lane plan is recomputed from its real
//! labels each job, allocation-free), so even a lying key cannot misroute
//! the dynamic path.
//!
//! # Failure isolation
//!
//! A `VpPanic`, fault injection, or `GangStall` in one job fails **that
//! job's ticket** and leaves the gang serviceable: the barrier poison that
//! is deliberately sticky within a run is replaced between jobs by a fresh
//! barrier generation (`GangCore::reset_for_job`), worker kits drain any
//! mid-superstep residue, and the lanes are cleared. The one documented
//! limit carries over from the engine: a VP closure that *never returns*
//! wedges its worker thread forever, which no in-process watchdog can
//! recover — `stall_timeout` converts every slow-or-lost-peer case into a
//! structured per-job [`ModelError::GangStall`].
//!
//! # Admission
//!
//! The queue is FIFO with one size-aware exception: when the head job is
//! large (`weight > small_cutoff`, weight = `v`), the earliest *small* job
//! overtakes it, so interactive traffic is not starved behind a `v = 2^16`
//! sort. Each overtake increments the head's counter; a head overtaken
//! `max_overtakes` times becomes non-overtakable, bounding large-job
//! starvation.
//!
//! # Unsafe surface
//!
//! One pattern, mirroring `std::thread::scope`: the scheduler builds the
//! per-job `Shared` view on its stack and hands the persistent workers a
//! lifetime-erased pointer to it (`SharedView`). Soundness is the scoped
//! rendezvous: workers drop the reference before posting their done
//! handshake, and the scheduler keeps the pointee alive and unmoved until
//! it has collected every handshake.

#![allow(unsafe_code)]

use crate::engine::{run_serial, GranSpec, PlanFallback, RunOptions};
use crate::program::{LanePlan, Program};
use crate::shard::{
    prepare_run, prepare_run_cached, shard_loop, Coord, GangBarrier, GangCore, ShardCell, Shared,
    Worker, WorkerKit,
};
use nob_core::fault::FaultPlan;
use nob_core::metrics::{CommTrace, EpochMerge, TraceBuilder};
use nob_core::model::log2_exact;
use nob_core::telemetry::{Counter, TelemetrySink};
use nob_core::ModelError;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The submitter-declared identity of a program's *shape*: everything that
/// determines its superstep sequence, labels and routes (but not its data).
/// Two submissions with equal keys and equal `v` promise to build
/// observably identical programs; see the module docs' trust model for what
/// happens when that promise is broken (structured degradation, never
/// corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// The algorithm family, e.g. `"fft"` — use the program's
    /// [`crate::traits::NobAlgorithm::name`] when one exists.
    pub algo: &'static str,
    /// Distinguishes variants within a family (rounds, tuning, phase
    /// count…). Fold whatever parameters shape the program into this.
    pub variant: u64,
}

impl ShapeKey {
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.algo.hash(&mut h);
        self.variant.hash(&mut h);
        h.finish()
    }
}

/// Where a job's program comes from.
pub enum ProgramSource<S, M> {
    /// An already-built program, shared by the submitter. The cache reuses
    /// lane plans and send totals across equal-key submissions but the
    /// submitted program itself is always the one executed.
    Prebuilt(Arc<Program<S, M>>),
    /// Built on first use and cached under the job's [`ShapeKey`]; repeat
    /// submissions reuse the cached program, compiled plans included.
    Build(Box<dyn FnOnce() -> Program<S, M> + Send>),
    /// Like [`ProgramSource::Build`], followed by
    /// [`Program::capture_plans`] over the job's initial states. The cache
    /// entry keys on a fingerprint of those states (the PR-7 capture
    /// validity rule), so a lookalike job with different data misses and
    /// re-captures rather than replaying a stale route.
    BuildCaptured(Box<dyn FnOnce() -> Program<S, M> + Send>),
}

/// Per-job execution options — the serving subset of [`RunOptions`]
/// (worker count is the server's, parallelism is the gang).
#[derive(Debug, Clone)]
pub struct JobOptions {
    /// Check the i-superstep cluster constraint on every message.
    pub validate: bool,
    /// Execute declared/captured communication plans.
    pub use_plans: bool,
    /// Allow the zero-barrier fused tier for shard-local planned steps.
    pub fuse: bool,
    /// Degradation policy for a plan mismatch on a non-validated run.
    pub plan_fallback: PlanFallback,
    /// Keep the raw per-superstep message log.
    pub collect_messages: bool,
    /// Materialize the job's [`CommTrace`] (skip for latency-critical jobs:
    /// the pooled trace builder still records, but no per-step vectors are
    /// allocated for the result).
    pub want_trace: bool,
    /// Deterministic fault-injection plan for this job only.
    pub faults: Option<Arc<FaultPlan>>,
    /// Per-job barrier watchdog: a stall fails this job with
    /// [`ModelError::GangStall`] and the gang is reset for the next one.
    pub stall_timeout: Option<Duration>,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            validate: true,
            use_plans: true,
            fuse: true,
            plan_fallback: PlanFallback::Fail,
            collect_messages: false,
            want_trace: true,
            faults: None,
            stall_timeout: None,
        }
    }
}

/// A job submission: its declared shape plus execution options.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program's shape identity (the cache key's first component).
    pub shape: ShapeKey,
    /// Execution options.
    pub opts: JobOptions,
}

impl JobSpec {
    /// A spec with default options.
    pub fn new(shape: ShapeKey) -> Self {
        JobSpec { shape, opts: JobOptions::default() }
    }
}

/// Outcome of a completed job.
#[derive(Debug)]
pub struct JobResult<S> {
    /// Final per-VP states.
    pub states: Vec<S>,
    /// The communication trace, when [`JobOptions::want_trace`] was set.
    pub trace: Option<CommTrace>,
    /// Raw message log, when requested.
    pub message_log: Option<Vec<Vec<(u32, u32)>>>,
    /// Barrier rounds the gang walked for this job (0 on the serial path).
    pub rounds: u64,
    /// The abandoned planned attempt's error when
    /// [`PlanFallback::Dynamic`] re-executed the job dynamically.
    pub fallback: Option<ModelError>,
    /// Time this job spent queued before the scheduler popped it. `None`
    /// when the server runs without telemetry ([`ServerConfig::telemetry`])
    /// — lifecycle timing obeys the same zero-cost arming rule as spans.
    pub queue_wait: Option<Duration>,
    /// Time from scheduler pop to fulfillment (resolve + run + gather).
    /// `None` when telemetry is disarmed.
    pub service: Option<Duration>,
}

struct TicketCell<S> {
    slot: Mutex<Option<Result<JobResult<S>, ModelError>>>,
    cv: Condvar,
}

/// A handle to a submitted job; redeem it with [`JobTicket::wait`].
pub struct JobTicket<S> {
    cell: Arc<TicketCell<S>>,
}

impl<S> JobTicket<S> {
    /// Blocks until the job completes and returns its outcome.
    pub fn wait(self) -> Result<JobResult<S>, ModelError> {
        let mut g = lock(&self.cell.slot);
        loop {
            if let Some(out) = g.take() {
                return out;
            }
            g = self.cell.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn fulfill<S>(cell: &TicketCell<S>, out: Result<JobResult<S>, ModelError>) {
    *lock(&cell.slot) = Some(out);
    cell.cv.notify_all();
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Gang width: a power of two in `1..=256`. Jobs with `v <` this run on
    /// the serial path of the scheduler thread instead.
    pub n_shards: usize,
    /// Jobs with `v <= small_cutoff` count as small/interactive for
    /// admission (may overtake a queued large job).
    pub small_cutoff: u64,
    /// A queued large job overtaken this many times becomes non-overtakable
    /// (anti-starvation bound).
    pub max_overtakes: u32,
    /// Plan-cache budget: total compiled bytes ([`Program::plan_bytes`])
    /// the cache may hold. When an insertion pushes the total past the
    /// budget, least-recently-used entries are evicted until it fits (the
    /// newest entry is always kept, even alone over budget, so an oversized
    /// program still caches rather than thrashing).
    pub plan_cache_bytes: u64,
    /// Server-lifetime telemetry sink: lifecycle counters (queue wait,
    /// service, dispatch, epoch resets, cache and pool behavior) plus every
    /// executor phase span of the jobs it runs. Size it with
    /// [`TelemetrySink::for_workers`]`(n_shards)`. `None` (the default)
    /// records nothing and pays one `Option` test per site.
    pub telemetry: Option<Arc<TelemetrySink>>,
}

impl ServerConfig {
    /// A server of `n_shards` persistent workers with default admission
    /// tuning (small = `v ≤ 2^12`, at most 64 overtakes), a 64 MiB plan
    /// cache, and no telemetry.
    pub fn with_shards(n_shards: usize) -> Self {
        ServerConfig {
            n_shards,
            small_cutoff: 1 << 12,
            max_overtakes: 64,
            plan_cache_bytes: 64 << 20,
            telemetry: None,
        }
    }
}

/// A point-in-time snapshot of server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed with a [`ModelError`].
    pub failed: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (cold builds).
    pub cache_misses: u64,
    /// Jobs that degraded to the dynamic path via [`PlanFallback::Dynamic`].
    pub fallbacks: u64,
    /// Jobs routed to the scheduler's serial path (`v <` gang width).
    pub serial_jobs: u64,
}

#[derive(Default)]
struct StatsInner {
    completed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    fallbacks: AtomicU64,
    serial_jobs: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            serial_jobs: self.serial_jobs.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

struct JobRequest<S, M> {
    states: Vec<S>,
    spec: JobSpec,
    /// `Some` until [`resolve_program`] consumes it (an `Option` so the
    /// resolver can take the builder out by value).
    source: Option<ProgramSource<S, M>>,
    states_fp: Option<u64>,
    ticket: Arc<TicketCell<S>>,
    /// Submission timestamp, stamped only when the server's telemetry is
    /// armed (queue-wait attribution; disarmed submissions never read the
    /// clock).
    enqueued: Option<Instant>,
}

struct Pending<S, M> {
    job: JobRequest<S, M>,
    overtaken: u32,
}

/// The FIFO + size-aware admission queue (see the module docs). Factored
/// out of the locking so the policy is directly unit-testable.
pub(crate) struct Admission<S, M> {
    pending: Vec<Pending<S, M>>,
    small_cutoff: u64,
    max_overtakes: u32,
    /// Lifetime total of overtakes performed (telemetry reads this under
    /// the queue lock and mirrors it into [`Counter::Overtakes`]).
    overtakes: u64,
}

impl<S, M> Admission<S, M> {
    fn new(cfg: &ServerConfig) -> Self {
        Admission {
            pending: Vec::new(),
            small_cutoff: cfg.small_cutoff,
            max_overtakes: cfg.max_overtakes,
            overtakes: 0,
        }
    }

    fn push(&mut self, job: JobRequest<S, M>) {
        self.pending.push(Pending { job, overtaken: 0 });
    }

    fn weight(p: &Pending<S, M>) -> u64 {
        p.job.states.len() as u64
    }

    /// Pops the next job per policy: FIFO, except that the earliest small
    /// job overtakes a large, not-yet-exhausted head.
    fn pop(&mut self) -> Option<JobRequest<S, M>> {
        if self.pending.is_empty() {
            return None;
        }
        let head_small = Self::weight(&self.pending[0]) <= self.small_cutoff;
        if !head_small && self.pending[0].overtaken < self.max_overtakes {
            if let Some(i) =
                self.pending.iter().position(|p| Self::weight(p) <= self.small_cutoff)
            {
                self.pending[0].overtaken += 1;
                self.overtakes += 1;
                return Some(self.pending.remove(i).job);
            }
        }
        Some(self.pending.remove(0).job)
    }

    fn drain(&mut self) -> impl Iterator<Item = JobRequest<S, M>> + '_ {
        self.pending.drain(..).map(|p| p.job)
    }
}

struct QueueState<S, M> {
    q: Admission<S, M>,
    shutdown: bool,
}

struct ServerInner<S, M> {
    queue: Mutex<QueueState<S, M>>,
    cv: Condvar,
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    shape: u64,
    v: usize,
    n_shards: usize,
    /// `Some` exactly for captured-plan entries: the PR-7
    /// `(initial states, v)` validity key.
    states_fp: Option<u64>,
}

struct CacheEntry<S, M> {
    prog: Arc<Program<S, M>>,
    /// Per-shard, per-step declared payload totals, harvested from the
    /// first cold gang run ([`prepare_run`]'s output); `None` until then.
    totals: Option<Arc<Vec<Vec<u64>>>>,
    /// Compiled-plan footprint of `prog` ([`Program::plan_bytes`]) — the
    /// unit the LRU budget is accounted in.
    bytes: u64,
    /// Recency stamp from the cache's tick counter (LRU victim = minimum).
    last_used: u64,
}

struct PlanCache<S, M> {
    entries: HashMap<CacheKey, CacheEntry<S, M>>,
    /// Total compiled bytes the cache may hold ([`ServerConfig::plan_cache_bytes`]).
    budget_bytes: u64,
    /// Sum of every resident entry's `bytes`.
    total_bytes: u64,
    /// Monotone access clock for `last_used` stamps.
    tick: u64,
}

impl<S, M> PlanCache<S, M> {
    /// Bumps an entry's recency stamp (a hit).
    fn touch(&mut self, key: &CacheKey) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(key) {
            e.last_used = self.tick;
        }
    }

    /// Inserts a freshly resolved program and enforces the byte budget:
    /// least-recently-used entries are evicted (O(n) min-scan — the cache
    /// is small by construction once bounded) until the total fits. The
    /// entry just inserted is never the victim: it carries the maximal
    /// stamp and the scan stops with one survivor, so a single oversized
    /// program still caches instead of thrashing every submission.
    fn insert(&mut self, key: CacheKey, prog: Arc<Program<S, M>>, tele: Option<&TelemetrySink>) {
        let bytes = prog.plan_bytes();
        self.tick += 1;
        let entry = CacheEntry { prog, totals: None, bytes, last_used: self.tick };
        if let Some(old) = self.entries.insert(key, entry) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
        while self.total_bytes > self.budget_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(k) = victim else { break };
            if let Some(e) = self.entries.remove(&k) {
                self.total_bytes -= e.bytes;
            }
            if let Some(tl) = tele {
                tl.add(Counter::CacheEvictions, 1);
            }
        }
        if let Some(tl) = tele {
            tl.set(Counter::CacheBytes, self.total_bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// Gang plumbing
// ---------------------------------------------------------------------------

/// A lifetime-erased pointer to the scheduler's per-job [`Shared`] view.
///
/// # Safety contract (the scoped rendezvous)
/// The scheduler guarantees the pointee outlives every use: it does not
/// move or drop the `Shared` until each dispatched worker has posted its
/// [`DoneMsg`], and workers drop their reference before posting. This is
/// `std::thread::scope`'s argument with the join replaced by the done
/// handshake (a `Mutex` + `Condvar` slot, so the release/acquire pairing
/// carries the happens-before edge).
struct SharedView<S: 'static, M: 'static> {
    ptr: *const Shared<'static, S, M>,
}

// SAFETY: the view is only a pointer; the pointee is `Sync` (it is shared
// across the gang by `run_sharded` the same way) and the rendezvous above
// bounds every dereference within the pointee's true lifetime.
unsafe impl<S: Send, M: Send> Send for SharedView<S, M> {}

impl<S: 'static, M: 'static> SharedView<S, M> {
    fn erase(shared: &Shared<'_, S, M>) -> Self {
        SharedView { ptr: (shared as *const Shared<'_, S, M>).cast() }
    }

    /// # Safety
    /// Caller must be inside the scoped rendezvous described on the type:
    /// the scheduler still awaits this worker's done handshake.
    unsafe fn get(&self) -> &Shared<'static, S, M> {
        // SAFETY: the fn's contract — the pointee outlives the rendezvous
        // the caller is inside of.
        unsafe { &*self.ptr }
    }
}

/// How a worker sizes its planned-path state for a job.
enum Prep {
    /// Enumerate routes and compute declared totals ([`prepare_run`]).
    Cold,
    /// Reuse cached per-shard totals ([`prepare_run_cached`]).
    Cached(Arc<Vec<Vec<u64>>>),
    /// Plans disabled for this job — nothing to size.
    Dynamic,
}

enum GangMsg<S: 'static, M: 'static> {
    Job { view: SharedView<S, M>, vps: usize, prep: Prep, chunk: Vec<S> },
    Shutdown,
}

struct DoneMsg<S> {
    chunk: Vec<S>,
    /// This shard's declared totals, reported back on cold jobs for the
    /// plan cache.
    totals: Option<Vec<u64>>,
}

/// A one-item handoff slot: `put` never blocks (the protocol guarantees
/// emptiness), `take` blocks until an item arrives. Allocation-free per
/// message, unlike a channel.
struct Slot<T> {
    cell: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { cell: Mutex::new(None), cv: Condvar::new() }
    }

    fn put(&self, item: T) {
        let mut g = lock(&self.cell);
        debug_assert!(g.is_none(), "slot handoff overlap");
        *g = Some(item);
        self.cv.notify_one();
    }

    fn take(&self) -> T {
        let mut g = lock(&self.cell);
        loop {
            if let Some(item) = g.take() {
                return item;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Chan<S: 'static, M: 'static> {
    job: Slot<GangMsg<S, M>>,
    done: Slot<DoneMsg<S>>,
}

/// The loop of persistent gang member `w` (`1..n_shards`): block on the job
/// slot, run one job's shard loop, hand the chunk back, repeat. The worker
/// kit lives here, across jobs — that is the arena pooling.
fn gang_member<S: Send + 'static, M: Send + 'static>(w: usize, chan: Arc<Chan<S, M>>) {
    let mut kit: Option<WorkerKit<M>> = None;
    loop {
        match chan.job.take() {
            GangMsg::Shutdown => return,
            GangMsg::Job { view, vps, prep, mut chunk } => {
                let totals;
                {
                    // SAFETY: scoped rendezvous — the scheduler keeps the
                    // pointee alive until our `done.put` below, and this
                    // reference dies at the end of this block, before it.
                    let shared = unsafe { view.get() };
                    let kit_now = match kit.take() {
                        Some(mut k) => {
                            if let Some(tl) = shared.telemetry {
                                tl.add(Counter::PoolReuses, 1);
                            }
                            k.reset(vps);
                            k
                        }
                        None => WorkerKit::new(vps),
                    };
                    let mut me = Worker::from_kit(w, w * vps, vps, &mut chunk, kit_now);
                    match &prep {
                        Prep::Cold => prepare_run(&mut me, shared),
                        Prep::Cached(t) => prepare_run_cached(&mut me, shared, &t[w]),
                        Prep::Dynamic => {}
                    }
                    shard_loop(&mut me, shared, None);
                    let k = me.into_kit();
                    totals = matches!(prep, Prep::Cold).then(|| k.send_total().to_vec());
                    kit = Some(k);
                }
                chan.done.put(DoneMsg { chunk, totals });
            }
        }
    }
}

/// Per-trace-shape pooled coordinator state (shard cells + merge scratch),
/// parked in a map so alternating shapes in a mixed workload don't
/// re-allocate counters every job.
struct ShapeRes {
    cells: Vec<Mutex<ShardCell>>,
    merge: EpochMerge,
}

/// Everything the scheduler thread owns: the persistent gang, the pooled
/// run state, and the plan cache (scheduler-local, hence lock-free).
struct Gang<S: Send + 'static, M: Send + 'static> {
    n_shards: usize,
    log_shards: u32,
    chans: Vec<Arc<Chan<S, M>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    core: GangCore<M>,
    kit0: Option<WorkerKit<M>>,
    chunk0: Vec<S>,
    chunks: Vec<Vec<S>>,
    shapes: HashMap<u32, ShapeRes>,
    cur_shape: Option<u32>,
    trace: TraceBuilder,
    cache: PlanCache<S, M>,
    /// The server's telemetry sink ([`ServerConfig::telemetry`]), shared
    /// with every job's `Shared` view and run options.
    telemetry: Option<Arc<TelemetrySink>>,
}

impl<S: Send + 'static, M: Send + 'static> Gang<S, M> {
    fn spawn(n_shards: usize) -> Self {
        let log_shards = log2_exact(n_shards);
        let chans: Vec<Arc<Chan<S, M>>> = (1..n_shards)
            .map(|_| Arc::new(Chan { job: Slot::new(), done: Slot::new() }))
            .collect();
        let handles = chans
            .iter()
            .enumerate()
            .map(|(i, chan)| {
                let chan = Arc::clone(chan);
                std::thread::Builder::new()
                    .name(format!("nob-gang-{}", i + 1))
                    .spawn(move || gang_member(i + 1, chan))
                    // allow-panic: thread spawn at server construction; a
                    // spawn failure here is unrecoverable setup, like the
                    // engine's own MAX_WORKERS rationale.
                    .expect("spawn gang member")
            })
            .collect();
        Gang {
            n_shards,
            log_shards,
            chans,
            handles,
            core: GangCore {
                plan: LanePlan::placeholder(),
                grid: crate::mailbox::LaneGrid::new(n_shards),
                direct: crate::mailbox::DirectGrid::new(n_shards),
                cells: Vec::new(),
                barrier: GangBarrier::new(n_shards, None),
                abort_round: AtomicU64::new(u64::MAX),
            },
            kit0: None,
            chunk0: Vec::new(),
            chunks: (1..n_shards).map(|_| Vec::new()).collect(),
            shapes: HashMap::new(),
            cur_shape: None,
            trace: TraceBuilder::new(1, 1, 0),
            cache: PlanCache {
                entries: HashMap::new(),
                budget_bytes: u64::MAX,
                total_bytes: 0,
                tick: 0,
            },
            telemetry: None,
        }
    }

    /// Installs the pooled shard cells for trace shape `log_v` (full
    /// granularity), parking the previous shape's cells. Allocates only the
    /// first time a shape is seen.
    fn ensure_shape(&mut self, log_v: u32) {
        if self.cur_shape == Some(log_v) {
            return;
        }
        if let Some(prev) = self.cur_shape.take() {
            let cells = std::mem::take(&mut self.core.cells);
            if let Some(res) = self.shapes.get_mut(&prev) {
                res.cells = cells;
            }
        }
        let (n_shards, log_shards) = (self.n_shards, self.log_shards);
        let spec = GranSpec { levels: log_v, gran_shift: 0, full: true };
        let entry = self.shapes.entry(log_v).or_insert_with(|| ShapeRes {
            cells: (0..n_shards)
                .map(|w| Mutex::new(ShardCell::new(spec, log_v, log_shards, w)))
                .collect(),
            merge: EpochMerge::new(log_v, log_shards),
        });
        self.core.cells = std::mem::take(&mut entry.cells);
        self.cur_shape = Some(log_v);
    }

    fn shutdown(mut self) {
        for chan in &self.chans {
            chan.job.put(GangMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A multi-tenant job server over one persistent sharded worker gang (see
/// the module docs). Dropping the server fails any still-queued jobs and
/// joins the gang.
pub struct JobServer<S: Send + 'static, M: Send + 'static> {
    inner: Arc<ServerInner<S, M>>,
    stats: Arc<StatsInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    /// Kept so `enqueue` knows whether to stamp submission times (and so a
    /// caller-held sink is the only other owner).
    telemetry: Option<Arc<TelemetrySink>>,
}

fn closed_error() -> ModelError {
    ModelError::BadParameter { what: "job server", reason: "server shut down before the job ran" }
}

impl<S, M> JobServer<S, M>
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    /// Creates a server and spawns its gang (`config.n_shards` workers, one
    /// of them the scheduler thread itself).
    pub fn new(config: ServerConfig) -> Result<Self, ModelError> {
        if !config.n_shards.is_power_of_two() || config.n_shards == 0 || config.n_shards > 256 {
            return Err(ModelError::BadParameter {
                what: "n_shards",
                reason: "gang width must be a power of two in 1..=256",
            });
        }
        let inner = Arc::new(ServerInner {
            queue: Mutex::new(QueueState { q: Admission::new(&config), shutdown: false }),
            cv: Condvar::new(),
        });
        let stats = Arc::new(StatsInner::default());
        let telemetry = config.telemetry.clone();
        let scheduler = {
            let inner = Arc::clone(&inner);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("nob-server-sched".into())
                .spawn(move || scheduler_main(inner, stats, config))
                .map_err(|_| ModelError::BadParameter {
                    what: "job server",
                    reason: "could not spawn the scheduler thread",
                })?
        };
        Ok(JobServer { inner, stats, scheduler: Some(scheduler), telemetry })
    }

    fn enqueue(
        &self,
        spec: JobSpec,
        states: Vec<S>,
        source: ProgramSource<S, M>,
        states_fp: Option<u64>,
    ) -> Result<JobTicket<S>, ModelError> {
        let v = states.len();
        if !v.is_power_of_two() {
            return Err(ModelError::NotPowerOfTwo { what: "v", value: v });
        }
        let cell = Arc::new(TicketCell { slot: Mutex::new(None), cv: Condvar::new() });
        let job = JobRequest {
            states,
            spec,
            source: Some(source),
            states_fp,
            ticket: Arc::clone(&cell),
            enqueued: self.telemetry.is_some().then(Instant::now),
        };
        {
            let mut g = lock(&self.inner.queue);
            if g.shutdown {
                return Err(closed_error());
            }
            g.q.push(job);
        }
        self.inner.cv.notify_all();
        Ok(JobTicket { cell })
    }

    /// Submits a job; the returned ticket resolves when it has run.
    pub fn submit(
        &self,
        spec: JobSpec,
        states: Vec<S>,
        source: ProgramSource<S, M>,
    ) -> Result<JobTicket<S>, ModelError> {
        debug_assert!(
            !matches!(source, ProgramSource::BuildCaptured(_)),
            "captured sources go through submit_captured (their cache entry \
             must key on the initial states)"
        );
        self.enqueue(spec, states, source, None)
    }

    /// Submits a job whose program captures its plans from these initial
    /// states ([`ProgramSource::BuildCaptured`]); the cache entry keys on a
    /// fingerprint of the states, per the capture validity rule.
    pub fn submit_captured(
        &self,
        spec: JobSpec,
        states: Vec<S>,
        build: impl FnOnce() -> Program<S, M> + Send + 'static,
    ) -> Result<JobTicket<S>, ModelError>
    where
        S: Hash,
    {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        states.len().hash(&mut h);
        for s in &states {
            s.hash(&mut h);
        }
        let fp = h.finish();
        self.enqueue(spec, states, ProgramSource::BuildCaptured(Box::new(build)), Some(fp))
    }

    /// Submit-and-wait convenience for sequential callers.
    pub fn run_job(
        &self,
        spec: JobSpec,
        states: Vec<S>,
        source: ProgramSource<S, M>,
    ) -> Result<JobResult<S>, ModelError> {
        self.submit(spec, states, source)?.wait()
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }
}

impl<S: Send + 'static, M: Send + 'static> Drop for JobServer<S, M> {
    fn drop(&mut self) {
        lock(&self.inner.queue).shutdown = true;
        self.inner.cv.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

fn scheduler_main<S, M>(inner: Arc<ServerInner<S, M>>, stats: Arc<StatsInner>, cfg: ServerConfig)
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    let mut gang: Gang<S, M> = Gang::spawn(cfg.n_shards);
    gang.telemetry = cfg.telemetry.clone();
    gang.cache.budget_bytes = cfg.plan_cache_bytes;
    loop {
        let job = {
            let mut g = lock(&inner.queue);
            loop {
                // Shutdown outranks queued work: dropping the server fails
                // still-queued jobs instead of running the backlog out.
                if g.shutdown {
                    break None;
                }
                if let Some(job) = g.q.pop() {
                    if let Some(tl) = gang.telemetry.as_deref() {
                        // Mirror the queue's lifetime overtake total while
                        // the lock still serializes it (idempotent store).
                        tl.set(Counter::Overtakes, g.q.overtakes);
                    }
                    break Some(job);
                }
                g = inner.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { break };
        process_job(&mut gang, job, &stats);
    }
    // Shutdown: fail whatever is still queued, then drain the gang.
    {
        let mut g = lock(&inner.queue);
        for job in g.q.drain() {
            fulfill(&job.ticket, Err(closed_error()));
        }
    }
    gang.shutdown();
}

/// Resolves a job's program through the plan cache. Returns the program to
/// execute and whether this was a cache hit. (The lane plan is always
/// recomputed from the executing program; the cache carries compiled
/// plans and send totals, never routing authority.)
#[allow(clippy::type_complexity)]
fn resolve_program<S: Send + Clone, M: Send>(
    cache: &mut PlanCache<S, M>,
    job: &mut JobRequest<S, M>,
    n_shards: usize,
    tele: Option<&TelemetrySink>,
) -> Result<(Arc<Program<S, M>>, bool), ModelError> {
    let key = CacheKey {
        shape: job.spec.shape.fingerprint(),
        v: job.states.len(),
        n_shards,
        states_fp: job.states_fp,
    };
    // Take the source out; a cache hit never needs the builder.
    let Some(source) = job.source.take() else {
        // Unreachable: every job is resolved exactly once.
        return Err(ModelError::BadParameter {
            what: "job server",
            reason: "job source already consumed",
        });
    };
    match source {
        ProgramSource::Prebuilt(prog) => {
            if prog.v() != job.states.len() {
                return Err(ModelError::BadVectorLength {
                    what: "states",
                    expected: prog.v(),
                    got: job.states.len(),
                });
            }
            let hit = cache.entries.contains_key(&key);
            if hit {
                cache.touch(&key);
            } else {
                cache.insert(key, Arc::clone(&prog), tele);
            }
            Ok((prog, hit))
        }
        ProgramSource::Build(build) | ProgramSource::BuildCaptured(build)
            if cache.entries.contains_key(&key) =>
        {
            drop(build);
            cache.touch(&key);
            // allow-panic: guarded by the contains_key arm condition above.
            let entry = cache.entries.get(&key).expect("checked above");
            Ok((Arc::clone(&entry.prog), true))
        }
        ProgramSource::Build(build) => {
            let prog = build();
            if prog.v() != job.states.len() {
                return Err(ModelError::BadVectorLength {
                    what: "states",
                    expected: prog.v(),
                    got: job.states.len(),
                });
            }
            let prog = Arc::new(prog);
            cache.insert(key, Arc::clone(&prog), tele);
            Ok((prog, false))
        }
        ProgramSource::BuildCaptured(build) => {
            let mut prog = build();
            if prog.v() != job.states.len() {
                return Err(ModelError::BadVectorLength {
                    what: "states",
                    expected: prog.v(),
                    got: job.states.len(),
                });
            }
            prog.capture_plans_with(job.states.clone(), None, tele)?;
            let prog = Arc::new(prog);
            cache.insert(key, Arc::clone(&prog), tele);
            Ok((prog, false))
        }
    }
}

fn process_job<S, M>(gang: &mut Gang<S, M>, mut job: JobRequest<S, M>, stats: &StatsInner)
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    // Lifecycle timing: queue wait ended the moment this job was popped
    // (process_job is called right after), service runs until fulfillment.
    // Every clock read is gated on the armed sink.
    let tele_arc = gang.telemetry.clone();
    let tele = tele_arc.as_deref();
    let queue_wait = match (tele, job.enqueued) {
        (Some(tl), Some(t0)) => {
            let d = t0.elapsed();
            tl.add(Counter::QueueWaitNanos, d.as_nanos() as u64);
            Some(d)
        }
        _ => None,
    };
    let svc0 = tele.map(|tl| {
        tl.add(Counter::Jobs, 1);
        Instant::now()
    });

    let v = job.states.len();
    let serial = v < gang.n_shards || gang.n_shards == 1;
    let width = if serial { 1 } else { gang.n_shards };
    let (prog, hit) = match resolve_program(&mut gang.cache, &mut job, width, tele) {
        Ok(r) => r,
        Err(e) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            fulfill(&job.ticket, Err(e));
            return;
        }
    };
    if hit {
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(tl) = tele {
            tl.add(Counter::CacheHits, 1);
        }
    } else {
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(tl) = tele {
            tl.add(Counter::CacheMisses, 1);
        }
    }

    let outcome = if serial {
        stats.serial_jobs.fetch_add(1, Ordering::Relaxed);
        if let Some(tl) = tele {
            tl.add(Counter::SerialJobs, 1);
        }
        serial_job(gang, &prog, &mut job)
    } else {
        gang_job(gang, &prog, &mut job)
    };
    let service = match (tele, svc0) {
        (Some(tl), Some(t0)) => {
            let d = t0.elapsed();
            tl.add(Counter::ServiceNanos, d.as_nanos() as u64);
            Some(d)
        }
        _ => None,
    };
    let outcome = outcome.map(|mut r| {
        r.queue_wait = queue_wait;
        r.service = service;
        r
    });
    match &outcome {
        Ok(r) => {
            if r.fallback.is_some() {
                stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    fulfill(&job.ticket, outcome);
}

fn run_options(opts: &JobOptions, telemetry: Option<Arc<TelemetrySink>>) -> RunOptions {
    RunOptions {
        parallel: false,
        validate: opts.validate,
        collect_messages: opts.collect_messages,
        workers: Some(1),
        use_plans: opts.use_plans,
        fuse: opts.fuse,
        plan_fallback: opts.plan_fallback,
        faults: opts.faults.clone(),
        stall_timeout: opts.stall_timeout,
        telemetry,
    }
}

/// Whether a plan mismatch on this job may degrade to a dynamic re-run
/// (mirrors `run_core`'s arming rule).
fn fallback_armed<S, M>(opts: &JobOptions, prog: &Program<S, M>) -> bool {
    opts.plan_fallback == PlanFallback::Dynamic
        && opts.use_plans
        && !opts.validate
        && prog.planned_steps() > 0
}

/// Runs one job on the scheduler thread's serial path (machines smaller
/// than the gang). Pays per-job scratch allocations — these jobs are tiny
/// by definition; the pooled path is the gang.
fn serial_job<S, M>(
    gang: &mut Gang<S, M>,
    prog: &Arc<Program<S, M>>,
    job: &mut JobRequest<S, M>,
) -> Result<JobResult<S>, ModelError>
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    let opts = &job.spec.opts;
    let spec = GranSpec { levels: prog.log_v(), gran_shift: 0, full: true };
    let ropts = run_options(opts, gang.telemetry.clone());
    let armed = fallback_armed(opts, prog);
    let saved = armed.then(|| job.states.clone());
    gang.trace.reset(prog.v(), prog.n(), prog.steps().len());
    let mut log = opts.collect_messages.then(|| Vec::with_capacity(prog.steps().len()));
    let first = run_serial(prog, &mut job.states, spec, &ropts, &mut gang.trace, &mut log);
    let fallback = match first {
        Ok(()) => None,
        Err(mismatch @ ModelError::PlanMismatch { .. }) if armed => {
            job.states = saved.unwrap_or_default();
            gang.trace.reset(prog.v(), prog.n(), prog.steps().len());
            log = opts.collect_messages.then(|| Vec::with_capacity(prog.steps().len()));
            let retry = RunOptions { use_plans: false, ..ropts };
            run_serial(prog, &mut job.states, spec, &retry, &mut gang.trace, &mut log)?;
            Some(mismatch)
        }
        Err(e) => return Err(e),
    };
    Ok(JobResult {
        states: std::mem::take(&mut job.states),
        trace: opts.want_trace.then(|| gang.trace.snapshot()),
        message_log: log,
        rounds: 0,
        fallback,
        queue_wait: None,
        service: None,
    })
}

/// Runs one job on the persistent gang, with one dynamic retry under the
/// fallback policy. The job's input states stay pristine until a successful
/// attempt gathers over them, so the retry needs no upfront clone.
fn gang_job<S, M>(
    gang: &mut Gang<S, M>,
    prog: &Arc<Program<S, M>>,
    job: &mut JobRequest<S, M>,
) -> Result<JobResult<S>, ModelError>
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    let armed = fallback_armed(&job.spec.opts, prog);
    match gang_attempt(gang, prog, job, true) {
        Ok(res) => Ok(res),
        Err(mismatch @ ModelError::PlanMismatch { .. }) if armed => {
            let mut res = gang_attempt(gang, prog, job, false)?;
            res.fallback = Some(mismatch);
            Ok(res)
        }
        Err(e) => Err(e),
    }
}

fn gang_attempt<S, M>(
    gang: &mut Gang<S, M>,
    prog: &Arc<Program<S, M>>,
    job: &mut JobRequest<S, M>,
    plans_pass: bool,
) -> Result<JobResult<S>, ModelError>
where
    S: Send + Clone + 'static,
    M: Send + 'static,
{
    let opts = &job.spec.opts;
    let v = prog.v();
    let log_v = prog.log_v();
    let n = gang.n_shards;
    let vps = v / n;
    let use_plans = opts.use_plans && plans_pass;
    let key = CacheKey {
        shape: job.spec.shape.fingerprint(),
        v,
        n_shards: n,
        states_fp: job.states_fp,
    };

    // --- recycle the pooled run state -----------------------------------
    let tele_arc = gang.telemetry.clone();
    let tele = tele_arc.as_deref();
    let t0 = tele.map(|_| Instant::now());
    gang.ensure_shape(log_v);
    gang.core.reset_for_job(opts.stall_timeout);
    if let (Some(tl), Some(t0)) = (tele, t0) {
        tl.add(Counter::EpochResetNanos, t0.elapsed().as_nanos() as u64);
        tl.add(Counter::EpochResetCount, 1);
    }
    // The lane plan is always derived from the program actually executing
    // (allocation-free in-place recompute, O(steps)), so even a shape key
    // that misdescribes its Prebuilt program cannot misroute the dynamic
    // path — the cache only ever short-circuits *cost* (compiled plans,
    // send totals), never the routing authority.
    gang.core.plan.recompute_pooled(prog, n);
    let prep = if !use_plans {
        Prep::Dynamic
    } else {
        match gang.cache.entries.get(&key).and_then(|e| e.totals.clone()) {
            Some(t) => Prep::Cached(t),
            None => Prep::Cold,
        }
    };
    let cold = matches!(prep, Prep::Cold);

    // --- scatter input chunks -------------------------------------------
    gang.chunk0.clear();
    gang.chunk0.extend_from_slice(&job.states[..vps]);
    for i in 1..n {
        let c = &mut gang.chunks[i - 1];
        c.clear();
        c.extend_from_slice(&job.states[i * vps..(i + 1) * vps]);
    }

    // --- per-job shared view + dispatch ---------------------------------
    let spec = GranSpec { levels: log_v, gran_shift: 0, full: true };
    let mut log = opts.collect_messages.then(|| Vec::with_capacity(prog.steps().len()));
    gang.trace.reset(v, prog.n(), prog.steps().len());
    let shared = Shared {
        prog,
        core: &gang.core,
        faults: opts.faults.as_deref(),
        spec,
        validate: opts.validate,
        collect_log: opts.collect_messages,
        use_plans,
        fuse: opts.fuse,
        v,
        log_v,
        n_shards: n,
        log_shards: gang.log_shards,
        telemetry: tele,
    };
    let t0 = tele.map(|_| Instant::now());
    for i in 1..n {
        let chunk = std::mem::take(&mut gang.chunks[i - 1]);
        let prep_i = match &prep {
            Prep::Cold => Prep::Cold,
            Prep::Cached(t) => Prep::Cached(Arc::clone(t)),
            Prep::Dynamic => Prep::Dynamic,
        };
        gang.chans[i - 1].job.put(GangMsg::Job {
            view: SharedView::erase(&shared),
            vps,
            prep: prep_i,
            chunk,
        });
    }
    if let (Some(tl), Some(t0)) = (tele, t0) {
        tl.add(Counter::DispatchNanos, t0.elapsed().as_nanos() as u64);
        tl.add(Counter::DispatchCount, 1);
    }

    // --- worker 0 (this thread) -----------------------------------------
    let kit0 = match gang.kit0.take() {
        Some(mut k) => {
            if let Some(tl) = tele {
                tl.add(Counter::PoolReuses, 1);
            }
            k.reset(vps);
            k
        }
        None => WorkerKit::new(vps),
    };
    let rounds;
    {
        let mut me = Worker::from_kit(0, 0, vps, &mut gang.chunk0, kit0);
        match &prep {
            Prep::Cold => prepare_run(&mut me, &shared),
            Prep::Cached(t) => prepare_run_cached(&mut me, &shared, &t[0]),
            Prep::Dynamic => {}
        }
        // allow-panic: `ensure_shape` just installed this entry.
        let res = gang.shapes.get_mut(&log_v).expect("shape installed by ensure_shape");
        let coord = Coord::new(&mut res.merge, &mut gang.trace, log.as_mut());
        rounds = shard_loop(&mut me, &shared, Some(coord));
        gang.kit0 = Some(me.into_kit());
    }

    // --- collect the done handshakes (ends the scoped rendezvous) -------
    let mut peer_totals: Vec<Option<Vec<u64>>> = Vec::new();
    for i in 1..n {
        let done = gang.chans[i - 1].done.take();
        gang.chunks[i - 1] = done.chunk;
        if cold {
            peer_totals.push(done.totals);
        }
    }
    // `shared` (borrowed by the erased views) stays alive until here —
    // past every done handshake — and is dead from this point on.

    // --- harvest cold totals into the cache -----------------------------
    if cold {
        let mut totals: Vec<Vec<u64>> = Vec::with_capacity(n);
        // allow-panic: kit0 was put back right above.
        let k0 = gang.kit0.as_ref().expect("kit0 returned after shard_loop");
        totals.push(k0.send_total().to_vec());
        let mut complete = true;
        for t in peer_totals {
            match t {
                Some(t) => totals.push(t),
                None => complete = false,
            }
        }
        if complete {
            if let Some(entry) = gang.cache.entries.get_mut(&key) {
                entry.totals = Some(Arc::new(totals));
            }
        }
    }

    // --- first error in shard order wins (run_sharded's rule) -----------
    for cell in &gang.core.cells {
        if let Some(e) = lock(cell).error.take() {
            return Err(e);
        }
    }

    // --- gather results back into the job's states ----------------------
    job.states[..vps].clone_from_slice(&gang.chunk0);
    for i in 1..n {
        job.states[i * vps..(i + 1) * vps].clone_from_slice(&gang.chunks[i - 1]);
    }
    Ok(JobResult {
        states: std::mem::take(&mut job.states),
        trace: opts.want_trace.then(|| gang.trace.snapshot()),
        message_log: log,
        rounds,
        fallback: None,
        queue_wait: None,
        service: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(v: usize) -> JobRequest<u64, u64> {
        JobRequest {
            states: vec![0; v],
            spec: JobSpec::new(ShapeKey { algo: "t", variant: 0 }),
            source: Some(ProgramSource::Prebuilt(Arc::new(Program::new(v, v)))),
            states_fp: None,
            ticket: Arc::new(TicketCell { slot: Mutex::new(None), cv: Condvar::new() }),
            enqueued: None,
        }
    }

    #[test]
    fn admission_small_overtakes_large_head() {
        let cfg =
            ServerConfig { small_cutoff: 8, max_overtakes: 2, ..ServerConfig::with_shards(2) };
        let mut q: Admission<u64, u64> = Admission::new(&cfg);
        q.push(req(64)); // large head
        q.push(req(4)); // small
        q.push(req(4)); // small
        assert_eq!(q.pop().map(|j| j.states.len()), Some(4));
        assert_eq!(q.pop().map(|j| j.states.len()), Some(4));
        // Head exhausted its overtake budget: FIFO resumes.
        q.push(req(2));
        assert_eq!(q.pop().map(|j| j.states.len()), Some(64));
        assert_eq!(q.pop().map(|j| j.states.len()), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn admission_small_head_is_fifo() {
        let cfg =
            ServerConfig { small_cutoff: 8, max_overtakes: 4, ..ServerConfig::with_shards(2) };
        let mut q: Admission<u64, u64> = Admission::new(&cfg);
        q.push(req(4));
        q.push(req(2));
        assert_eq!(q.pop().map(|j| j.states.len()), Some(4));
        assert_eq!(q.pop().map(|j| j.states.len()), Some(2));
    }

    #[test]
    fn shape_key_fingerprint_distinguishes_variants() {
        let a = ShapeKey { algo: "fft", variant: 0 };
        let b = ShapeKey { algo: "fft", variant: 1 };
        let c = ShapeKey { algo: "sort", variant: 0 };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), ShapeKey { algo: "fft", variant: 0 }.fingerprint());
    }
}
