//! Static superstep programs: the executable form of an `M(v)` algorithm.

use crate::mailbox::Inbox;
use crate::plan::{Route, StepPlan};
use nob_core::folding::message_allowed;
use nob_core::model::log2_exact;

/// Execution context handed to a superstep closure: the identity of the VP
/// and the machine geometry (mirrors the paper's assumption that each
/// processing element knows its index `r` and the machine size `v`).
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Index of this virtual processor, `0 ≤ vp < v`.
    pub vp: usize,
    /// Number of virtual processors of the machine.
    pub v: usize,
    /// `log2 v`.
    pub log_v: u32,
    /// Input size the program was built for.
    pub n: usize,
}

impl Ctx {
    /// The segment (cluster) of size `seg` containing this VP; `seg` must
    /// divide the machine evenly. Returns `(segment index, offset within)`.
    ///
    /// # Panics
    /// Debug builds panic when `seg` is zero or does not divide `v`: a bad
    /// segment size silently mis-clusters every VP downstream, so it must
    /// fail loudly at the call site instead.
    #[inline]
    pub fn segment(&self, seg: usize) -> (usize, usize) {
        debug_assert!(
            seg > 0 && self.v.is_multiple_of(seg),
            "segment size {seg} must evenly divide the machine (v = {})",
            self.v
        );
        (self.vp / seg, self.vp % seg)
    }
}

/// Internal envelope distinguishing payload messages from the *dummy*
/// messages the paper's algorithms add to enforce wiseness. Dummies are
/// counted by the metric pipeline but never delivered to user code.
#[derive(Debug, Clone)]
pub(crate) enum Envelope<M> {
    Data(M),
    Dummy,
}

/// Staging buffer for outgoing messages of one superstep.
///
/// An `Outbox` is owned by the engine and **recycled across supersteps**: it
/// stages the messages of a whole chunk of VPs contiguously (`(dst,
/// envelope)` pairs in send order) so that steady-state supersteps allocate
/// nothing. Per-VP boundaries are tracked by the engine, not the outbox;
/// [`Outbox::len`]/[`Outbox::is_empty`] report the messages staged by the
/// *currently executing VP* only, preserving the semantics algorithms
/// observed when each VP had a private outbox.
///
/// During a *planned* superstep the engine arms the outbox's
/// **direct-write mode** (`crate::mailbox::DirectSink`): `send` then moves
/// the payload straight into its destination arena slot — the whole-machine
/// arena on the serial path (`DirectOut`), or the destination *shard's*
/// arena on the sharded path (`DirectShard`, which writes across shards
/// through published arena windows) — and `send_dummy` only advances the
/// route checker. Algorithm closures use the same API either way and cannot
/// observe the difference.
pub struct Outbox<M> {
    pub(crate) msgs: Vec<(u32, Envelope<M>)>,
    pub(crate) vp_start: usize,
    pub(crate) direct: Option<crate::mailbox::DirectSink<M>>,
    /// The VP whose sends are in progress (engine-maintained; used to
    /// attribute a closure panic to the VP that unwound).
    pub(crate) cur_vp: usize,
    /// Set when a staged send named a destination beyond the `u32` design
    /// range; the message is dropped and the engine surfaces a structured
    /// error at the next phase boundary instead of panicking mid-closure.
    pub(crate) oob_dst: bool,
}

impl<M> std::fmt::Debug for Outbox<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Outbox")
            .field("staged", &self.msgs.len())
            .field("direct", &self.direct.is_some())
            .finish()
    }
}

impl<M> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox { msgs: Vec::new(), vp_start: 0, direct: None, cur_vp: 0, oob_dst: false }
    }

    /// Marks the start of a new VP's messages (engine-internal).
    #[inline]
    pub(crate) fn begin_vp(&mut self) {
        self.vp_start = self.msgs.len();
    }

    /// Clears the staging buffer, keeping its capacity (engine-internal).
    #[inline]
    pub(crate) fn reset(&mut self) {
        self.msgs.clear();
        self.vp_start = 0;
    }

    /// Arms direct-write mode for one planned superstep (engine-internal).
    #[inline]
    pub(crate) fn enter_direct(&mut self, d: crate::mailbox::DirectSink<M>) {
        debug_assert!(self.direct.is_none() && self.msgs.is_empty());
        self.direct = Some(d);
    }

    /// The armed direct writer (engine-internal; panics when not armed).
    #[inline]
    pub(crate) fn direct_mut(&mut self) -> &mut crate::mailbox::DirectSink<M> {
        // allow-panic: engine-internal arming invariant, unreachable from user input
        self.direct.as_mut().expect("direct mode not armed")
    }

    /// Disarms direct-write mode, returning the writer for its final checks
    /// (engine-internal).
    #[inline]
    pub(crate) fn exit_direct(&mut self) -> crate::mailbox::DirectSink<M> {
        // allow-panic: engine-internal arming invariant, unreachable from user input
        self.direct.take().expect("direct mode not armed")
    }

    /// The VP to attribute an in-flight closure panic to, disarming any
    /// direct writer left armed by the unwind (engine-internal; called on
    /// the `catch_unwind` failure path only).
    pub(crate) fn panic_vp(&mut self) -> usize {
        match self.direct.take() {
            Some(d) => d.current_vp(),
            None => self.cur_vp,
        }
    }

    /// Consumes the out-of-range-destination flag (engine-internal; checked
    /// once per phase so the error rides the normal abort protocol).
    #[inline]
    pub(crate) fn take_oob(&mut self) -> bool {
        std::mem::take(&mut self.oob_dst)
    }

    /// Sends a constant-size message to VP `dst` (the paper's `send(m, q)`);
    /// it is delivered at the start of the next superstep.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        if let Some(d) = self.direct.as_mut() {
            d.send(dst, msg);
            return;
        }
        let Ok(dst) = u32::try_from(dst) else {
            self.oob_dst = true;
            return;
        };
        self.msgs.push((dst, Envelope::Data(msg)));
    }

    /// Sends a dummy message to VP `dst`: it contributes to the degree
    /// metrics (this is the paper's wiseness device) but is not delivered.
    #[inline]
    pub fn send_dummy(&mut self, dst: usize) {
        if let Some(d) = self.direct.as_mut() {
            d.send_dummy(dst);
            return;
        }
        let Ok(dst) = u32::try_from(dst) else {
            self.oob_dst = true;
            return;
        };
        self.msgs.push((dst, Envelope::Dummy));
    }

    /// Number of messages staged so far by the current VP (data + dummy).
    #[inline]
    pub fn len(&self) -> usize {
        if let Some(d) = self.direct.as_ref() {
            return d.vp_sent();
        }
        self.msgs.len() - self.vp_start
    }

    /// Whether the current VP has staged nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The error reported when a staged send named a destination beyond the
/// `u32` design range (see [`Outbox::send`]); shared by the serial path and
/// the sharded flush so both report identically.
pub(crate) fn oob_dst_error() -> nob_core::ModelError {
    nob_core::ModelError::BadParameter {
        what: "dst",
        reason: "destination id exceeds the u32 design range",
    }
}

/// The SPMD body of one superstep.
///
/// The inbox holds the messages delivered to this VP at the end of the
/// previous superstep (a view into the engine's flat mailbox arena);
/// anything not consumed is discarded when the superstep ends.
pub type StepFn<S, M> =
    Box<dyn Fn(&mut S, &Ctx, &mut Inbox<'_, M>, &mut Outbox<M>) + Send + Sync>;

/// One labelled superstep: every VP runs `exec`, then a `sync(label)` barrier
/// is performed. In an `i`-superstep messages may only target VPs in the
/// sender's `i`-cluster (checked by the engine when validation is enabled).
///
/// A superstep is either **dynamic** (the closure's sends define the
/// pattern, discovered by the engine message by message) or **oblivious**
/// (declared via [`Program::step_oblivious`] with a static route and
/// compiled into a [`StepPlan`] that the engine executes with analytic
/// metrics and a direct-write scatter). The `exec` closure is the same in
/// both cases — a plan never changes semantics, only cost.
pub struct Superstep<S, M> {
    /// The sync label `i` of this `i`-superstep, `0 ≤ i < log v`.
    pub label: u32,
    /// Short human-readable tag (for error messages and trace dumps).
    pub name: &'static str,
    /// The SPMD closure.
    pub exec: StepFn<S, M>,
    /// The compiled communication plan, for oblivious supersteps.
    pub(crate) plan: Option<StepPlan>,
}

impl<S, M> Superstep<S, M> {
    /// The compiled communication plan, if this superstep declared one.
    #[inline]
    pub fn plan(&self) -> Option<&StepPlan> {
        self.plan.as_ref()
    }
}

/// A static program for `M(v)`: a fixed, input-independent sequence of
/// labelled supersteps. The paper's restrictions hold by construction: all
/// processing elements share one sequence of sync labels, and the program
/// ends at a barrier.
pub struct Program<S, M> {
    v: usize,
    log_v: u32,
    n: usize,
    steps: Vec<Superstep<S, M>>,
}

impl<S, M> Program<S, M> {
    /// Creates an empty program for a machine of `v` VPs (a power of two ≥ 2)
    /// and input size `n`.
    pub fn new(v: usize, n: usize) -> Self {
        // allow-panic: documented builder-time contract — program
        // construction, never the run path.
        assert!(v.is_power_of_two() && v >= 2, "v = {v} must be a power of two >= 2");
        Program { v, log_v: log2_exact(v), n, steps: Vec::new() }
    }

    /// Number of virtual processors.
    #[inline]
    pub fn v(&self) -> usize {
        self.v
    }

    /// `log2 v`.
    #[inline]
    pub fn log_v(&self) -> u32 {
        self.log_v
    }

    /// Input size the program was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The superstep sequence.
    #[inline]
    pub fn steps(&self) -> &[Superstep<S, M>] {
        &self.steps
    }

    /// Appends an `i`-superstep with the given SPMD body.
    ///
    /// # Panics
    /// Panics if `label ≥ log v` (labels address cluster levels `0..log v`).
    pub fn step(
        &mut self,
        label: u32,
        name: &'static str,
        exec: impl Fn(&mut S, &Ctx, &mut Inbox<'_, M>, &mut Outbox<M>) + Send + Sync + 'static,
    ) -> &mut Self {
        // allow-panic: documented builder-time contract.
        assert!(
            label < self.log_v.max(1),
            "label {label} out of range for v = {} (program step `{name}`)",
            self.v
        );
        self.steps.push(Superstep { label, name, exec: Box::new(exec), plan: None });
        self
    }

    /// Appends an *oblivious* `i`-superstep: `exec` is the ordinary SPMD
    /// body, and `route` declares its communication pattern as a static
    /// function of the VP index — slot `k` of VP `ctx.vp` (for
    /// `0 ≤ k < out_degree`, in send order) is a payload, a wiseness dummy,
    /// or [`Route::Skip`]. The declaration is compiled into a [`StepPlan`]
    /// here, at build time: analytic per-fold degree metrics, a one-time
    /// cluster-constraint proof, and the layout the engine's direct-write
    /// scatter runs from (see [`crate::plan`]).
    ///
    /// The closure must send **exactly** the declared messages, in slot
    /// order. The engine verifies the payload multiset on every planned
    /// execution (and, under validation, the full sequence including
    /// dummies); divergence aborts the run with
    /// [`nob_core::ModelError::PlanMismatch`]. Plans can be ignored per run
    /// with [`crate::engine::RunOptions::use_plans`]` = false`, which
    /// executes the step on the ordinary dynamic path.
    ///
    /// # Panics
    /// Panics if `label ≥ log v`.
    pub fn step_oblivious(
        &mut self,
        label: u32,
        name: &'static str,
        out_degree: usize,
        route: impl Fn(&Ctx, usize) -> Route + Send + Sync + 'static,
        exec: impl Fn(&mut S, &Ctx, &mut Inbox<'_, M>, &mut Outbox<M>) + Send + Sync + 'static,
    ) -> &mut Self {
        // allow-panic: documented builder-time contract.
        assert!(
            label < self.log_v.max(1),
            "label {label} out of range for v = {} (program step `{name}`)",
            self.v
        );
        let plan =
            StepPlan::compile(self.v, self.log_v, self.n, label, out_degree, Box::new(route));
        self.steps.push(Superstep { label, name, exec: Box::new(exec), plan: Some(plan) });
        self
    }

    /// Records one dynamic execution of this program on `states` (the
    /// initial VP states, exactly as they would be passed to a run) and
    /// compiles the observed send sequence of every *plan-less* superstep
    /// into a replayable captured [`StepPlan`] (see
    /// `StepPlan::compile_captured`). Returns the number of fault-free
    /// plans added; on success every superstep is planned and the program
    /// executes on the direct-write scatter — serial, sharded and fused —
    /// exactly like one declared with [`Program::step_oblivious`]
    /// throughout.
    ///
    /// **Cache invalidation:** a capture is a trace of *this* program
    /// instance. It stays valid precisely as long as the dynamic send
    /// sequence it recorded does — i.e. for programs whose communication,
    /// while arrival-order-dependent in form, is a fixed function of
    /// `(program, v)` (the network-oblivious premise). Rebuilding the
    /// program for a different `v`, `n` or input means re-capturing;
    /// a stale capture replayed against diverging sends surfaces as
    /// [`nob_core::ModelError::PlanMismatch`] (or a transparent re-run
    /// under [`crate::engine::PlanFallback::Dynamic`]), never as corrupted
    /// output. Programs whose pattern genuinely varies with VP state
    /// (data-dependent routing) are not capturable — replay detection
    /// makes that an error, not a wrong answer.
    ///
    /// Steps that already carry a plan (declared or captured) are left
    /// untouched; the capture run replays them dynamically for fidelity
    /// with the recorded execution.
    pub fn capture_plans(&mut self, states: Vec<S>) -> Result<usize, nob_core::ModelError> {
        self.capture_plans_with(states, None, None)
    }

    /// [`Program::capture_plans`] with a deterministic fault plan and/or a
    /// telemetry sink armed for the capture run itself (fault site
    /// `serial:capture`; telemetry spans under the same name) — the chaos
    /// suite's and the benches' entry point; production callers use
    /// [`Program::capture_plans`].
    pub fn capture_plans_with(
        &mut self,
        states: Vec<S>,
        faults: Option<&nob_core::fault::FaultPlan>,
        telemetry: Option<&nob_core::telemetry::TelemetrySink>,
    ) -> Result<usize, nob_core::ModelError> {
        let captures = crate::engine::capture_run(self, states, faults, telemetry)?;
        let mut added = 0;
        for (t, cap) in captures.into_iter().enumerate() {
            let Some((offsets, slots)) = cap else { continue };
            let step = &mut self.steps[t];
            let plan = StepPlan::compile_captured(
                self.v, self.log_v, self.n, step.label, offsets, slots,
            );
            if plan.fault().is_none() {
                added += 1;
            }
            step.plan = Some(plan);
        }
        Ok(added)
    }

    /// Number of supersteps carrying a usable (fault-free) communication
    /// plan — the program's plan coverage, reported by the benchmarks.
    pub fn planned_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.plan.as_ref().is_some_and(|p| p.fault().is_none())).count()
    }

    /// Approximate resident bytes of this program's compiled plans (the sum
    /// of every step's [`crate::plan::StepPlan::approx_bytes`]) — what the
    /// job server's LRU plan cache charges an entry for.
    pub fn plan_bytes(&self) -> u64 {
        self.steps.iter().filter_map(|s| s.plan.as_ref()).map(|p| p.approx_bytes()).sum()
    }

    /// The sequence of sync labels (the paper's per-algorithm label trace).
    pub fn labels(&self) -> Vec<u32> {
        self.steps.iter().map(|s| s.label).collect()
    }

    /// The static shard-communication plan of this program for `n_shards`
    /// executor shards (see [`LanePlan`]). Because the program is *static*,
    /// the plan depends only on the superstep labels fixed at build time,
    /// never on the input.
    pub fn lane_plan(&self, n_shards: usize) -> LanePlan {
        LanePlan::new(self, n_shards)
    }
}

/// The statically precomputed shard-communication plan of a program: which
/// executor shards can exchange messages in which superstep.
///
/// The sharded executor assigns shard `w` the `v / n_shards` consecutive VPs
/// starting at `w · v / n_shards` — exactly the paper's folding layout. The
/// cluster constraint of an `i`-superstep then bounds communication at shard
/// granularity: messages can only cross shards within the same `i`-cluster
/// of the *shard* space, i.e. among the `n_shards >> i` shards sharing the
/// top `i` shard-index bits (and not at all once `i ≥ log n_shards`).
/// Since every superstep's label is fixed when the program is built, the
/// whole plan — one peer span per superstep — is computed once per
/// `(program, shard count)` pair and drives the per-superstep gather scan
/// (the sharded replacement for the global scatter's full-buffer sweep):
/// each shard touches only the lanes its label-cluster admits, and
/// shard-local supersteps touch none. The lane grid itself allocates every
/// pair eagerly — an unused lane is two empty `Vec`s, so capacity only
/// materializes on pairs that actually carry traffic.
///
/// The plan is only sound when the cluster constraint is enforced
/// (`RunOptions::validate`); validation-off runs must fall back to the
/// all-pairs span.
#[derive(Debug, Clone)]
pub struct LanePlan {
    n_shards: usize,
    /// Per superstep: number of shards in each peer group (a power of two;
    /// 1 means the superstep is shard-local).
    cluster_shards: Vec<u32>,
    /// The widest peer group over the whole program (`n_shards >> min
    /// label`, clamped): bounds which shard pairs can *ever* communicate.
    max_cluster_shards: u32,
}

impl LanePlan {
    /// Computes the plan for `prog` on `n_shards` executor shards
    /// (a power of two dividing `v`).
    pub fn new<S, M>(prog: &Program<S, M>, n_shards: usize) -> Self {
        // allow-panic: documented builder-time contract.
        assert!(
            n_shards.is_power_of_two() && n_shards <= prog.v(),
            "shard count {n_shards} must be a power of two ≤ v = {}",
            prog.v()
        );
        let log_s = log2_exact(n_shards);
        let cluster_shards: Vec<u32> = prog
            .steps()
            .iter()
            .map(|s| (n_shards >> s.label.min(log_s)) as u32)
            .collect();
        let max_cluster_shards = cluster_shards.iter().copied().max().unwrap_or(1);
        LanePlan { n_shards, cluster_shards, max_cluster_shards }
    }

    /// The shard count the plan was computed for.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shards that shard `shard` may exchange messages with in superstep
    /// `step` (its own index included): a contiguous span, because shard
    /// clusters are contiguous in shard space.
    #[inline]
    pub fn peer_span(&self, shard: usize, step: usize) -> std::ops::Range<usize> {
        let c = self.cluster_shards[step] as usize;
        let lo = shard - shard % c;
        lo..lo + c
    }

    /// Whether any superstep of the program lets shards `a` and `b`
    /// exchange messages — an introspection query for harnesses and tests
    /// (the executor itself works from the per-superstep
    /// [`LanePlan::peer_span`]).
    #[inline]
    pub fn pair_may_communicate(&self, a: usize, b: usize) -> bool {
        let c = self.max_cluster_shards as usize;
        a / c == b / c
    }

    /// Number of supersteps whose peer group spans more than one shard
    /// (i.e. supersteps that exercise the lanes at all).
    pub fn cross_shard_steps(&self) -> usize {
        self.cluster_shards.iter().filter(|&&c| c > 1).count()
    }

    /// An empty plan to seed a pooled slot before its first
    /// [`LanePlan::recompute_pooled`].
    pub(crate) fn placeholder() -> Self {
        LanePlan { n_shards: 1, cluster_shards: Vec::new(), max_cluster_shards: 1 }
    }

    /// Recomputes the plan for `prog` on `n_shards` in place — the
    /// allocation-free counterpart of [`LanePlan::new`] for pooled slots
    /// (grows `cluster_shards` only past its high-water step count).
    pub(crate) fn recompute_pooled<S, M>(&mut self, prog: &Program<S, M>, n_shards: usize) {
        debug_assert!(n_shards.is_power_of_two() && n_shards <= prog.v());
        let log_s = log2_exact(n_shards);
        self.n_shards = n_shards;
        self.cluster_shards.clear();
        self.cluster_shards
            .extend(prog.steps().iter().map(|s| (n_shards >> s.label.min(log_s)) as u32));
        self.max_cluster_shards = self.cluster_shards.iter().copied().max().unwrap_or(1);
    }
}

/// Checks an outbox against the cluster constraint of an `i`-superstep.
/// Used by the reference engine and by unit tests; the arena engine folds
/// the same checks into its streaming metrics pass.
pub(crate) fn validate_outbox<M>(
    src: usize,
    label: u32,
    log_v: u32,
    v: usize,
    out: &Outbox<M>,
) -> Result<(), nob_core::ModelError> {
    for &(dst, _) in &out.msgs {
        let dst = dst as usize;
        if dst >= v {
            return Err(nob_core::ModelError::BadParameter {
                what: "dst",
                reason: "message destination out of machine range",
            });
        }
        if !message_allowed(src, dst, log_v, label) {
            return Err(nob_core::ModelError::ClusterViolation { label, src, dst });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builder_checks_labels() {
        let mut p: Program<u64, u64> = Program::new(8, 8);
        p.step(0, "ok", |_, _, _, _| {});
        p.step(2, "ok", |_, _, _, _| {});
        assert_eq!(p.labels(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn program_builder_rejects_big_labels() {
        let mut p: Program<u64, u64> = Program::new(8, 8);
        p.step(3, "bad", |_, _, _, _| {});
    }

    #[test]
    fn outbox_counts_dummies_per_vp() {
        let mut o: Outbox<u32> = Outbox::new();
        o.send(1, 42);
        o.send_dummy(2);
        assert_eq!(o.len(), 2);
        // A new VP starts with an empty view of the shared staging buffer.
        o.begin_vp();
        assert!(o.is_empty());
        o.send(0, 7);
        assert_eq!(o.len(), 1);
        assert_eq!(o.msgs.len(), 3);
    }

    #[test]
    fn validate_outbox_flags_cluster_escape() {
        let mut o: Outbox<u32> = Outbox::new();
        o.send(4, 1); // VP 0 -> VP 4 crosses the top bisection of v = 8.
        assert!(validate_outbox(0, 1, 3, 8, &o).is_err());
        assert!(validate_outbox(0, 0, 3, 8, &o).is_ok());
    }

    #[test]
    fn ctx_segment_arithmetic() {
        let c = Ctx { vp: 13, v: 16, log_v: 4, n: 16 };
        assert_eq!(c.segment(4), (3, 1));
        assert_eq!(c.segment(16), (0, 13));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "segment check is debug-only")]
    #[should_panic(expected = "must evenly divide")]
    fn ctx_segment_rejects_uneven_sizes() {
        let c = Ctx { vp: 13, v: 16, log_v: 4, n: 16 };
        let _ = c.segment(3);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "segment check is debug-only")]
    #[should_panic(expected = "must evenly divide")]
    fn ctx_segment_rejects_zero() {
        let c = Ctx { vp: 0, v: 16, log_v: 4, n: 16 };
        let _ = c.segment(0);
    }

    #[test]
    fn lane_plan_spans_follow_labels() {
        let mut p: Program<(), u8> = Program::new(16, 16);
        p.step(0, "global", |_, _, _, _| {});
        p.step(1, "half", |_, _, _, _| {});
        p.step(3, "local", |_, _, _, _| {});
        let plan = p.lane_plan(4);
        assert_eq!(plan.n_shards(), 4);
        // Label 0: all 4 shards talk.
        assert_eq!(plan.peer_span(2, 0), 0..4);
        // Label 1: shard clusters {0,1} and {2,3}.
        assert_eq!(plan.peer_span(0, 1), 0..2);
        assert_eq!(plan.peer_span(3, 1), 2..4);
        // Label 3 ≥ log shards: shard-local.
        assert_eq!(plan.peer_span(2, 2), 2..3);
        assert_eq!(plan.cross_shard_steps(), 2);
        assert!(plan.pair_may_communicate(0, 3));
    }

    #[test]
    fn lane_plan_bounds_pairs_by_min_label() {
        let mut p: Program<(), u8> = Program::new(16, 16);
        p.step(1, "half", |_, _, _, _| {});
        p.step(2, "quarter", |_, _, _, _| {});
        let plan = p.lane_plan(8);
        // Min label 1: shards only ever talk within their half.
        assert!(plan.pair_may_communicate(0, 3));
        assert!(plan.pair_may_communicate(4, 7));
        assert!(!plan.pair_may_communicate(3, 4));
        // An empty program has no cross-shard steps and isolated shards.
        let empty: Program<(), u8> = Program::new(16, 16);
        let plan = empty.lane_plan(8);
        assert_eq!(plan.cross_shard_steps(), 0);
        assert!(!plan.pair_may_communicate(0, 1));
        assert!(plan.pair_may_communicate(5, 5));
    }
}
