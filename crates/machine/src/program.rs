//! Static superstep programs: the executable form of an `M(v)` algorithm.

use crate::mailbox::Inbox;
use nob_core::folding::message_allowed;
use nob_core::model::log2_exact;

/// Execution context handed to a superstep closure: the identity of the VP
/// and the machine geometry (mirrors the paper's assumption that each
/// processing element knows its index `r` and the machine size `v`).
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Index of this virtual processor, `0 ≤ vp < v`.
    pub vp: usize,
    /// Number of virtual processors of the machine.
    pub v: usize,
    /// `log2 v`.
    pub log_v: u32,
    /// Input size the program was built for.
    pub n: usize,
}

impl Ctx {
    /// The segment (cluster) of size `seg` containing this VP; `seg` must
    /// divide the machine evenly. Returns `(segment index, offset within)`.
    #[inline]
    pub fn segment(&self, seg: usize) -> (usize, usize) {
        (self.vp / seg, self.vp % seg)
    }
}

/// Internal envelope distinguishing payload messages from the *dummy*
/// messages the paper's algorithms add to enforce wiseness. Dummies are
/// counted by the metric pipeline but never delivered to user code.
#[derive(Debug, Clone)]
pub(crate) enum Envelope<M> {
    Data(M),
    Dummy,
}

/// Staging buffer for outgoing messages of one superstep.
///
/// An `Outbox` is owned by the engine and **recycled across supersteps**: it
/// stages the messages of a whole chunk of VPs contiguously (`(dst,
/// envelope)` pairs in send order) so that steady-state supersteps allocate
/// nothing. Per-VP boundaries are tracked by the engine, not the outbox;
/// [`Outbox::len`]/[`Outbox::is_empty`] report the messages staged by the
/// *currently executing VP* only, preserving the semantics algorithms
/// observed when each VP had a private outbox.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) msgs: Vec<(u32, Envelope<M>)>,
    pub(crate) vp_start: usize,
}

impl<M> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox { msgs: Vec::new(), vp_start: 0 }
    }

    /// Marks the start of a new VP's messages (engine-internal).
    #[inline]
    pub(crate) fn begin_vp(&mut self) {
        self.vp_start = self.msgs.len();
    }

    /// Clears the staging buffer, keeping its capacity (engine-internal).
    #[inline]
    pub(crate) fn reset(&mut self) {
        self.msgs.clear();
        self.vp_start = 0;
    }

    /// Sends a constant-size message to VP `dst` (the paper's `send(m, q)`);
    /// it is delivered at the start of the next superstep.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        let dst = u32::try_from(dst).expect("destination id exceeds u32 range");
        self.msgs.push((dst, Envelope::Data(msg)));
    }

    /// Sends a dummy message to VP `dst`: it contributes to the degree
    /// metrics (this is the paper's wiseness device) but is not delivered.
    #[inline]
    pub fn send_dummy(&mut self, dst: usize) {
        let dst = u32::try_from(dst).expect("destination id exceeds u32 range");
        self.msgs.push((dst, Envelope::Dummy));
    }

    /// Number of messages staged so far by the current VP (data + dummy).
    #[inline]
    pub fn len(&self) -> usize {
        self.msgs.len() - self.vp_start
    }

    /// Whether the current VP has staged nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The SPMD body of one superstep.
///
/// The inbox holds the messages delivered to this VP at the end of the
/// previous superstep (a view into the engine's flat mailbox arena);
/// anything not consumed is discarded when the superstep ends.
pub type StepFn<S, M> =
    Box<dyn Fn(&mut S, &Ctx, &mut Inbox<'_, M>, &mut Outbox<M>) + Send + Sync>;

/// One labelled superstep: every VP runs `exec`, then a `sync(label)` barrier
/// is performed. In an `i`-superstep messages may only target VPs in the
/// sender's `i`-cluster (checked by the engine when validation is enabled).
pub struct Superstep<S, M> {
    /// The sync label `i` of this `i`-superstep, `0 ≤ i < log v`.
    pub label: u32,
    /// Short human-readable tag (for error messages and trace dumps).
    pub name: &'static str,
    /// The SPMD closure.
    pub exec: StepFn<S, M>,
}

/// A static program for `M(v)`: a fixed, input-independent sequence of
/// labelled supersteps. The paper's restrictions hold by construction: all
/// processing elements share one sequence of sync labels, and the program
/// ends at a barrier.
pub struct Program<S, M> {
    v: usize,
    log_v: u32,
    n: usize,
    steps: Vec<Superstep<S, M>>,
}

impl<S, M> Program<S, M> {
    /// Creates an empty program for a machine of `v` VPs (a power of two ≥ 2)
    /// and input size `n`.
    pub fn new(v: usize, n: usize) -> Self {
        assert!(v.is_power_of_two() && v >= 2, "v = {v} must be a power of two >= 2");
        Program { v, log_v: log2_exact(v), n, steps: Vec::new() }
    }

    /// Number of virtual processors.
    #[inline]
    pub fn v(&self) -> usize {
        self.v
    }

    /// `log2 v`.
    #[inline]
    pub fn log_v(&self) -> u32 {
        self.log_v
    }

    /// Input size the program was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The superstep sequence.
    #[inline]
    pub fn steps(&self) -> &[Superstep<S, M>] {
        &self.steps
    }

    /// Appends an `i`-superstep with the given SPMD body.
    ///
    /// # Panics
    /// Panics if `label ≥ log v` (labels address cluster levels `0..log v`).
    pub fn step(
        &mut self,
        label: u32,
        name: &'static str,
        exec: impl Fn(&mut S, &Ctx, &mut Inbox<'_, M>, &mut Outbox<M>) + Send + Sync + 'static,
    ) -> &mut Self {
        assert!(
            label < self.log_v.max(1),
            "label {label} out of range for v = {} (program step `{name}`)",
            self.v
        );
        self.steps.push(Superstep { label, name, exec: Box::new(exec) });
        self
    }

    /// The sequence of sync labels (the paper's per-algorithm label trace).
    pub fn labels(&self) -> Vec<u32> {
        self.steps.iter().map(|s| s.label).collect()
    }
}

/// Checks an outbox against the cluster constraint of an `i`-superstep.
/// Used by the reference engine and by unit tests; the arena engine folds
/// the same checks into its streaming metrics pass.
pub(crate) fn validate_outbox<M>(
    src: usize,
    label: u32,
    log_v: u32,
    v: usize,
    out: &Outbox<M>,
) -> Result<(), nob_core::ModelError> {
    for &(dst, _) in &out.msgs {
        let dst = dst as usize;
        if dst >= v {
            return Err(nob_core::ModelError::BadParameter {
                what: "dst",
                reason: "message destination out of machine range",
            });
        }
        if !message_allowed(src, dst, log_v, label) {
            return Err(nob_core::ModelError::ClusterViolation { label, src, dst });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builder_checks_labels() {
        let mut p: Program<u64, u64> = Program::new(8, 8);
        p.step(0, "ok", |_, _, _, _| {});
        p.step(2, "ok", |_, _, _, _| {});
        assert_eq!(p.labels(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn program_builder_rejects_big_labels() {
        let mut p: Program<u64, u64> = Program::new(8, 8);
        p.step(3, "bad", |_, _, _, _| {});
    }

    #[test]
    fn outbox_counts_dummies_per_vp() {
        let mut o: Outbox<u32> = Outbox::new();
        o.send(1, 42);
        o.send_dummy(2);
        assert_eq!(o.len(), 2);
        // A new VP starts with an empty view of the shared staging buffer.
        o.begin_vp();
        assert!(o.is_empty());
        o.send(0, 7);
        assert_eq!(o.len(), 1);
        assert_eq!(o.msgs.len(), 3);
    }

    #[test]
    fn validate_outbox_flags_cluster_escape() {
        let mut o: Outbox<u32> = Outbox::new();
        o.send(4, 1); // VP 0 -> VP 4 crosses the top bisection of v = 8.
        assert!(validate_outbox(0, 1, 3, 8, &o).is_err());
        assert!(validate_outbox(0, 0, 3, 8, &o).is_ok());
    }

    #[test]
    fn ctx_segment_arithmetic() {
        let c = Ctx { vp: 13, v: 16, log_v: 4, n: 16 };
        assert_eq!(c.segment(4), (3, 1));
        assert_eq!(c.segment(16), (0, 13));
    }
}
