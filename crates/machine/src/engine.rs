//! The superstep execution engine: full-granularity and folded runs on
//! zero-allocation mailbox arenas, executed serially or by the persistent
//! sharded executor.
//!
//! # Architecture: shards over double-buffered mailbox arenas
//!
//! The legacy engine (preserved as [`crate::reference`]) materialized, per
//! superstep, one `Vec` outbox per VP, one `(src, dst, 1)` edge per message
//! and `O(v)` metric scratch per fold level. This engine replaces all of
//! that with aggregate, cache-friendly structures that are allocated once
//! per run and recycled, so **steady-state supersteps perform zero heap
//! allocations** on the serial path:
//!
//! * **Two mailbox arenas per shard** (`mailbox::Arena`): each is a
//!   contiguous message slab plus an offset table giving every VP's inbox
//!   range. Per superstep the engine *reads* the previous superstep's
//!   messages from one arena while this superstep's sends are sorted into
//!   the other; then the two swap roles. Slabs only ever grow to the
//!   high-water message volume.
//! * **Send staging** (`mailbox::ChunkStage`): each shard appends its
//!   VPs' `(dst, envelope)` pairs to a recycled flat buffer with per-VP end
//!   markers, consumed by the routing pass.
//! * **Streaming metrics** ([`nob_core::metrics::DegreeCounters`]): a single
//!   pass over the staged messages validates the cluster constraint,
//!   accumulates per-fold-level degree counters (epoch-stamped, with running
//!   maxima, so emitting a superstep record is `O(log v)`), counts per
//!   destination for the scatter, and optionally appends to the message
//!   log — one loop where the legacy engine made `log v + 3` passes.
//!
//! # Execution paths
//!
//! * **Planned** (per superstep): supersteps that declared their pattern
//!   as an oblivious route ([`Program::step_oblivious`]) skip the whole
//!   staged pipeline — one counting pass over the compiled
//!   [`crate::plan::StepPlan`] sizes the write arena, VP closures write
//!   payloads *directly* into their destination slots, and the superstep
//!   record is the plan's precomputed metrics (`O(log v)`), with the
//!   cluster constraint proven once at build time. On the sharded path
//!   the destination slot may live in a *peer shard's* arena: each worker
//!   pre-partitions its write arena by (source shard, destination VP) and
//!   publishes a window peers write through, collapsing the superstep to
//!   a single barrier with no lane staging and no merge.
//! * **Serial** (1 shard): the whole machine is one shard; the loop above
//!   runs inline with a serial counting-sort scatter and allocates nothing
//!   in steady state (proven by `tests/allocation.rs`).
//! * **Sharded** (`crate::shard`): `n` persistent workers each own a
//!   contiguous VP shard — its states, arenas, staging and a private
//!   [`DegreeCounters`] — and exchange cross-shard messages of dynamic
//!   supersteps through the statically planned lanes of
//!   [`crate::program::LanePlan`]. The inter-superstep barrier is a
//!   per-lane handoff plus an `O(shards · log v)` counter merge instead
//!   of a global counting sort (planned supersteps keep one barrier and
//!   merge nothing). [`run_folded`] is the degenerate case *shard = fold*
//!   (capped by the worker budget), which unifies the two execution modes
//!   over one code path.
//!
//! The shard count derives from the rayon pool width (itself overridable
//! with the `NOB_THREADS` environment variable) or from
//! [`RunOptions::workers`]; both paths produce **bit-for-bit identical**
//! states, traces and message logs — enforced by the differential property
//! suites in `tests/engine_properties.rs` and `tests/engine_equivalence.rs`.
//!
//! # Invariants
//!
//! * **Delivery order** is ascending source VP, then send order — identical
//!   to the legacy nested delivery loop (the counting sort is stable, and
//!   shard lanes are drained in ascending source-shard order), so
//!   `CommTrace` contents, message logs and final states are bit-for-bit
//!   identical to the reference engine.
//! * **Metrics are send-phase metrics**: dummy messages count toward every
//!   degree (the paper's wiseness device) but are never delivered.

use crate::mailbox::{route_serial, Arena, ChunkStage, Inbox};
use crate::program::{Ctx, Envelope, Program};
use nob_core::fault::FaultPlan;
use nob_core::folding::message_allowed;
use nob_core::metrics::{CommTrace, DegreeCounters, TraceBuilder};
use nob_core::model::log2_exact;
use nob_core::telemetry::{Site, TelemetrySink};
use nob_core::ModelError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to do when a planned superstep's route disagrees with its closure
/// at run time (a [`ModelError::PlanMismatch`]) on a *non-validated* run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanFallback {
    /// Fail the run with the mismatch (default). Under
    /// [`RunOptions::validate`] a mismatch is always a hard failure — it is
    /// a model violation to report, not a condition to paper over.
    #[default]
    Fail,
    /// Transparently re-execute the whole run with `use_plans = false`: the
    /// dynamic path discovers the real pattern message by message, so a
    /// stale or mis-declared route degrades to correct-but-slower instead
    /// of failing. The abandoned attempt's error is recorded in
    /// [`RunResult::fallback`] for observability. Only consulted when
    /// validation is off, plans are enabled, and the program declares at
    /// least one oblivious route.
    Dynamic,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Execute the machine's shards in parallel (the engine falls back to
    /// the serial path when the machine or the worker pool is too small for
    /// sharding to pay; see the module docs).
    pub parallel: bool,
    /// Check the i-superstep cluster constraint on every message.
    pub validate: bool,
    /// Keep the raw per-superstep message log — `(src VP, dst VP)` for
    /// [`run`], `(src proc, dst proc)` of processor-external messages for
    /// [`run_folded`] — needed by the ascend–descend protocol rewriter;
    /// costs memory proportional to the total message volume.
    pub collect_messages: bool,
    /// Pins the number of executor shards (persistent workers). `None`
    /// derives the width from the rayon pool (which honors the
    /// `NOB_THREADS` environment variable); `Some(1)` forces the serial
    /// path. Values are clamped to a power of two no larger than the
    /// metric granularity of the run (and a hard ceiling of 256 OS
    /// threads). Ignored when [`RunOptions::parallel`] is `false`, which
    /// always takes the serial path.
    pub workers: Option<usize>,
    /// Execute supersteps that declared an oblivious route
    /// ([`Program::step_oblivious`]) from their compiled [`crate::plan::StepPlan`]:
    /// analytic metrics, compile-proven cluster constraint, and the
    /// direct-write scatter on the serial path (default: `true`). Disabling
    /// runs every step on the dynamic path — results are bit-for-bit
    /// identical either way (enforced by the differential suites); the flag
    /// exists for benchmarking and for differential testing itself.
    ///
    /// Mis-declared routes are fully rejected only under
    /// [`RunOptions::validate`]; with validation off the engine trusts the
    /// declaration like it trusts cluster discipline, except as a
    /// memory-safety check: both the serial and the sharded direct writers
    /// still bound every write by its planned slot region and enforce the
    /// payload multiset before publishing an arena.
    pub use_plans: bool,
    /// Run planned supersteps on the *fused* tier where the plan proves it
    /// safe (default: `true`): on the serial path, size the write arena
    /// straight from the plan's `O(1)` layout summary instead of
    /// re-enumerating the route; on the sharded path, execute planned
    /// supersteps whose payloads are proven shard-local entirely inside
    /// their own worker — no window publication, no cross-shard reads and
    /// **no barrier at all** (consecutive such steps form a zero-barrier
    /// pipeline). Results are bit-for-bit identical either way (enforced by
    /// the differential suites and `scripts/bench_smoke.sh`); `false`
    /// reproduces the one-barrier protocol exactly, for benchmarking and
    /// differential testing.
    pub fuse: bool,
    /// Degradation policy for a [`ModelError::PlanMismatch`] on a
    /// non-validated planned run (default: [`PlanFallback::Fail`]).
    pub plan_fallback: PlanFallback,
    /// Deterministic fault-injection plan (default: `None`). When armed,
    /// the executors consult it at every instrumented phase boundary; when
    /// absent the cost is one `Option` discriminant test per phase — never
    /// anything per message — so the hot path is unchanged (pinned by
    /// `tests/allocation.rs` and the tier-1 bench guard).
    pub faults: Option<Arc<FaultPlan>>,
    /// Barrier watchdog for the sharded executor (default: `None` — wait
    /// forever, exactly the pre-watchdog behavior). When set, a worker
    /// waiting longer than this at the gang barrier poisons it: every
    /// current and future wait returns an error, the gang drains, and the
    /// run fails with [`ModelError::GangStall`] instead of deadlocking.
    /// Covers workers that are slow, descheduled, or lost mid-protocol; a
    /// closure that *never* returns still wedges its OS thread (scoped
    /// threads must join before the run can return), which no in-process
    /// watchdog can recover — the documented limit of this mechanism.
    pub stall_timeout: Option<Duration>,
    /// Phase-level telemetry sink (default: `None`). When armed, the
    /// executors record per-worker phase spans and barrier waits into the
    /// sink's pre-sized slots ([`nob_core::telemetry`]); when absent the
    /// cost is one `Option` discriminant test per phase and `Instant::now`
    /// is never called — the [`RunOptions::faults`] zero-cost rule, pinned
    /// by the same allocation tests and bench guard.
    pub telemetry: Option<Arc<TelemetrySink>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            parallel: true,
            validate: true,
            collect_messages: false,
            workers: None,
            use_plans: true,
            fuse: true,
            plan_fallback: PlanFallback::Fail,
            faults: None,
            stall_timeout: None,
            telemetry: None,
        }
    }
}

impl RunOptions {
    /// Options for metric-collection runs that also keep the message log.
    pub fn with_log() -> Self {
        RunOptions { collect_messages: true, ..Default::default() }
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone)]
pub struct RunResult<S> {
    /// Final per-VP states (index = VP id; for folded runs, VP states are
    /// still reported per VP, grouped under their owning processor).
    pub states: Vec<S>,
    /// The communication trace (granularity `v` for [`run`], granularity `p`
    /// for [`run_folded`]).
    pub trace: CommTrace,
    /// Raw message log (one entry per recorded superstep) when requested.
    pub message_log: Option<Vec<Vec<(u32, u32)>>>,
    /// When [`RunOptions::plan_fallback`] re-executed the run on the
    /// dynamic path, the abandoned planned attempt's error; `None` for a
    /// run that completed first try.
    pub fallback: Option<ModelError>,
}

/// Minimum VPs per shard for a pool-derived worker count: persistent-worker
/// dispatch costs barriers per superstep, so tiny machines run serially no
/// matter the pool width. An explicit [`RunOptions::workers`] overrides
/// this floor (differential tests shard tiny machines on purpose).
const MIN_VPS_PER_WORKER: usize = 64;

/// Hard ceiling on explicit worker requests: each shard is an OS thread,
/// and a request large enough to make thread spawning itself fail would
/// strand the already-spawned gang on its barrier.
const MAX_WORKERS: usize = 256;

/// The metric granularity of a run, shared between the serial and sharded
/// paths.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GranSpec {
    /// Fold levels tracked: `log v` for full runs, `log p` for folded ones.
    pub(crate) levels: u32,
    /// Shift from VP ids to metric-granularity processor ids.
    pub(crate) gran_shift: u32,
    /// Whether this is a full-granularity run (affects message-log format
    /// and whether granularity-internal messages count).
    pub(crate) full: bool,
}

/// Number of executor shards for a machine of `v` VPs at metric granularity
/// `gran`: a power of two between 1 and `gran`.
fn shard_count(v: usize, gran: usize, opts: &RunOptions) -> usize {
    if !opts.parallel {
        return 1;
    }
    let cap = match opts.workers {
        Some(w) => w.clamp(1, MAX_WORKERS),
        None => {
            let threads = rayon::current_num_threads();
            if threads < 2 {
                return 1;
            }
            threads.min(v / MIN_VPS_PER_WORKER)
        }
    };
    let cap = cap.min(gran);
    if cap < 2 {
        1
    } else {
        // Largest power of two ≤ cap (shards must divide the VP space).
        1usize << cap.ilog2()
    }
}

/// Executes `prog` at full granularity on `M(v)`.
///
/// `states` must hold exactly one state per VP. The returned trace records,
/// for each superstep, the degree of every folding `M(2^j)`, so that
/// `H(n, 2^j, σ)` and `D(n, p, g, ℓ)` can be evaluated analytically afterward.
pub fn run<S: Send + Clone, M: Send>(
    prog: &Program<S, M>,
    states: Vec<S>,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let log_v = prog.log_v();
    run_core(prog, states, prog.v(), GranSpec { levels: log_v, gran_shift: 0, full: true }, opts)
}

/// Executes the *folding* of `prog` on `M(p)` with `p ≤ v`: processor `r`
/// carries out the work of the `v/p` consecutively numbered VPs starting at
/// `r·v/p` (Section 2 of the paper).
///
/// Supersteps with label `≥ log p` become local computation: they are still
/// executed (the VP closures run and their messages are delivered — all
/// destinations are then within the same processor) but produce no superstep
/// record, exactly as in the paper's folding semantics. The returned trace
/// has granularity `p`. When `opts.collect_messages` is set, the log carries
/// one entry per *recorded* superstep holding the processor-external
/// `(src proc, dst proc)` pairs at granularity `p`, aligned with
/// `trace.steps` for the protocol rewriter.
///
/// Under the sharded executor this is the degenerate case *shard = fold*:
/// the folding is executed by up to `p` persistent workers, each simulating
/// one processor's consecutive VPs (fewer when the worker budget is
/// smaller — shards then span whole processors and the metrics are merged
/// identically).
pub fn run_folded<S: Send + Clone, M: Send>(
    prog: &Program<S, M>,
    states: Vec<S>,
    p: usize,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    if !p.is_power_of_two() || p < 2 || p > v {
        return Err(ModelError::BadFold { p, v });
    }
    let log_p = log2_exact(p);
    let spec = GranSpec { levels: log_p, gran_shift: prog.log_v() - log_p, full: false };
    run_core(prog, states, p, spec, opts)
}

fn run_core<S: Send + Clone, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    gran: usize,
    spec: GranSpec,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    assert_eq!(states.len(), v, "one state per VP required");
    let n_shards = shard_count(v, gran, opts);
    // Plan-fallback degradation: armed only when a mismatch can actually
    // surface from a trusted plan — validation off (under validation a
    // mismatch is a model violation to report), plans on, and at least one
    // oblivious route declared. A partial attempt mutates the states, so
    // the pristine inputs are cloned up front — only when armed, keeping
    // the default path allocation-profile unchanged.
    let fallback_armed = opts.plan_fallback == PlanFallback::Dynamic
        && opts.use_plans
        && !opts.validate
        && prog.planned_steps() > 0;
    let saved = if fallback_armed { Some(states.clone()) } else { None };
    match run_attempt(prog, &mut states, gran, spec, opts, n_shards) {
        Ok((trace, message_log)) => Ok(RunResult { states, trace, message_log, fallback: None }),
        Err(mismatch @ ModelError::PlanMismatch { .. }) if fallback_armed => {
            let mut states = saved.unwrap_or_default();
            let retry = RunOptions { use_plans: false, ..opts.clone() };
            let (trace, message_log) =
                run_attempt(prog, &mut states, gran, spec, &retry, n_shards)?;
            Ok(RunResult { states, trace, message_log, fallback: Some(mismatch) })
        }
        Err(e) => Err(e),
    }
}

/// One execution attempt (the whole superstep sequence) on fresh trace and
/// log builders; [`run_core`] may invoke it twice under the plan-fallback
/// policy.
#[allow(clippy::type_complexity)]
fn run_attempt<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: &mut [S],
    gran: usize,
    spec: GranSpec,
    opts: &RunOptions,
    n_shards: usize,
) -> Result<(CommTrace, Option<Vec<Vec<(u32, u32)>>>), ModelError> {
    let mut trace = TraceBuilder::new(gran, prog.n(), prog.steps().len());
    let mut message_log = opts.collect_messages.then(|| Vec::with_capacity(prog.steps().len()));
    if n_shards <= 1 {
        run_serial(prog, states, spec, opts, &mut trace, &mut message_log)?;
    } else {
        let (_rounds, outcome) = crate::shard::run_sharded(
            prog,
            states,
            spec,
            n_shards,
            opts,
            &mut trace,
            &mut message_log,
        );
        outcome?;
    }
    Ok((trace.finish(), message_log))
}

/// Fault-injection sites instrumented on the serial path (the sharded
/// executor's sites live in `crate::shard`, the arena/count edges in
/// `crate::mailbox`): the planned direct-write superstep and the dynamic
/// computation + send phase. Both are checked *inside* the phase's
/// `catch_unwind`, so panic-flavor faults exercise the same unwind
/// recovery as a real closure panic.
pub(crate) const FAULT_SERIAL_PLANNED: &str = "serial:planned";
/// See [`FAULT_SERIAL_PLANNED`].
pub(crate) const FAULT_SERIAL_EXEC: &str = "serial:exec";
/// The capture run's computation + send phase (see [`capture_run`]): checked
/// inside the phase's `catch_unwind` like the other serial sites, so a fault
/// during trace capture rides the same recovery as a closure panic there.
pub(crate) const FAULT_SERIAL_CAPTURE: &str = "serial:capture";

/// Renders a caught closure panic as the structured
/// [`ModelError::VpPanic`], preserving string payloads verbatim. Shared by
/// the serial path and the sharded workers so the two report identically.
pub(crate) fn vp_panic_error(
    step: &'static str,
    vp: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> ModelError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    ModelError::VpPanic { step, vp, payload: msg }
}

/// The single-shard execution loop: the whole machine is one shard, and
/// steady-state supersteps allocate nothing (the engine's headline property,
/// proven by `tests/allocation.rs`). `pub(crate)` so `crate::server` can
/// route jobs too small for its gang through the same loop.
pub(crate) fn run_serial<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: &mut [S],
    spec: GranSpec,
    opts: &RunOptions,
    trace: &mut TraceBuilder,
    message_log: &mut Option<Vec<Vec<(u32, u32)>>>,
) -> Result<(), ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    let levels = spec.levels;
    let mut counters = if spec.full {
        DegreeCounters::full(log_v)
    } else {
        DegreeCounters::folded(log_v, levels)
    };
    let mut stage: ChunkStage<M> = ChunkStage::new(v);
    let mut arenas = [Arena::<M>::new(v), Arena::<M>::new(v)];
    let mut read_idx = 0usize;
    // Invariant: all-zero between supersteps (`prepare_write` re-zeroes the
    // counts as it consumes them, so no per-superstep `fill(0)` sweep).
    let mut dst_counts = vec![0u32; v];
    let mut cursors = vec![0u32; v];
    // Seen-bitmap scratch for unit-layout planned steps (one bit per VP,
    // re-zeroed per bitmap step), preallocated so planned steady state
    // stays allocation-free.
    let mut dst_seen = vec![0u64; v.div_ceil(64)];
    // Recycled per-superstep log entry scratch: log-collecting runs pay one
    // exact-size allocation per recorded superstep (the entry pushed into
    // the log), never repeated growth.
    let mut log_scratch: Vec<(u32, u32)> = Vec::new();
    let faults = opts.faults.as_deref();
    let tele = opts.telemetry.as_deref();

    for (t, step) in prog.steps().iter().enumerate() {
        let record_step = step.label < levels;
        let want_log = message_log.is_some() && record_step;

        // --- planned supersteps: direct-write scatter + analytic metrics --
        if let Some(plan) = step.plan().filter(|_| opts.use_plans) {
            match plan.fault() {
                // A route that violates the model is reported like the
                // dynamic engine would; with validation off, fall through
                // and let the dynamic path execute (and deliver) it.
                Some(fault) if opts.validate => return Err(fault.clone()),
                Some(_) => {}
                None => {
                    let t0 = tele.map(|tl| {
                        tl.enter(0, Site::SerialPlanned, t);
                        Instant::now()
                    });
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(f) = faults {
                            f.check(FAULT_SERIAL_PLANNED, 0, t)?;
                        }
                        run_planned_step(
                            step,
                            plan,
                            states,
                            &mut arenas,
                            read_idx,
                            &mut dst_counts,
                            &mut cursors,
                            &mut dst_seen,
                            &mut stage.outbox,
                            opts.validate,
                            opts.fuse,
                        )
                    }));
                    match outcome {
                        Ok(result) => result?,
                        Err(payload) => {
                            return Err(vp_panic_error(
                                step.name,
                                stage.outbox.panic_vp(),
                                payload,
                            ))
                        }
                    }
                    if let (Some(tl), Some(t0)) = (tele, t0) {
                        tl.record(0, Site::SerialPlanned, t0.elapsed());
                    }
                    if record_step {
                        trace.push_precomputed(step.label, plan.metrics(), spec.full);
                        if want_log {
                            log_scratch.clear();
                            plan_log_entry(plan, spec, &mut log_scratch);
                            if let Some(log) = message_log.as_mut() {
                                log.push(log_scratch.clone());
                            }
                        }
                    }
                    read_idx = 1 - read_idx;
                    continue;
                }
            }
        }

        // --- computation + send phase -----------------------------------
        {
            let t0 = tele.map(|tl| {
                tl.enter(0, Site::SerialExec, t);
                Instant::now()
            });
            let read = &mut arenas[read_idx];
            let (slab, offsets) = read.take_read();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(f) = faults {
                    f.check(FAULT_SERIAL_EXEC, 0, t)?;
                }
                exec_chunk(prog, step, 0, v, states, slab, offsets, &mut stage);
                Ok(())
            }));
            match outcome {
                Ok(result) => result?,
                Err(payload) => {
                    return Err(vp_panic_error(step.name, stage.outbox.panic_vp(), payload))
                }
            }
            if let (Some(tl), Some(t0)) = (tele, t0) {
                tl.record(0, Site::SerialExec, t0.elapsed());
            }
        }
        if stage.outbox.take_oob() {
            return Err(crate::program::oob_dst_error());
        }

        // --- streaming validation + metrics + routing counts (one pass) ---
        crate::mailbox::fault_edge(faults, crate::mailbox::FAULT_BUMP_COUNT, 0, t)?;
        counters.begin_superstep();
        if want_log {
            log_scratch.clear();
        }
        let mut msg_idx = 0usize;
        for (src, &end) in stage.vp_ends.iter().enumerate() {
            for (dst, env) in &stage.outbox.msgs[msg_idx..end as usize] {
                let dst = *dst as usize;
                if opts.validate {
                    if dst >= v {
                        return Err(ModelError::BadParameter {
                            what: "dst",
                            reason: "message destination out of machine range",
                        });
                    }
                    if !message_allowed(src, dst, log_v, step.label) {
                        return Err(ModelError::ClusterViolation { label: step.label, src, dst });
                    }
                }
                if record_step {
                    counters.record(src, dst);
                }
                if want_log {
                    if spec.full {
                        log_scratch.push((src as u32, dst as u32));
                    } else {
                        let (ps, pd) = (src >> spec.gran_shift, dst >> spec.gran_shift);
                        if ps != pd {
                            log_scratch.push((ps as u32, pd as u32));
                        }
                    }
                }
                if matches!(env, Envelope::Data(_)) {
                    // Checked: a wrapped count would mis-size the arena
                    // and a capped one would corrupt the counting-sort
                    // offsets; hitting the limit is a model error.
                    crate::mailbox::bump_count(&mut dst_counts[dst])?;
                }
            }
            msg_idx = end as usize;
        }
        if record_step {
            trace.push_superstep(step.label, &counters);
            if want_log {
                if let Some(log) = message_log.as_mut() {
                    log.push(log_scratch.clone());
                }
            }
        }

        // --- routing (messages become visible next superstep) --------------
        {
            crate::mailbox::fault_edge(faults, crate::mailbox::FAULT_PREPARE_WRITE, 0, t)?;
            let write = &mut arenas[1 - read_idx];
            let total = write.prepare_write(&mut dst_counts, &mut cursors);
            let (slab, _offsets) = write.split_for_scatter(total);
            route_serial(&mut stage, &mut cursors, slab);
            write.commit_write(total);
        }
        read_idx = 1 - read_idx;
    }
    Ok(())
}

/// The trace-capture run behind [`Program::capture_plans`]: one serial,
/// *fully dynamic* execution of the whole program that records, for every
/// superstep without a declared plan, the exact send sequence as per-VP
/// prefix offsets over a flat `(dst, is_data)` slot table — the input of
/// [`crate::plan::StepPlan::compile_captured`]. Steps that already carry a
/// plan replay dynamically too (so the recorded run is exactly the dynamic
/// semantics end to end) and yield `None`.
///
/// Validation is forced on regardless of any run options: a capture that
/// escaped its cluster would compile into a plan [`StepPlan::compile`]
/// rejects anyway, so the violation is reported here, at its source.
/// Metrics, traces and logs are not produced — the run exists only for its
/// side effect on the captured tables; the final states are discarded.
#[allow(clippy::type_complexity)]
pub(crate) fn capture_run<S, M>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    faults: Option<&FaultPlan>,
    tele: Option<&TelemetrySink>,
) -> Result<Vec<Option<(Vec<u32>, Vec<(u32, bool)>)>>, ModelError> {
    let v = prog.v();
    assert_eq!(states.len(), v, "one state per VP required");
    let log_v = prog.log_v();
    let mut stage: ChunkStage<M> = ChunkStage::new(v);
    let mut arenas = [Arena::<M>::new(v), Arena::<M>::new(v)];
    let mut read_idx = 0usize;
    let mut dst_counts = vec![0u32; v];
    let mut cursors = vec![0u32; v];
    let mut captures = Vec::with_capacity(prog.steps().len());

    for (t, step) in prog.steps().iter().enumerate() {
        // Declared plans are honored, never re-captured; a route that failed
        // its compile-time proof is reported up front, exactly as a
        // validated planned run would report it.
        if let Some(fault) = step.plan().and_then(|p| p.fault()) {
            return Err(fault.clone());
        }

        // --- computation + send phase (always the dynamic path) -----------
        {
            let t0 = tele.map(|tl| {
                tl.enter(0, Site::SerialCapture, t);
                Instant::now()
            });
            let read = &mut arenas[read_idx];
            let (slab, offsets) = read.take_read();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(f) = faults {
                    f.check(FAULT_SERIAL_CAPTURE, 0, t)?;
                }
                exec_chunk(prog, step, 0, v, &mut states, slab, offsets, &mut stage);
                Ok(())
            }));
            match outcome {
                Ok(result) => result?,
                Err(payload) => {
                    return Err(vp_panic_error(step.name, stage.outbox.panic_vp(), payload))
                }
            }
            if let (Some(tl), Some(t0)) = (tele, t0) {
                tl.record(0, Site::SerialCapture, t0.elapsed());
            }
        }
        if stage.outbox.take_oob() {
            return Err(crate::program::oob_dst_error());
        }

        // --- forced validation + routing counts ----------------------------
        let mut msg_idx = 0usize;
        for (src, &end) in stage.vp_ends.iter().enumerate() {
            for (dst, env) in &stage.outbox.msgs[msg_idx..end as usize] {
                let dst = *dst as usize;
                if dst >= v {
                    return Err(ModelError::BadParameter {
                        what: "dst",
                        reason: "message destination out of machine range",
                    });
                }
                if !message_allowed(src, dst, log_v, step.label) {
                    return Err(ModelError::ClusterViolation { label: step.label, src, dst });
                }
                if matches!(env, Envelope::Data(_)) {
                    crate::mailbox::bump_count(&mut dst_counts[dst])?;
                }
            }
            msg_idx = end as usize;
        }

        // --- record the trace before the scatter drains it -----------------
        captures.push(if step.plan().is_none() {
            let mut offsets = Vec::with_capacity(v + 1);
            offsets.push(0u32);
            offsets.extend_from_slice(&stage.vp_ends);
            let slots = stage
                .outbox
                .msgs
                .iter()
                .map(|(dst, env)| (*dst, matches!(env, Envelope::Data(_))))
                .collect();
            Some((offsets, slots))
        } else {
            None
        });

        // --- routing --------------------------------------------------------
        {
            let write = &mut arenas[1 - read_idx];
            let total = write.prepare_write(&mut dst_counts, &mut cursors);
            let (slab, _offsets) = write.split_for_scatter(total);
            route_serial(&mut stage, &mut cursors, slab);
            write.commit_write(total);
        }
        read_idx = 1 - read_idx;
    }
    Ok(captures)
}

/// Executes one planned superstep on the serial path: a counting pass over
/// the declared route sizes the write arena — or, on the fused tier
/// (`fuse` and the plan carries a [`crate::plan::PlanLayout`]), the arena
/// is sized straight from the `O(1)` layout summary with no route
/// enumeration at all — every VP closure then writes its payloads
/// **directly into the destination arena slot** through the cursor-guarded
/// [`DirectOut`] — no staging copy, no validation scan, no streaming
/// counters, no counting-sort scatter. The caller pushes the plan's
/// precomputed metrics afterwards.
///
/// Mis-declared plans are rejected, never silently executed: the direct
/// writer bounds every write by its destination's planned range, and the
/// payload total is compared against the plan *before* the arena is
/// committed (an under-filled slab is never published — its partial
/// payloads are leaked, not dropped, which is safe and bounded by one
/// superstep). With validation on the writer additionally checks every
/// send (dummies included) against the declared route in lockstep.
#[allow(clippy::too_many_arguments)]
fn run_planned_step<S, M: Send>(
    step: &crate::program::Superstep<S, M>,
    plan: &crate::plan::StepPlan,
    states: &mut [S],
    arenas: &mut [Arena<M>; 2],
    read_idx: usize,
    dst_counts: &mut [u32],
    cursors: &mut [u32],
    dst_seen: &mut [u64],
    outbox: &mut crate::program::Outbox<M>,
    validate: bool,
    fuse: bool,
) -> Result<(), ModelError> {
    let [a0, a1] = arenas;
    let (read, write) = if read_idx == 0 { (a0, a1) } else { (a1, a0) };
    let v = dst_counts.len();

    // Size the write arena: from the plan's O(1) layout summary when the
    // fused tier is enabled and compile detected one, else the counting
    // pass over the declared route. Either way the direct writer re-checks
    // every slot bound at write time, so a wrong layout could only surface
    // as PlanMismatch, never as an out-of-bounds write. Unit layouts
    // (`k == 1` — butterflies, shuffles, transposes) deliver through the
    // L1-resident seen-bitmap instead of the cursor table.
    let (total, uniform_k) = match plan.layout().filter(|_| fuse) {
        Some(&crate::plan::PlanLayout::Uniform(k)) => {
            (write.prepare_write_uniform(k, (k != 1).then_some(&mut *cursors)), k)
        }
        Some(layout @ crate::plan::PlanLayout::Table(_)) => {
            (write.prepare_write_counts(|d| layout.count(d), cursors), 0)
        }
        None => {
            plan.count_data(dst_counts)?;
            (write.prepare_write(dst_counts, cursors), 0)
        }
    };
    debug_assert_eq!(total as u64, plan.total_data(), "count pass disagrees with compile pass");
    let bitmap = uniform_k == 1;
    if bitmap {
        dst_seen.fill(0);
    }

    // Arm the direct writer over the write arena's freshly sized slab.
    {
        let (wslab, woffsets) = write.split_for_scatter(total);
        let check = validate.then(|| plan.route_raw());
        outbox.enter_direct(crate::mailbox::DirectSink::Serial(crate::mailbox::DirectOut::new(
            wslab,
            cursors,
            woffsets,
            check,
            uniform_k,
            bitmap.then_some(&mut *dst_seen),
        )));
    }

    // Execute the chunk, carving inboxes out of the read arena as usual.
    let (rslab, roffsets) = read.take_read();
    exec_direct_chunk(step, 0, states, rslab, roffsets, outbox, v, plan.log_v, plan.n);

    let (written, fault) = match outbox.exit_direct() {
        crate::mailbox::DirectSink::Serial(d) => d.finish(),
        crate::mailbox::DirectSink::Sharded(_) => unreachable!("serial path arms a serial sink"),
    };
    if let Some((vp, reason)) = fault {
        return Err(ModelError::PlanMismatch { step: step.name, vp, reason });
    }
    if written != plan.total_data() {
        // Attribute the shortfall to the first destination whose inbox
        // range was left short (without lockstep checking the sender is
        // unknown, but the starved receiver is not).
        let (_, woffsets) = write.split_for_scatter(total);
        let vp = if bitmap {
            (0..v).find(|&d| dst_seen[d >> 6] & (1u64 << (d & 63)) == 0).unwrap_or(0)
        } else {
            (0..v).find(|&d| cursors[d] < woffsets[d + 1]).unwrap_or(0)
        };
        return Err(ModelError::PlanMismatch {
            step: step.name,
            vp,
            reason: "destination received fewer payload messages than the route declares",
        });
    }
    write.commit_write(total);
    Ok(())
}

/// Materializes the message-log entry of a planned superstep straight from
/// its route (same order as the dynamic path: ascending source VP, then
/// send order; dummies included at full granularity, processor-external
/// pairs only when folded). Shared by the serial path and the sharded
/// coordinator so the two can never emit differently shaped entries.
pub(crate) fn plan_log_entry(
    plan: &crate::plan::StepPlan,
    spec: GranSpec,
    out: &mut Vec<(u32, u32)>,
) {
    let v = 1usize << plan.log_v;
    if spec.full {
        plan.for_each_message(0..v, |s, d, _| out.push((s as u32, d as u32)));
    } else {
        plan.for_each_message(0..v, |s, d, _| {
            let (ps, pd) = (s >> spec.gran_shift, d >> spec.gran_shift);
            if ps != pd {
                out.push((ps as u32, pd as u32));
            }
        });
    }
}

/// Runs one *planned* superstep's closures for a chunk of consecutive VPs
/// with a direct writer armed in `outbox`: carves per-VP inboxes out of
/// the read slab and brackets each closure with the writer's begin/end
/// hooks (per-VP counter reset + lockstep exhaustion check). Shared by the
/// serial path (one chunk covering the machine) and the sharded executor's
/// workers, so planned inbox carving can never drift between the two.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_direct_chunk<S, M>(
    step: &crate::program::Superstep<S, M>,
    vp_lo: usize,
    states: &mut [S],
    slab: &mut [std::mem::MaybeUninit<M>],
    offsets: &[u32],
    outbox: &mut crate::program::Outbox<M>,
    v: usize,
    log_v: u32,
    n: usize,
) {
    debug_assert_eq!((offsets[states.len()] - offsets[0]) as usize, slab.len());
    let mut slab_rest = slab;
    for (i, state) in states.iter_mut().enumerate() {
        let len = (offsets[i + 1] - offsets[i]) as usize;
        let taken = std::mem::take(&mut slab_rest);
        let (mine, rest) = taken.split_at_mut(len);
        slab_rest = rest;
        let mut inbox = Inbox::over_slab(mine);
        let ctx = Ctx { vp: vp_lo + i, v, log_v, n };
        outbox.cur_vp = vp_lo + i;
        outbox.direct_mut().begin_vp(&ctx);
        (step.exec)(state, &ctx, &mut inbox, outbox);
        outbox.direct_mut().end_vp();
    }
}

/// Runs the superstep closure for every VP of one shard, carving per-VP
/// inboxes out of the shard's slab and staging sends contiguously. Shared
/// by the serial path (one shard covering the machine) and the sharded
/// executor's workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_chunk<S, M>(
    prog: &Program<S, M>,
    step: &crate::program::Superstep<S, M>,
    vp_lo: usize,
    vp_count: usize,
    states: &mut [S],
    slab: &mut [std::mem::MaybeUninit<M>],
    offsets: &[u32],
    stage: &mut ChunkStage<M>,
) {
    stage.reset();
    let v = prog.v();
    let log_v = prog.log_v();
    let n = prog.n();
    let base = offsets[0];
    debug_assert_eq!((offsets[vp_count] - base) as usize, slab.len());
    let mut slab_rest = slab;
    for (i, state) in states.iter_mut().take(vp_count).enumerate() {
        let len = (offsets[i + 1] - offsets[i]) as usize;
        let taken = std::mem::take(&mut slab_rest);
        let (mine, rest) = taken.split_at_mut(len);
        slab_rest = rest;
        let mut inbox = Inbox::over_slab(mine);
        stage.outbox.begin_vp();
        stage.outbox.cur_vp = vp_lo + i;
        let ctx = Ctx { vp: vp_lo + i, v, log_v, n };
        (step.exec)(state, &ctx, &mut inbox, &mut stage.outbox);
        stage.vp_ends.push(stage.outbox.msgs.len() as u32);
        // `inbox` drops here: unconsumed messages are discarded.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cluster-halving broadcast: in superstep i the first VP of each
    /// i-cluster forwards the value to the first VP of the sibling
    /// (i+1)-cluster. log v supersteps with labels 0, 1, …, log v − 1.
    fn broadcast_program(v: usize) -> Program<Option<u64>, u64> {
        let mut p: Program<Option<u64>, u64> = Program::new(v, v);
        let log_v = p.log_v();
        for i in 0..log_v {
            p.step(i, "bcast", move |state, ctx, inbox, out| {
                if let Some(m) = inbox.pop() {
                    *state = Some(m);
                }
                let cluster = ctx.v >> i;
                if ctx.vp % cluster == 0 {
                    if let Some(val) = *state {
                        out.send(ctx.vp + cluster / 2, val);
                    }
                }
            });
        }
        // Messages sent in the last round are only visible after its barrier:
        // consume them in a final (cheap, innermost-label) superstep.
        p.step(log_v - 1, "consume", |state, _, inbox, _| {
            if let Some(m) = inbox.pop() {
                *state = Some(m);
            }
        });
        p
    }

    /// Options forcing the sharded executor at `w` workers.
    fn sharded(w: usize) -> RunOptions {
        RunOptions { workers: Some(w), ..Default::default() }
    }

    #[test]
    fn broadcast_reaches_cluster_leaders() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(99);
        let res = run(&broadcast_program(v), states, &RunOptions::default()).unwrap();
        // After log v rounds every cluster leader (here: every even-indexed
        // chain) has the value; with v = 16 all VPs that are the first of
        // some cluster at some level got it: 0, 8, 4, 12, 2, 6, 10, 14, odds.
        let got: Vec<usize> = res.states.iter().enumerate().filter(|(_, s)| s.is_some()).map(|(i, _)| i).collect();
        assert_eq!(got.len(), 16, "all VPs reached: {got:?}");
        // Metrics: one i-superstep per level plus the silent consume step.
        assert_eq!(res.trace.superstep_count(), 5);
        assert_eq!(res.trace.s_counts(), vec![1, 1, 1, 2]);
        let m = res.trace.fold(16);
        assert_eq!(m.f, vec![1, 1, 1, 1]);
        // At fold 2 only the label-0 superstep communicates.
        let m2 = res.trace.fold(2);
        assert_eq!(m2.f, vec![1]);
        assert_eq!(m2.s, vec![1]);
    }

    #[test]
    fn folded_run_matches_full_run() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(7);
        let prog = broadcast_program(v);
        let full = run(&prog, states.clone(), &RunOptions::default()).unwrap();
        for p in [2usize, 4, 8, 16] {
            let folded = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            // Same outputs...
            assert_eq!(folded.states, full.states, "states diverge at p = {p}");
            // ...and metrics matching the analytic fold at every sub-level.
            let mut q = 2;
            while q <= p {
                assert_eq!(
                    folded.trace.fold(q),
                    full.trace.fold(q),
                    "fold metrics diverge at p = {p}, q = {q}"
                );
                q *= 2;
            }
        }
    }

    #[test]
    fn cluster_violations_are_caught() {
        let mut p: Program<(), u32> = Program::new(8, 8);
        // A label-2 superstep trying to cross the bisection.
        p.step(2, "bad", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(7, 1);
            }
        });
        let err = match run(&p, vec![(); 8], &RunOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("expected a cluster violation"),
        };
        assert!(matches!(err, ModelError::ClusterViolation { label: 2, src: 0, dst: 7 }));
        // Without validation the engine lets it pass (for experiments).
        let opts = RunOptions { validate: false, ..Default::default() };
        assert!(run(&p, vec![(); 8], &opts).is_ok());
    }

    #[test]
    fn sharded_run_reports_cluster_violations_too() {
        let mut p: Program<(), u32> = Program::new(8, 8);
        p.step(1, "bad", |_, ctx, _, out| {
            if ctx.vp == 2 {
                out.send(6, 1); // crosses the bisection in a 1-superstep
            }
        });
        for w in [2usize, 4] {
            let err = match run(&p, vec![(); 8], &sharded(w)) {
                Err(e) => e,
                Ok(_) => panic!("expected a cluster violation at {w} workers"),
            };
            assert!(
                matches!(err, ModelError::ClusterViolation { label: 1, src: 2, dst: 6 }),
                "wrong error at {w} workers: {err:?}"
            );
        }
    }

    #[test]
    fn dummies_count_in_metrics_but_are_not_delivered() {
        let mut p: Program<u64, u64> = Program::new(4, 4);
        p.step(0, "dummy-send", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send_dummy(2);
            }
        });
        p.step(0, "count-inbox", |state, _, inbox, _| {
            *state = inbox.len() as u64;
        });
        let res = run(&p, vec![0; 4], &RunOptions::default()).unwrap();
        assert_eq!(res.states, vec![0, 0, 0, 0], "dummy delivered?");
        assert_eq!(res.trace.steps[0].total_msgs, 1);
        assert_eq!(res.trace.steps[0].h(1), 1);
        // Same through the sharded executor (the dummy crosses a shard
        // boundary at 4 workers, so it rides a lane header).
        for w in [2usize, 4] {
            let s = run(&p, vec![0; 4], &sharded(w)).unwrap();
            assert_eq!(s.states, res.states, "dummy delivered at {w} workers?");
            assert_eq!(s.trace, res.trace, "dummy metrics diverge at {w} workers");
        }
    }

    #[test]
    fn message_log_records_raw_edges() {
        let mut p: Program<(), u8> = Program::new(4, 4);
        p.step(0, "x", |_, ctx, _, out| {
            if ctx.vp < 2 {
                out.send(ctx.vp + 2, 1);
            }
        });
        let res = run(&p, vec![(); 4], &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        assert_eq!(log, vec![vec![(0, 2), (1, 3)]]);
        // The sharded log concatenates per-shard fragments in shard order =
        // ascending source order.
        let opts = RunOptions { workers: Some(4), ..RunOptions::with_log() };
        let sharded = run(&p, vec![(); 4], &opts).unwrap();
        assert_eq!(sharded.message_log.unwrap(), vec![vec![(0, 2), (1, 3)]]);
    }

    #[test]
    fn folded_message_log_is_processor_granularity() {
        let mut p: Program<(), u8> = Program::new(8, 8);
        // Label 0: VP0 -> VP7 crosses every boundary; VP4 -> VP5 is internal
        // at p = 2 and p = 4... VP4 and VP5 share the top two bits of three.
        p.step(0, "far", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(7, 1);
            }
            if ctx.vp == 4 {
                out.send(5, 1);
            }
        });
        // Label 2: local at p = 4, produces no record and no log entry.
        p.step(2, "near", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(1, 1);
            }
        });
        let res = run_folded(&p, vec![(); 8], 4, &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        assert_eq!(res.trace.superstep_count(), 1);
        assert_eq!(log.len(), res.trace.superstep_count(), "log aligns with trace");
        // VP0 -> VP7 becomes proc 0 -> proc 3; VP4 -> VP5 is internal to
        // proc 2 and is not logged.
        assert_eq!(log[0], vec![(0, 3)]);
        // Shard = fold: the sharded folded run produces the same log.
        let opts = RunOptions { workers: Some(4), ..RunOptions::with_log() };
        let sharded = run_folded(&p, vec![(); 8], 4, &opts).unwrap();
        assert_eq!(sharded.trace, res.trace);
        assert_eq!(sharded.message_log.unwrap(), log);
    }

    #[test]
    fn inbox_is_cleared_between_supersteps() {
        let mut p: Program<Vec<u64>, u64> = Program::new(4, 4);
        p.step(0, "send", |_, ctx, _, out| out.send(ctx.vp ^ 1, ctx.vp as u64));
        p.step(0, "recv", |state, _, inbox, _| state.extend(inbox.drain(..)));
        p.step(0, "recv-again", |state, _, inbox, _| state.extend(inbox.drain(..)));
        let res = run(&p, vec![Vec::new(); 4], &RunOptions::default()).unwrap();
        // Each VP received exactly one message, in the second superstep only.
        assert!(res.states.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(41);
        let prog = broadcast_program(v);
        let serial = run(&prog, states.clone(), &RunOptions::with_log()).unwrap();
        for w in [2usize, 4, 8, 16] {
            let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
            let sh = run(&prog, states.clone(), &opts).unwrap();
            assert_eq!(sh.states, serial.states, "states diverge at {w} workers");
            assert_eq!(sh.trace, serial.trace, "trace diverges at {w} workers");
            assert_eq!(sh.message_log, serial.message_log, "log diverges at {w} workers");
        }
        // Folded runs: every (p, workers ≤ p) combination agrees with the
        // serial folding.
        for p in [2usize, 4, 8] {
            let serial_folded =
                run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            for w in [2usize, 4, 8] {
                let sh = run_folded(&prog, states.clone(), p, &sharded(w)).unwrap();
                assert_eq!(sh.states, serial_folded.states, "folded states, p={p} w={w}");
                assert_eq!(sh.trace, serial_folded.trace, "folded trace, p={p} w={w}");
            }
        }
    }

    #[test]
    fn vp_panics_become_structured_errors_at_every_width() {
        // A VP-closure panic is downgraded to the identical structured
        // `VpPanic` on the serial path and at every shard width.
        let mut p: Program<(), u8> = Program::new(8, 8);
        p.step(0, "boom", |_, ctx, _, _| {
            if ctx.vp == 5 {
                panic!("vp exploded");
            }
        });
        for w in [1usize, 2, 4, 8] {
            let err = run(&p, vec![(); 8], &sharded(w)).unwrap_err();
            assert_eq!(
                err,
                ModelError::VpPanic { step: "boom", vp: 5, payload: "vp exploded".into() },
                "panic downgrade diverges at {w} workers"
            );
        }
    }

    /// Butterfly exchange declared as an oblivious route (with a wiseness
    /// dummy from the low half), next to its plain dynamic twin.
    fn butterfly_pair(v: usize, rounds: usize) -> (Program<u64, u64>, Program<u64, u64>) {
        use crate::plan::Route;
        let mut planned: Program<u64, u64> = Program::new(v, v);
        let mut dynamic: Program<u64, u64> = Program::new(v, v);
        let log_v = planned.log_v();
        for r in 0..rounds {
            let l = (r as u32) % log_v;
            let d = v >> (l + 1);
            let body = move |st: &mut u64, ctx: &Ctx, inbox: &mut Inbox<'_, u64>, out: &mut crate::program::Outbox<u64>| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                out.send(ctx.vp ^ d, *st);
                if ctx.vp < d {
                    out.send_dummy(ctx.vp + d);
                }
            };
            planned.step_oblivious(
                l,
                "bfly",
                2,
                move |ctx, k| {
                    if k == 0 {
                        Route::Data(ctx.vp ^ d)
                    } else if ctx.vp < d {
                        Route::Dummy(ctx.vp + d)
                    } else {
                        Route::Skip
                    }
                },
                body,
            );
            dynamic.step(l, "bfly", body);
        }
        let consume = |st: &mut u64, _: &Ctx, inbox: &mut Inbox<'_, u64>, _: &mut crate::program::Outbox<u64>| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
        };
        planned.step_oblivious(log_v - 1, "consume", 0, |_, _| crate::plan::Route::Skip, consume);
        dynamic.step(log_v - 1, "consume", consume);
        (planned, dynamic)
    }

    #[test]
    fn planned_execution_is_bit_for_bit_dynamic_execution() {
        let v = 16;
        let (planned, dynamic) = butterfly_pair(v, 9);
        assert_eq!(planned.planned_steps(), 10);
        let states: Vec<u64> = (0..v as u64).map(|x| x * 7 + 1).collect();
        let base = RunOptions { workers: Some(1), ..RunOptions::with_log() };
        let want = run(&dynamic, states.clone(), &base).unwrap();
        // Serial planned, planned-with-plans-off, and sharded planned all
        // agree with the dynamic program exactly.
        let on = run(&planned, states.clone(), &base).unwrap();
        assert_eq!(on.states, want.states);
        assert_eq!(on.trace, want.trace);
        assert_eq!(on.message_log, want.message_log);
        let off_opts = RunOptions { use_plans: false, ..base.clone() };
        let off = run(&planned, states.clone(), &off_opts).unwrap();
        assert_eq!(off.states, want.states);
        assert_eq!(off.trace, want.trace);
        assert_eq!(off.message_log, want.message_log);
        for w in [2usize, 4] {
            let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
            let sh = run(&planned, states.clone(), &opts).unwrap();
            assert_eq!(sh.states, want.states, "sharded planned states at {w} workers");
            assert_eq!(sh.trace, want.trace, "sharded planned trace at {w} workers");
            assert_eq!(sh.message_log, want.message_log, "sharded planned log at {w} workers");
        }
        // Folded runs agree too (planned metrics at granularity p).
        for p in [2usize, 4, 8] {
            let fw = run_folded(&dynamic, states.clone(), p, &base).unwrap();
            for w in [1usize, 2] {
                let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
                let fp = run_folded(&planned, states.clone(), p, &opts).unwrap();
                assert_eq!(fp.states, fw.states, "folded planned states p={p} w={w}");
                assert_eq!(fp.trace, fw.trace, "folded planned trace p={p} w={w}");
                assert_eq!(fp.message_log, fw.message_log, "folded planned log p={p} w={w}");
            }
        }
        // Validation-off planned runs still agree (safety checks only).
        let noval = RunOptions { validate: false, workers: Some(1), ..Default::default() };
        let nv = run(&planned, states.clone(), &noval).unwrap();
        assert_eq!(nv.states, want.states);
        assert_eq!(nv.trace, want.trace);
    }

    #[test]
    fn misdeclared_route_is_rejected_not_silently_executed() {
        use crate::plan::Route;
        let v = 8usize;
        // Route declares vp ^ 1; the closure actually sends vp ^ 2.
        let mut lying: Program<u64, u64> = Program::new(v, v);
        lying.step_oblivious(
            0,
            "liar",
            1,
            |ctx, _| Route::Data(ctx.vp ^ 1),
            |_, ctx, _, out| out.send(ctx.vp ^ 2, 1),
        );
        let states: Vec<u64> = vec![0; v];
        for w in [1usize, 2] {
            let err = run(&lying, states.clone(), &RunOptions { workers: Some(w), ..Default::default() })
                .expect_err("mis-declared route must be rejected");
            assert!(
                matches!(err, ModelError::PlanMismatch { step: "liar", .. }),
                "wrong error at {w} workers: {err:?}"
            );
        }
        // Safety net without validation: route lockstep is off, but the
        // payload *multiset* checks still refuse to publish an arena whose
        // slot occupancy disagrees with the plan — on the serial path
        // (cursor bounds + written total) and identically on the sharded
        // direct cross-shard path (per-(source shard, destination) region
        // bounds + per-worker written totals). (A mis-declaration that
        // happens to preserve every per-destination count — e.g. one
        // permutation declared as another — needs validation to be caught;
        // here VP 0 hoards both messages so destination counts diverge.)
        let mut skew: Program<u64, u64> = Program::new(v, v);
        skew.step_oblivious(
            0,
            "skew",
            1,
            |ctx, _| Route::Data(ctx.vp ^ 1),
            |_, ctx, _, out| out.send(if ctx.vp < 2 { 0 } else { ctx.vp ^ 1 }, 1),
        );
        for w in [1usize, 2, 4] {
            let noval = RunOptions { validate: false, workers: Some(w), ..Default::default() };
            let err = run(&skew, states.clone(), &noval)
                .expect_err("multiset mismatch must be caught without validation");
            assert!(matches!(err, ModelError::PlanMismatch { .. }), "w = {w}: got {err:?}");
        }

        // Declaring fewer sends than the closure performs is also caught.
        let mut over: Program<u64, u64> = Program::new(v, v);
        over.step_oblivious(
            0,
            "over",
            1,
            |ctx, _| Route::Data(ctx.vp ^ 1),
            |_, ctx, _, out| {
                out.send(ctx.vp ^ 1, 1);
                out.send(ctx.vp ^ 1, 2);
            },
        );
        let err = run(&over, states.clone(), &RunOptions::default()).expect_err("overfull");
        assert!(matches!(err, ModelError::PlanMismatch { .. }), "got {err:?}");
    }

    /// A program whose declared route diverges from its closure in a way
    /// the non-validated safety net still catches (VP 0 hoards both
    /// messages, skewing destination counts), next to a dynamic twin with
    /// the closure's *actual* behavior.
    fn skewed_pair(v: usize) -> (Program<u64, u64>, Program<u64, u64>) {
        use crate::plan::Route;
        let body = |_: &mut u64, ctx: &Ctx, _: &mut Inbox<'_, u64>, out: &mut crate::program::Outbox<u64>| {
            out.send(if ctx.vp < 2 { 0 } else { ctx.vp ^ 1 }, ctx.vp as u64)
        };
        let consume = |st: &mut u64, _: &Ctx, inbox: &mut Inbox<'_, u64>, _: &mut crate::program::Outbox<u64>| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
        };
        let mut lying: Program<u64, u64> = Program::new(v, v);
        lying.step_oblivious(0, "skew", 1, |ctx, _| Route::Data(ctx.vp ^ 1), body);
        lying.step_oblivious(0, "consume", 0, |_, _| Route::End, consume);
        let mut honest: Program<u64, u64> = Program::new(v, v);
        honest.step(0, "skew", body);
        honest.step(0, "consume", consume);
        (lying, honest)
    }

    #[test]
    fn plan_fallback_reexecutes_dynamically_and_records_the_mismatch() {
        let v = 8usize;
        let (lying, honest) = skewed_pair(v);
        let states: Vec<u64> = (0..v as u64).collect();
        for w in [1usize, 2, 4] {
            let noval =
                RunOptions { validate: false, workers: Some(w), ..RunOptions::with_log() };
            // Default policy: the mismatch is the run's error.
            let err = run(&lying, states.clone(), &noval)
                .expect_err("Fail policy must surface the mismatch");
            assert!(matches!(err, ModelError::PlanMismatch { .. }), "w = {w}: got {err:?}");
            // Dynamic policy: same run degrades to the dynamic path and
            // matches the honest twin bit for bit, keeping the abandoned
            // attempt's error as the fallback record.
            let opts = RunOptions { plan_fallback: PlanFallback::Dynamic, ..noval.clone() };
            let res = run(&lying, states.clone(), &opts).expect("fallback must recover");
            assert!(
                matches!(res.fallback, Some(ModelError::PlanMismatch { .. })),
                "w = {w}: fallback record missing: {:?}",
                res.fallback
            );
            let want = run(&honest, states.clone(), &noval).unwrap();
            assert_eq!(res.states, want.states, "fallback states diverge at {w} workers");
            assert_eq!(res.trace, want.trace, "fallback trace diverges at {w} workers");
            assert_eq!(res.message_log, want.message_log, "fallback log diverges at {w} workers");
        }
        // A healthy planned run under the Dynamic policy stays on the
        // planned path: no fallback recorded.
        let (planned, _) = butterfly_pair(v, 3);
        let opts = RunOptions {
            validate: false,
            plan_fallback: PlanFallback::Dynamic,
            ..Default::default()
        };
        let res = run(&planned, states.clone(), &opts).unwrap();
        assert!(res.fallback.is_none(), "clean run must not record a fallback");
    }

    #[test]
    fn cluster_violating_route_faults_at_compile_and_reports_under_validate() {
        use crate::plan::Route;
        let v = 8usize;
        let mut p: Program<u64, u64> = Program::new(v, v);
        // A label-2 route crossing the bisection: illegal by construction.
        p.step_oblivious(
            2,
            "rogue",
            1,
            |ctx, _| Route::Data(ctx.vp ^ 4),
            |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                out.send(ctx.vp ^ 4, *st + 1);
            },
        );
        p.step(2, "consume", |st, _, inbox, _| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
        });
        assert_eq!(p.planned_steps(), 0, "faulted plan is not usable");
        let states: Vec<u64> = (0..v as u64).collect();
        for w in [1usize, 2] {
            let err = run(&p, states.clone(), &RunOptions { workers: Some(w), ..Default::default() })
                .expect_err("validated run must reject the route");
            assert!(matches!(err, ModelError::ClusterViolation { label: 2, .. }), "got {err:?}");
        }
        // Validation off: the step falls back to the dynamic path and runs
        // exactly like its undeclared twin.
        let mut q: Program<u64, u64> = Program::new(v, v);
        q.step(2, "rogue", |st, ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            out.send(ctx.vp ^ 4, *st + 1);
        });
        q.step(2, "consume", |st, _, inbox, _| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
        });
        let noval = RunOptions { validate: false, ..Default::default() };
        let a = run(&p, states.clone(), &noval).unwrap();
        let b = run(&q, states.clone(), &noval).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn arena_engine_matches_reference_engine() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(41);
        let prog = broadcast_program(v);
        let arena = run(&prog, states.clone(), &RunOptions::with_log()).unwrap();
        let legacy =
            crate::reference::run_reference(&prog, states.clone(), &RunOptions::with_log())
                .unwrap();
        assert_eq!(arena.states, legacy.states);
        assert_eq!(arena.trace, legacy.trace);
        assert_eq!(arena.message_log, legacy.message_log);
        for p in [2usize, 4, 8] {
            let a = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            let l = crate::reference::run_folded_reference(
                &prog,
                states.clone(),
                p,
                &RunOptions::default(),
            )
            .unwrap();
            assert_eq!(a.states, l.states, "folded states diverge at p = {p}");
            assert_eq!(a.trace, l.trace, "folded trace diverges at p = {p}");
        }
    }
}
