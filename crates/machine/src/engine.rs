//! The superstep execution engine: full-granularity and folded runs on
//! zero-allocation mailbox arenas.
//!
//! # Architecture: double-buffered mailbox arenas
//!
//! The legacy engine (preserved as [`crate::reference`]) materialized, per
//! superstep, one `Vec` outbox per VP, one `(src, dst, 1)` edge per message
//! and `O(v)` metric scratch per fold level. This engine replaces all of
//! that with aggregate, cache-friendly structures that are allocated once
//! per run and recycled, so **steady-state supersteps perform zero heap
//! allocations** (serial path; the parallel path boxes one task per chunk):
//!
//! * **Two mailbox arenas** ([`mailbox::Arena`]): each is a contiguous
//!   message slab plus a `v+1`-entry offset table giving every VP's inbox
//!   range. Per superstep the engine *reads* the previous superstep's
//!   messages from one arena while the routing pass counting-sorts this
//!   superstep's sends into the other; then the two swap roles. Slabs only
//!   ever grow to the high-water message volume.
//! * **Chunked send staging** ([`mailbox::ChunkStage`]): VPs are divided
//!   into contiguous chunks (one per worker when parallel, one total when
//!   serial). Each chunk appends its `(dst, envelope)` pairs to a recycled
//!   flat buffer with per-VP end markers — the "thread-local buckets" that
//!   the routing pass merges into the arena.
//! * **Streaming metrics** ([`nob_core::metrics::DegreeCounters`]): a single
//!   pass over the staged messages validates the cluster constraint,
//!   accumulates per-fold-level degree counters (epoch-stamped, with running
//!   maxima, so emitting a [`SuperstepRecord`] is `O(log v)`), counts per
//!   destination for the scatter, and optionally appends to the message
//!   log — one loop where the legacy engine made `log v + 3` passes.
//!
//! # Invariants
//!
//! * **Delivery order** is ascending source VP, then send order — identical
//!   to the legacy nested delivery loop (the counting sort is stable), so
//!   `CommTrace` contents, message logs and final states are bit-for-bit
//!   identical to the reference engine. The differential property tests in
//!   `tests/engine_properties.rs` enforce this.
//! * **Metrics are send-phase metrics**: dummy messages count toward every
//!   degree (the paper's wiseness device) but are never delivered.
//! * **Parallelism is adaptive**: the VP-execution phase parallelizes when
//!   `v` is large enough relative to the worker pool for chunking to pay
//!   ([`exec_chunks`]), and the scatter parallelizes only above a
//!   per-superstep message volume threshold ([`route_parts`]) — replacing
//!   the legacy fixed `PARALLEL_THRESHOLD = 128`. Parallel and serial paths
//!   agree bit for bit.

use crate::mailbox::{
    clear_after_parallel_scatter, route_parallel, route_serial, Arena, ChunkStage, Inbox,
};
use crate::program::{Ctx, Envelope, Program};
use nob_core::folding::message_allowed;
use nob_core::metrics::{CommTrace, DegreeCounters, TraceBuilder};
use nob_core::model::log2_exact;
use nob_core::ModelError;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Execute VPs of a superstep in parallel (the engine falls back to
    /// serial execution when the machine is too small for the worker pool;
    /// see the module docs on adaptive thresholds).
    pub parallel: bool,
    /// Check the i-superstep cluster constraint on every message.
    pub validate: bool,
    /// Keep the raw per-superstep message log — `(src VP, dst VP)` for
    /// [`run`], `(src proc, dst proc)` of processor-external messages for
    /// [`run_folded`] — needed by the ascend–descend protocol rewriter;
    /// costs memory proportional to the total message volume.
    pub collect_messages: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { parallel: true, validate: true, collect_messages: false }
    }
}

impl RunOptions {
    /// Options for metric-collection runs that also keep the message log.
    pub fn with_log() -> Self {
        RunOptions { collect_messages: true, ..Default::default() }
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone)]
pub struct RunResult<S> {
    /// Final per-VP states (index = VP id; for folded runs, VP states are
    /// still reported per VP, grouped under their owning processor).
    pub states: Vec<S>,
    /// The communication trace (granularity `v` for [`run`], granularity `p`
    /// for [`run_folded`]).
    pub trace: CommTrace,
    /// Raw message log (one entry per recorded superstep) when requested.
    pub message_log: Option<Vec<Vec<(u32, u32)>>>,
}

/// Minimum VPs per worker for the execution phase to parallelize: chunk
/// dispatch costs a queue round-trip per worker, so tiny machines run
/// serially no matter the pool width.
const MIN_VPS_PER_WORKER: usize = 64;

/// Minimum staged messages per worker for the scatter to parallelize: each
/// worker scans the whole staging buffer, so the copy saved per worker must
/// dominate the extra scan bandwidth.
const MIN_MSGS_PER_ROUTE_WORKER: usize = 16 * 1024;

/// Number of execution chunks for a machine of `v` VPs: one per pool worker
/// when each worker gets at least [`MIN_VPS_PER_WORKER`] VPs, else 1
/// (serial). Replaces the legacy fixed `PARALLEL_THRESHOLD = 128`.
fn exec_chunks(v: usize, parallel: bool) -> usize {
    if !parallel {
        return 1;
    }
    let workers = rayon::current_num_threads();
    if workers < 2 || v < 2 * MIN_VPS_PER_WORKER {
        return 1;
    }
    workers.min(v / MIN_VPS_PER_WORKER).max(1)
}

/// Number of scatter partitions for a superstep that staged `msgs` messages.
fn route_parts(msgs: usize, parallel: bool) -> usize {
    if !parallel {
        return 1;
    }
    let workers = rayon::current_num_threads();
    if workers < 2 || msgs < 2 * MIN_MSGS_PER_ROUTE_WORKER {
        return 1;
    }
    workers.min(msgs / MIN_MSGS_PER_ROUTE_WORKER).max(1)
}

/// The metric granularity of a run.
enum Fold {
    /// Record at VP granularity: every fold level, internal messages count.
    Full,
    /// Record at processor granularity `p < v`: levels `1..=log p`, only
    /// supersteps with `label < log p`, only processor-external messages.
    Folded { log_p: u32 },
}

/// Executes `prog` at full granularity on `M(v)`.
///
/// `states` must hold exactly one state per VP. The returned trace records,
/// for each superstep, the degree of every folding `M(2^j)`, so that
/// `H(n, 2^j, σ)` and `D(n, p, g, ℓ)` can be evaluated analytically afterward.
pub fn run<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: Vec<S>,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    run_core(prog, states, Fold::Full, opts)
}

/// Executes the *folding* of `prog` on `M(p)` with `p ≤ v`: processor `r`
/// carries out the work of the `v/p` consecutively numbered VPs starting at
/// `r·v/p` (Section 2 of the paper).
///
/// Supersteps with label `≥ log p` become local computation: they are still
/// executed (the VP closures run and their messages are delivered — all
/// destinations are then within the same processor) but produce no superstep
/// record, exactly as in the paper's folding semantics. The returned trace
/// has granularity `p`. When `opts.collect_messages` is set, the log carries
/// one entry per *recorded* superstep holding the processor-external
/// `(src proc, dst proc)` pairs at granularity `p`, aligned with
/// `trace.steps` for the protocol rewriter.
pub fn run_folded<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: Vec<S>,
    p: usize,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    if !p.is_power_of_two() || p < 2 || p > v {
        return Err(ModelError::BadFold { p, v });
    }
    run_core(prog, states, Fold::Folded { log_p: log2_exact(p) }, opts)
}

fn run_core<S: Send, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    fold: Fold,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    assert_eq!(states.len(), v, "one state per VP required");
    let (gran, levels, mut counters) = match fold {
        Fold::Full => (v, log_v, DegreeCounters::full(log_v)),
        Fold::Folded { log_p } => (1usize << log_p, log_p, DegreeCounters::folded(log_v, log_p)),
    };
    // Shift from VP ids to metric-granularity processor ids.
    let gran_shift = log_v - levels;

    let n_chunks = exec_chunks(v, opts.parallel);
    let chunk_vps = v.div_ceil(n_chunks);
    let mut stages: Vec<ChunkStage<M>> = (0..n_chunks).map(|_| ChunkStage::new(chunk_vps)).collect();
    let mut arenas = [Arena::<M>::new(v), Arena::<M>::new(v)];
    let mut read_idx = 0usize;
    let mut dst_counts = vec![0u32; v];
    let mut cursors = vec![0u32; v];

    let mut trace = TraceBuilder::new(gran, prog.n(), prog.steps().len());
    let mut message_log = opts.collect_messages.then(|| Vec::with_capacity(prog.steps().len()));

    for step in prog.steps() {
        // --- computation + send phase -----------------------------------
        {
            let read = &mut arenas[read_idx];
            let (slab, offsets) = read.take_read();
            if n_chunks == 1 {
                exec_chunk(prog, step, 0, v, &mut states, slab, offsets, &mut stages[0]);
            } else {
                rayon::scope(|s| {
                    let mut slab_rest = slab;
                    let mut states_rest = &mut states[..];
                    for (ci, stage) in stages.iter_mut().enumerate() {
                        let vp_lo = ci * chunk_vps;
                        let vp_hi = (vp_lo + chunk_vps).min(v);
                        if vp_lo >= vp_hi {
                            break;
                        }
                        let cut = (offsets[vp_hi] - offsets[vp_lo]) as usize;
                        let taken = std::mem::take(&mut slab_rest);
                        let (chunk_slab, rest) = taken.split_at_mut(cut);
                        slab_rest = rest;
                        let taken = std::mem::take(&mut states_rest);
                        let (chunk_states, rest) = taken.split_at_mut(vp_hi - vp_lo);
                        states_rest = rest;
                        let chunk_offsets = &offsets[vp_lo..=vp_hi];
                        s.spawn(move |_| {
                            exec_chunk(
                                prog,
                                step,
                                vp_lo,
                                vp_hi - vp_lo,
                                chunk_states,
                                chunk_slab,
                                chunk_offsets,
                                stage,
                            );
                        });
                    }
                });
            }
        }

        // --- streaming validation + metrics + routing counts (one pass) ---
        let record_step = step.label < levels;
        counters.begin_superstep();
        dst_counts.fill(0);
        let mut step_log: Option<Vec<(u32, u32)>> =
            (message_log.is_some() && record_step).then(Vec::new);
        for (ci, stage) in stages.iter().enumerate() {
            let vp_lo = ci * chunk_vps;
            let mut msg_idx = 0usize;
            for (i, &end) in stage.vp_ends.iter().enumerate() {
                let src = vp_lo + i;
                for (dst, env) in &stage.outbox.msgs[msg_idx..end as usize] {
                    let dst = *dst as usize;
                    if opts.validate {
                        if dst >= v {
                            return Err(ModelError::BadParameter {
                                what: "dst",
                                reason: "message destination out of machine range",
                            });
                        }
                        if !message_allowed(src, dst, log_v, step.label) {
                            return Err(ModelError::ClusterViolation {
                                label: step.label,
                                src,
                                dst,
                            });
                        }
                    }
                    if record_step {
                        counters.record(src, dst);
                    }
                    if let Some(log) = step_log.as_mut() {
                        match fold {
                            Fold::Full => log.push((src as u32, dst as u32)),
                            Fold::Folded { .. } => {
                                let (ps, pd) = (src >> gran_shift, dst >> gran_shift);
                                if ps != pd {
                                    log.push((ps as u32, pd as u32));
                                }
                            }
                        }
                    }
                    if matches!(env, Envelope::Data(_)) {
                        // Saturating: a wrapped count would mis-size the
                        // arena; saturation instead trips the scatter's
                        // capacity assert (2^32 - 1 messages is the limit).
                        dst_counts[dst] = dst_counts[dst].saturating_add(1);
                    }
                }
                msg_idx = end as usize;
            }
        }
        if record_step {
            trace.push_superstep(step.label, &counters);
            if let (Some(log), Some(step_log)) = (message_log.as_mut(), step_log) {
                log.push(step_log);
            }
        }

        // --- routing (messages become visible next superstep) --------------
        {
            let write = &mut arenas[1 - read_idx];
            let total = write.prepare_write(&dst_counts, &mut cursors);
            let parts = route_parts(total, opts.parallel);
            let (slab, offsets) = write.split_for_scatter(total);
            if parts <= 1 {
                route_serial(&mut stages, &mut cursors, slab);
            } else {
                route_parallel(&stages, offsets, &mut cursors, slab, parts);
                clear_after_parallel_scatter(&mut stages);
            }
            write.commit_write(total);
        }
        read_idx = 1 - read_idx;
    }

    Ok(RunResult { states, trace: trace.finish(), message_log })
}

/// Runs the superstep closure for every VP of one chunk, carving per-VP
/// inboxes out of the chunk's slab segment and staging sends contiguously.
#[allow(clippy::too_many_arguments)]
fn exec_chunk<S, M>(
    prog: &Program<S, M>,
    step: &crate::program::Superstep<S, M>,
    vp_lo: usize,
    vp_count: usize,
    states: &mut [S],
    slab: &mut [std::mem::MaybeUninit<M>],
    offsets: &[u32],
    stage: &mut ChunkStage<M>,
) {
    stage.reset();
    let v = prog.v();
    let log_v = prog.log_v();
    let n = prog.n();
    let base = offsets[0];
    debug_assert_eq!((offsets[vp_count] - base) as usize, slab.len());
    let mut slab_rest = slab;
    for (i, state) in states.iter_mut().take(vp_count).enumerate() {
        let len = (offsets[i + 1] - offsets[i]) as usize;
        let taken = std::mem::take(&mut slab_rest);
        let (mine, rest) = taken.split_at_mut(len);
        slab_rest = rest;
        let mut inbox = Inbox::over_slab(mine);
        stage.outbox.begin_vp();
        let ctx = Ctx { vp: vp_lo + i, v, log_v, n };
        (step.exec)(state, &ctx, &mut inbox, &mut stage.outbox);
        stage.vp_ends.push(stage.outbox.msgs.len() as u32);
        // `inbox` drops here: unconsumed messages are discarded.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cluster-halving broadcast: in superstep i the first VP of each
    /// i-cluster forwards the value to the first VP of the sibling
    /// (i+1)-cluster. log v supersteps with labels 0, 1, …, log v − 1.
    fn broadcast_program(v: usize) -> Program<Option<u64>, u64> {
        let mut p: Program<Option<u64>, u64> = Program::new(v, v);
        let log_v = p.log_v();
        for i in 0..log_v {
            p.step(i, "bcast", move |state, ctx, inbox, out| {
                if let Some(m) = inbox.pop() {
                    *state = Some(m);
                }
                let cluster = ctx.v >> i;
                if ctx.vp % cluster == 0 {
                    if let Some(val) = *state {
                        out.send(ctx.vp + cluster / 2, val);
                    }
                }
            });
        }
        // Messages sent in the last round are only visible after its barrier:
        // consume them in a final (cheap, innermost-label) superstep.
        p.step(log_v - 1, "consume", |state, _, inbox, _| {
            if let Some(m) = inbox.pop() {
                *state = Some(m);
            }
        });
        p
    }

    #[test]
    fn broadcast_reaches_cluster_leaders() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(99);
        let res = run(&broadcast_program(v), states, &RunOptions::default()).unwrap();
        // After log v rounds every cluster leader (here: every even-indexed
        // chain) has the value; with v = 16 all VPs that are the first of
        // some cluster at some level got it: 0, 8, 4, 12, 2, 6, 10, 14, odds.
        let got: Vec<usize> = res.states.iter().enumerate().filter(|(_, s)| s.is_some()).map(|(i, _)| i).collect();
        assert_eq!(got.len(), 16, "all VPs reached: {got:?}");
        // Metrics: one i-superstep per level plus the silent consume step.
        assert_eq!(res.trace.superstep_count(), 5);
        assert_eq!(res.trace.s_counts(), vec![1, 1, 1, 2]);
        let m = res.trace.fold(16);
        assert_eq!(m.f, vec![1, 1, 1, 1]);
        // At fold 2 only the label-0 superstep communicates.
        let m2 = res.trace.fold(2);
        assert_eq!(m2.f, vec![1]);
        assert_eq!(m2.s, vec![1]);
    }

    #[test]
    fn folded_run_matches_full_run() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(7);
        let prog = broadcast_program(v);
        let full = run(&prog, states.clone(), &RunOptions::default()).unwrap();
        for p in [2usize, 4, 8, 16] {
            let folded = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            // Same outputs...
            assert_eq!(folded.states, full.states, "states diverge at p = {p}");
            // ...and metrics matching the analytic fold at every sub-level.
            let mut q = 2;
            while q <= p {
                assert_eq!(
                    folded.trace.fold(q),
                    full.trace.fold(q),
                    "fold metrics diverge at p = {p}, q = {q}"
                );
                q *= 2;
            }
        }
    }

    #[test]
    fn cluster_violations_are_caught() {
        let mut p: Program<(), u32> = Program::new(8, 8);
        // A label-2 superstep trying to cross the bisection.
        p.step(2, "bad", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(7, 1);
            }
        });
        let err = match run(&p, vec![(); 8], &RunOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("expected a cluster violation"),
        };
        assert!(matches!(err, ModelError::ClusterViolation { label: 2, src: 0, dst: 7 }));
        // Without validation the engine lets it pass (for experiments).
        let opts = RunOptions { validate: false, ..Default::default() };
        assert!(run(&p, vec![(); 8], &opts).is_ok());
    }

    #[test]
    fn dummies_count_in_metrics_but_are_not_delivered() {
        let mut p: Program<u64, u64> = Program::new(4, 4);
        p.step(0, "dummy-send", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send_dummy(2);
            }
        });
        p.step(0, "count-inbox", |state, _, inbox, _| {
            *state = inbox.len() as u64;
        });
        let res = run(&p, vec![0; 4], &RunOptions::default()).unwrap();
        assert_eq!(res.states, vec![0, 0, 0, 0], "dummy delivered?");
        assert_eq!(res.trace.steps[0].total_msgs, 1);
        assert_eq!(res.trace.steps[0].h(1), 1);
    }

    #[test]
    fn message_log_records_raw_edges() {
        let mut p: Program<(), u8> = Program::new(4, 4);
        p.step(0, "x", |_, ctx, _, out| {
            if ctx.vp < 2 {
                out.send(ctx.vp + 2, 1);
            }
        });
        let res = run(&p, vec![(); 4], &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        assert_eq!(log, vec![vec![(0, 2), (1, 3)]]);
    }

    #[test]
    fn folded_message_log_is_processor_granularity() {
        let mut p: Program<(), u8> = Program::new(8, 8);
        // Label 0: VP0 -> VP7 crosses every boundary; VP4 -> VP5 is internal
        // at p = 2 and p = 4... VP4 and VP5 share the top two bits of three.
        p.step(0, "far", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(7, 1);
            }
            if ctx.vp == 4 {
                out.send(5, 1);
            }
        });
        // Label 2: local at p = 4, produces no record and no log entry.
        p.step(2, "near", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(1, 1);
            }
        });
        let res = run_folded(&p, vec![(); 8], 4, &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        assert_eq!(res.trace.superstep_count(), 1);
        assert_eq!(log.len(), res.trace.superstep_count(), "log aligns with trace");
        // VP0 -> VP7 becomes proc 0 -> proc 3; VP4 -> VP5 is internal to
        // proc 2 and is not logged.
        assert_eq!(log[0], vec![(0, 3)]);
    }

    #[test]
    fn inbox_is_cleared_between_supersteps() {
        let mut p: Program<Vec<u64>, u64> = Program::new(4, 4);
        p.step(0, "send", |_, ctx, _, out| out.send(ctx.vp ^ 1, ctx.vp as u64));
        p.step(0, "recv", |state, _, inbox, _| state.extend(inbox.drain(..)));
        p.step(0, "recv-again", |state, _, inbox, _| state.extend(inbox.drain(..)));
        let res = run(&p, vec![Vec::new(); 4], &RunOptions::default()).unwrap();
        // Each VP received exactly one message, in the second superstep only.
        assert!(res.states.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn arena_engine_matches_reference_engine() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(41);
        let prog = broadcast_program(v);
        let arena = run(&prog, states.clone(), &RunOptions::with_log()).unwrap();
        let legacy =
            crate::reference::run_reference(&prog, states.clone(), &RunOptions::with_log())
                .unwrap();
        assert_eq!(arena.states, legacy.states);
        assert_eq!(arena.trace, legacy.trace);
        assert_eq!(arena.message_log, legacy.message_log);
        for p in [2usize, 4, 8] {
            let a = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            let l = crate::reference::run_folded_reference(
                &prog,
                states.clone(),
                p,
                &RunOptions::default(),
            )
            .unwrap();
            assert_eq!(a.states, l.states, "folded states diverge at p = {p}");
            assert_eq!(a.trace, l.trace, "folded trace diverges at p = {p}");
        }
    }
}
