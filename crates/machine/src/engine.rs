//! The superstep execution engine: full-granularity and folded runs.

use crate::program::{validate_outbox, Ctx, Envelope, Outbox, Program};
use nob_core::metrics::{CommTrace, SuperstepRecord};
use nob_core::model::log2_exact;
use nob_core::ModelError;
use rayon::prelude::*;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Execute VPs of a superstep in parallel with rayon (the engine falls
    /// back to serial execution for machines smaller than 128 VPs).
    pub parallel: bool,
    /// Check the i-superstep cluster constraint on every message.
    pub validate: bool,
    /// Keep the raw per-superstep message log `(src, dst)` — needed by the
    /// ascend–descend protocol rewriter; costs memory proportional to the
    /// total message volume.
    pub collect_messages: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { parallel: true, validate: true, collect_messages: false }
    }
}

impl RunOptions {
    /// Options for metric-collection runs that also keep the message log.
    pub fn with_log() -> Self {
        RunOptions { collect_messages: true, ..Default::default() }
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone)]
pub struct RunResult<S> {
    /// Final per-VP states (index = VP id; for folded runs, VP states are
    /// still reported per VP, grouped under their owning processor).
    pub states: Vec<S>,
    /// The communication trace (granularity `v` for [`run`], granularity `p`
    /// for [`run_folded`]).
    pub trace: CommTrace,
    /// Raw message log (one entry per superstep) when requested.
    pub message_log: Option<Vec<Vec<(u32, u32)>>>,
}

const PARALLEL_THRESHOLD: usize = 128;

/// Executes `prog` at full granularity on `M(v)`.
///
/// `states` must hold exactly one state per VP. The returned trace records,
/// for each superstep, the degree of every folding `M(2^j)`, so that
/// `H(n, 2^j, σ)` and `D(n, p, g, ℓ)` can be evaluated analytically afterward.
pub fn run<S: Send, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    assert_eq!(states.len(), v, "one state per VP required");
    let mut inboxes: Vec<Vec<M>> = (0..v).map(|_| Vec::new()).collect();
    let mut trace = CommTrace::new(v, prog.n());
    let mut message_log = opts.collect_messages.then(Vec::new);

    for step in prog.steps() {
        // --- computation + send phase -----------------------------------
        let run_one = |vp: usize, state: &mut S, inbox: &mut Vec<M>| -> Vec<(usize, Envelope<M>)> {
            let ctx = Ctx { vp, v, log_v, n: prog.n() };
            let mut out = Outbox::new();
            (step.exec)(state, &ctx, inbox, &mut out);
            inbox.clear();
            out.msgs
        };
        let outboxes: Vec<Vec<(usize, Envelope<M>)>> = if opts.parallel && v >= PARALLEL_THRESHOLD
        {
            states
                .par_iter_mut()
                .zip(inboxes.par_iter_mut())
                .enumerate()
                .map(|(vp, (state, inbox))| run_one(vp, state, inbox))
                .collect()
        } else {
            states
                .iter_mut()
                .zip(inboxes.iter_mut())
                .enumerate()
                .map(|(vp, (state, inbox))| run_one(vp, state, inbox))
                .collect()
        };

        // --- validation ---------------------------------------------------
        if opts.validate {
            for (src, out) in outboxes.iter().enumerate() {
                let shim = Outbox { msgs: out.iter().map(|(d, _)| (*d, Envelope::Dummy)).collect() };
                validate_outbox::<M>(src, step.label, log_v, v, &shim)?;
            }
        }

        // --- metrics -------------------------------------------------------
        let edges: Vec<(usize, usize, u64)> = outboxes
            .iter()
            .enumerate()
            .flat_map(|(src, out)| out.iter().map(move |(dst, _)| (src, *dst, 1)))
            .collect();
        trace.steps.push(SuperstepRecord::from_counted_edges(step.label, log_v, &edges));
        if let Some(log) = message_log.as_mut() {
            log.push(edges.iter().map(|&(s, d, _)| (s as u32, d as u32)).collect());
        }

        // --- routing (messages become visible next superstep) --------------
        for (_, out) in outboxes.into_iter().enumerate() {
            for (dst, env) in out {
                if let Envelope::Data(m) = env {
                    inboxes[dst].push(m);
                }
            }
        }
    }

    Ok(RunResult { states, trace, message_log })
}

/// Executes the *folding* of `prog` on `M(p)` with `p ≤ v`: processor `r`
/// carries out the work of the `v/p` consecutively numbered VPs starting at
/// `r·v/p` (Section 2 of the paper).
///
/// Supersteps with label `≥ log p` become local computation: they are still
/// executed (the VP closures run and their messages are delivered — all
/// destinations are then within the same processor) but produce no superstep
/// record, exactly as in the paper's folding semantics. The returned trace
/// has granularity `p`.
pub fn run_folded<S: Send, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    p: usize,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    if !p.is_power_of_two() || p < 2 || p > v {
        return Err(ModelError::BadFold { p, v });
    }
    let log_p = log2_exact(p);
    let width = v / p;
    assert_eq!(states.len(), v, "one state per VP required");
    let mut inboxes: Vec<Vec<M>> = (0..v).map(|_| Vec::new()).collect();
    let mut trace = CommTrace::new(p, prog.n());

    for step in prog.steps() {
        // Each processor executes its VP block sequentially (in VP order).
        let run_block = |proc: usize,
                         block: &mut [S],
                         inbox_block: &mut [Vec<M>]|
         -> Vec<Vec<(usize, Envelope<M>)>> {
            let mut outs = Vec::with_capacity(width);
            for off in 0..width {
                let vp = proc * width + off;
                let ctx = Ctx { vp, v, log_v, n: prog.n() };
                let mut out = Outbox::new();
                (step.exec)(&mut block[off], &ctx, &mut inbox_block[off], &mut out);
                inbox_block[off].clear();
                outs.push(out.msgs);
            }
            outs
        };
        let outboxes: Vec<Vec<Vec<(usize, Envelope<M>)>>> = if opts.parallel && p >= 2 && v >= PARALLEL_THRESHOLD {
            states
                .par_chunks_mut(width)
                .zip(inboxes.par_chunks_mut(width))
                .enumerate()
                .map(|(proc, (block, inb))| run_block(proc, block, inb))
                .collect()
        } else {
            states
                .chunks_mut(width)
                .zip(inboxes.chunks_mut(width))
                .enumerate()
                .map(|(proc, (block, inb))| run_block(proc, block, inb))
                .collect()
        };

        if opts.validate {
            for (proc, outs) in outboxes.iter().enumerate() {
                for (off, out) in outs.iter().enumerate() {
                    let src = proc * width + off;
                    let shim =
                        Outbox { msgs: out.iter().map(|(d, _)| (*d, Envelope::Dummy)).collect() };
                    validate_outbox::<M>(src, step.label, log_v, v, &shim)?;
                }
            }
        }

        // Metrics at granularity p, only while the superstep communicates.
        if step.label < log_p {
            let edges: Vec<(usize, usize, u64)> = outboxes
                .iter()
                .enumerate()
                .flat_map(|(proc, outs)| {
                    outs.iter().flat_map(move |out| {
                        out.iter().map(move |(dst, _)| (proc, dst / width, 1))
                    })
                })
                .filter(|(ps, pd, _)| ps != pd)
                .collect();
            trace.steps.push(SuperstepRecord::from_counted_edges(step.label, log_p, &edges));
        }

        for outs in outboxes {
            for out in outs {
                for (dst, env) in out {
                    if let Envelope::Data(m) = env {
                        inboxes[dst].push(m);
                    }
                }
            }
        }
    }

    Ok(RunResult { states, trace, message_log: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cluster-halving broadcast: in superstep i the first VP of each
    /// i-cluster forwards the value to the first VP of the sibling
    /// (i+1)-cluster. log v supersteps with labels 0, 1, …, log v − 1.
    fn broadcast_program(v: usize) -> Program<Option<u64>, u64> {
        let mut p: Program<Option<u64>, u64> = Program::new(v, v);
        let log_v = p.log_v();
        for i in 0..log_v {
            p.step(i, "bcast", move |state, ctx, inbox, out| {
                if let Some(m) = inbox.pop() {
                    *state = Some(m);
                }
                let cluster = ctx.v >> i;
                if ctx.vp % cluster == 0 {
                    if let Some(val) = *state {
                        out.send(ctx.vp + cluster / 2, val);
                    }
                }
            });
        }
        // Messages sent in the last round are only visible after its barrier:
        // consume them in a final (cheap, innermost-label) superstep.
        p.step(log_v - 1, "consume", |state, _, inbox, _| {
            if let Some(m) = inbox.pop() {
                *state = Some(m);
            }
        });
        p
    }

    #[test]
    fn broadcast_reaches_cluster_leaders() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(99);
        let res = run(&broadcast_program(v), states, &RunOptions::default()).unwrap();
        // After log v rounds every cluster leader (here: every even-indexed
        // chain) has the value; with v = 16 all VPs that are the first of
        // some cluster at some level got it: 0, 8, 4, 12, 2, 6, 10, 14, odds.
        let got: Vec<usize> = res.states.iter().enumerate().filter(|(_, s)| s.is_some()).map(|(i, _)| i).collect();
        assert_eq!(got.len(), 16, "all VPs reached: {got:?}");
        // Metrics: one i-superstep per level plus the silent consume step.
        assert_eq!(res.trace.superstep_count(), 5);
        assert_eq!(res.trace.s_counts(), vec![1, 1, 1, 2]);
        let m = res.trace.fold(16);
        assert_eq!(m.f, vec![1, 1, 1, 1]);
        // At fold 2 only the label-0 superstep communicates.
        let m2 = res.trace.fold(2);
        assert_eq!(m2.f, vec![1]);
        assert_eq!(m2.s, vec![1]);
    }

    #[test]
    fn folded_run_matches_full_run() {
        let v = 16;
        let mut states = vec![None; v];
        states[0] = Some(7);
        let prog = broadcast_program(v);
        let full = run(&prog, states.clone(), &RunOptions::default()).unwrap();
        for p in [2usize, 4, 8, 16] {
            let folded = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            // Same outputs...
            assert_eq!(folded.states, full.states, "states diverge at p = {p}");
            // ...and metrics matching the analytic fold at every sub-level.
            let mut q = 2;
            while q <= p {
                assert_eq!(
                    folded.trace.fold(q),
                    full.trace.fold(q),
                    "fold metrics diverge at p = {p}, q = {q}"
                );
                q *= 2;
            }
        }
    }

    #[test]
    fn cluster_violations_are_caught() {
        let mut p: Program<(), u32> = Program::new(8, 8);
        // A label-2 superstep trying to cross the bisection.
        p.step(2, "bad", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send(7, 1);
            }
        });
        let err = match run(&p, vec![(); 8], &RunOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("expected a cluster violation"),
        };
        assert!(matches!(err, ModelError::ClusterViolation { label: 2, src: 0, dst: 7 }));
        // Without validation the engine lets it pass (for experiments).
        let opts = RunOptions { validate: false, ..Default::default() };
        assert!(run(&p, vec![(); 8], &opts).is_ok());
    }

    #[test]
    fn dummies_count_in_metrics_but_are_not_delivered() {
        let mut p: Program<u64, u64> = Program::new(4, 4);
        p.step(0, "dummy-send", |_, ctx, _, out| {
            if ctx.vp == 0 {
                out.send_dummy(2);
            }
        });
        p.step(0, "count-inbox", |state, _, inbox, _| {
            *state = inbox.len() as u64;
        });
        let res = run(&p, vec![0; 4], &RunOptions::default()).unwrap();
        assert_eq!(res.states, vec![0, 0, 0, 0], "dummy delivered?");
        assert_eq!(res.trace.steps[0].total_msgs, 1);
        assert_eq!(res.trace.steps[0].h(1), 1);
    }

    #[test]
    fn message_log_records_raw_edges() {
        let mut p: Program<(), u8> = Program::new(4, 4);
        p.step(0, "x", |_, ctx, _, out| {
            if ctx.vp < 2 {
                out.send(ctx.vp + 2, 1);
            }
        });
        let res = run(&p, vec![(); 4], &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        assert_eq!(log, vec![vec![(0, 2), (1, 3)]]);
    }

    #[test]
    fn inbox_is_cleared_between_supersteps() {
        let mut p: Program<Vec<u64>, u64> = Program::new(4, 4);
        p.step(0, "send", |_, ctx, _, out| out.send(ctx.vp ^ 1, ctx.vp as u64));
        p.step(0, "recv", |state, _, inbox, _| state.extend(inbox.drain(..)));
        p.step(0, "recv-again", |state, _, inbox, _| state.extend(inbox.drain(..)));
        let res = run(&p, vec![Vec::new(); 4], &RunOptions::default()).unwrap();
        // Each VP received exactly one message, in the second superstep only.
        assert!(res.states.iter().all(|s| s.len() == 1));
    }
}
