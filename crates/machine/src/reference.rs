//! The legacy (pre-arena) engine, preserved verbatim in structure: one
//! `Vec` outbox per VP per superstep, per-VP inbox vectors, edge-list
//! materialization and `SuperstepRecord::from_counted_edges` metrics.
//!
//! It exists for two reasons:
//!
//! 1. **Differential testing** — the arena engine must produce bit-for-bit
//!    identical states, traces and message logs; the property tests in
//!    `tests/engine_properties.rs` compare the two on random programs.
//! 2. **Benchmarking** — `exp_engine_throughput` measures the arena engine's
//!    speedup against this baseline (`BENCH_engine.json`).
//!
//! Its per-superstep costs (the reason it was replaced): `v` outbox
//! allocations, one `(src, dst, 1)` tuple per message, `O(v)` zeroed scratch
//! per fold level inside `from_counted_edges`, plus an allocation per
//! delivered-to VP for the inbox handoff.

use crate::engine::{RunOptions, RunResult};
use crate::mailbox::Inbox;
use crate::program::{validate_outbox, Envelope, Outbox, Program};
use nob_core::metrics::{CommTrace, SuperstepRecord};
use nob_core::model::log2_exact;
use nob_core::ModelError;

/// The legacy engine's fixed parallelism cutoff.
const PARALLEL_THRESHOLD: usize = 128;

/// Executes one VP: delivers the inbox, runs the closure, returns the
/// staged messages.
fn run_one<S, M>(
    prog: &Program<S, M>,
    step: &crate::program::Superstep<S, M>,
    vp: usize,
    state: &mut S,
    inbox: &mut Vec<M>,
) -> Vec<(u32, Envelope<M>)> {
    let ctx = crate::program::Ctx { vp, v: prog.v(), log_v: prog.log_v(), n: prog.n() };
    let mut out = Outbox::new();
    let mut ib = Inbox::over_vec(inbox);
    (step.exec)(state, &ctx, &mut ib, &mut out);
    drop(ib);
    inbox.clear();
    // allow-panic: the legacy baseline keeps its historical panic on an
    // out-of-u32-range destination (the arena engine reports a ModelError).
    assert!(!out.oob_dst, "destination id exceeds u32 range");
    out.msgs
}

/// Runs the computation + send phase for every VP, optionally in parallel
/// over contiguous chunks, writing each VP's outbox into `outboxes`.
fn exec_phase<S: Send, M: Send>(
    prog: &Program<S, M>,
    step: &crate::program::Superstep<S, M>,
    states: &mut [S],
    inboxes: &mut [Vec<M>],
    outboxes: &mut [Vec<(u32, Envelope<M>)>],
    parallel: bool,
) {
    let v = prog.v();
    if parallel && v >= PARALLEL_THRESHOLD && rayon::current_num_threads() > 1 {
        let chunk = v.div_ceil(rayon::current_num_threads());
        rayon::scope(|s| {
            let mut st = states;
            let mut ib = inboxes;
            let mut ob = outboxes;
            let mut vp_lo = 0usize;
            while !st.is_empty() {
                let take = chunk.min(st.len());
                let (st_c, st_r) = std::mem::take(&mut st).split_at_mut(take);
                st = st_r;
                let (ib_c, ib_r) = std::mem::take(&mut ib).split_at_mut(take);
                ib = ib_r;
                let (ob_c, ob_r) = std::mem::take(&mut ob).split_at_mut(take);
                ob = ob_r;
                let lo = vp_lo;
                s.spawn(move |_| {
                    for i in 0..take {
                        ob_c[i] = run_one(prog, step, lo + i, &mut st_c[i], &mut ib_c[i]);
                    }
                });
                vp_lo += take;
            }
        });
    } else {
        for vp in 0..v {
            outboxes[vp] = run_one(prog, step, vp, &mut states[vp], &mut inboxes[vp]);
        }
    }
}

/// Legacy full-granularity execution (see the module docs). Semantically
/// identical to [`crate::engine::run`].
pub fn run_reference<S: Send, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    assert_eq!(states.len(), v, "one state per VP required");
    let mut inboxes: Vec<Vec<M>> = (0..v).map(|_| Vec::new()).collect();
    let mut trace = CommTrace::new(v, prog.n());
    let mut message_log = opts.collect_messages.then(Vec::new);

    for step in prog.steps() {
        let mut outboxes: Vec<Vec<(u32, Envelope<M>)>> = (0..v).map(|_| Vec::new()).collect();
        exec_phase(prog, step, &mut states, &mut inboxes, &mut outboxes, opts.parallel);

        if opts.validate {
            for (src, out) in outboxes.iter().enumerate() {
                let shim = Outbox {
                    msgs: out.iter().map(|&(d, _)| (d, Envelope::Dummy)).collect(),
                    vp_start: 0,
                    direct: None,
                    cur_vp: 0,
                    oob_dst: false,
                };
                validate_outbox::<M>(src, step.label, log_v, v, &shim)?;
            }
        }

        let edges: Vec<(usize, usize, u64)> = outboxes
            .iter()
            .enumerate()
            .flat_map(|(src, out)| out.iter().map(move |&(dst, _)| (src, dst as usize, 1)))
            .collect();
        trace.steps.push(SuperstepRecord::from_counted_edges(step.label, log_v, &edges));
        if let Some(log) = message_log.as_mut() {
            log.push(edges.iter().map(|&(s, d, _)| (s as u32, d as u32)).collect());
        }

        for out in outboxes {
            for (dst, env) in out {
                if let Envelope::Data(m) = env {
                    inboxes[dst as usize].push(m);
                }
            }
        }
    }

    Ok(RunResult { states, trace, message_log, fallback: None })
}

/// Legacy folded execution. Semantically identical to
/// [`crate::engine::run_folded`], except that `collect_messages` is ignored
/// (the historical behavior this PR's satellite fix addressed; kept so the
/// differential tests pin the *fixed* semantics against the arena engine's).
pub fn run_folded_reference<S: Send, M: Send>(
    prog: &Program<S, M>,
    mut states: Vec<S>,
    p: usize,
    opts: &RunOptions,
) -> Result<RunResult<S>, ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    if !p.is_power_of_two() || p < 2 || p > v {
        return Err(ModelError::BadFold { p, v });
    }
    let log_p = log2_exact(p);
    let width = v / p;
    assert_eq!(states.len(), v, "one state per VP required");
    let mut inboxes: Vec<Vec<M>> = (0..v).map(|_| Vec::new()).collect();
    let mut trace = CommTrace::new(p, prog.n());

    for step in prog.steps() {
        let mut outboxes: Vec<Vec<(u32, Envelope<M>)>> = (0..v).map(|_| Vec::new()).collect();
        exec_phase(prog, step, &mut states, &mut inboxes, &mut outboxes, opts.parallel);

        if opts.validate {
            for (src, out) in outboxes.iter().enumerate() {
                let shim = Outbox {
                    msgs: out.iter().map(|&(d, _)| (d, Envelope::Dummy)).collect(),
                    vp_start: 0,
                    direct: None,
                    cur_vp: 0,
                    oob_dst: false,
                };
                validate_outbox::<M>(src, step.label, log_v, v, &shim)?;
            }
        }

        if step.label < log_p {
            let edges: Vec<(usize, usize, u64)> = outboxes
                .iter()
                .enumerate()
                .flat_map(|(src, out)| {
                    out.iter().map(move |&(dst, _)| (src / width, dst as usize / width, 1))
                })
                .filter(|(ps, pd, _)| ps != pd)
                .collect();
            trace.steps.push(SuperstepRecord::from_counted_edges(step.label, log_p, &edges));
        }

        for out in outboxes {
            for (dst, env) in out {
                if let Envelope::Data(m) = env {
                    inboxes[dst as usize].push(m);
                }
            }
        }
    }

    Ok(RunResult { states, trace, message_log: None, fallback: None })
}
