//! The ascend–descend protocol of Section 5.
//!
//! Executing a network-oblivious algorithm on a D-BSP with the *standard*
//! protocol sends every message directly, which can be severely unbalanced
//! (the paper's example: one 0-superstep in which VP0 sends n messages to
//! VP_{v/2} costs `n·g_0`). The ascend–descend protocol instead executes each
//! `i`-superstep `s` as:
//!
//! 1. **Computation phase** — local work (no communication supersteps);
//! 2. **Ascend phase** — for `k = log p − 1` down to `i + 1`: within each
//!    k-cluster, the messages originating in the cluster but destined outside
//!    it are spread evenly over the cluster's `p/2^k` processors;
//! 3. **Descend phase** — for `k = i` to `log p − 1`: within each k-cluster,
//!    the messages residing in it are spread evenly over the processors of
//!    the (k+1)-clusters containing their destinations.
//!
//! Each iteration needs a prefix-like computation to assign intermediate
//! destinations; per Lemma 5.1 this costs `O(log p)` k-supersteps of constant
//! degree plus one k-superstep of degree `O(2^k·h^s(n, 2^k)/p)`.
//!
//! [`ascend_descend`] *simulates the protocol exactly* on a recorded message
//! log: it tracks every message's holder through the phases (deterministic
//! round-robin balancing) and emits the induced supersteps — movement steps
//! with their true degrees plus binary-tree prefix steps of degree ≤ 1 — as a
//! new [`CommTrace`] at granularity `p`, ready for Eq. (2) evaluation.

use nob_core::folding::common_prefix;
use nob_core::metrics::{CommTrace, SuperstepRecord};
use nob_core::model::log2_exact;

/// One message being shepherded through the protocol.
#[derive(Debug, Clone, Copy)]
struct Shepherded {
    /// Source processor (at granularity p).
    src: usize,
    /// Destination processor.
    dst: usize,
    /// Current holder.
    holder: usize,
}

/// Emits the `2·log2(q)` binary-tree prefix supersteps (up-sweep + down-sweep)
/// performed in parallel by every k-cluster of size `q = p/2^k`.
///
/// With `telescoped = false` every round is a k-superstep, matching the
/// Lemma 5.1 accounting (`O(log p)` k-supersteps of constant degree). With
/// `telescoped = true`, round `t` — whose partners share all index bits
/// above `t+1` — is emitted at its deepest valid label `log p − t − 1`; on
/// machines with geometrically decaying `ℓ_i` the round costs then telescope
/// to `O(g_k + ℓ_k)`, which is the refinement the paper notes at the end of
/// Section 5 (sharpening Thm 5.3 by a `log p` factor).
fn push_prefix_steps(out: &mut CommTrace, label: u32, log_p: u32, p: usize, telescoped: bool) {
    let q = p >> label;
    if q < 2 {
        return;
    }
    let rounds = log2_exact(q);
    let round_label = |t: u32| if telescoped { log_p - t - 1 } else { label };
    // Up-sweep: at round t, processors at odd multiples of 2^t within their
    // cluster send one word to the partner 2^t below.
    for t in 0..rounds {
        let step = 1usize << (t + 1);
        let half = 1usize << t;
        let edges: Vec<(usize, usize, u64)> =
            (0..p).filter(|r| r % step == half).map(|r| (r, r - half, 1)).collect();
        out.steps.push(SuperstepRecord::from_counted_edges(round_label(t), log_p, &edges));
    }
    // Down-sweep: parents push partial sums back to the partner above.
    for t in (0..rounds).rev() {
        let step = 1usize << (t + 1);
        let half = 1usize << t;
        let edges: Vec<(usize, usize, u64)> =
            (0..p).filter(|r| r % step == 0).map(|r| (r, r + half, 1)).collect();
        out.steps.push(SuperstepRecord::from_counted_edges(round_label(t), log_p, &edges));
    }
}

/// Emits the movement superstep for a set of holder reassignments.
fn push_movement_step(
    out: &mut CommTrace,
    label: u32,
    log_p: u32,
    moves: impl Iterator<Item = (usize, usize)>,
) {
    let edges: Vec<(usize, usize, u64)> =
        moves.filter(|(a, b)| a != b).map(|(a, b)| (a, b, 1)).collect();
    out.steps.push(SuperstepRecord::from_counted_edges(label, log_p, &edges));
}

/// Rewrites an execution (communication trace + raw message log at VP
/// granularity) into the ascend–descend protocol execution on `p` processors,
/// with the prefix computations emitted exactly as Lemma 5.1 charges them
/// (`O(log p)` k-supersteps of constant degree per phase iteration).
///
/// The returned trace has granularity `p`; evaluate it with
/// [`CommTrace::comm_time`] against a D-BSP machine of `p` processors to
/// obtain the protocol's communication time (the quantity bounded by
/// Thm. 5.3).
///
/// # Panics
/// Panics if `p` is not a power of two in `[2, v]` or if the log length does
/// not match the trace.
pub fn ascend_descend(trace: &CommTrace, log: &[Vec<(u32, u32)>], p: usize) -> CommTrace {
    ascend_descend_with(trace, log, p, false)
}

/// Like [`ascend_descend`] but with telescoped prefix labels — the Section-5
/// closing refinement for machines whose `g_i`, `ℓ_i` decay geometrically
/// (e.g. meshes), where it improves the Thm 5.3 optimality loss from
/// `O(log² p̄)` to `O(log p̄)`.
pub fn ascend_descend_geometric(
    trace: &CommTrace,
    log: &[Vec<(u32, u32)>],
    p: usize,
) -> CommTrace {
    ascend_descend_with(trace, log, p, true)
}

fn ascend_descend_with(
    trace: &CommTrace,
    log: &[Vec<(u32, u32)>],
    p: usize,
    telescoped: bool,
) -> CommTrace {
    // allow-panic: analysis-harness API contract (offline protocol
    // replay, never the engine run path).
    assert!(p.is_power_of_two() && p >= 2 && (p as u64) <= (1u64 << trace.log_v));
    assert_eq!(trace.steps.len(), log.len(), "message log does not match trace");
    let log_v = trace.log_v;
    let log_p = log2_exact(p);
    let mut out = CommTrace::new(p, trace.n);

    for (step, msgs) in trace.steps.iter().zip(log) {
        let i = step.label;
        if i >= log_p {
            continue; // Local after folding: no communication supersteps.
        }
        // Map to processor granularity and keep only external messages.
        let mut live: Vec<Shepherded> = msgs
            .iter()
            .map(|&(s, d)| {
                let sp = (s as usize) >> (log_v - log_p);
                let dp = (d as usize) >> (log_v - log_p);
                Shepherded { src: sp, dst: dp, holder: sp }
            })
            .filter(|m| m.src != m.dst)
            .collect();

        // --- Ascend phase -------------------------------------------------
        for k in ((i + 1)..log_p).rev() {
            push_prefix_steps(&mut out, k, log_p, p, telescoped);
            let q = p >> k; // cluster size
            let mut rr = vec![0usize; 1usize << k]; // round-robin counters
            let mut moves = Vec::new();
            for m in live.iter_mut() {
                // Destined outside its k-cluster?
                if common_prefix(m.src, m.dst, log_p) < k {
                    let cluster = m.src >> (log_p - k);
                    let new_holder = cluster * q + rr[cluster] % q;
                    rr[cluster] += 1;
                    moves.push((m.holder, new_holder));
                    m.holder = new_holder;
                }
            }
            push_movement_step(&mut out, k, log_p, moves.into_iter());
        }

        // --- Descend phase ------------------------------------------------
        for k in i..log_p {
            push_prefix_steps(&mut out, k, log_p, p, telescoped);
            let moves: Vec<(usize, usize)> = if k + 1 == log_p {
                // Final hop: deliver to the exact destination processor.
                live.iter_mut()
                    .map(|m| {
                        let mv = (m.holder, m.dst);
                        m.holder = m.dst;
                        mv
                    })
                    .collect()
            } else {
                let q = p >> (k + 1); // size of the target (k+1)-clusters
                let mut rr = vec![0usize; 1usize << (k + 1)];
                live.iter_mut()
                    .map(|m| {
                        let cluster = m.dst >> (log_p - k - 1);
                        let new_holder = cluster * q + rr[cluster] % q;
                        rr[cluster] += 1;
                        let mv = (m.holder, new_holder);
                        m.holder = new_holder;
                        mv
                    })
                    .collect()
            };
            push_movement_step(&mut out, k, log_p, moves.into_iter());
        }

        debug_assert!(live.iter().all(|m| m.holder == m.dst), "protocol failed to deliver");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_core::machines;

    /// The Section-5 example: one 0-superstep where VP0 sends `n` messages to
    /// VP_{v/2}.
    fn single_sender(v: usize, n: u64) -> (CommTrace, Vec<Vec<(u32, u32)>>) {
        let log_v = log2_exact(v);
        let mut t = CommTrace::new(v, n as usize);
        let msgs: Vec<(u32, u32)> = (0..n).map(|_| (0u32, (v / 2) as u32)).collect();
        let edges: Vec<(usize, usize, u64)> = vec![(0, v / 2, n)];
        t.steps.push(SuperstepRecord::from_counted_edges(0, log_v, &edges));
        (t, vec![msgs])
    }

    #[test]
    fn protocol_balances_the_single_sender() {
        let v = 64;
        let n = 256u64;
        let (trace, log) = single_sender(v, n);
        let p = 16;
        let rewritten = ascend_descend(&trace, &log, p);
        // The worst movement degree must be ~ n/(p/2) at the first hop and
        // shrink toward the root; no superstep may carry degree n.
        let max_h = rewritten.steps.iter().map(|s| s.h(log2_exact(p))).max().unwrap();
        assert!(max_h < n, "protocol failed to split the burst: h = {max_h}");
        // On a linear array the rewritten execution must be cheaper.
        let m = machines::linear_array(p);
        let d_std = trace.comm_time(&m);
        let d_ad = rewritten.comm_time(&m);
        assert!(
            d_ad < d_std,
            "ascend-descend should win on the array: {d_ad} vs {d_std}"
        );
    }

    #[test]
    fn balanced_traffic_is_not_helped_much() {
        // A perfectly balanced bisection exchange: protocol adds overhead.
        let v = 32;
        let log_v = 5;
        let mut t = CommTrace::new(v, v);
        let msgs: Vec<(u32, u32)> = (0..v as u32 / 2).map(|k| (k, k + v as u32 / 2)).collect();
        let edges: Vec<(usize, usize, u64)> =
            msgs.iter().map(|&(s, d)| (s as usize, d as usize, 1)).collect();
        t.steps.push(SuperstepRecord::from_counted_edges(0, log_v, &edges));
        let p = 8;
        let rewritten = ascend_descend(&t, &[msgs], p);
        let m = machines::evaluation(p, 4.0);
        // Overhead is bounded by the O(log² p) factor of Thm 5.3 (generous
        // constant to keep the test robust).
        let lp = 3.0;
        assert!(rewritten.comm_time(&m) <= 40.0 * lp * lp * t.comm_time(&m));
    }

    #[test]
    fn movement_degrees_respect_lemma_5_1() {
        let v = 64;
        let (trace, log) = single_sender(v, 128);
        let p = 16;
        let log_p = log2_exact(p);
        let rewritten = ascend_descend(&trace, &log, p);
        // Every rewritten k-superstep must have degree
        // O(2^k·h^s(n, 2^k)/p) + O(1); check with constant 4.
        for s in &rewritten.steps {
            let k = s.label;
            let h_orig = trace.steps[0].h(k + 1); // h^s(n, 2^{k+1})
            let bound = 4 * ((1u64 << (k + 1)) * h_orig / p as u64 + 2);
            assert!(
                s.h(log_p) <= bound,
                "label {k}: degree {} exceeds Lemma 5.1 bound {bound}",
                s.h(log_p)
            );
        }
    }

    #[test]
    fn telescoped_prefixes_win_on_geometric_machines() {
        // The Section-5 closing remark: with geometrically decaying ℓ_i the
        // telescoped prefix labels shave a log p factor. On the mesh preset
        // (geometric), the geometric variant must be strictly cheaper; on a
        // uniform machine both variants cost the same.
        let v = 64;
        let (trace, log) = single_sender(v, 128);
        let p = 16;
        let plain = ascend_descend(&trace, &log, p);
        let geo = ascend_descend_geometric(&trace, &log, p);
        let mesh = machines::mesh2d(p);
        assert!(
            geo.comm_time(&mesh) < plain.comm_time(&mesh),
            "geometric labels should telescope on the mesh: {} vs {}",
            geo.comm_time(&mesh),
            plain.comm_time(&mesh)
        );
        let flat = machines::uniform(p, 1.0, 5.0);
        assert!((geo.comm_time(&flat) - plain.comm_time(&flat)).abs() < 1e-9);
    }

    #[test]
    fn local_supersteps_are_dropped() {
        let v = 16;
        let log_v = 4;
        let mut t = CommTrace::new(v, v);
        // A label-3 superstep: local at p = 4.
        let msgs = vec![(0u32, 1u32)];
        t.steps.push(SuperstepRecord::from_counted_edges(3, log_v, &[(0, 1, 1)]));
        let rewritten = ascend_descend(&t, &[msgs], 4);
        assert_eq!(rewritten.superstep_count(), 0);
    }
}
