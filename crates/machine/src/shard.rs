//! The persistent sharded executor: long-lived workers over shard-owned
//! mailboxes, exchanging messages through statically planned lanes.
//!
//! # Architecture
//!
//! Where the pre-shard engine forked one task per VP chunk every superstep
//! and funneled *all* staged messages through a single global counting-sort
//! scatter, this executor spawns `n_shards` workers **once per run**. Worker
//! `w` exclusively owns the contiguous VP shard `[w·v/n, (w+1)·v/n)` — its
//! states, its pair of double-buffered [`Arena`]s, its staging buffer and a
//! private shard-local [`DegreeCounters`] — mirroring the paper's folding
//! layout (processor `r` of `M(p)` simulates the `v/p` consecutive VPs
//! starting at `r·v/p`). Cross-shard traffic flows through the
//! [`LaneGrid`]: one structure-of-arrays lane per (source, destination)
//! shard pair, where the set of pairs that can ever be active is fixed
//! before execution by the program's [`LanePlan`] (cluster labels bound
//! which shards can talk in each superstep).
//!
//! # Superstep protocol (three barriers)
//!
//! 1. **Exec + flush** — each worker runs its VPs (reading inboxes from its
//!    own read arena), then drains its staging buffer once: validating,
//!    recording send-side metrics, appending its message-log fragment, and
//!    demultiplexing payloads — shard-internal ones into a local spill
//!    buffer, cross-shard ones into the outgoing lanes of its row.
//!    *Barrier.*
//! 2. **Gather** — each worker scans the incoming lanes of its column (only
//!    the peer span the [`LanePlan`] allows for this superstep's label):
//!    one pass over the compact lane headers records receive-side metrics
//!    and per-VP counts, then a second pass drains local spill + lanes in
//!    ascending source-shard order into its own write arena — a purely
//!    shard-local counting sort. *Barrier.*
//! 3. **Merge** — worker 0 combines the shard counters through
//!    [`EpochMerge`] (`O(n_shards · log v)`), pushes the superstep record,
//!    and concatenates log fragments in shard order. *Barrier*, then the
//!    arenas swap roles and the next superstep begins.
//!
//! Delivery order is preserved bit for bit: lanes are drained in ascending
//! source-shard order and each lane is internally in ascending source-VP,
//! then send, order — exactly the serial engine's stable counting sort.
//!
//! # Failure protocol
//!
//! Workers park on [`Barrier`]s, so no worker may ever unwind past one
//! while peers still wait. Every phase body runs under `catch_unwind`;
//! validation errors and panics park their evidence in the shard cell (or
//! the shared panic slot), raise the `abort` flag, and *keep walking the
//! barrier sequence* until all workers observe the flag at the same barrier
//! and exit together. The run then reports the panic (re-raised) or the
//! lowest shard's error — which is also the first in source order, matching
//! the serial engine. Abandoned lane payloads are reclaimed by plain `Vec`
//! destructors.
//!
//! # Why not the rayon pool?
//!
//! The workers are std scoped threads, not pool tasks: a barrier-coupled
//! gang occupying pool workers could deadlock against other concurrent pool
//! users (e.g. parallel tests), and oversubscription (`workers > pool
//! width`) must stay legal because folded runs pin *shard = fold*. The pool
//! width still determines the default shard count (see
//! [`crate::engine::RunOptions::workers`]).

// The only `unsafe` in this module are the calls into the lane-grid
// accessors of `mailbox`, whose safety contract (phase-disciplined
// row/column exclusivity, invariant 3) the barrier protocol here upholds;
// each call site carries its SAFETY note.
#![allow(unsafe_code)]

use crate::engine::{exec_chunk, GranSpec, RunOptions};
use crate::mailbox::{Arena, ChunkStage, LaneGrid};
use crate::plan::{RouteWalker, StepPlan};
use crate::program::{Envelope, LanePlan, Program, Superstep};
use nob_core::folding::message_allowed;
use nob_core::metrics::{DegreeCounters, EpochMerge, TraceBuilder};
use nob_core::model::log2_exact;
use nob_core::ModelError;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Per-shard state crossing the worker/coordinator boundary. Protected by a
/// mutex only to satisfy the type system: the barrier protocol already
/// serializes access (the owning worker holds it during exec/flush/gather,
/// the coordinator between the gather and merge barriers), so every lock is
/// uncontended.
struct ShardCell {
    counters: DegreeCounters,
    /// This shard's slice of the superstep's message log, in source order.
    log_frag: Vec<(u32, u32)>,
    /// First model violation detected by this shard, if any.
    error: Option<ModelError>,
}

/// Executor-wide shared state.
struct Shared<'p, S, M> {
    prog: &'p Program<S, M>,
    plan: LanePlan,
    grid: LaneGrid<M>,
    cells: Vec<Mutex<ShardCell>>,
    barrier: Barrier,
    /// Raised by any worker that errored or panicked; checked by every
    /// worker after each barrier so the gang exits in lockstep.
    abort: AtomicBool,
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    spec: GranSpec,
    validate: bool,
    collect_log: bool,
    use_plans: bool,
    v: usize,
    log_v: u32,
    n_shards: usize,
    log_shards: u32,
}

/// Resources owned exclusively by one worker.
struct Worker<'a, S, M> {
    w: usize,
    vp_lo: usize,
    vps: usize,
    states: &'a mut [S],
    stage: ChunkStage<M>,
    /// Shard-internal deliveries spilled during flush: `(dst − vp_lo,
    /// payload)` in source order. Cross-shard payloads go to lanes instead,
    /// so this buffer alone serves shard-local supersteps (`label ≥ log
    /// n_shards`) without touching the grid at all.
    local: Vec<(u32, M)>,
    arenas: [Arena<M>; 2],
    dst_counts: Vec<u32>,
    cursors: Vec<u32>,
}

/// Coordinator-only resources, held by worker 0 (which runs on the calling
/// thread).
struct Coord<'a, 'b> {
    merge: EpochMerge,
    trace: &'a mut TraceBuilder,
    log: Option<&'b mut Vec<Vec<(u32, u32)>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned cell only means a peer panicked mid-phase; the abort
    // protocol already guarantees we never read torn state.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Executes `prog` on `n_shards` persistent workers. Trace granularity and
/// folding semantics come from `spec`; results are bit-for-bit identical to
/// the serial path.
pub(crate) fn run_sharded<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: &mut [S],
    spec: GranSpec,
    n_shards: usize,
    opts: &RunOptions,
    trace: &mut TraceBuilder,
    message_log: &mut Option<Vec<Vec<(u32, u32)>>>,
) -> Result<(), ModelError> {
    let v = prog.v();
    let log_v = prog.log_v();
    let log_shards = log2_exact(n_shards);
    debug_assert!(n_shards >= 2, "serial runs take the run_serial path");
    debug_assert!(log_shards <= spec.levels, "shards must not outnumber fold processors");
    let vps = v / n_shards;

    let shared = Shared {
        prog,
        plan: prog.lane_plan(n_shards),
        grid: LaneGrid::new(n_shards),
        cells: (0..n_shards)
            .map(|w| {
                Mutex::new(ShardCell {
                    counters: if spec.full {
                        DegreeCounters::shard_full(log_v, log_shards, w)
                    } else {
                        DegreeCounters::shard_folded(log_v, spec.levels, log_shards, w)
                    },
                    log_frag: Vec::new(),
                    error: None,
                })
            })
            .collect(),
        barrier: Barrier::new(n_shards),
        abort: AtomicBool::new(false),
        panic_slot: Mutex::new(None),
        spec,
        validate: opts.validate,
        collect_log: message_log.is_some(),
        use_plans: opts.use_plans,
        v,
        log_v,
        n_shards,
        log_shards,
    };

    let mut workers: Vec<Worker<'_, S, M>> = Vec::with_capacity(n_shards);
    let mut rest = states;
    for w in 0..n_shards {
        let taken = std::mem::take(&mut rest);
        let (mine, r) = taken.split_at_mut(vps);
        rest = r;
        workers.push(Worker {
            w,
            vp_lo: w * vps,
            vps,
            states: mine,
            stage: ChunkStage::new(vps),
            local: Vec::new(),
            arenas: [Arena::new(vps), Arena::new(vps)],
            dst_counts: vec![0u32; vps],
            cursors: vec![0u32; vps],
        });
    }

    let coordinator = workers.remove(0);
    std::thread::scope(|scope| {
        for worker in workers {
            let shared = &shared;
            scope.spawn(move || shard_loop(worker, shared, None));
        }
        let coord = Coord {
            merge: EpochMerge::new(spec.levels, log_shards),
            trace,
            log: message_log.as_mut(),
        };
        shard_loop(coordinator, &shared, Some(coord));
    });

    if let Some(p) = lock(&shared.panic_slot).take() {
        resume_unwind(p);
    }
    for cell in &shared.cells {
        if let Some(e) = lock(cell).error.take() {
            return Err(e);
        }
    }
    Ok(())
}

/// Registers a phase outcome: model errors go to the shard cell, panics to
/// the shared slot; either raises the abort flag.
fn settle<S, M>(
    shared: &Shared<'_, S, M>,
    w: usize,
    outcome: std::thread::Result<Result<(), ModelError>>,
) {
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            lock(&shared.cells[w]).error.get_or_insert(e);
            shared.abort.store(true, Ordering::SeqCst);
        }
        Err(p) => {
            lock(&shared.panic_slot).get_or_insert(p);
            shared.abort.store(true, Ordering::SeqCst);
        }
    }
}

/// The per-worker superstep loop (see the module docs for the barrier
/// protocol). `coord` is `Some` exactly for worker 0.
fn shard_loop<S: Send, M: Send>(
    mut me: Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    mut coord: Option<Coord<'_, '_>>,
) {
    if shared.use_plans {
        presize_lanes(&mut me, shared);
    }
    let mut read_idx = 0usize;
    for (t, step) in shared.prog.steps().iter().enumerate() {
        let record_step = step.label < shared.spec.levels;
        // A fault-free plan replaces per-message validation and metric
        // recording for this superstep; a *faulted* plan is an error under
        // validation and plain dynamic execution otherwise (the serial
        // path's policy, checked inside `flush` so the gang aborts in
        // lockstep through the normal protocol).
        let plan = step.plan().filter(|_| shared.use_plans);
        let active_plan = plan.filter(|p| p.fault().is_none());

        // --- phase 1: exec + flush --------------------------------------
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if shared.validate {
                if let Some(fault) = plan.and_then(|p| p.fault()) {
                    return Err(fault.clone());
                }
            }
            {
                let read = &mut me.arenas[read_idx];
                let (slab, offsets) = read.take_read();
                exec_chunk(
                    shared.prog,
                    step,
                    me.vp_lo,
                    me.vps,
                    me.states,
                    slab,
                    offsets,
                    &mut me.stage,
                );
            }
            let mut cell = lock(&shared.cells[me.w]);
            flush(&mut me, shared, &mut cell, step, record_step, active_plan)
        }));
        settle(shared, me.w, outcome);
        shared.barrier.wait();
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }

        // --- phase 2: gather --------------------------------------------
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cell = lock(&shared.cells[me.w]);
            gather(&mut me, shared, &mut cell, t, record_step && active_plan.is_none(), 1 - read_idx);
            Ok(())
        }));
        settle(shared, me.w, outcome);
        shared.barrier.wait();

        // --- phase 3: merge (coordinator only) --------------------------
        if let Some(c) = coord.as_mut() {
            if !shared.abort.load(Ordering::SeqCst) {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    merge_superstep(c, shared, step.label, record_step, active_plan);
                    Ok(())
                }));
                settle(shared, 0, outcome);
            }
        }
        shared.barrier.wait();
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }
        read_idx = 1 - read_idx;
    }
}

/// Pre-sizes this worker's outgoing lanes, local spill and destination
/// counters from the program's communication plans: one enumeration of the
/// declared routes of this shard's VPs yields each (step, destination
/// shard) traffic volume; the lane gets the maximum over steps, so planned
/// steady state starts at its high-water capacity instead of growing into
/// it during the first label cycle.
fn presize_lanes<S, M: Send>(me: &mut Worker<'_, S, M>, shared: &Shared<'_, S, M>) {
    let shard_shift = shared.log_v - shared.log_shards;
    let n = shared.n_shards;
    let mut hdr_need = vec![0usize; n];
    let mut pay_need = vec![0usize; n];
    let mut hdr_step = vec![0usize; n];
    let mut pay_step = vec![0usize; n];
    let mut local_need = 0usize;
    for step in shared.prog.steps() {
        let Some(plan) = step.plan().filter(|p| p.fault().is_none()) else {
            continue;
        };
        hdr_step.iter_mut().for_each(|c| *c = 0);
        pay_step.iter_mut().for_each(|c| *c = 0);
        let mut local_step = 0usize;
        plan.for_each_message(me.vp_lo..me.vp_lo + me.vps, |_, d, data| {
            let ds = d >> shard_shift;
            if ds == me.w {
                if data {
                    local_step += 1;
                }
            } else {
                hdr_step[ds] += 1;
                if data {
                    pay_step[ds] += 1;
                }
            }
        });
        for d in 0..n {
            hdr_need[d] = hdr_need[d].max(hdr_step[d]);
            pay_need[d] = pay_need[d].max(pay_step[d]);
        }
        local_need = local_need.max(local_step);
    }
    me.local.reserve(local_need);
    for d in 0..n {
        if d != me.w && hdr_need[d] > 0 {
            // SAFETY: pre-superstep setup — every worker touches only its
            // own grid row, the send-phase discipline of invariant 3.
            unsafe { shared.grid.lane_out(me.w, d) }.reserve(hdr_need[d], pay_need[d]);
        }
    }
}

/// Drains the shard's staged sends once: validation, send-side metrics, log
/// fragment, and payload demultiplexing (local spill vs outgoing lanes).
///
/// With an active communication plan the per-message work collapses to the
/// demultiplexing alone: the cluster constraint was proven at compile time,
/// metrics and the log come from the plan (pushed by the coordinator at
/// merge), and under validation each staged send is instead checked in
/// lockstep against the declared route — destination, kind and order,
/// dummies included — so a mis-declared route aborts the gang with
/// [`ModelError::PlanMismatch`] rather than corrupting the analytic record.
fn flush<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    cell: &mut ShardCell,
    step: &Superstep<S, M>,
    record_step: bool,
    plan: Option<&StepPlan>,
) -> Result<(), ModelError> {
    let v = shared.v;
    let log_v = shared.log_v;
    let shard_shift = log_v - shared.log_shards;
    let vp_lo32 = me.vp_lo as u32;
    let record_counters = record_step && plan.is_none();
    if record_counters {
        cell.counters.begin_superstep();
    }
    cell.log_frag.clear();
    let want_log = record_step && shared.collect_log && plan.is_none();
    let check_plan = shared.validate && plan.is_some();

    let mut msg_idx = 0usize;
    let mut staged = me.stage.outbox.msgs.drain(..);
    for (i, &end) in me.stage.vp_ends.iter().enumerate() {
        let src = me.vp_lo + i;
        let mut walker = check_plan.then(|| {
            let ctx = crate::program::Ctx { vp: src, v, log_v, n: shared.prog.n() };
            RouteWalker::new(plan.expect("check_plan"), ctx)
        });
        while msg_idx < end as usize {
            let (dst, env) = staged.next().expect("vp_ends bound the staged messages");
            msg_idx += 1;
            let d = dst as usize;
            if let Some(w) = walker.as_mut() {
                // Plan lockstep replaces the per-message model checks: the
                // compile pass already proved every declared pair legal.
                let is_data = matches!(env, Envelope::Data(_));
                match w.next_expected() {
                    Some((pd, pdata)) if pdata == is_data && pd == d => {}
                    _ => {
                        return Err(ModelError::PlanMismatch {
                            step: step.name,
                            vp: src,
                            reason: "send disagrees with the declared route",
                        })
                    }
                }
            } else if shared.validate {
                if d >= v {
                    return Err(ModelError::BadParameter {
                        what: "dst",
                        reason: "message destination out of machine range",
                    });
                }
                if !message_allowed(src, d, log_v, step.label) {
                    return Err(ModelError::ClusterViolation { label: step.label, src, dst: d });
                }
            }
            let dst_shard = d >> shard_shift;
            let local = dst_shard == me.w;
            if record_counters {
                if local {
                    cell.counters.record(src, d);
                } else {
                    cell.counters.record_sent(src, d);
                }
            }
            if want_log {
                if shared.spec.full {
                    cell.log_frag.push((src as u32, dst));
                } else {
                    let (ps, pd) = (src >> shared.spec.gran_shift, d >> shared.spec.gran_shift);
                    if ps != pd {
                        cell.log_frag.push((ps as u32, pd as u32));
                    }
                }
            }
            match env {
                Envelope::Data(m) => {
                    if local {
                        me.local.push((dst - vp_lo32, m));
                    } else {
                        // SAFETY: send phase — this worker exclusively owns
                        // grid row `me.w` until the next barrier
                        // (invariant 3 in `mailbox`).
                        unsafe { shared.grid.lane_out(me.w, dst_shard) }.push_data(
                            src as u32,
                            dst,
                            m,
                        );
                    }
                }
                Envelope::Dummy => {
                    if !local {
                        // SAFETY: as above. Cross-shard dummies ride the
                        // lane headers so the receiver can meter them.
                        unsafe { shared.grid.lane_out(me.w, dst_shard) }.push_dummy(src as u32, dst);
                    }
                }
            }
        }
        if let Some(mut w) = walker {
            if !w.finished() {
                return Err(ModelError::PlanMismatch {
                    step: step.name,
                    vp: src,
                    reason: "sent fewer messages than the route declares",
                });
            }
        }
    }
    drop(staged);
    me.stage.vp_ends.clear();
    Ok(())
}

/// Builds this shard's inboxes for the next superstep: counts destinations
/// over local spill + incoming lane headers (recording receive-side
/// metrics when `record_counters` — supersteps covered by a communication
/// plan pass `false`, their metrics are analytic), then drains everything
/// into the write arena in ascending source order.
fn gather<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    cell: &mut ShardCell,
    t: usize,
    record_counters: bool,
    write_idx: usize,
) {
    // The lane plan is derived from the cluster constraint, which only
    // validation enforces — unchecked runs must scan every potential peer.
    let span =
        if shared.validate { shared.plan.peer_span(me.w, t) } else { 0..shared.n_shards };
    let vp_lo = me.vp_lo;
    let local = &mut me.local;
    let dst_counts = &mut me.dst_counts;
    let cursors = &mut me.cursors;

    // `dst_counts` is all-zero here: `prepare_write` zeroes the counts as
    // it consumes them (no per-superstep `fill(0)` sweep).
    for s_prev in span.clone() {
        if s_prev == me.w {
            for &(dst_rel, _) in local.iter() {
                let c = &mut dst_counts[dst_rel as usize];
                *c = c.saturating_add(1);
            }
        } else {
            // SAFETY: gather phase — this worker exclusively owns grid
            // column `me.w` until the next barrier (invariant 3).
            let lane = unsafe { shared.grid.lane_in(s_prev, me.w) };
            for hdr in &lane.hdrs {
                if record_counters {
                    cell.counters.record_received(hdr.src as usize, hdr.dst as usize);
                }
                if hdr.data {
                    let c = &mut dst_counts[hdr.dst as usize - vp_lo];
                    *c = c.saturating_add(1);
                }
            }
        }
    }

    let write = &mut me.arenas[write_idx];
    let total = write.prepare_write(dst_counts, cursors);
    let (slab, _offsets) = write.split_for_scatter(total);
    for s_prev in span {
        if s_prev == me.w {
            for (dst_rel, m) in local.drain(..) {
                let cur = &mut cursors[dst_rel as usize];
                slab[*cur as usize].write(m);
                *cur += 1;
            }
        } else {
            // SAFETY: as above.
            let lane = unsafe { shared.grid.lane_in(s_prev, me.w) };
            lane.drain_deliveries(|dst, m| {
                let cur = &mut cursors[dst as usize - vp_lo];
                slab[*cur as usize].write(m);
                *cur += 1;
            });
        }
    }
    write.commit_write(total);
}

/// Coordinator: merges shard counters into the superstep record and
/// assembles the message-log entry (fragments in shard order = ascending
/// source order). For supersteps covered by a communication plan there is
/// nothing to merge — the record is the plan's precomputed `O(log v)`
/// metrics and the log entry is materialized straight from the declared
/// route (same global order: ascending source VP, then send order).
fn merge_superstep<S, M>(
    coord: &mut Coord<'_, '_>,
    shared: &Shared<'_, S, M>,
    label: u32,
    record_step: bool,
    plan: Option<&StepPlan>,
) {
    if !record_step {
        return;
    }
    if let Some(plan) = plan {
        coord.trace.push_precomputed(label, plan.metrics(), shared.spec.full);
        if let Some(log) = coord.log.as_deref_mut() {
            let mut entry = Vec::new();
            crate::engine::plan_log_entry(plan, shared.spec, &mut entry);
            log.push(entry);
        }
        return;
    }
    coord.merge.begin_superstep();
    let mut entry = shared.collect_log.then(Vec::new);
    for w in 0..shared.n_shards {
        let cell = lock(&shared.cells[w]);
        coord.merge.add_shard(w, &cell.counters);
        if let Some(e) = entry.as_mut() {
            e.extend_from_slice(&cell.log_frag);
        }
    }
    coord.merge.finish();
    coord.trace.push_merged(label, &coord.merge);
    if let (Some(log), Some(entry)) = (coord.log.as_deref_mut(), entry) {
        log.push(entry);
    }
}
