//! The persistent sharded executor: long-lived workers over shard-owned
//! mailboxes, exchanging messages through statically planned lanes
//! (dynamic supersteps), direct cross-shard arena writes (planned
//! supersteps), or no synchronization at all (fused shard-local planned
//! supersteps).
//!
//! # Architecture
//!
//! Where the pre-shard engine forked one task per VP chunk every superstep
//! and funneled *all* staged messages through a single global counting-sort
//! scatter, this executor spawns `n_shards` workers **once per run**. Worker
//! `w` exclusively owns the contiguous VP shard `[w·v/n, (w+1)·v/n)` — its
//! states, its pair of double-buffered [`Arena`]s, its staging buffer and a
//! private shard-local [`DegreeCounters`] — mirroring the paper's folding
//! layout (processor `r` of `M(p)` simulates the `v/p` consecutive VPs
//! starting at `r·v/p`). Each superstep then runs one of three protocols,
//! chosen by whether it carries a usable communication plan and whether
//! that plan's payloads provably stay shard-local at the current width.
//!
//! # Dynamic superstep protocol (three barriers)
//!
//! Cross-shard traffic of a dynamic superstep flows through the
//! [`LaneGrid`]: one structure-of-arrays lane per (source, destination)
//! shard pair, where the set of pairs that can ever be active is fixed
//! before execution by the program's [`LanePlan`] (cluster labels bound
//! which shards can talk in each superstep).
//!
//! 1. **Exec + flush** — each worker runs its VPs (reading inboxes from its
//!    own read arena), then drains its staging buffer once: validating,
//!    recording send-side metrics, appending its message-log fragment, and
//!    demultiplexing payloads — shard-internal ones into a local spill
//!    buffer, cross-shard ones into the outgoing lanes of its row.
//!    *Barrier.*
//! 2. **Gather** — each worker scans the incoming lanes of its column (only
//!    the peer span the [`LanePlan`] allows for this superstep's label):
//!    one pass over the compact lane headers records receive-side metrics
//!    and per-VP counts, then a second pass drains local spill + lanes in
//!    ascending source-shard order into its own write arena — a purely
//!    shard-local counting sort. *Barrier.*
//! 3. **Merge** — worker 0 combines the shard counters through
//!    [`EpochMerge`] (`O(n_shards · log v)`), pushes the superstep record,
//!    and concatenates log fragments in shard order. *Barrier*, then the
//!    arenas swap roles and the next superstep begins.
//!
//! # Planned superstep protocol (one barrier)
//!
//! A superstep with a fault-free [`StepPlan`] needs none of that: its
//! communication pattern is a static function of the VP index, proven
//! cluster-legal at compile time, with analytic metrics. The executor
//! therefore extends the serial direct-write scatter **across shards**:
//!
//! * **Prepare** (pipelined into the *previous* superstep's exec phase, or
//!   run standalone with one extra barrier when the previous superstep was
//!   dynamic): each worker enumerates the declared routes of its shard
//!   cluster once, pre-partitioning its own write arena by *(source shard,
//!   destination VP)* — a region table giving every peer the exact disjoint
//!   slab slots its payloads will fill, in counting-sort order (ascending
//!   source VP, then send order). The worker publishes a window onto the
//!   arena (slab + tables) through the [`DirectGrid`].
//! * **Exec** — every worker runs its VPs with a [`DirectShard`] writer
//!   armed in the outbox: `send` moves each payload straight into the
//!   destination *shard's* arena slot through the published window — no
//!   staging, no lanes, no receive-side pass at all. The worker then checks
//!   its written total against its declared total (the cursor-bounds /
//!   written-total safety net of the serial path, per shard), pipelines the
//!   prepare for the next superstep if that one is planned too, and hits
//!   the **single barrier**. After it, each worker commits its own arena
//!   (peers are done writing) and the arenas swap.
//!
//! There is nothing to merge: the coordinator pushes the plan's precomputed
//! `O(log v)` record (and materializes the log entry from the route) during
//! its own exec phase, overlapped with the other workers' execution —
//! the `EpochMerge` runs only for dynamic supersteps. Steady-state planned
//! supersteps therefore cost exactly **one barrier**; a planned superstep
//! directly after a dynamic one (or at the start of a run) pays one extra
//! prepare barrier.
//!
//! # Fused superstep protocol (zero barriers)
//!
//! A planned superstep whose compile-time payload-locality summary
//! ([`StepPlan::shard_local`]) proves every payload stays within its
//! sender's shard needs no cross-shard window at all. The worker sizes its
//! own write arena — from the plan's `O(1)` [`crate::plan::PlanLayout`]
//! when compile detected one, else a count pass over its shard's routes —
//! executes its VPs with the direct writer bounded to its own shard,
//! pushes the superstep record, checks its written total, and **commits
//! immediately**: no window publication, no barrier, no round consumed.
//! Consecutive fused supersteps therefore form an unsynchronized
//! per-worker pipeline; the gang next meets at the first cross-shard or
//! dynamic step. The decision is a pure function of `(plan, n_shards,
//! `[`RunOptions::fuse`]`)`, so every worker takes the same arm and the
//! barrier-round sequence stays deterministic — which the failure
//! protocol below relies on. Fused steps never pipeline a *prepare* into
//! a predecessor (their arena is sized locally, and publishing a window
//! for a step peers run at different times would race); a cross-shard
//! planned step may still pipeline-prepare across an intervening fused
//! run, because every worker's prepare enumerates spans with the same
//! fused/unfused classification. `RunOptions { fuse: false, .. }`
//! reproduces the one-barrier protocol bit for bit.
//!
//! Delivery order is preserved bit for bit on all three protocols: lanes
//! are drained (and direct-write regions laid out) in ascending
//! source-shard order, each internally in ascending source-VP, then send,
//! order — exactly the serial engine's stable counting sort. (A fused
//! step's sources are all shard-internal, so worker-local counting-sort
//! order *is* the global order.)
//!
//! # Failure protocol
//!
//! Workers park on the [`GangBarrier`], so no worker may ever unwind past
//! one while peers still wait. Every phase body runs under `catch_unwind`;
//! validation errors, plan mismatches, injected faults and panics (the
//! latter downgraded to the structured [`ModelError::VpPanic`] — step
//! name, offending VP, payload message preserved) park their evidence in
//! the shard cell and stamp the *barrier round* the failing worker is
//! about to wait at into the shared abort round. After every round, each
//! worker exits iff the abort round is at or before the round it just
//! passed — a decision every worker provably agrees on, because a stamp
//! for round `r` happens-before every release from round `r`, while a
//! faster peer's failure in a *later* phase stamps a later round that a
//! round-`r` check deliberately ignores. (The barrier sequence itself is a
//! deterministic function of the program: the per-step protocol choice and
//! the pipelined prepares depend only on the static plan coverage.) The
//! run then reports the lowest-numbered shard's error — also the first in
//! source order, matching the serial engine, which downgrades closure
//! panics to the identical `VpPanic`. Abandoned lane payloads are
//! reclaimed by plain `Vec` destructors; partially written direct-scatter
//! slabs are never committed, so their payloads leak (never dropped, never
//! re-observed), bounded by one superstep's traffic.
//!
//! One failure point lies *after* its barrier: the planned protocol's
//! arena commit, which must run once peers are done writing into the
//! arena. A failure there (instrumented as the `shard:commit` failpoint)
//! settles for the *next* round and pays exactly one more wait — the
//! round every healthy peer reaches next — so the gang still exits in
//! lockstep; at the last superstep there is no next round and the worker
//! simply leaves.
//!
//! ## Watchdog
//!
//! With [`RunOptions::stall_timeout`] set the barrier is watchdog-armed: a
//! waiter that outlasts the timeout while its round is incomplete
//! *poisons* the barrier; every current and future wait then returns an
//! error, each worker records a [`ModelError::GangStall`] and leaves
//! without further waits. A lost or descheduled worker thus becomes a
//! structured error instead of a process deadlock. A closure that *never*
//! returns still wedges its OS thread (scoped threads must join before the
//! run can return) — the documented limit of in-process recovery.
//!
//! ## Fault injection
//!
//! Every phase boundary checks the run's [`nob_core::fault::FaultPlan`]
//! ([`RunOptions::faults`]) under its site name — `shard:prepare`,
//! `shard:exec_planned`, `shard:fused_exec` (the fused tier's whole
//! iteration), `shard:commit`, `shard:flush`, `shard:gather`,
//! `shard:merge`, plus the `mailbox:bump_count` / `mailbox:prepare_write`
//! edges inside gather — *inside* the phase's `catch_unwind`, so both
//! error- and panic-flavor faults traverse exactly the abort path a real
//! failure would. A run without a plan pays one `Option` discriminant test
//! per phase (`tests/allocation.rs` pins the steady state unchanged), and
//! `tests/chaos.rs` sweeps site × flavor × width asserting structured
//! errors, lockstep exit, and bit-for-bit clean reruns.
//!
//! ## Telemetry
//!
//! The same phase boundaries carry telemetry spans when a sink is armed
//! ([`RunOptions::telemetry`]): each phase stamps its entry (worker, site,
//! superstep — what [`ModelError::GangStall`] attribution reads) and
//! records its duration on success, and every gang wait is a
//! `shard:barrier_wait` span plus an arrival stamp. Disarmed runs pay the
//! same single `Option` test per phase as disarmed fault injection and
//! never read the clock (see `nob_core::telemetry`).
//!
//! # Why not the rayon pool?
//!
//! The workers are std scoped threads, not pool tasks: a barrier-coupled
//! gang occupying pool workers could deadlock against other concurrent pool
//! users (e.g. parallel tests), and oversubscription (`workers > pool
//! width`) must stay legal because folded runs pin *shard = fold*. The pool
//! width still determines the default shard count (see
//! [`crate::engine::RunOptions::workers`]).

// The only `unsafe` in this module are the calls into the lane-grid and
// direct-grid accessors of `mailbox`, whose safety contracts
// (phase-disciplined row/column exclusivity for lanes — invariant 3 — and
// phase-disciplined window publication plus per-source-shard cursor-row
// exclusivity for direct cross-shard writes — invariant 5) the barrier
// protocol here upholds; each call site carries its SAFETY note.
#![allow(unsafe_code)]

use crate::engine::{exec_chunk, GranSpec, RunOptions};
use crate::mailbox::{
    bump_count, Arena, ChunkStage, DirectGrid, DirectShard, DirectSink, DirectWindow, LaneGrid,
};
use crate::plan::StepPlan;
use crate::program::{Envelope, LanePlan, Program, Superstep};
use nob_core::folding::message_allowed;
use nob_core::metrics::{DegreeCounters, EpochMerge, TraceBuilder};
use nob_core::model::log2_exact;
use nob_core::fault::FaultPlan;
use nob_core::telemetry::{Counter, Site, TelemetrySink};
use nob_core::{ModelError, StalledWorker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fault-injection sites instrumented by this executor, one per phase
/// boundary of the two protocols (see the module docs' failure-protocol
/// section; the serial path's sites live in `crate::engine`, the
/// arena/count edges in `crate::mailbox`).
const FAULT_PREPARE: &str = "shard:prepare";
/// See [`FAULT_PREPARE`].
const FAULT_EXEC_PLANNED: &str = "shard:exec_planned";
/// See [`FAULT_PREPARE`].
const FAULT_COMMIT: &str = "shard:commit";
/// See [`FAULT_PREPARE`].
const FAULT_FLUSH: &str = "shard:flush";
/// See [`FAULT_PREPARE`].
const FAULT_GATHER: &str = "shard:gather";
/// See [`FAULT_PREPARE`].
const FAULT_MERGE: &str = "shard:merge";
/// See [`FAULT_PREPARE`]. Wraps the whole fused iteration (inline prepare,
/// exec, record, commit) — the zero-barrier tier's single failure site.
const FAULT_FUSED_EXEC: &str = "shard:fused_exec";

/// Per-shard state crossing the worker/coordinator boundary. Protected by a
/// mutex only to satisfy the type system: the barrier protocol already
/// serializes access (the owning worker holds it during exec/flush/gather,
/// the coordinator between the gather and merge barriers), so every lock is
/// uncontended.
pub(crate) struct ShardCell {
    pub(crate) counters: DegreeCounters,
    /// This shard's slice of the superstep's message log, in source order.
    pub(crate) log_frag: Vec<(u32, u32)>,
    /// First model violation detected by this shard, if any.
    pub(crate) error: Option<ModelError>,
}

impl ShardCell {
    /// A fresh cell for shard `w` at the given trace shape.
    pub(crate) fn new(spec: GranSpec, log_v: u32, log_shards: u32, w: usize) -> Self {
        ShardCell {
            counters: if spec.full {
                DegreeCounters::shard_full(log_v, log_shards, w)
            } else {
                DegreeCounters::shard_folded(log_v, spec.levels, log_shards, w)
            },
            log_frag: Vec::new(),
            error: None,
        }
    }
}

/// The gang's long-lived infrastructure: every piece of executor-shared
/// state that does **not** borrow from a particular program or run — the
/// lane plan and grids, the shard cells, the barrier and the abort latch.
/// [`run_sharded`] builds one per run; the persistent gang of
/// `crate::server` builds one per server and recycles it across jobs (see
/// [`GangCore::reset_for_job`]).
pub(crate) struct GangCore<M> {
    pub(crate) plan: LanePlan,
    pub(crate) grid: LaneGrid<M>,
    /// Published write-arena windows for planned supersteps, double-buffered
    /// by arena parity (invariant 5 in `mailbox`).
    pub(crate) direct: DirectGrid<M>,
    pub(crate) cells: Vec<Mutex<ShardCell>>,
    pub(crate) barrier: GangBarrier,
    /// Earliest barrier round preceded by an error or panic (`u64::MAX`
    /// while the run is healthy). A failing worker stamps the round it is
    /// *about* to wait at — before waiting — so after every round `r` the
    /// whole gang agrees on `abort_round <= r`: the stamp happens-before
    /// every peer's release from round `r`, and a *faster* peer failing in
    /// a later phase stamps a later round, which a round-`r` check
    /// deliberately ignores. (A live boolean would race: a fast worker's
    /// next-phase failure could be observed by a slow worker's earlier
    /// check, splitting the gang across different exit barriers.)
    pub(crate) abort_round: AtomicU64,
}

impl<M> GangCore<M> {
    /// Resets the recyclable run state between two jobs of a persistent
    /// gang. Requires `&mut self` — the caller proves every worker has
    /// quiesced — and replaces the sticky in-run barrier poison with a
    /// fresh epoch, so one job's `GangStall`/`VpPanic` never outlives it:
    ///
    /// * the barrier restarts at a clean generation with the new job's
    ///   watchdog timeout;
    /// * the abort latch re-arms at `u64::MAX` (healthy);
    /// * every cell's error and log fragment are cleared (counters are
    ///   epoch-stamped and reset themselves at `begin_superstep`);
    /// * the lanes are emptied — a job that aborted mid-superstep can leave
    ///   staged traffic behind that must not leak into the next job's
    ///   gather. Stale published windows in `direct` are left in place:
    ///   they are never read before the next prepare republishes them
    ///   (parity discipline, invariant 5 in `mailbox`).
    ///
    /// The caller is responsible for re-targeting `plan` and `cells` when
    /// the job's shape differs from the previous one.
    pub(crate) fn reset_for_job(&mut self, stall_timeout: Option<Duration>) {
        self.barrier.reset(stall_timeout);
        *self.abort_round.get_mut() = u64::MAX;
        for cell in &mut self.cells {
            let cell = cell.get_mut().unwrap_or_else(|e| e.into_inner());
            cell.error = None;
            cell.log_frag.clear();
        }
        self.grid.clear_all();
    }
}

/// Executor-wide shared state: the per-run (or per-job) view over a
/// [`GangCore`], plus everything borrowed from the program and options.
pub(crate) struct Shared<'p, S, M> {
    pub(crate) prog: &'p Program<S, M>,
    pub(crate) core: &'p GangCore<M>,
    /// The run's fault-injection plan, if any (see the module docs).
    pub(crate) faults: Option<&'p FaultPlan>,
    /// The run's telemetry sink, if any ([`RunOptions::telemetry`]): every
    /// phase records an entry stamp + duration span under the same site
    /// taxonomy as fault injection (plus `shard:exec` for the dynamic exec
    /// half and `shard:barrier_wait` for gang waits). Disarmed runs pay one
    /// `Option` discriminant test per phase and never touch the clock.
    pub(crate) telemetry: Option<&'p TelemetrySink>,
    pub(crate) spec: GranSpec,
    pub(crate) validate: bool,
    pub(crate) collect_log: bool,
    pub(crate) use_plans: bool,
    /// Whether planned supersteps proven shard-local may run on the fused
    /// zero-barrier tier (see [`RunOptions::fuse`]).
    pub(crate) fuse: bool,
    pub(crate) v: usize,
    pub(crate) log_v: u32,
    pub(crate) n_shards: usize,
    pub(crate) log_shards: u32,
}

/// One parity's direct-write tables of a worker: the region-start table
/// (`(n_shards + 1) × vps`, row-major by source shard) and the live cursor
/// table (`n_shards × vps`) its published [`DirectWindow`] points into.
/// Double-buffered alongside the arenas so preparing superstep `t + 1`
/// never touches the tables peers still write through during superstep `t`.
#[derive(Default)]
struct DirectTables {
    starts: Vec<u32>,
    cursors: Vec<u32>,
}

/// The pooled, job-independent resources of one worker: everything a
/// [`Worker`] owns except its identity and its states slice. The one-run
/// executor builds a kit per worker and drops it with the run; the
/// persistent workers of `crate::server` keep one kit alive across jobs
/// ([`WorkerKit::reset`] between jobs), which is what makes warm
/// steady state allocation-free *across* jobs, not just within one.
pub(crate) struct WorkerKit<M> {
    stage: ChunkStage<M>,
    local: Vec<(u32, M)>,
    arenas: [Arena<M>; 2],
    dst_counts: Vec<u32>,
    cursors: Vec<u32>,
    direct_tabs: [DirectTables; 2],
    send_total: Vec<u64>,
}

impl<M> WorkerKit<M> {
    pub(crate) fn new(vps: usize) -> Self {
        WorkerKit {
            stage: ChunkStage::new(vps),
            local: Vec::new(),
            arenas: [Arena::new(vps), Arena::new(vps)],
            dst_counts: vec![0u32; vps],
            cursors: vec![0u32; vps],
            direct_tabs: [DirectTables::default(), DirectTables::default()],
            send_total: Vec::new(),
        }
    }

    /// Re-targets a pooled kit at a job of `vps` VPs per shard: staging,
    /// spill and arenas are emptied (a failed job can leave residue in any
    /// of them, including a still-set out-of-band flag) and the scatter
    /// scratch is rebuilt all-zero — the between-supersteps invariant
    /// `prepare_write` maintains — while every buffer keeps its high-water
    /// capacity, so a warm same-shape job allocates nothing here.
    pub(crate) fn reset(&mut self, vps: usize) {
        self.stage.reset();
        self.stage.outbox.oob_dst = false;
        self.stage.outbox.cur_vp = 0;
        debug_assert!(self.stage.outbox.direct.is_none(), "direct sink across jobs");
        self.local.clear();
        for arena in &mut self.arenas {
            arena.recycle(vps);
        }
        self.dst_counts.clear();
        self.dst_counts.resize(vps, 0);
        self.cursors.clear();
        self.cursors.resize(vps, 0);
    }

    /// The per-step declared payload totals computed by the last
    /// [`prepare_run`] on this kit (the plan cache harvests them once, on a
    /// cold job).
    pub(crate) fn send_total(&self) -> &[u64] {
        &self.send_total
    }
}

/// Resources owned exclusively by one worker.
pub(crate) struct Worker<'a, S, M> {
    w: usize,
    vp_lo: usize,
    vps: usize,
    states: &'a mut [S],
    stage: ChunkStage<M>,
    /// Shard-internal deliveries spilled during a dynamic flush: `(dst −
    /// vp_lo, payload)` in source order. Cross-shard payloads go to lanes
    /// instead, so this buffer alone serves shard-local dynamic supersteps
    /// (`label ≥ log n_shards`) without touching the grid at all.
    local: Vec<(u32, M)>,
    arenas: [Arena<M>; 2],
    dst_counts: Vec<u32>,
    cursors: Vec<u32>,
    /// Direct-write region tables per arena parity (planned supersteps).
    direct_tabs: [DirectTables; 2],
    /// Declared payload total of this shard's VPs per superstep (computed
    /// once at startup from the routes); the written-total safety check of
    /// the planned path compares against it.
    send_total: Vec<u64>,
    /// Payload total of the prepared write arena per parity, committed
    /// after the planned superstep's barrier.
    pending_total: [usize; 2],
}

impl<'a, S, M> Worker<'a, S, M> {
    /// Assembles a worker for one job from its identity, its states chunk
    /// and a (possibly pooled) resource kit. Plain field moves, zero cost;
    /// [`Worker::into_kit`] gives the resources back afterwards.
    pub(crate) fn from_kit(
        w: usize,
        vp_lo: usize,
        vps: usize,
        states: &'a mut [S],
        kit: WorkerKit<M>,
    ) -> Self {
        Worker {
            w,
            vp_lo,
            vps,
            states,
            stage: kit.stage,
            local: kit.local,
            arenas: kit.arenas,
            dst_counts: kit.dst_counts,
            cursors: kit.cursors,
            direct_tabs: kit.direct_tabs,
            send_total: kit.send_total,
            pending_total: [0; 2],
        }
    }

    /// Disassembles the worker back into its resource kit (see
    /// [`Worker::from_kit`]).
    pub(crate) fn into_kit(self) -> WorkerKit<M> {
        WorkerKit {
            stage: self.stage,
            local: self.local,
            arenas: self.arenas,
            dst_counts: self.dst_counts,
            cursors: self.cursors,
            direct_tabs: self.direct_tabs,
            send_total: self.send_total,
        }
    }
}

/// Coordinator-only resources, held by worker 0 (which runs on the calling
/// thread). The merge scratch is borrowed, not owned, so a serving layer
/// can pool it across jobs.
pub(crate) struct Coord<'a, 'b> {
    merge: &'a mut EpochMerge,
    trace: &'a mut TraceBuilder,
    log: Option<&'b mut Vec<Vec<(u32, u32)>>>,
}

impl<'a, 'b> Coord<'a, 'b> {
    pub(crate) fn new(
        merge: &'a mut EpochMerge,
        trace: &'a mut TraceBuilder,
        log: Option<&'b mut Vec<Vec<(u32, u32)>>>,
    ) -> Self {
        Coord { merge, trace, log }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned cell only means a peer panicked mid-phase; the abort
    // protocol already guarantees we never read torn state.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The gang barrier, optionally watchdog-armed. Without a timeout the
/// semantics match `std::sync::Barrier` (wait forever). With one, a waiter
/// that outlasts the timeout while its round is still incomplete *poisons*
/// the barrier: its own wait and every current and future wait return
/// `Err(missing)` — the number of workers that had not arrived when the
/// watchdog fired — so the whole gang drains deterministically instead of
/// deadlocking on a lost peer.
pub(crate) struct GangBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    n: usize,
    timeout: Option<Duration>,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    /// `Some(missing)` once the watchdog fired; sticky for the run.
    stalled: Option<usize>,
}

impl GangBarrier {
    pub(crate) fn new(n: usize, timeout: Option<Duration>) -> Self {
        GangBarrier {
            state: Mutex::new(BarrierState { arrived: 0, generation: 0, stalled: None }),
            cvar: Condvar::new(),
            n,
            timeout,
        }
    }

    /// Re-arms a pooled barrier for the next job: the stall poison — sticky
    /// *within* a run so a failed gang drains deterministically — is
    /// cleared, the generation advances so no historic waiter can confuse
    /// epochs, and the watchdog adopts the new job's timeout. `&mut self`
    /// proves no worker is waiting (the serving layer only calls this after
    /// every worker posted its job-done handshake, which happens-after its
    /// final wait).
    fn reset(&mut self, timeout: Option<Duration>) {
        let st = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        st.arrived = 0;
        st.generation += 1;
        st.stalled = None;
        self.timeout = timeout;
    }

    /// Waits for the whole gang; `Err(missing)` reports a poisoned barrier.
    fn wait(&self) -> Result<(), usize> {
        let mut st = lock(&self.state);
        if let Some(missing) = st.stalled {
            return Err(missing);
        }
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        loop {
            st = match self.timeout {
                None => self.cvar.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(dur) => {
                    let (guard, timeout) =
                        self.cvar.wait_timeout(st, dur).unwrap_or_else(|e| e.into_inner());
                    let mut guard = guard;
                    if timeout.timed_out() && guard.generation == gen && guard.stalled.is_none()
                    {
                        let missing = self.n - guard.arrived;
                        guard.stalled = Some(missing);
                        self.cvar.notify_all();
                        return Err(missing);
                    }
                    guard
                }
            };
            if st.generation != gen {
                return Ok(());
            }
            if let Some(missing) = st.stalled {
                return Err(missing);
            }
        }
    }
}

/// Executes `prog` on `n_shards` persistent workers. Trace granularity and
/// folding semantics come from `spec`; results are bit-for-bit identical to
/// the serial path. Returns the number of barrier rounds the gang walked
/// (a protocol diagnostic: dynamic supersteps cost three, steady-state
/// planned supersteps one — and on failure, the round the gang exited at,
/// which the abort-protocol tests pin) together with the run outcome.
pub(crate) fn run_sharded<S: Send, M: Send>(
    prog: &Program<S, M>,
    states: &mut [S],
    spec: GranSpec,
    n_shards: usize,
    opts: &RunOptions,
    trace: &mut TraceBuilder,
    message_log: &mut Option<Vec<Vec<(u32, u32)>>>,
) -> (u64, Result<(), ModelError>) {
    let v = prog.v();
    let log_v = prog.log_v();
    let log_shards = log2_exact(n_shards);
    debug_assert!(n_shards >= 2, "serial runs take the run_serial path");
    debug_assert!(log_shards <= spec.levels, "shards must not outnumber fold processors");
    let vps = v / n_shards;

    let core = GangCore {
        plan: prog.lane_plan(n_shards),
        grid: LaneGrid::new(n_shards),
        direct: DirectGrid::new(n_shards),
        cells: (0..n_shards)
            .map(|w| Mutex::new(ShardCell::new(spec, log_v, log_shards, w)))
            .collect(),
        barrier: GangBarrier::new(n_shards, opts.stall_timeout),
        abort_round: AtomicU64::new(u64::MAX),
    };
    let shared = Shared {
        prog,
        core: &core,
        faults: opts.faults.as_deref(),
        telemetry: opts.telemetry.as_deref(),
        spec,
        validate: opts.validate,
        collect_log: message_log.is_some(),
        use_plans: opts.use_plans,
        fuse: opts.fuse,
        v,
        log_v,
        n_shards,
        log_shards,
    };

    let mut workers: Vec<Worker<'_, S, M>> = Vec::with_capacity(n_shards);
    let mut rest = states;
    for w in 0..n_shards {
        let taken = std::mem::take(&mut rest);
        let (mine, r) = taken.split_at_mut(vps);
        rest = r;
        workers.push(Worker::from_kit(w, w * vps, vps, mine, WorkerKit::new(vps)));
    }

    let coordinator = workers.remove(0);
    let mut rounds = 0u64;
    std::thread::scope(|scope| {
        for worker in workers {
            let shared = &shared;
            scope.spawn(move || {
                let mut worker = worker;
                if shared.use_plans {
                    prepare_run(&mut worker, shared);
                }
                shard_loop(&mut worker, shared, None);
            });
        }
        let mut merge = EpochMerge::new(spec.levels, log_shards);
        let coord = Coord { merge: &mut merge, trace, log: message_log.as_mut() };
        let mut coordinator = coordinator;
        if shared.use_plans {
            prepare_run(&mut coordinator, &shared);
        }
        rounds = shard_loop(&mut coordinator, &shared, Some(coord));
    });

    for cell in &core.cells {
        if let Some(e) = lock(cell).error.take() {
            return (rounds, Err(e));
        }
    }
    (rounds, Ok(()))
}

/// Fault-injection check at one of this executor's instrumented phase
/// boundaries; free (one `Option` discriminant test) when no plan is armed.
#[inline]
fn fault_check<S, M>(
    shared: &Shared<'_, S, M>,
    site: &'static str,
    w: usize,
    t: usize,
) -> Result<(), ModelError> {
    match shared.faults {
        Some(plan) => plan.check(site, w, t),
        None => Ok(()),
    }
}

/// Opens a telemetry span for phase `site` on worker `w` at superstep `t`:
/// stamps the slot's last-entered phase (what stall attribution reads) and
/// takes the clock. Free — one `Option` discriminant test, no `Instant` —
/// when the run's sink is disarmed.
#[inline]
fn span_start<S, M>(shared: &Shared<'_, S, M>, w: usize, site: Site, t: usize) -> Option<Instant> {
    shared.telemetry.map(|tl| {
        tl.enter(w, site, t);
        Instant::now()
    })
}

/// Closes a span opened by [`span_start`], adding the elapsed nanos to the
/// worker's slot. Failure paths simply never close their span — the entry
/// stamp survives for stall attribution, the duration is not recorded.
#[inline]
fn span_end<S, M>(shared: &Shared<'_, S, M>, w: usize, site: Site, t0: Option<Instant>) {
    if let (Some(tl), Some(t0)) = (shared.telemetry, t0) {
        tl.record(w, site, t0.elapsed());
    }
}

/// Attributes a watchdog stall: every worker whose latest recorded barrier
/// arrival predates `round` is reported with the phase it was last seen
/// entering. Empty when telemetry is disarmed — attribution needs the armed
/// per-worker stamps.
fn stalled_workers<S, M>(shared: &Shared<'_, S, M>, round: u64) -> Vec<StalledWorker> {
    let Some(tl) = shared.telemetry else {
        return Vec::new();
    };
    (0..shared.n_shards)
        .filter(|&w| tl.arrived_round(w).is_none_or(|r| r < round))
        .map(|w| {
            let (site, superstep) = match tl.last_phase(w) {
                Some((s, t)) => (Some(s.name()), t),
                None => (None, 0),
            };
            StalledWorker { worker: w, site, superstep }
        })
        .collect()
}

/// Waits at the gang barrier. On a watchdog stall this worker records the
/// structured [`ModelError::GangStall`] in its own cell (every worker
/// records one, so the run reports the lowest shard's, per the usual rule)
/// and must exit its loop without further waits; returns whether the round
/// completed normally.
fn gang_wait<S, M>(shared: &Shared<'_, S, M>, w: usize, next_round: u64) -> bool {
    // The arrival stamp lands *before* the wait: a worker blocked at the
    // barrier has arrived, and must not be misattributed as missing by a
    // peer whose watchdog fires while this one is still parked.
    let t0 = shared.telemetry.map(|tl| {
        tl.enter(w, Site::ShardBarrierWait, next_round as usize);
        tl.arrive(w, next_round);
        Instant::now()
    });
    let waited = shared.core.barrier.wait();
    if let (Some(tl), Some(t0)) = (shared.telemetry, t0) {
        tl.record(w, Site::ShardBarrierWait, t0.elapsed());
    }
    match waited {
        Ok(()) => true,
        Err(missing) => {
            let stalled = stalled_workers(shared, next_round);
            lock(&shared.core.cells[w])
                .error
                .get_or_insert(ModelError::GangStall { round: next_round, missing, stalled });
            false
        }
    }
}

/// Registers a phase outcome in the shard cell: model errors verbatim,
/// panics downgraded to the structured [`ModelError::VpPanic`] (`step` and
/// `vp` attribute the failure; the serial path produces the identical
/// error). Either stamps `next_round` — the barrier round this worker is
/// about to wait at — into the abort round, the gang's common exit point
/// (see [`Shared::abort_round`]).
fn settle<S, M>(
    shared: &Shared<'_, S, M>,
    w: usize,
    outcome: std::thread::Result<Result<(), ModelError>>,
    step: &'static str,
    vp: usize,
    next_round: u64,
) {
    let err = match outcome {
        Ok(Ok(())) => return,
        Ok(Err(e)) => e,
        Err(p) => crate::engine::vp_panic_error(step, vp, p),
    };
    lock(&shared.core.cells[w]).error.get_or_insert(err);
    // ordering: SeqCst — the round-stamped abort proof (module docs) assumes
    // one total order over every abort publication and every worker's
    // post-barrier check, so no worker can observe round r+1's barrier
    // without also observing an abort stamped at or before r+1. Cold
    // failure path: the strongest fence costs nothing measurable here and
    // spares a subtler Acquire/Release argument.
    shared.core.abort_round.fetch_min(next_round, Ordering::SeqCst);
}

/// The usable communication plan of a step, under the run's plan policy.
fn active_plan<'p, S, M>(
    shared: &Shared<'p, S, M>,
    step: &'p Superstep<S, M>,
) -> Option<&'p StepPlan> {
    step.plan().filter(|p| shared.use_plans && p.fault().is_none())
}

/// Whether `plan`'s superstep runs on the **fused** zero-barrier tier:
/// fusion is enabled and the plan proved at compile time that every payload
/// stays inside its source's shard. A purely static predicate (of the plan
/// and the run options, never of execution state), so all workers always
/// agree on it and the gang's barrier sequences stay deterministic.
#[inline]
fn fused<S, M>(shared: &Shared<'_, S, M>, plan: &StepPlan) -> bool {
    shared.fuse && plan.shard_local(shared.log_shards)
}

/// The source-shard span of planned superstep `t`'s scatter for worker `w`:
/// the worker alone on the fused tier, the label's peer span otherwise.
/// Both [`prepare_direct`] and [`exec_planned`] derive their span from
/// here, so the region layout and the writer can never disagree about
/// which rows are in play.
#[inline]
fn exec_span<S, M>(
    shared: &Shared<'_, S, M>,
    w: usize,
    t: usize,
    plan: &StepPlan,
) -> std::ops::Range<usize> {
    if fused(shared, plan) {
        w..w + 1
    } else {
        shared.core.plan.peer_span(w, t)
    }
}

/// The per-worker superstep loop (see the module docs for the two barrier
/// protocols). `coord` is `Some` exactly for worker 0. The caller runs
/// [`prepare_run`] (or its cached variant) first when plans are enabled.
/// Returns the number of barrier rounds walked.
pub(crate) fn shard_loop<S: Send, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    mut coord: Option<Coord<'_, '_>>,
) -> u64 {
    let mut rounds = 0u64;
    let mut read_idx = 0usize;
    // Whether the upcoming planned superstep's window is already published
    // (pipelined prepare). Deterministic across workers on the non-abort
    // path, so the gang's barrier sequences always agree.
    let mut prepared = false;
    let steps = shared.prog.steps();
    for (t, step) in steps.iter().enumerate() {
        let record_step = step.label < shared.spec.levels;
        let plan = step.plan().filter(|_| shared.use_plans);

        // --- fused path: shard-local planned superstep, zero barriers -----
        if let Some(plan) = active_plan(shared, step).filter(|p| fused(shared, p)) {
            let widx = 1 - read_idx;
            // The whole iteration is one shard-local unit: lay out our own
            // write arena (unless a preceding cross-shard step pipelined
            // it), run our VPs with the direct writer over our own window,
            // record (coordinator), and commit immediately — no peer ever
            // reads this parity's window slot `me.w`, so no barrier
            // separates any of it (invariant 5's fused extension). A fused
            // step never pipelines a prepare for its successor: publishing
            // a window a *peer* would read with no intervening barrier is
            // exactly the race the parity discipline forbids.
            let t0 = span_start(shared, me.w, Site::ShardFusedExec, t);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                fault_check(shared, FAULT_FUSED_EXEC, me.w, t)?;
                if !prepared {
                    prepare_direct(me, shared, t, plan, widx)?;
                }
                exec_planned(me, shared, step, plan, t, read_idx)?;
                if let Some(c) = coord.as_mut() {
                    if record_step {
                        push_planned_record(c, shared, step.label, plan);
                    }
                }
                me.arenas[widx].commit_write(me.pending_total[widx]);
                Ok(())
            }));
            if !matches!(outcome, Ok(Ok(()))) {
                let vp = if outcome.is_err() { me.stage.outbox.panic_vp() } else { me.vp_lo };
                settle(shared, me.w, outcome, step.name, vp, rounds + 1);
                // Healthy peers next wait at `rounds + 1` iff some later
                // step is non-fused; otherwise they run to completion
                // without another barrier and so must we. Two workers
                // failing at *different* fused steps agree on this scan:
                // everything between their two steps must itself be fused
                // (a non-fused step in between would have parked the later
                // worker at its barrier, where the abort stamp exits it),
                // so both see the same first non-fused successor.
                let peers_wait_again = steps[t + 1..].iter().any(|s| {
                    active_plan(shared, s).is_none_or(|p| !fused(shared, p))
                });
                if peers_wait_again && gang_wait(shared, me.w, rounds + 1) {
                    rounds += 1;
                }
                break;
            }
            span_end(shared, me.w, Site::ShardFusedExec, t0);
            prepared = false;
            read_idx = 1 - read_idx;
            continue;
        }

        // --- planned path: direct cross-shard scatter, one barrier --------
        if let Some(plan) = active_plan(shared, step) {
            let widx = 1 - read_idx;
            if !prepared {
                // First planned superstep of a run (or after a dynamic
                // one): publish the windows, then let everyone see them.
                let t0 = span_start(shared, me.w, Site::ShardPrepare, t);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fault_check(shared, FAULT_PREPARE, me.w, t)?;
                    prepare_direct(me, shared, t, plan, widx)
                }));
                if matches!(outcome, Ok(Ok(()))) {
                    span_end(shared, me.w, Site::ShardPrepare, t0);
                }
                let vp = if outcome.is_err() { me.stage.outbox.panic_vp() } else { me.vp_lo };
                settle(shared, me.w, outcome, step.name, vp, rounds + 1);
                if !gang_wait(shared, me.w, rounds + 1) {
                    break;
                }
                rounds += 1;
                // ordering: SeqCst load — pairs with settle's fetch_min
                // publication (see that site's justification).
                if shared.core.abort_round.load(Ordering::SeqCst) <= rounds {
                    break;
                }
            }
            let next_plan = steps.get(t + 1).and_then(|s| active_plan(shared, s));
            let mut prepped_next = false;
            let t0 = span_start(shared, me.w, Site::ShardExecPlanned, t);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                fault_check(shared, FAULT_EXEC_PLANNED, me.w, t)?;
                exec_planned(me, shared, step, plan, t, read_idx)?;
                if let Some(c) = coord.as_mut() {
                    // Nothing to merge for a planned superstep: push the
                    // precomputed record here, overlapped with the other
                    // workers' exec phases — no merge barrier.
                    if record_step {
                        push_planned_record(c, shared, step.label, plan);
                    }
                }
                if let Some(np) = next_plan {
                    // Pipeline the next planned superstep's prepare into
                    // this exec phase: its write arena is this superstep's
                    // (already consumed) read arena, and its windows land
                    // in the other parity, so peers mid-exec never observe
                    // the publication until the barrier below.
                    fault_check(shared, FAULT_PREPARE, me.w, t + 1)?;
                    prepare_direct(me, shared, t + 1, np, read_idx)?;
                    prepped_next = true;
                }
                Ok(())
            }));
            if matches!(outcome, Ok(Ok(()))) {
                // The pipelined prepare of `t + 1` (when taken) is billed to
                // this exec span: it is overlapped with peers' exec phases
                // by construction, never a standalone phase of its own.
                span_end(shared, me.w, Site::ShardExecPlanned, t0);
            }
            let vp = if outcome.is_err() { me.stage.outbox.panic_vp() } else { me.vp_lo };
            settle(shared, me.w, outcome, step.name, vp, rounds + 1);
            if !gang_wait(shared, me.w, rounds + 1) {
                break;
            }
            rounds += 1;
            // ordering: SeqCst load — pairs with settle's fetch_min
            // publication (see that site's justification).
            if shared.core.abort_round.load(Ordering::SeqCst) <= rounds {
                break;
            }
            // Peers are past the barrier: every region of this worker's
            // write arena is full and checked, so publish it to the next
            // superstep's read phase. This is the one failure point *after*
            // its barrier (see the module docs): on failure, settle for the
            // next round and pay exactly one more wait — the round every
            // healthy peer reaches next — so the gang still exits in
            // lockstep; at the last superstep there is no next round.
            let t0 = span_start(shared, me.w, Site::ShardCommit, t);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                fault_check(shared, FAULT_COMMIT, me.w, t)?;
                me.arenas[widx].commit_write(me.pending_total[widx]);
                Ok(())
            }));
            if !matches!(outcome, Ok(Ok(()))) {
                let vp = if outcome.is_err() { me.stage.outbox.panic_vp() } else { me.vp_lo };
                settle(shared, me.w, outcome, step.name, vp, rounds + 1);
                if t + 1 < steps.len() && gang_wait(shared, me.w, rounds + 1) {
                    rounds += 1;
                }
                break;
            }
            span_end(shared, me.w, Site::ShardCommit, t0);
            prepared = prepped_next;
            read_idx = 1 - read_idx;
            continue;
        }

        // --- dynamic path: three-barrier lane protocol --------------------
        prepared = false;

        // --- phase 1: exec + flush ----------------------------------------
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault_check(shared, FAULT_FLUSH, me.w, t)?;
            if shared.validate {
                // A *faulted* plan is an error under validation; without it
                // the step simply runs on this dynamic path (the serial
                // path's policy, checked here so the gang aborts in
                // lockstep through the normal protocol).
                if let Some(fault) = plan.and_then(|p| p.fault()) {
                    return Err(fault.clone());
                }
            }
            let t0 = span_start(shared, me.w, Site::ShardExec, t);
            {
                let read = &mut me.arenas[read_idx];
                let (slab, offsets) = read.take_read();
                exec_chunk(
                    shared.prog,
                    step,
                    me.vp_lo,
                    me.vps,
                    me.states,
                    slab,
                    offsets,
                    &mut me.stage,
                );
            }
            span_end(shared, me.w, Site::ShardExec, t0);
            let t0 = span_start(shared, me.w, Site::ShardFlush, t);
            let mut cell = lock(&shared.core.cells[me.w]);
            flush(me, shared, &mut cell, step, record_step)?;
            span_end(shared, me.w, Site::ShardFlush, t0);
            Ok(())
        }));
        let vp = if outcome.is_err() { me.stage.outbox.panic_vp() } else { me.vp_lo };
        settle(shared, me.w, outcome, step.name, vp, rounds + 1);
        if !gang_wait(shared, me.w, rounds + 1) {
            break;
        }
        rounds += 1;
        // ordering: SeqCst load — pairs with settle's fetch_min publication
        // (see that site's justification).
        if shared.core.abort_round.load(Ordering::SeqCst) <= rounds {
            break;
        }

        // --- phase 2: gather ----------------------------------------------
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault_check(shared, FAULT_GATHER, me.w, t)?;
            let t0 = span_start(shared, me.w, Site::ShardGather, t);
            let mut cell = lock(&shared.core.cells[me.w]);
            gather(me, shared, &mut cell, t, record_step, 1 - read_idx)?;
            span_end(shared, me.w, Site::ShardGather, t0);
            Ok(())
        }));
        settle(shared, me.w, outcome, step.name, me.vp_lo, rounds + 1);
        if !gang_wait(shared, me.w, rounds + 1) {
            break;
        }
        rounds += 1;

        // --- phase 3: merge (coordinator only) ----------------------------
        if let Some(c) = coord.as_mut() {
            // ordering: SeqCst load — pairs with settle's fetch_min
            // publication (see that site's justification).
            if shared.core.abort_round.load(Ordering::SeqCst) > rounds {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fault_check(shared, FAULT_MERGE, 0, t)?;
                    let t0 = span_start(shared, 0, Site::ShardMerge, t);
                    merge_superstep(c, shared, step.label, record_step);
                    span_end(shared, 0, Site::ShardMerge, t0);
                    Ok(())
                }));
                settle(shared, 0, outcome, step.name, 0, rounds + 1);
            }
        }
        if !gang_wait(shared, me.w, rounds + 1) {
            break;
        }
        rounds += 1;
        // ordering: SeqCst load — pairs with settle's fetch_min publication
        // (see that site's justification).
        if shared.core.abort_round.load(Ordering::SeqCst) <= rounds {
            break;
        }
        read_idx = 1 - read_idx;
    }
    // Mailbox seam: this worker's double-buffered arena footprint is the
    // run's per-worker memory high-water signal — keep the widest worker
    // seen so far in the gauge.
    if let Some(tl) = shared.telemetry {
        tl.set_max(
            Counter::ArenaBytes,
            me.arenas[0].slab_bytes() + me.arenas[1].slab_bytes(),
        );
    }
    rounds
}

/// One-time run setup from the program's communication plans: per-step
/// declared payload totals of this shard (the planned path's written-total
/// safety net), direct-write table allocation, and lane/spill pre-sizing
/// for the steps that will still run dynamically (faulted plans). Planned
/// steady state therefore starts at its high-water capacity instead of
/// growing into it during the first label cycle.
pub(crate) fn prepare_run<S, M: Send>(me: &mut Worker<'_, S, M>, shared: &Shared<'_, S, M>) {
    let t0 = span_start(shared, me.w, Site::ShardPrepare, 0);
    let shard_shift = shared.log_v - shared.log_shards;
    let n = shared.n_shards;
    let mut hdr_need = vec![0usize; n];
    let mut pay_need = vec![0usize; n];
    let mut hdr_step = vec![0usize; n];
    let mut pay_step = vec![0usize; n];
    let mut local_need = 0usize;
    let mut any_active = false;
    me.send_total.clear();
    me.send_total.resize(shared.prog.steps().len(), 0);
    for (t, step) in shared.prog.steps().iter().enumerate() {
        let Some(plan) = step.plan() else {
            continue;
        };
        if plan.fault().is_none() {
            // Direct path: only the send-side declared total is needed.
            any_active = true;
            let mut total = 0u64;
            plan.for_each_message(me.vp_lo..me.vp_lo + me.vps, |_, _, data| {
                if data {
                    total += 1;
                }
            });
            me.send_total[t] = total;
            continue;
        }
        // Faulted plan: the step runs dynamically (or errors under
        // validation) — pre-size its lane/spill traffic like any other
        // dynamic superstep whose pattern we happen to know.
        hdr_step.iter_mut().for_each(|c| *c = 0);
        pay_step.iter_mut().for_each(|c| *c = 0);
        let mut local_step = 0usize;
        plan.for_each_message(me.vp_lo..me.vp_lo + me.vps, |_, d, data| {
            let ds = d >> shard_shift;
            if ds == me.w {
                if data {
                    local_step += 1;
                }
            } else if ds < n {
                hdr_step[ds] += 1;
                if data {
                    pay_step[ds] += 1;
                }
            }
        });
        for d in 0..n {
            hdr_need[d] = hdr_need[d].max(hdr_step[d]);
            pay_need[d] = pay_need[d].max(pay_step[d]);
        }
        local_need = local_need.max(local_step);
    }
    me.local.reserve(local_need);
    for d in 0..n {
        if d != me.w && hdr_need[d] > 0 {
            // SAFETY: pre-superstep setup — every worker touches only its
            // own grid row, the send-phase discipline of invariant 3.
            unsafe { shared.core.grid.lane_out(me.w, d) }.reserve(hdr_need[d], pay_need[d]);
        }
    }
    if any_active {
        for tabs in &mut me.direct_tabs {
            tabs.starts.clear();
            tabs.starts.resize((n + 1) * me.vps, 0);
            tabs.cursors.clear();
            tabs.cursors.resize(n * me.vps, 0);
        }
    }
    span_end(shared, me.w, Site::ShardPrepare, t0);
}

/// The warm-path counterpart of [`prepare_run`] for a plan-cache hit: the
/// per-step declared totals were computed once on the cold job and come
/// from the cache, so the whole per-worker route enumeration is skipped —
/// only the direct-write tables are (re)sized, within pooled capacity. The
/// faulted-plan lane pre-sizing is skipped too: pooled lanes already sit at
/// their high-water capacity from earlier jobs, and growth is one-time.
///
/// Trusting cached totals is safe the same way trusting a declared route
/// is: a total that disagrees with what the job actually sends surfaces as
/// the planned path's written-total [`ModelError::PlanMismatch`], never as
/// corruption.
pub(crate) fn prepare_run_cached<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    totals: &[u64],
) {
    let t0 = span_start(shared, me.w, Site::ShardPrepare, 0);
    debug_assert_eq!(totals.len(), shared.prog.steps().len());
    me.send_total.clear();
    me.send_total.extend_from_slice(totals);
    let n = shared.n_shards;
    let any_active =
        shared.prog.steps().iter().any(|s| s.plan().is_some_and(|p| p.fault().is_none()));
    if any_active {
        for tabs in &mut me.direct_tabs {
            tabs.starts.clear();
            tabs.starts.resize((n + 1) * me.vps, 0);
            tabs.cursors.clear();
            tabs.cursors.resize(n * me.vps, 0);
        }
    }
    span_end(shared, me.w, Site::ShardPrepare, t0);
}

/// Lays out this worker's write arena of parity `widx` for planned
/// superstep `t` and publishes the window peers will write through:
/// one enumeration of the shard cluster's declared routes yields the
/// per-(source shard, destination VP) payload counts, the arena's offset
/// table (via the ordinary [`Arena::prepare_write`]) and the region
/// start/cursor tables — the counting sort pre-partitioned by source shard,
/// so cross-shard delivery order matches the lane path bit for bit.
fn prepare_direct<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    t: usize,
    plan: &StepPlan,
    widx: usize,
) -> Result<(), ModelError> {
    // The cluster span is sound without runtime validation: the plan is
    // fault-free, so every declared (src, dst) pair was proven
    // cluster-legal at compile time. (Sends *diverging* from the
    // declaration are caught by the writer's span/region checks.)
    let span = exec_span(shared, me.w, t, plan);
    let (lo, hi) = (span.start, span.end);
    let vps = me.vps;
    let shard_shift = shared.log_v - shared.log_shards;
    let w = me.w;
    let vp_lo = me.vp_lo;

    // Single-shard span + layout summary: every payload to one of our
    // destinations originates inside our own shard (by fusion locality or
    // by a label at least log shards deep), so the plan's *global*
    // per-destination counts are exactly our region sizes — size the arena
    // straight from the O(1) layout, no route enumeration at all. The
    // writer still re-checks every slot bound, so a wrong layout could
    // only surface as PlanMismatch, never as an out-of-bounds write.
    if hi - lo == 1 {
        if let Some(layout) = plan.layout().filter(|_| shared.fuse) {
            let total =
                me.arenas[widx].prepare_write_counts(|d| layout.count(vp_lo + d), &mut me.cursors);
            let tabs = &mut me.direct_tabs[widx];
            for d in 0..vps {
                let base = me.cursors[d];
                tabs.starts[lo * vps + d] = base;
                tabs.cursors[lo * vps + d] = base;
                tabs.starts[(lo + 1) * vps + d] = base + layout.count(vp_lo + d);
            }
            let (slab, _offsets) = me.arenas[widx].split_for_scatter(total);
            let tabs = &mut me.direct_tabs[widx];
            let window = DirectWindow::new(slab, &tabs.starts, &mut tabs.cursors, vp_lo as u32);
            me.pending_total[widx] = total;
            // SAFETY: identical publication discipline to the general path
            // below (prepare phase, own window slot, parity alternation);
            // invariant 5.
            unsafe { shared.core.direct.publish(widx, w, window) };
            return Ok(());
        }
    }

    // Counting pass: rows `lo..hi` of the start table accumulate
    // per-(source shard, destination) payload counts while `dst_counts`
    // (all-zero here, as always between supersteps) accumulates the
    // per-destination totals — checked, a capped count would corrupt the
    // prefix sums the unsafe scatter trusts.
    let tabs = &mut me.direct_tabs[widx];
    tabs.starts[lo * vps..hi * vps].fill(0);
    let mut err = None;
    {
        let dst_counts = &mut me.dst_counts;
        let starts = &mut tabs.starts;
        plan.for_each_message(lo * vps..hi * vps, |src, dst, data| {
            if !data || err.is_some() {
                return;
            }
            if dst >> shard_shift != w {
                return; // a peer's arena lays this one out
            }
            let d_rel = dst - vp_lo;
            if let Err(e) = bump_count(&mut dst_counts[d_rel]) {
                err = Some(e);
                return;
            }
            starts[(src >> shard_shift) * vps + d_rel] += 1;
        });
    }
    if let Some(e) = err {
        return Err(e);
    }

    // Offsets + slab sizing; `me.cursors[d]` becomes each destination's
    // inbox base and `dst_counts` is re-zeroed (the engine invariant).
    let total = me.arenas[widx].prepare_write(&mut me.dst_counts, &mut me.cursors);

    // Prefix transform: region (s, d) starts where region (s - 1, d)
    // ends; `me.cursors` carries the running per-destination position and
    // finishes at each inbox's end, which becomes the terminal bounds row.
    let tabs = &mut me.direct_tabs[widx];
    for s in lo..hi {
        let row = s * vps;
        for (d, acc) in me.cursors[..vps].iter_mut().enumerate() {
            let cnt = tabs.starts[row + d];
            tabs.starts[row + d] = *acc;
            tabs.cursors[row + d] = *acc;
            *acc += cnt;
        }
    }
    tabs.starts[hi * vps..(hi + 1) * vps].copy_from_slice(&me.cursors[..vps]);

    let (slab, _offsets) = me.arenas[widx].split_for_scatter(total);
    let tabs = &mut me.direct_tabs[widx];
    // The full cursor table is published; peers only touch their own rows,
    // and only rows in the (symmetric) cluster span carry fresh regions —
    // the writer's span check keeps stale rows unreachable.
    let window = DirectWindow::new(slab, &tabs.starts, &mut tabs.cursors, vp_lo as u32);
    me.pending_total[widx] = total;
    // SAFETY: prepare phase for parity `widx` — this worker owns its window
    // slot, peers read it only after the next barrier, and the previous
    // window of this parity has no remaining readers (parity alternation);
    // invariant 5.
    unsafe { shared.core.direct.publish(widx, w, window) };
    Ok(())
}

/// Executes one planned superstep on this worker's VPs with the cross-shard
/// direct writer armed: payloads land straight in the destination shards'
/// arenas, dummies only advance the lockstep checker, and the written total
/// is verified against the declared total before anyone commits.
fn exec_planned<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    step: &Superstep<S, M>,
    plan: &StepPlan,
    t: usize,
    read_idx: usize,
) -> Result<(), ModelError> {
    let widx = 1 - read_idx;
    let span = exec_span(shared, me.w, t, plan);
    let shard_shift = shared.log_v - shared.log_shards;
    let check = shared.validate.then(|| plan.route_raw());
    // SAFETY: exec phase — every window of parity `widx` in the span was
    // published before the barrier this phase follows, and cursor row
    // `me.w` of those windows is this worker's exclusively until the next
    // barrier (invariant 5).
    let sink = unsafe {
        DirectShard::new(&shared.core.direct, widx, me.w, span, shard_shift, me.vps, shared.v, check)
    };
    me.stage.outbox.enter_direct(DirectSink::Sharded(sink));

    {
        let read = &mut me.arenas[read_idx];
        let (slab, offsets) = read.take_read();
        crate::engine::exec_direct_chunk(
            step,
            me.vp_lo,
            me.states,
            slab,
            offsets,
            &mut me.stage.outbox,
            shared.v,
            shared.log_v,
            shared.prog.n(),
        );
    }

    match me.stage.outbox.exit_direct() {
        DirectSink::Sharded(out) => {
            if let Some((vp, reason)) = out.fault_info() {
                return Err(ModelError::PlanMismatch { step: step.name, vp, reason });
            }
            if out.written() != me.send_total[t] {
                // Region capacities sum to the declared total, so a
                // shortfall means some region of ours was left short:
                // blame the first starved receiver (the sender is unknown
                // without lockstep checking, the starved inbox is not).
                // SAFETY: still this worker's exec phase — reads only its
                // own cursor rows and the immutable region tables.
                let vp = unsafe { out.first_starved() }.unwrap_or(me.vp_lo);
                return Err(ModelError::PlanMismatch {
                    step: step.name,
                    vp,
                    reason: "destination received fewer payload messages than the route declares",
                });
            }
        }
        DirectSink::Serial(_) => unreachable!("sharded exec arms a sharded sink"),
    }
    Ok(())
}

/// Coordinator-side record of a planned superstep: the precomputed
/// `O(log v)` metrics and (when requested) the log entry materialized from
/// the route — same global order as the dynamic path (ascending source VP,
/// then send order). Runs inside the coordinator's exec phase, overlapped
/// with the other workers' execution; no merge, no extra barrier.
fn push_planned_record<S, M>(
    coord: &mut Coord<'_, '_>,
    shared: &Shared<'_, S, M>,
    label: u32,
    plan: &StepPlan,
) {
    coord.trace.push_precomputed(label, plan.metrics(), shared.spec.full);
    if let Some(log) = coord.log.as_deref_mut() {
        let mut entry = Vec::new();
        crate::engine::plan_log_entry(plan, shared.spec, &mut entry);
        log.push(entry);
    }
}

/// Drains the shard's staged sends of a dynamic superstep once: validation,
/// send-side metrics, log fragment, and payload demultiplexing (local spill
/// vs outgoing lanes).
fn flush<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    cell: &mut ShardCell,
    step: &Superstep<S, M>,
    record_step: bool,
) -> Result<(), ModelError> {
    if me.stage.outbox.take_oob() {
        return Err(crate::program::oob_dst_error());
    }
    let v = shared.v;
    let log_v = shared.log_v;
    let shard_shift = log_v - shared.log_shards;
    let vp_lo32 = me.vp_lo as u32;
    if record_step {
        cell.counters.begin_superstep();
    }
    cell.log_frag.clear();
    let want_log = record_step && shared.collect_log;

    let mut msg_idx = 0usize;
    let mut staged = me.stage.outbox.msgs.drain(..);
    for (i, &end) in me.stage.vp_ends.iter().enumerate() {
        let src = me.vp_lo + i;
        while msg_idx < end as usize {
            // allow-panic: `vp_ends` is built by `end_vp` from the same
            // staging buffer, so an exhausted iterator here is an engine
            // bug, unreachable from user input.
            let (dst, env) = staged.next().expect("vp_ends bound the staged messages");
            msg_idx += 1;
            let d = dst as usize;
            if shared.validate {
                if d >= v {
                    return Err(ModelError::BadParameter {
                        what: "dst",
                        reason: "message destination out of machine range",
                    });
                }
                if !message_allowed(src, d, log_v, step.label) {
                    return Err(ModelError::ClusterViolation { label: step.label, src, dst: d });
                }
            }
            let dst_shard = d >> shard_shift;
            let local = dst_shard == me.w;
            if record_step {
                if local {
                    cell.counters.record(src, d);
                } else {
                    cell.counters.record_sent(src, d);
                }
            }
            if want_log {
                if shared.spec.full {
                    cell.log_frag.push((src as u32, dst));
                } else {
                    let (ps, pd) = (src >> shared.spec.gran_shift, d >> shared.spec.gran_shift);
                    if ps != pd {
                        cell.log_frag.push((ps as u32, pd as u32));
                    }
                }
            }
            match env {
                Envelope::Data(m) => {
                    if local {
                        me.local.push((dst - vp_lo32, m));
                    } else {
                        // SAFETY: send phase — this worker exclusively owns
                        // grid row `me.w` until the next barrier
                        // (invariant 3 in `mailbox`).
                        unsafe { shared.core.grid.lane_out(me.w, dst_shard) }.push_data(
                            src as u32,
                            dst,
                            m,
                        );
                    }
                }
                Envelope::Dummy => {
                    if !local {
                        // SAFETY: as above. Cross-shard dummies ride the
                        // lane headers so the receiver can meter them.
                        unsafe { shared.core.grid.lane_out(me.w, dst_shard) }.push_dummy(src as u32, dst);
                    }
                }
            }
        }
    }
    drop(staged);
    me.stage.vp_ends.clear();
    Ok(())
}

/// Builds this shard's inboxes for the next superstep (dynamic path):
/// counts destinations over local spill + incoming lane headers (recording
/// receive-side metrics when `record_counters`), then drains everything
/// into the write arena in ascending source order. Per-destination counts
/// are checked — an overflowing count is a [`ModelError`], never a silent
/// cap that would corrupt the counting-sort offsets.
fn gather<S, M: Send>(
    me: &mut Worker<'_, S, M>,
    shared: &Shared<'_, S, M>,
    cell: &mut ShardCell,
    t: usize,
    record_counters: bool,
    write_idx: usize,
) -> Result<(), ModelError> {
    // The lane plan is derived from the cluster constraint, which only
    // validation enforces — unchecked runs must scan every potential peer.
    let span =
        if shared.validate { shared.core.plan.peer_span(me.w, t) } else { 0..shared.n_shards };
    let vp_lo = me.vp_lo;
    let local = &mut me.local;
    let dst_counts = &mut me.dst_counts;
    let cursors = &mut me.cursors;

    // `dst_counts` is all-zero here: `prepare_write` zeroes the counts as
    // it consumes them (no per-superstep `fill(0)` sweep).
    crate::mailbox::fault_edge(shared.faults, crate::mailbox::FAULT_BUMP_COUNT, me.w, t)?;
    for s_prev in span.clone() {
        if s_prev == me.w {
            for &(dst_rel, _) in local.iter() {
                bump_count(&mut dst_counts[dst_rel as usize])?;
            }
        } else {
            // SAFETY: gather phase — this worker exclusively owns grid
            // column `me.w` until the next barrier (invariant 3).
            let lane = unsafe { shared.core.grid.lane_in(s_prev, me.w) };
            for hdr in &lane.hdrs {
                if record_counters {
                    cell.counters.record_received(hdr.src as usize, hdr.dst as usize);
                }
                if hdr.data {
                    bump_count(&mut dst_counts[hdr.dst as usize - vp_lo])?;
                }
            }
        }
    }

    crate::mailbox::fault_edge(shared.faults, crate::mailbox::FAULT_PREPARE_WRITE, me.w, t)?;
    let write = &mut me.arenas[write_idx];
    let total = write.prepare_write(dst_counts, cursors);
    let (slab, _offsets) = write.split_for_scatter(total);
    for s_prev in span {
        if s_prev == me.w {
            for (dst_rel, m) in local.drain(..) {
                let cur = &mut cursors[dst_rel as usize];
                slab[*cur as usize].write(m);
                *cur += 1;
            }
        } else {
            // SAFETY: as above.
            let lane = unsafe { shared.core.grid.lane_in(s_prev, me.w) };
            lane.drain_deliveries(|dst, m| {
                let cur = &mut cursors[dst as usize - vp_lo];
                slab[*cur as usize].write(m);
                *cur += 1;
            });
        }
    }
    write.commit_write(total);
    Ok(())
}

/// Coordinator: merges shard counters of a dynamic superstep into the
/// superstep record and assembles the message-log entry (fragments in shard
/// order = ascending source order). Planned supersteps never reach here —
/// their records are pushed by [`push_planned_record`] with no merge at
/// all.
fn merge_superstep<S, M>(
    coord: &mut Coord<'_, '_>,
    shared: &Shared<'_, S, M>,
    label: u32,
    record_step: bool,
) {
    if !record_step {
        return;
    }
    coord.merge.begin_superstep();
    let mut entry = shared.collect_log.then(Vec::new);
    for w in 0..shared.n_shards {
        let cell = lock(&shared.core.cells[w]);
        coord.merge.add_shard(w, &cell.counters);
        if let Some(e) = entry.as_mut() {
            e.extend_from_slice(&cell.log_frag);
        }
    }
    coord.merge.finish();
    coord.trace.push_merged(label, coord.merge);
    if let (Some(log), Some(entry)) = (coord.log.as_deref_mut(), entry) {
        log.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Inbox;
    use crate::plan::Route;
    use crate::program::Ctx;

    /// A fully planned butterfly: every superstep carries a fault-free
    /// communication plan.
    fn planned_butterfly(v: usize, rounds: usize) -> Program<u64, u64> {
        let mut prog: Program<u64, u64> = Program::new(v, v);
        let log_v = prog.log_v();
        for r in 0..rounds {
            let l = (r as u32) % log_v;
            let d = v >> (l + 1);
            let last = r == rounds - 1;
            prog.step_oblivious(
                l,
                "bfly",
                if last { 0 } else { 1 },
                move |ctx, _| Route::Data(ctx.vp ^ d),
                move |st, ctx, inbox, out| {
                    for m in inbox.drain(..) {
                        *st = st.wrapping_add(m);
                    }
                    if !last {
                        out.send(ctx.vp ^ d, *st);
                    }
                },
            );
        }
        prog
    }

    /// The same butterfly on the dynamic path (no plans declared).
    fn dynamic_butterfly(v: usize, rounds: usize) -> Program<u64, u64> {
        let mut prog: Program<u64, u64> = Program::new(v, v);
        let log_v = prog.log_v();
        for r in 0..rounds {
            let l = (r as u32) % log_v;
            let d = v >> (l + 1);
            let last = r == rounds - 1;
            prog.step(l, "bfly", move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                if !last {
                    out.send(ctx.vp ^ d, *st);
                }
            });
        }
        prog
    }

    fn run_counting(
        prog: &Program<u64, u64>,
        states: &mut [u64],
        n_shards: usize,
        opts: &RunOptions,
    ) -> (u64, nob_core::metrics::CommTrace) {
        let spec = GranSpec { levels: prog.log_v(), gran_shift: 0, full: true };
        let mut trace = TraceBuilder::new(prog.v(), prog.n(), prog.steps().len());
        let mut log = None;
        let (rounds, outcome) =
            run_sharded(prog, states, spec, n_shards, opts, &mut trace, &mut log);
        outcome.unwrap();
        (rounds, trace.finish())
    }

    #[test]
    fn planned_supersteps_cost_exactly_one_barrier() {
        // Three tiers on the same program: dynamic costs three barriers per
        // superstep, the fuse-off planned protocol exactly one per step
        // (+1 initial prepare), and the fused tier removes the barrier
        // entirely from every superstep whose payload locality clears the
        // shard depth. The butterfly's labels cycle 0,1,2,3 with matching
        // exchange distances, so at 2 shards only the label-0 steps
        // (r ∈ {0, 4}) stay cross-shard (2 barriers each incl. the
        // prepare), and at 4 shards the label-1 steps join them
        // (r ∈ {0, 1, 4, 5}; r = 1 and 5 ride a pipelined prepare).
        let (v, rounds) = (16usize, 9usize);
        let planned = planned_butterfly(v, rounds);
        let dynamic = dynamic_butterfly(v, rounds);
        let want: Vec<u64> = {
            let mut states: Vec<u64> = (0..v as u64).collect();
            let (b, _) = run_counting(&dynamic, &mut states, 4, &RunOptions::default());
            assert_eq!(b, 3 * rounds as u64, "dynamic protocol is three barriers per step");
            states
        };
        for (w, fused_barriers) in [(2usize, 4u64), (4, 6)] {
            let mut states: Vec<u64> = (0..v as u64).collect();
            let (b, trace) = run_counting(&planned, &mut states, w, &RunOptions::default());
            assert_eq!(
                b, fused_barriers,
                "fused tier must pay barriers only for cross-shard steps at {w} workers"
            );
            assert_eq!(states, want, "fused results diverge at {w} workers");
            assert_eq!(trace.superstep_count(), rounds);

            // Fusion off: the one-barrier protocol, exactly as before.
            let mut states: Vec<u64> = (0..v as u64).collect();
            let opts = RunOptions { fuse: false, ..Default::default() };
            let (b, trace) = run_counting(&planned, &mut states, w, &opts);
            assert_eq!(
                b,
                rounds as u64 + 1,
                "fuse-off planned protocol must cost one barrier per step (+1 initial prepare) at {w} workers"
            );
            assert_eq!(states, want, "fuse-off results diverge at {w} workers");
            assert_eq!(trace.superstep_count(), rounds);
        }
        // Plans disabled: the same program walks the dynamic protocol.
        let mut states: Vec<u64> = (0..v as u64).collect();
        let opts = RunOptions { use_plans: false, ..Default::default() };
        let (b, _) = run_counting(&planned, &mut states, 2, &opts);
        assert_eq!(b, 3 * rounds as u64);
        assert_eq!(states, want);
    }

    #[test]
    fn mixed_programs_pay_one_prepare_barrier_per_dynamic_to_planned_edge() {
        let v = 16usize;
        let mut prog: Program<u64, u64> = Program::new(v, v);
        let d = v / 2;
        let body = move |st: &mut u64,
                         ctx: &Ctx,
                         inbox: &mut Inbox<'_, u64>,
                         out: &mut crate::program::Outbox<u64>| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            out.send(ctx.vp ^ d, *st);
        };
        let consume = |st: &mut u64,
                       _: &Ctx,
                       inbox: &mut Inbox<'_, u64>,
                       _: &mut crate::program::Outbox<u64>| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
        };
        // dynamic, planned, planned, dynamic-consume:
        // 3 + (1 + 1) + 1 + 3 = 9 barriers.
        prog.step(0, "dyn", body);
        prog.step_oblivious(0, "pl1", 1, move |ctx, _| Route::Data(ctx.vp ^ d), body);
        prog.step_oblivious(0, "pl2", 1, move |ctx, _| Route::Data(ctx.vp ^ d), body);
        prog.step(0, "consume", consume);
        let mut states: Vec<u64> = (0..v as u64).collect();
        let (b, _) = run_counting(&prog, &mut states, 2, &RunOptions::default());
        assert_eq!(b, 9, "prepare pipelining must skip the extra barrier between planned steps");
    }

    /// Raw sharded run exposing rounds *and* outcome (the failure tests pin
    /// both).
    fn run_raw(
        prog: &Program<u64, u64>,
        states: &mut [u64],
        n_shards: usize,
        opts: &RunOptions,
    ) -> (u64, Result<(), ModelError>) {
        let spec = GranSpec { levels: prog.log_v(), gran_shift: 0, full: true };
        let mut trace = TraceBuilder::new(prog.v(), prog.n(), prog.steps().len());
        let mut log = None;
        run_sharded(prog, states, spec, n_shards, opts, &mut trace, &mut log)
    }

    #[test]
    fn vp_panics_exit_the_gang_in_lockstep_at_every_width() {
        let v = 8usize;
        let boom = |_: &mut u64, ctx: &Ctx, _: &mut Inbox<'_, u64>, _: &mut crate::program::Outbox<u64>| {
            if ctx.vp == 5 {
                panic!("vp exploded");
            }
        };
        let want = ModelError::VpPanic { step: "boom", vp: 5, payload: "vp exploded".into() };

        // Dynamic protocol: the panic settles before the flush barrier, so
        // the whole gang exits at round 1 — no matter the width.
        let mut dynamic: Program<u64, u64> = Program::new(v, v);
        dynamic.step(0, "boom", boom);
        for w in [2usize, 4, 8] {
            let mut states = vec![0u64; v];
            let (rounds, outcome) = run_raw(&dynamic, &mut states, w, &RunOptions::default());
            assert_eq!(outcome.unwrap_err(), want, "dynamic error diverges at {w} workers");
            assert_eq!(rounds, 1, "dynamic gang must exit at the flush barrier at {w} workers");
        }

        // A payload-free plan is shard-local at every width, so under
        // fusion the single superstep runs with zero barriers: the panic
        // settles inside the fused iteration, there is no later non-fused
        // step for healthy peers to wait at, and every worker leaves
        // without ever touching the barrier.
        let mut planned: Program<u64, u64> = Program::new(v, v);
        planned.step_oblivious(0, "boom", 0, |_, _| Route::End, boom);
        for w in [2usize, 4, 8] {
            let mut states = vec![0u64; v];
            let (rounds, outcome) = run_raw(&planned, &mut states, w, &RunOptions::default());
            assert_eq!(outcome.unwrap_err(), want, "fused error diverges at {w} workers");
            assert_eq!(rounds, 0, "fused gang must exit without any barrier at {w} workers");
        }

        // Fusion off (the one-barrier protocol): the prepare barrier is
        // round 1, the panicking exec settles before round 2 — the exit.
        for w in [2usize, 4, 8] {
            let mut states = vec![0u64; v];
            let opts = RunOptions { fuse: false, ..Default::default() };
            let (rounds, outcome) = run_raw(&planned, &mut states, w, &opts);
            assert_eq!(outcome.unwrap_err(), want, "planned error diverges at {w} workers");
            assert_eq!(rounds, 2, "planned gang must exit at the exec barrier at {w} workers");
        }
    }

    #[test]
    fn gang_barrier_watchdog_poisons_instead_of_deadlocking() {
        use std::time::Duration;
        let b = std::sync::Arc::new(GangBarrier::new(3, Some(Duration::from_millis(20))));
        // Two of three waiters arrive; the watchdog fires and both get the
        // missing count. The absent waiter finds the barrier poisoned.
        let (r1, r2) = std::thread::scope(|s| {
            let b1 = std::sync::Arc::clone(&b);
            let h1 = s.spawn(move || b1.wait());
            let b2 = std::sync::Arc::clone(&b);
            let h2 = s.spawn(move || b2.wait());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(r1, Err(1));
        assert_eq!(r2, Err(1));
        assert_eq!(b.wait(), Err(1), "a poisoned barrier must stay poisoned");

        // Without a timeout (and with one, when everyone shows up) the
        // barrier behaves like `std::sync::Barrier`.
        let b = GangBarrier::new(2, Some(Duration::from_millis(500)));
        std::thread::scope(|s| {
            let h = s.spawn(|| b.wait());
            assert_eq!(b.wait(), Ok(()));
            assert_eq!(h.join().unwrap(), Ok(()));
        });
    }

    #[test]
    fn stalled_worker_surfaces_as_gang_stall_not_deadlock() {
        use std::time::Duration;
        let v = 8usize;
        // VP 5 (shard 1 of 2) outsleeps the watchdog by a wide margin; the
        // healthy worker's wait times out and the run reports the
        // structured stall instead of hanging.
        let mut prog: Program<u64, u64> = Program::new(v, v);
        prog.step(0, "naps", |_, ctx, _, _| {
            if ctx.vp == 5 {
                std::thread::sleep(Duration::from_millis(300));
            }
        });
        let opts =
            RunOptions { stall_timeout: Some(Duration::from_millis(50)), ..Default::default() };
        let mut states = vec![0u64; v];
        let (_, outcome) = run_raw(&prog, &mut states, 2, &opts);
        assert_eq!(
            outcome.unwrap_err(),
            ModelError::GangStall { round: 1, missing: 1, stalled: vec![] },
            "a lost worker must become a structured error"
        );
    }
}
