//! The algorithm abstraction: a network-oblivious algorithm bundles the
//! choice of `v(n)`, the initial data layout, the static superstep program,
//! and the output extraction.

use crate::engine::{run, run_folded, RunOptions, RunResult};
use crate::program::Program;
use nob_core::{CommTrace, ModelError};

/// A network-oblivious algorithm in the sense of the paper: specified on
/// `M(v(n))` with no machine parameters, executable on any folding.
///
/// Implementations must be *static*: the superstep sequence returned by
/// [`NobAlgorithm::build`] may depend on `n` only, never on the input values
/// (this is the Section-3 restriction under which the optimality theorem
/// holds, and it is what lets a single trace stand for all inputs of size `n`).
pub trait NobAlgorithm {
    /// Per-VP local memory.
    type State: Send + Clone;
    /// Message payload (each message is constant-size in the model).
    type Msg: Send;
    /// Problem input.
    type Input: ?Sized;
    /// Problem output.
    type Output;

    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> String;

    /// The number of virtual processors `v(n)` the algorithm is specified on.
    fn v(&self, n: usize) -> usize;

    /// Distributes the input across the `v(n)` VPs (the paper's assumptions
    /// on initial data layout live here).
    fn init(&self, n: usize, input: &Self::Input) -> Vec<Self::State>;

    /// Builds the static superstep program for input size `n`.
    fn build(&self, n: usize) -> Program<Self::State, Self::Msg>;

    /// Collects the output from the final VP states.
    fn extract(&self, n: usize, states: Vec<Self::State>) -> Self::Output;
}

/// Runs `alg` on `M(v(n))` at full granularity and returns the output
/// together with the communication trace.
pub fn execute<A: NobAlgorithm>(
    alg: &A,
    n: usize,
    input: &A::Input,
    opts: &RunOptions,
) -> Result<(A::Output, CommTrace), ModelError> {
    let states = alg.init(n, input);
    let prog = alg.build(n);
    let RunResult { states, trace, .. } = run(&prog, states, opts)?;
    Ok((alg.extract(n, states), trace))
}

/// Runs `alg` on `M(v(n))` keeping the raw message log (for the
/// ascend–descend protocol rewriter).
#[allow(clippy::type_complexity)]
pub fn execute_with_log<A: NobAlgorithm>(
    alg: &A,
    n: usize,
    input: &A::Input,
) -> Result<(A::Output, CommTrace, Vec<Vec<(u32, u32)>>), ModelError> {
    let states = alg.init(n, input);
    let prog = alg.build(n);
    let RunResult { states, trace, message_log, .. } =
        run(&prog, states, &RunOptions::with_log())?;
    let message_log = message_log.ok_or(ModelError::BadParameter {
        what: "message_log",
        reason: "engine returned no message log for a log-requesting run",
    })?;
    Ok((alg.extract(n, states), trace, message_log))
}

/// Runs the *folding* of `alg` on `M(p)`: the executable counterpart of the
/// analytic [`CommTrace::fold`]. Outputs must agree with [`execute`] (the
/// integration suite asserts this for every algorithm in the repository).
pub fn execute_folded<A: NobAlgorithm>(
    alg: &A,
    n: usize,
    input: &A::Input,
    p: usize,
    opts: &RunOptions,
) -> Result<(A::Output, CommTrace), ModelError> {
    let states = alg.init(n, input);
    let prog = alg.build(n);
    let RunResult { states, trace, .. } = run_folded(&prog, states, p, opts)?;
    Ok((alg.extract(n, states), trace))
}
