//! # nob-machine — an instrumented superstep virtual machine for `M(v)`
//!
//! Executes network-oblivious algorithms written for the specification model
//! `M(v(n))` of Bilardi et al. (*Network-Oblivious Algorithms*, IPDPS'07 /
//! JACM'16), recording the communication metrics that the `nob-core` model
//! stack evaluates on `M(p, σ)` and D-BSP(p, g, ℓ).
//!
//! ## Programming model
//!
//! A *static* algorithm is a [`program::Program`]: a fixed sequence of
//! labelled supersteps. Each superstep is one SPMD closure executed by every
//! virtual processor (VP); a VP reads the messages delivered by the previous
//! superstep, updates its local state, and sends constant-size messages to
//! peers in its label-cluster. This mirrors the paper's `M(v)` primitives
//! (`send`, `receive`, `sync(i)`) while making the Section-3 "static
//! algorithm" restriction — same label sequence for all processing elements,
//! terminating with a sync — a structural property of the program object.
//!
//! ## The three execution tiers
//!
//! Every superstep executes on one of three tiers, chosen per step at run
//! time from what the program declares (or has captured — see below) and
//! where the step's traffic stays:
//!
//! 1. **Dynamic** — no plan. The engine discovers the pattern message by
//!    message; three barriers per superstep on the sharded path.
//! 2. **Planned** — a compiled [`plan::StepPlan`] (declared or captured).
//!    Analytic metrics, direct-write scatter, one barrier per superstep.
//! 3. **Fused** — a planned step whose payloads provably stay within each
//!    worker's shard ([`plan::StepPlan::shard_local`]). Consecutive fused
//!    steps run entirely worker-locally with **zero barriers** — the
//!    superstep pipeline never synchronizes until the next cross-shard or
//!    dynamic step.
//!
//! How a step acquires its plan:
//!
//! * **Dynamic** ([`program::Program::step`]): the closure's sends define
//!   the pattern. The engine discovers it message by message — staging the
//!   `(dst, envelope)` pairs, validating the cluster constraint, streaming
//!   per-fold degree counters, then counting-sort scattering payloads into
//!   the next superstep's mailbox arena.
//! * **Oblivious** ([`program::Program::step_oblivious`]): the paper's
//!   defining property — a network-oblivious pattern is a *static function
//!   of the VP index and superstep* — is declared as a route
//!   (`fn(&Ctx, k) → `[`plan::Route`]) and compiled at build time into a
//!   [`plan::StepPlan`]: **analytic metrics** (the superstep record is
//!   emitted in `O(log v)` per run, bit-for-bit identical to the streamed
//!   counters, at every granularity at once), a **one-time
//!   cluster-constraint proof** (validated runs skip the per-message
//!   check), and a **direct-write scatter** — VP closures write payloads
//!   straight into the destination arena slot, eliminating the staging
//!   copy and the counting sort: into the whole-machine arena on the
//!   serial path, and straight into the destination *shard's* arena on
//!   the sharded path (each worker pre-partitions its write arena by
//!   (source shard, destination VP) and publishes a window peers write
//!   through — no lane staging, no gather pass, one barrier per planned
//!   superstep). Plan invariants: a plan never changes semantics, only
//!   cost (enforced by differential suites); under validation a
//!   mis-declared route is rejected on every path
//!   ([`nob_core::ModelError::PlanMismatch`]) — each send is checked
//!   against the route in lockstep, dummies included — and a
//!   cluster-violating route faults at compile time and reports like the
//!   dynamic engine would. With validation *off*, a mis-declared plan is
//!   the program's problem (exactly like a cluster violation is), but
//!   memory safety never trusts the declaration: on both paths the direct
//!   writers bound every write by its planned slot region and verify the
//!   payload multiset before any arena is published, so a divergent
//!   multiset still surfaces as `PlanMismatch` rather than executing (a
//!   divergence that *preserves* all per-region counts — one permutation
//!   declared as another — executes with the declared metrics recorded
//!   unchecked; only validation pins the exact sequence).
//! * **Captured** ([`program::Program::capture_plans`]): a program whose
//!   routes are deterministic for its inputs but inconvenient (or
//!   impossible) to declare obliviously can record one dynamic run and
//!   compile the observed routes into `StepPlan`s table-backed per step —
//!   replayed, validated and direct-written exactly like declared routes.
//!   **Cache invalidation**: a capture is valid only for the same program
//!   instance and the same `(initial states, v)` it was recorded against.
//!   A run whose behavior drifts from its capture is *detected*, never
//!   silently mis-delivered: under validation every send is checked
//!   against the captured route in lockstep, and even without validation
//!   the direct writers' slot bounds and payload-total gates reject any
//!   count-changing drift — either way a structured
//!   [`nob_core::ModelError::PlanMismatch`], or a transparent re-execution
//!   on the dynamic path under [`engine::PlanFallback::Dynamic`].
//!
//! ## Shard/lane architecture
//!
//! The execution core is a **persistent sharded executor** built on the
//! observation that the paper's folding semantics *is* a static sharding of
//! the VP space: processor `r` of `M(p)` simulates the `v/p` consecutive
//! VPs starting at `r·v/p`. Concretely:
//!
//! * **Shards** (`shard`): `n` long-lived workers, spawned once per run,
//!   each exclusively owning a contiguous VP shard — its states, its pair
//!   of double-buffered mailbox `mailbox::Arena`s, its send-staging
//!   buffer, and a private set of shard-local degree counters
//!   ([`nob_core::metrics::DegreeCounters`]). There is no global mailbox
//!   and no global scatter.
//! * **Lanes** ([`mailbox`]): cross-shard messages of *dynamic* supersteps
//!   travel through one structure-of-arrays lane per (source, destination)
//!   shard pair — compact `(src, dst, has-payload)` headers separate from
//!   the payload stream, so metric scans never touch payload bytes and the
//!   paper's dummy messages occupy no payload slot. Which pairs can ever
//!   be active is precomputed per program by [`program::LanePlan`] from
//!   the superstep labels: an `i`-superstep only connects shards sharing
//!   the top `i` shard-index bits, and supersteps with `label ≥ log n`
//!   touch no lane at all.
//! * **Barrier = handoff + merge** (dynamic supersteps): the
//!   inter-superstep barrier is a per-lane ownership handoff (send phase
//!   writes lane rows, gather phase drains lane columns) plus an
//!   `O(n · log v)` epoch-merge of the shard counters
//!   ([`nob_core::metrics::EpochMerge`]) — replacing the global counting
//!   sort in which every worker re-scanned the entire staging buffer.
//!   Three barriers per superstep: flush, gather, merge.
//! * **One barrier** (planned supersteps): a superstep with a compiled
//!   plan skips lanes, gather and merge entirely. Each worker
//!   pre-partitions its write arena by (source shard, destination VP)
//!   from the declared routes — pipelined into the previous superstep's
//!   exec phase — and publishes a window; peer closures then write
//!   payloads straight into the remote arena slots their route owns,
//!   while the coordinator pushes the plan's precomputed record with
//!   nothing to merge. One barrier per planned superstep, after which
//!   every worker commits its own (fully written, total-checked) arena.
//! * **Zero barriers** (fused supersteps): when a plan's compile-time
//!   payload-locality summary proves every payload stays within its
//!   sender's shard at the current width, each worker sizes its arena
//!   from the plan's `O(1)` [`plan::PlanLayout`] (or a shard-local count
//!   pass), executes, and commits — entirely locally, no window
//!   publication, no barrier at all. Runs of consecutive fused steps form
//!   an unsynchronized per-worker pipeline; metrics are still pushed per
//!   superstep and traces stay bit-for-bit identical. Disable with
//!   [`engine::RunOptions::fuse`]`= false` to reproduce the one-barrier
//!   protocol exactly.
//!
//! The serial path (1 shard) keeps its proven **zero-allocation steady
//! state** on both the dynamic and the planned path; all paths produce
//! bit-for-bit identical states, traces and message logs (differential
//! property suites in `tests/`).
//!
//! ### Unsafe surface
//!
//! All `unsafe` is confined to [`mailbox`] behind five documented
//! invariants: (1) arena slabs track their initialized prefix, (2) inbox
//! views uniquely own the messages handed to closures, (3) lane-grid
//! access is phase-disciplined — row-exclusive while sending,
//! column-exclusive while gathering, with the executor barrier providing
//! the happens-before edges — (4) the serial planned writer
//! (`mailbox::DirectOut`) bounds every payload write by its destination's
//! planned slot range and the engine refuses to publish an arena whose
//! written total disagrees with the plan, and (5) cross-shard planned
//! writes (`mailbox::DirectShard` through `mailbox::DirectGrid`) follow
//! the same discipline at slot-region granularity: windows are published
//! only in prepare phases and read only in the exec phases after the next
//! barrier (double-buffered by arena parity so republication never races
//! a reader), each worker owns exactly its own cursor row of every
//! window, every write is bounds-checked against its (source shard,
//! destination) region, and per-worker written totals gate every commit —
//! so slabs are only ever committed fully initialized, each slot written
//! exactly once, whatever the routes declared. Lane payload moves
//! themselves go through safe `Vec` drains, so abandoned supersteps
//! (validation errors, panics) drop staged messages through ordinary
//! destructors.
//!
//! ## Robustness
//!
//! Failures are structured, deterministic, and never hang the gang:
//!
//! * **Structured panic recovery** — a VP closure that panics is downgraded
//!   to [`nob_core::ModelError::VpPanic`] (superstep name, offending VP,
//!   payload message preserved), identically on the serial and every
//!   sharded width; the gang exits its barrier protocol in lockstep and
//!   the run reports the lowest shard's error — the first in source order,
//!   matching serial semantics. Out-of-range destinations and a missing
//!   requested message log are likewise `ModelError`s, not panics;
//!   non-test engine code is panic-free by a tier-1 lint gate (residual
//!   `expect`s carry an `allow-panic:` justification).
//! * **Barrier watchdog** — [`engine::RunOptions::stall_timeout`] arms the
//!   gang barrier: a lost or descheduled worker poisons it and the run
//!   fails with [`nob_core::ModelError::GangStall`] instead of
//!   deadlocking.
//! * **Deterministic fault injection** — [`engine::RunOptions::faults`]
//!   accepts a [`nob_core::fault::FaultPlan`] addressing every phase
//!   boundary of both executors by `(site, shard, superstep, occurrence)`,
//!   injecting a model error or a panic through the exact abort path a
//!   real failure would take (sites are listed in the `shard` module
//!   docs). Without a plan the cost is one `Option` test per phase — the
//!   zero-allocation steady state is unchanged.
//! * **Graceful degradation** — [`engine::PlanFallback::Dynamic`] lets a
//!   non-validated run that trips a plan-mismatch safety net re-execute
//!   transparently on the dynamic path, recording the abandoned attempt's
//!   error in [`engine::RunResult::fallback`].
//!
//! The chaos suite (`tests/chaos.rs`) sweeps injected faults over
//! site × flavor × shard width and asserts structured errors, lockstep
//! exit, and bit-for-bit clean re-runs in the same process.
//!
//! ## Serving
//!
//! [`engine::run`] is batch-shaped: it spawns the gang, compiles plans,
//! executes one program and tears everything down. [`server::JobServer`]
//! is the serving counterpart — many program runs multiplexed over **one
//! persistent gang**:
//!
//! * **Gang lifetime** — the workers are spawned once, at server creation,
//!   and live until the server drops; dispatching a job costs two condvar
//!   rendezvous per worker (job handoff and done handshake) instead of
//!   thread spawns and joins. Worker arenas, staging buffers, scatter
//!   scratch, shard counters and the trace builder are recycled across
//!   jobs, extending the engine's zero-allocation steady state *across*
//!   jobs (pinned by `tests/allocation.rs`).
//! * **Plan cache** — compiled programs (StepPlans, layouts, lane plans,
//!   declared send totals) are cached under `(shape fingerprint, v,
//!   n_shards)`, where the shape is the submitter-declared
//!   [`server::ShapeKey`]. Captured-plan entries additionally key on a
//!   fingerprint of the initial states — the capture validity rule above —
//!   so a lookalike job with different data re-captures instead of
//!   replaying a stale route. The cache only ever changes *cost*: a wrong
//!   or stale entry surfaces as [`nob_core::ModelError::PlanMismatch`] (or
//!   a [`engine::PlanFallback::Dynamic`] re-run) through the same safety
//!   gates that police declared routes.
//! * **Admission** — FIFO with one size-aware exception: the earliest
//!   small job (`v ≤ small_cutoff`) overtakes a large queued head, at most
//!   `max_overtakes` times, so interactive jobs are not starved behind a
//!   bulk sort and bulk sorts are not starved by a stream of small ones.
//! * **Isolation** — a `VpPanic`, injected fault or `GangStall` fails only
//!   its own job's ticket; the barrier is re-armed with a fresh generation
//!   and the next job runs on the same, still-warm gang.
//!
//! ## Observability
//!
//! Phase-level telemetry follows the fault-injection design: structured,
//! deterministic to wire up, and provably free when off.
//!
//! * **Arming** — [`engine::RunOptions::telemetry`] /
//!   [`server::ServerConfig::telemetry`] take an
//!   `Option<Arc<`[`nob_core::telemetry::TelemetrySink`]`>>`. Disarmed
//!   (the default) the cost is one `Option` discriminant test per phase
//!   boundary — no clock reads, no allocation, no atomics — pinned three
//!   ways by tier-1: counting-allocator tests
//!   (`tests/allocation.rs`), a bit-for-bit armed-vs-disarmed
//!   differential, and the `bench_smoke.sh` throughput guard row (which
//!   runs disarmed against the checked-in baseline).
//! * **Sites, not strings** — spans are keyed by the static
//!   [`nob_core::telemetry::Site`] enum (serial planned/exec/capture;
//!   shard prepare/exec/exec-planned/fused-exec/commit/flush/gather/
//!   merge/barrier-wait), one flat slot array per worker: recording is
//!   two `Instant` reads and a relaxed add, no hashing, no locks, no
//!   contention between gang members. Lifecycle counters
//!   ([`nob_core::telemetry::Counter`]) cover the JobServer the same way:
//!   queue wait, dispatch, service, epoch resets, admission overtakes,
//!   plan-cache hits/misses/evictions/bytes, the widest worker's mailbox
//!   arena footprint, pool reuses and serial-path jobs — every popped job
//!   accounts exactly one cache hit or miss, so `jobs == hits + misses`
//!   holds as a checkable invariant.
//! * **Reports** — [`nob_core::telemetry::TelemetrySink::run_report`]
//!   aggregates worker slots into a stable JSON snapshot
//!   (`{"schema":"nob-telemetry-v1","kind":"run",...}`, always all 12
//!   sites) and `server_report` the flat `"kind":"server"` counter
//!   object; `bench_smoke.sh` emits and jq-validates one of each, and
//!   the bench binaries surface them as per-row `phase_nanos` and
//!   queue-wait/service-time percentile columns that
//!   `bench_compare.sh` diffs informationally.
//! * **Fault attribution** — an armed sink also enriches
//!   [`nob_core::ModelError::GangStall`] with the stalled workers' last
//!   recorded phase, turning "the barrier timed out" into "worker 2
//!   never left `shard:exec` in superstep 5".
//!
//! ## Correctness tooling
//!
//! The contracts above that no compiler checks are enforced by
//! `nob-lint` (`crates/lint`), an offline, zero-dependency static
//! analyzer run by tier-1 (`cargo run --release -p nob-lint`). Its
//! scanner is comment/string/attribute-aware and skips `#[cfg(test)]`
//! items at module granularity, so the rules fire on exactly the
//! non-test engine code:
//!
//! * **no-panic** (NL001) — non-test engine code surfaces failures as
//!   `ModelError`s; every residual `unwrap`/`expect`/`panic!`/bare
//!   `assert!` carries an `allow-panic:` justification.
//! * **no-saturating** (NL002) — counts feeding the unsafe scatters use
//!   checked adds; `allow-saturating:` justifies display-only clamps.
//! * **unsafe-safety / unsafe-inventory** (NL003/NL004) — every `unsafe`
//!   carries a `// SAFETY:` comment (or rustdoc `# Safety` section), and
//!   per-file unsafe counts are pinned to a checked-in baseline so the
//!   surface documented above cannot grow silently.
//! * **ordering-justified** (NL005) — every `Ordering::SeqCst` carries an
//!   `// ordering:` comment saying why a total order is required (the
//!   round-stamped abort protocol is the canonical holder).
//! * **site-coverage** (NL006) — every telemetry [`Site`] and failpoint
//!   string is statically verified to have an instrumentation call site
//!   in the executors and a reference under `tests/`.
//! * **instant-gate** (NL007) — the zero-cost telemetry contract:
//!   `Instant::now` appears only behind an armed-sink guard
//!   (`tele.map(…)`), so disarmed runs never read the clock.
//!
//! Rules, escape hatches and the baseline workflow are documented in
//! `crates/lint/README.md`; the deterministic JSON report
//! (`LINT_report.json`) is checked in next to the bench baselines.
//!
//! [`Site`]: nob_core::telemetry::Site
//!
//! ## Execution modes
//!
//! * [`engine::run`] — full-granularity execution on `M(v)`, sharded across
//!   the worker budget ([`engine::RunOptions::workers`], defaulting to the
//!   rayon pool width, which honors `NOB_THREADS`). Produces the output
//!   states plus a [`nob_core::CommTrace`] carrying per-superstep degrees
//!   for *every* folding `M(2^j)` at once.
//! * [`engine::run_folded`] — actually executes the folding on `p < v`
//!   processors, recording metrics at granularity `p`. Under the sharded
//!   executor this is the degenerate case *shard = fold* (capped by the
//!   worker budget), so full and folded execution share one code path.
//! * [`protocol::ascend_descend`] — rewrites a message log into the
//!   Section-5 ascend–descend protocol execution, the basis of Theorem 5.3.
//! * [`reference::run_reference`] — the preserved legacy engine (per-VP
//!   `Vec` mailboxes), kept as the differential-testing and benchmarking
//!   baseline for the sharded engine.

// Unsafe is denied everywhere except the `mailbox` module, which confines
// the engine's entire unsafe surface behind documented invariants (and the
// rayon shim's scoped-spawn lifetime extension, which lives in the shim
// crate).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod mailbox;
pub mod plan;
pub mod program;
pub mod protocol;
pub mod reference;
pub mod server;
mod shard;
pub mod traits;

pub use engine::{run, run_folded, PlanFallback, RunOptions, RunResult};
pub use mailbox::Inbox;
pub use plan::{Route, StepPlan};
pub use program::{Ctx, LanePlan, Outbox, Program, Superstep};
pub use server::{
    JobOptions, JobResult, JobServer, JobSpec, JobTicket, ProgramSource, ServerConfig,
    ServerStats, ShapeKey,
};
pub use traits::{execute, execute_folded, execute_with_log, NobAlgorithm};
