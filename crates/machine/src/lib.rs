//! # nob-machine — an instrumented superstep virtual machine for `M(v)`
//!
//! Executes network-oblivious algorithms written for the specification model
//! `M(v(n))` of Bilardi et al. (*Network-Oblivious Algorithms*, IPDPS'07 /
//! JACM'16), recording the communication metrics that the `nob-core` model
//! stack evaluates on `M(p, σ)` and D-BSP(p, g, ℓ).
//!
//! ## Programming model
//!
//! A *static* algorithm is a [`program::Program`]: a fixed sequence of
//! labelled supersteps. Each superstep is one SPMD closure executed by every
//! virtual processor (VP); a VP reads the messages delivered by the previous
//! superstep, updates its local state, and sends constant-size messages to
//! peers in its label-cluster. This mirrors the paper's `M(v)` primitives
//! (`send`, `receive`, `sync(i)`) while making the Section-3 "static
//! algorithm" restriction — same label sequence for all processing elements,
//! terminating with a sync — a structural property of the program object.
//!
//! ## Shard/lane architecture
//!
//! The execution core is a **persistent sharded executor** built on the
//! observation that the paper's folding semantics *is* a static sharding of
//! the VP space: processor `r` of `M(p)` simulates the `v/p` consecutive
//! VPs starting at `r·v/p`. Concretely:
//!
//! * **Shards** ([`shard`]): `n` long-lived workers, spawned once per run,
//!   each exclusively owning a contiguous VP shard — its states, its pair
//!   of double-buffered mailbox [`mailbox::Arena`]s, its send-staging
//!   buffer, and a private set of shard-local degree counters
//!   ([`nob_core::metrics::DegreeCounters`]). There is no global mailbox
//!   and no global scatter.
//! * **Lanes** ([`mailbox`]): cross-shard messages travel through one
//!   structure-of-arrays lane per (source, destination) shard pair —
//!   compact `(src, dst, has-payload)` headers separate from the payload
//!   stream, so metric scans never touch payload bytes and the paper's
//!   dummy messages occupy no payload slot. Which pairs can ever be active
//!   is precomputed per program by [`program::LanePlan`] from the superstep
//!   labels: an `i`-superstep only connects shards sharing the top `i`
//!   shard-index bits, and supersteps with `label ≥ log n` touch no lane at
//!   all.
//! * **Barrier = handoff + merge**: the inter-superstep barrier is a
//!   per-lane ownership handoff (send phase writes lane rows, gather phase
//!   drains lane columns) plus an `O(n · log v)` epoch-merge of the shard
//!   counters ([`nob_core::metrics::EpochMerge`]) — replacing the global
//!   counting sort in which every worker re-scanned the entire staging
//!   buffer.
//!
//! The serial path (1 shard) keeps its proven **zero-allocation steady
//! state**; both paths produce bit-for-bit identical states, traces and
//! message logs (differential property suites in `tests/`).
//!
//! ### Unsafe surface
//!
//! All `unsafe` is confined to [`mailbox`] behind three documented
//! invariants: (1) arena slabs track their initialized prefix, (2) inbox
//! views uniquely own the messages handed to closures, and (3) lane-grid
//! access is phase-disciplined — row-exclusive while sending,
//! column-exclusive while gathering, with the executor barrier providing
//! the happens-before edges. Lane payload moves themselves go through safe
//! `Vec` drains, so abandoned supersteps (validation errors, panics) drop
//! staged messages through ordinary destructors.
//!
//! ## Execution modes
//!
//! * [`engine::run`] — full-granularity execution on `M(v)`, sharded across
//!   the worker budget ([`engine::RunOptions::workers`], defaulting to the
//!   rayon pool width, which honors `NOB_THREADS`). Produces the output
//!   states plus a [`nob_core::CommTrace`] carrying per-superstep degrees
//!   for *every* folding `M(2^j)` at once.
//! * [`engine::run_folded`] — actually executes the folding on `p < v`
//!   processors, recording metrics at granularity `p`. Under the sharded
//!   executor this is the degenerate case *shard = fold* (capped by the
//!   worker budget), so full and folded execution share one code path.
//! * [`protocol::ascend_descend`] — rewrites a message log into the
//!   Section-5 ascend–descend protocol execution, the basis of Theorem 5.3.
//! * [`reference::run_reference`] — the preserved legacy engine (per-VP
//!   `Vec` mailboxes), kept as the differential-testing and benchmarking
//!   baseline for the sharded engine.

// Unsafe is denied everywhere except the `mailbox` module, which confines
// the engine's entire unsafe surface behind documented invariants (and the
// rayon shim's scoped-spawn lifetime extension, which lives in the shim
// crate).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod mailbox;
pub mod program;
pub mod protocol;
pub mod reference;
mod shard;
pub mod traits;

pub use engine::{run, run_folded, RunOptions, RunResult};
pub use mailbox::Inbox;
pub use program::{Ctx, LanePlan, Outbox, Program, Superstep};
pub use traits::{execute, execute_folded, execute_with_log, NobAlgorithm};
