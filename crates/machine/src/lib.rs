//! # nob-machine — an instrumented superstep virtual machine for `M(v)`
//!
//! Executes network-oblivious algorithms written for the specification model
//! `M(v(n))` of Bilardi et al. (*Network-Oblivious Algorithms*, IPDPS'07 /
//! JACM'16), recording the communication metrics that the `nob-core` model
//! stack evaluates on `M(p, σ)` and D-BSP(p, g, ℓ).
//!
//! ## Programming model
//!
//! A *static* algorithm is a [`program::Program`]: a fixed sequence of
//! labelled supersteps. Each superstep is one SPMD closure executed by every
//! virtual processor (VP); a VP reads the messages delivered by the previous
//! superstep, updates its local state, and sends constant-size messages to
//! peers in its label-cluster. This mirrors the paper's `M(v)` primitives
//! (`send`, `receive`, `sync(i)`) while making the Section-3 "static
//! algorithm" restriction — same label sequence for all processing elements,
//! terminating with a sync — a structural property of the program object.
//!
//! ## Execution modes
//!
//! * [`engine::run`] — full-granularity execution on `M(v)`, parallelized
//!   across VPs with rayon. Produces the output states plus a
//!   [`nob_core::CommTrace`] carrying per-superstep degrees for *every*
//!   folding `M(2^j)` at once.
//! * [`engine::run_folded`] — actually executes the folding on `p < v`
//!   processors (processor `r` simulates the `v/p` consecutive VPs starting
//!   at `r·v/p`, as prescribed in Section 2), recording metrics at
//!   granularity `p`. Used to cross-check the analytic folding.
//! * [`protocol::ascend_descend`] — rewrites a message log into the
//!   Section-5 ascend–descend protocol execution, the basis of Theorem 5.3.
//! * [`reference::run_reference`] — the preserved legacy engine (per-VP
//!   `Vec` mailboxes), kept as the differential-testing and benchmarking
//!   baseline for the arena engine; see [`mailbox`] for the arena layout.

// Unsafe is denied everywhere except the `mailbox` module, which confines
// the arena engine's entire unsafe surface behind documented invariants
// (and the rayon shim's scoped-spawn lifetime extension, which lives in the
// shim crate).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod mailbox;
pub mod program;
pub mod protocol;
pub mod reference;
pub mod traits;

pub use engine::{run, run_folded, RunOptions, RunResult};
pub use mailbox::Inbox;
pub use program::{Ctx, Outbox, Program, Superstep};
pub use traits::{execute, execute_folded, execute_with_log, NobAlgorithm};
