//! Static communication plans: the compiled form of an *oblivious*
//! superstep.
//!
//! The defining property of a network-oblivious algorithm is that its
//! communication pattern is a **static function of the VP index and the
//! superstep** — yet a closure-driven engine still pays per-message costs
//! (cluster validation, streaming degree counters, a staged counting-sort
//! scatter that touches every payload twice) as if destinations were
//! dynamic. A [`StepPlan`] exploits the declared structure instead:
//!
//! * **Analytic metrics** ([`nob_core::metrics::StepMetrics`]): the declared
//!   route is streamed through the engine's own degree counters **once, at
//!   program build time**; every later execution emits the superstep record
//!   in `O(log v)`, bit-for-bit identical to what streamed counters would
//!   produce (dummies included), at every granularity at once.
//! * **A one-time cluster-constraint proof**: every declared `(src, dst)`
//!   pair is checked against [`message_allowed`] at compile time, so
//!   validated runs skip the per-message check entirely. A route that
//!   *violates* the constraint is recorded as a [`StepPlan::fault`]: running
//!   it with validation on reports the violation (like the dynamic engine
//!   would), and with validation off the step simply falls back to the
//!   dynamic path.
//! * **A direct-write scatter**: per execution, one pass over the route
//!   yields exact per-destination counts; after the ordinary prefix sum the
//!   VP closures write payloads **straight into the destination arena
//!   slot** through cursor-guarded raw writes
//!   (`crate::mailbox::DirectOut`) — no staging copy, no counting sort.
//!
//! A *declared* plan deliberately stores **no O(v) or O(messages) tables** —
//! only the boxed route function, `O(log v)` metric words and an `O(1)`
//! [`PlanLayout`] summary when the per-destination payload counts are
//! uniform (an explicit offsets table is kept only for small machines, see
//! [`LAYOUT_TABLE_MAX_V`]) — so an 850-superstep folded Columnsort carries
//! kilobytes of plan state, not hundreds of megabytes of precomputed slots.
//! A *captured* plan (`StepPlan::compile_captured`) is the deliberate
//! exception: it **is** a table — the exact `(dst, kind)` sequence of one
//! recorded dynamic superstep, wrapped in a route closure and compiled
//! through the same pipeline, so replays get the identical metrics,
//! cluster proof and mis-declaration detection as declared routes.
//!
//! # Mis-declared routes
//!
//! The closure of a planned superstep keeps sending through the ordinary
//! [`crate::program::Outbox`] API (same destinations, same order), so a
//! declaration can disagree with reality. Safety never depends on honesty:
//! the direct writer bounds every write by the destination's planned slot
//! range and the engine checks the written total before publishing the
//! arena, so any mismatch in the *data multiset* surfaces as
//! [`ModelError::PlanMismatch`] instead of corrupt memory or metrics.
//! Validated runs additionally walk the declared route in lockstep with the
//! actual sends (destination, kind *and* order, dummies included) and
//! reject the first divergence.

use crate::program::Ctx;
use nob_core::folding::message_allowed;
use nob_core::metrics::{StepMetrics, StepMetricsBuilder};
use nob_core::ModelError;

/// Largest machine for which a non-uniform per-destination layout is kept
/// as an explicit offsets table (`(v + 1) · 4` bytes per step — 16 KiB at
/// this cap). Beyond it a non-uniform plan simply keeps the counting-pass
/// path: an 850-superstep program must never trade one route enumeration
/// per execution for hundreds of megabytes of resident tables.
pub const LAYOUT_TABLE_MAX_V: usize = 4096;

/// The per-destination payload shape of a plan, detected once at compile
/// time. It lets the executors size and partition a write arena **without
/// enumerating the route** (the planned path's remaining per-message cost):
/// the serial engine skips `StepPlan::count_data` entirely, and a sharded
/// worker running a shard-local step skips its region-counting pass.
#[derive(Debug, Clone)]
pub enum PlanLayout {
    /// Every destination receives exactly this many payload messages
    /// (`O(1)` state — covers butterflies, shuffles, transposes, and idle
    /// steps, where the count is 0).
    Uniform(u32),
    /// Prefix-sum offsets table (`v + 1` entries): destination `d` receives
    /// `table[d + 1] - table[d]` payloads. Only kept for machines up to
    /// [`LAYOUT_TABLE_MAX_V`].
    Table(Box<[u32]>),
}

impl PlanLayout {
    /// Payload messages delivered to destination `dst`.
    #[inline]
    pub(crate) fn count(&self, dst: usize) -> u32 {
        match self {
            PlanLayout::Uniform(c) => *c,
            PlanLayout::Table(t) => t[dst + 1] - t[dst],
        }
    }

    /// Detects the layout of a per-destination count vector.
    fn detect(counts: &[u32], total_data: u64) -> Option<PlanLayout> {
        let first = counts.first().copied().unwrap_or(0);
        if counts.iter().all(|&c| c == first) {
            return Some(PlanLayout::Uniform(first));
        }
        // A table only helps when it is small, and its entries must fit the
        // u32 offsets the arenas run on.
        if counts.len() > LAYOUT_TABLE_MAX_V || total_data >= u64::from(u32::MAX) {
            return None;
        }
        let mut table = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        table.push(0);
        for &c in counts {
            acc += c; // fits: total_data < u32::MAX checked above
            table.push(acc);
        }
        Some(PlanLayout::Table(table.into_boxed_slice()))
    }
}

/// One declared message slot of an oblivious route: what the VP at `ctx`
/// does with its `k`-th send of the superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// A payload message to the given VP (the closure's matching
    /// `send(dst, …)`).
    Data(usize),
    /// A wiseness dummy to the given VP (the closure's matching
    /// `send_dummy(dst)`): metered, never delivered.
    Dummy(usize),
    /// No message in this slot (lets a single `out_degree` cover VPs with
    /// different fan-outs — boundary VPs, non-leaders, unwise variants).
    Skip,
    /// No message in this slot **or any later slot of this VP**: a
    /// terminator that lets sparse fan-outs (a leader scattering to its
    /// whole segment while everyone else idles) cost one route call per
    /// idle VP instead of `out_degree` — both in the engine's counting
    /// pass and in validation's exhaustion check. Use [`Route::Skip`] only
    /// for *holes* followed by more messages.
    End,
}

/// The dynamic form of a route: object-safe so plans can be stored
/// per-superstep without generics.
pub(crate) type RouteDyn = dyn Fn(&Ctx, usize) -> Route + Send + Sync;

/// Boxed [`RouteDyn`].
pub(crate) type RouteFn = Box<RouteDyn>;

/// The compiled communication plan of one oblivious superstep (see the
/// module docs). Built once per program by
/// [`crate::program::Program::step_oblivious`].
pub struct StepPlan {
    pub(crate) route: RouteFn,
    pub(crate) out_degree: usize,
    /// Machine geometry the plan was compiled for (route evaluation needs a
    /// full [`Ctx`]).
    pub(crate) v: usize,
    pub(crate) log_v: u32,
    pub(crate) n: usize,
    /// Precomputed per-fold-level metrics of the declared multiset.
    pub(crate) metrics: StepMetrics,
    /// Declared payload (deliverable) messages.
    pub(crate) total_data: u64,
    /// First route violation found at compile time (out-of-range
    /// destination or cluster escape), if any; a faulted plan is never
    /// executed directly.
    pub(crate) fault: Option<ModelError>,
    /// Cluster depth every *payload* message of this step stays within:
    /// `src` and `dst` of each payload share at least this many leading
    /// bits of their `log v`-bit VP ids (`log v` when the step sends no
    /// payloads, or only to self). Dummies are excluded — they write
    /// nothing, so they never force cross-shard machinery. A step is
    /// shard-local on `2^s` executor shards iff `min_locality >= s`, which
    /// is what makes it *fusible*: it can run with no barrier at all.
    pub(crate) min_locality: u32,
    /// Per-destination payload shape, when regular enough to exploit (see
    /// [`PlanLayout`]). `None` keeps the counting-pass path.
    pub(crate) layout: Option<PlanLayout>,
    /// Approximate resident bytes of this compiled plan: the struct itself,
    /// the layout table when one was materialized, and — for captured
    /// plans — the offset/slot tables owned by the route closure. The plan
    /// cache's LRU budget currency ([`crate::server::ServerConfig`]).
    pub(crate) approx_bytes: u64,
}

impl std::fmt::Debug for StepPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPlan")
            .field("out_degree", &self.out_degree)
            .field("v", &self.v)
            .field("total_data", &self.total_data)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

impl StepPlan {
    /// Compiles `route` for an `label`-superstep on `M(v)`: one enumeration
    /// of the declared multiset produces the analytic metrics, the payload
    /// total, and the cluster-constraint proof.
    pub(crate) fn compile(
        v: usize,
        log_v: u32,
        n: usize,
        label: u32,
        out_degree: usize,
        route: RouteFn,
    ) -> StepPlan {
        let mut metrics = StepMetricsBuilder::new(log_v);
        let mut total_data = 0u64;
        let mut fault = None;
        let mut min_locality = log_v;
        // Transient per-destination payload counts (compile-time only):
        // feeds the layout detection, dropped before the plan is stored.
        let mut counts = vec![0u32; v];
        let mut counts_ok = true;
        'scan: for vp in 0..v {
            let ctx = Ctx { vp, v, log_v, n };
            for k in 0..out_degree {
                let (dst, data) = match (route)(&ctx, k) {
                    Route::Data(d) => (d, true),
                    Route::Dummy(d) => (d, false),
                    Route::Skip => continue,
                    Route::End => break,
                };
                if dst >= v {
                    fault = Some(ModelError::BadParameter {
                        what: "dst",
                        reason: "message destination out of machine range",
                    });
                    break 'scan;
                }
                if !message_allowed(vp, dst, log_v, label) {
                    fault = Some(ModelError::ClusterViolation { label, src: vp, dst });
                    break 'scan;
                }
                metrics.record(vp, dst);
                if data {
                    total_data += 1;
                    match counts[dst].checked_add(1) {
                        Some(c) => counts[dst] = c,
                        // Dense beyond the design limit: the counting pass
                        // will surface the ModelError at run time; just
                        // decline to summarize the layout.
                        None => counts_ok = false,
                    }
                    if dst != vp {
                        min_locality = min_locality.min(log_v - 1 - (vp ^ dst).ilog2());
                    }
                }
            }
        }
        let (min_locality, layout) = if fault.is_none() && counts_ok {
            (min_locality, PlanLayout::detect(&counts, total_data))
        } else {
            (0, None)
        };
        let layout_bytes = match &layout {
            Some(PlanLayout::Table(t)) => (t.len() * std::mem::size_of::<u32>()) as u64,
            _ => 0,
        };
        StepPlan {
            route,
            out_degree,
            v,
            log_v,
            n,
            metrics: metrics.finish(),
            total_data,
            fault,
            min_locality,
            layout,
            approx_bytes: std::mem::size_of::<StepPlan>() as u64 + layout_bytes,
        }
    }

    /// Compiles a **captured route**: the exact message sequence of one
    /// recorded dynamic execution of a superstep, as per-VP prefix offsets
    /// (`v + 1` entries) over a flat `(dst, is_data)` slot table in send
    /// order. The table is wrapped in an ordinary route closure and pushed
    /// through [`StepPlan::compile`], so a captured plan gets the same
    /// analytic metrics, cluster proof, direct-write scatter and lockstep
    /// validation as a declared one — the executors cannot tell them apart,
    /// and a stale capture (the program's dynamic pattern changed) surfaces
    /// as a [`ModelError::PlanMismatch`] exactly like a mis-declared route.
    pub(crate) fn compile_captured(
        v: usize,
        log_v: u32,
        n: usize,
        label: u32,
        offsets: Vec<u32>,
        slots: Vec<(u32, bool)>,
    ) -> StepPlan {
        debug_assert_eq!(offsets.len(), v + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, slots.len());
        // The captured tables live on in the route closure below; account
        // them into the plan's resident size before they are moved.
        let table_bytes = (offsets.len() * std::mem::size_of::<u32>()
            + slots.len() * std::mem::size_of::<(u32, bool)>()) as u64;
        let out_degree = (0..v).map(|vp| (offsets[vp + 1] - offsets[vp]) as usize).max().unwrap_or(0);
        let route: RouteFn = Box::new(move |ctx: &Ctx, k: usize| {
            let lo = offsets[ctx.vp] as usize;
            if lo + k < offsets[ctx.vp + 1] as usize {
                let (dst, data) = slots[lo + k];
                if data {
                    Route::Data(dst as usize)
                } else {
                    Route::Dummy(dst as usize)
                }
            } else {
                Route::End
            }
        });
        let mut plan = StepPlan::compile(v, log_v, n, label, out_degree, route);
        plan.approx_bytes += table_bytes;
        plan
    }

    /// The compile-time route violation, if any.
    #[inline]
    pub fn fault(&self) -> Option<&ModelError> {
        self.fault.as_ref()
    }

    /// Approximate resident bytes of this compiled plan (struct, layout
    /// table, captured route tables) — what the server's plan cache budgets
    /// against.
    #[inline]
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Declared payload messages per execution.
    #[inline]
    pub fn total_data(&self) -> u64 {
        self.total_data
    }

    /// The precomputed analytic metrics of the declared multiset.
    #[inline]
    pub fn metrics(&self) -> &StepMetrics {
        &self.metrics
    }

    /// The per-destination payload layout summary, if compile detected one
    /// ([`PlanLayout::Uniform`] always, an explicit table only for small
    /// machines). `None` means the executors fall back to the
    /// `StepPlan::count_data` enumeration pass.
    #[inline]
    pub fn layout(&self) -> Option<&PlanLayout> {
        self.layout.as_ref()
    }

    /// Whether every payload of this step stays inside its source's shard
    /// when `M(v)` is folded onto `2^log_shards` contiguous shards — i.e.
    /// the step is *fusible*: it can execute without any cross-shard
    /// synchronization.
    #[inline]
    pub fn shard_local(&self, log_shards: u32) -> bool {
        self.min_locality >= log_shards
    }

    /// The route as a raw trait-object pointer plus `out_degree`, for the
    /// lifetime-free lockstep checker inside [`crate::mailbox::DirectOut`].
    /// The pointer is valid while the `&Program` owning this plan is
    /// borrowed — i.e. for the whole run.
    #[inline]
    pub(crate) fn route_raw(&self) -> (*const RouteDyn, usize) {
        (&*self.route as *const RouteDyn, self.out_degree)
    }

    /// Tallies the declared payload messages per destination into `counts`
    /// (the scatter's counting pass — one route call per declared slot, no
    /// staging, no per-message metric work). A route dense enough to
    /// overflow a per-destination `u32` count is a [`ModelError`], never a
    /// silent cap (a capped count would corrupt the prefix-sum offsets the
    /// unsafe scatter trusts).
    pub(crate) fn count_data(&self, counts: &mut [u32]) -> Result<(), ModelError> {
        debug_assert_eq!(counts.len(), self.v);
        for vp in 0..self.v {
            let ctx = Ctx { vp, v: self.v, log_v: self.log_v, n: self.n };
            for k in 0..self.out_degree {
                match (self.route)(&ctx, k) {
                    // Compile proved d < v.
                    Route::Data(d) => crate::mailbox::bump_count(&mut counts[d])?,
                    Route::End => break,
                    Route::Dummy(_) | Route::Skip => {}
                }
            }
        }
        Ok(())
    }

    /// Calls `f(src, dst, is_data)` for every declared message of the VPs in
    /// `vps`, in send order (ascending VP, then slot index) — the exact
    /// order the dynamic engine observes and logs.
    pub(crate) fn for_each_message(
        &self,
        vps: std::ops::Range<usize>,
        mut f: impl FnMut(usize, usize, bool),
    ) {
        for vp in vps {
            let ctx = Ctx { vp, v: self.v, log_v: self.log_v, n: self.n };
            for k in 0..self.out_degree {
                match (self.route)(&ctx, k) {
                    Route::Data(d) => f(vp, d, true),
                    Route::Dummy(d) => f(vp, d, false),
                    Route::Skip => {}
                    Route::End => break,
                }
            }
        }
    }
}

/// Advances a lockstep walk of one VP's declared route to its next
/// non-[`Route::Skip`] slot: returns `(dst, is_data)`, or `None` once the
/// declaration is exhausted (`k` reaches `out_degree` or the route returns
/// [`Route::End`]). The single walking implementation behind the
/// mis-declaration detectors of both direct writers
/// (`crate::mailbox::DirectOut` on the serial path,
/// `crate::mailbox::DirectShard` on the sharded one, both via
/// `DirectCheck`), so the two paths can never disagree on what a route
/// declares.
#[inline]
pub(crate) fn walk_next(
    route: &RouteDyn,
    ctx: &Ctx,
    k: &mut usize,
    out_degree: usize,
) -> Option<(usize, bool)> {
    while *k < out_degree {
        let r = (route)(ctx, *k);
        *k += 1;
        match r {
            Route::Data(d) => return Some((d, true)),
            Route::Dummy(d) => return Some((d, false)),
            Route::Skip => {}
            Route::End => {
                *k = out_degree;
                return None;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route_exchange(d: usize) -> RouteFn {
        Box::new(move |ctx: &Ctx, _k| Route::Data(ctx.vp ^ d))
    }

    #[test]
    fn compile_proves_cluster_constraint() {
        // vp ^ 4 crosses the bisection of v = 8: legal in a 0-superstep,
        // a compile-time fault in a 1-superstep.
        let ok = StepPlan::compile(8, 3, 8, 0, 1, route_exchange(4));
        assert!(ok.fault().is_none());
        assert_eq!(ok.total_data(), 8);
        let bad = StepPlan::compile(8, 3, 8, 1, 1, route_exchange(4));
        assert!(matches!(
            bad.fault(),
            Some(ModelError::ClusterViolation { label: 1, src: 0, dst: 4 })
        ));
        let oob = StepPlan::compile(8, 3, 8, 0, 1, Box::new(|_, _| Route::Data(8)));
        assert!(matches!(oob.fault(), Some(ModelError::BadParameter { .. })));
    }

    #[test]
    fn compile_metrics_count_dummies_and_skips() {
        // VP 0 sends one payload to 1 and one dummy to 2; everyone else idles.
        let plan = StepPlan::compile(
            4,
            2,
            4,
            0,
            2,
            Box::new(|ctx: &Ctx, k| match (ctx.vp, k) {
                (0, 0) => Route::Data(1),
                (0, 1) => Route::Dummy(2),
                _ => Route::Skip,
            }),
        );
        assert!(plan.fault().is_none());
        assert_eq!(plan.total_data(), 1);
        assert_eq!(plan.metrics().total_at(2, true), 2, "dummy counts in metrics");
        let mut counts = vec![0u32; 4];
        plan.count_data(&mut counts).unwrap();
        assert_eq!(counts, vec![0, 1, 0, 0], "dummy takes no payload slot");
        let mut seen = Vec::new();
        plan.for_each_message(0..4, |s, d, data| seen.push((s, d, data)));
        assert_eq!(seen, vec![(0, 1, true), (0, 2, false)]);
    }

    #[test]
    fn walk_next_skips_and_finishes() {
        let plan = StepPlan::compile(
            4,
            2,
            4,
            0,
            3,
            Box::new(|ctx: &Ctx, k| match (ctx.vp, k) {
                (1, 0) => Route::Skip,
                (1, 1) => Route::Data(0),
                (1, 2) => Route::Dummy(3),
                _ => Route::Skip,
            }),
        );
        let ctx = Ctx { vp: 1, v: 4, log_v: 2, n: 4 };
        let mut k = 0;
        assert_eq!(walk_next(&*plan.route, &ctx, &mut k, plan.out_degree), Some((0, true)));
        assert_eq!(walk_next(&*plan.route, &ctx, &mut k, plan.out_degree), Some((3, false)));
        assert_eq!(walk_next(&*plan.route, &ctx, &mut k, plan.out_degree), None);
        let idle = Ctx { vp: 2, v: 4, log_v: 2, n: 4 };
        let mut k = 0;
        assert_eq!(walk_next(&*plan.route, &idle, &mut k, plan.out_degree), None);
    }

    #[test]
    fn compile_detects_uniform_and_table_layouts() {
        // Butterfly exchange: exactly one payload per destination → Uniform(1).
        let fft = StepPlan::compile(8, 3, 8, 0, 1, route_exchange(1));
        assert!(matches!(fft.layout(), Some(PlanLayout::Uniform(1))));
        // All-idle step → Uniform(0).
        let idle = StepPlan::compile(8, 3, 8, 0, 1, Box::new(|_, _| Route::End));
        assert!(matches!(idle.layout(), Some(PlanLayout::Uniform(0))));
        assert_eq!(idle.min_locality, 3, "no payloads: locality is log v");
        // Skewed fan-in: VP 0 receives everything → explicit table (v small).
        let fan = StepPlan::compile(4, 2, 4, 0, 1, Box::new(|_, _| Route::Data(0)));
        match fan.layout() {
            Some(PlanLayout::Table(t)) => assert_eq!(&t[..], &[0, 4, 4, 4, 4]),
            other => panic!("expected table layout, got {other:?}"),
        }
        assert_eq!(fan.layout().map(|l| l.count(0)), Some(4));
        assert_eq!(fan.layout().map(|l| l.count(3)), Some(0));
        // A faulted compile never advertises a layout (or locality); it is
        // only trivially "local" at the degenerate one-shard fold.
        let bad = StepPlan::compile(8, 3, 8, 1, 1, route_exchange(4));
        assert!(bad.layout().is_none());
        assert!(!bad.shard_local(1));
    }

    #[test]
    fn min_locality_tracks_payload_cluster_depth() {
        // vp ^ 1 stays inside every 2-VP cluster: locality log_v - 1.
        let near = StepPlan::compile(8, 3, 8, 0, 1, route_exchange(1));
        assert_eq!(near.min_locality, 2);
        assert!(near.shard_local(2) && !near.shard_local(3));
        // vp ^ 4 crosses the bisection: locality 0, never shard-local.
        let far = StepPlan::compile(8, 3, 8, 0, 1, route_exchange(4));
        assert_eq!(far.min_locality, 0);
        assert!(far.shard_local(0) && !far.shard_local(1));
        // Self-sends and dummies don't narrow locality: a dummy across the
        // bisection touches no payload window, so the step stays fusible.
        let dummy = StepPlan::compile(
            8,
            3,
            8,
            0,
            2,
            Box::new(|ctx: &Ctx, k| match k {
                0 => Route::Data(ctx.vp),
                _ => Route::Dummy(ctx.vp ^ 4),
            }),
        );
        assert_eq!(dummy.min_locality, 3);
        assert!(dummy.shard_local(3));
    }

    #[test]
    fn captured_routes_compile_like_declared_ones() {
        // Capture of a dynamic run on v = 4: VP 0 sent to 1 then a dummy to
        // 0; VP 2 sent to 3; VPs 1 and 3 were silent.
        let offsets = vec![0u32, 2, 2, 3, 3];
        let slots = vec![(1u32, true), (0u32, false), (3u32, true)];
        let plan = StepPlan::compile_captured(4, 2, 4, 1, offsets, slots);
        assert!(plan.fault().is_none());
        assert_eq!(plan.total_data(), 2);
        assert_eq!(plan.out_degree, 2);
        let mut seen = Vec::new();
        plan.for_each_message(0..4, |s, d, data| seen.push((s, d, data)));
        assert_eq!(seen, vec![(0, 1, true), (0, 0, false), (2, 3, true)]);
        assert_eq!(plan.min_locality, 1, "both payloads stay in their pair");
        assert!(plan.shard_local(1));
        // A captured route that violates its superstep's cluster label is a
        // compile fault, exactly like a mis-declared oblivious route.
        let bad = StepPlan::compile_captured(4, 2, 4, 1, vec![0, 1, 1, 1, 1], vec![(2, true)]);
        assert!(matches!(bad.fault(), Some(ModelError::ClusterViolation { .. })));
    }
}
