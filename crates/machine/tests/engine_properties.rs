//! Property tests of the superstep engine: the folding semantics of
//! Section 2 must hold for *arbitrary* static programs, not just the
//! Section-4 algorithms.
//!
//! We generate random static programs — random labelled supersteps whose
//! SPMD closures derive a cluster-respecting communication pattern and a
//! state update from a per-step seed — and assert that folded execution
//! agrees with full-granularity execution on both outputs and metrics, at
//! every folding.

use nob_machine::{run, run_folded, Program, RunOptions};
use proptest::prelude::*;

/// Splitmix-style hash used by the generated SPMD closures (deterministic,
/// shared by every VP).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Builds a random static program on M(v) from per-superstep (label, seed,
/// fanout) descriptors. Each VP sends `fanout` messages to seed-derived
/// destinations inside its label-cluster and folds everything it receives
/// into its state.
fn build_program(v: usize, steps: &[(u32, u64, u8)]) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for &(raw_label, seed, fanout) in steps {
        let label = raw_label % log_v.max(1);
        prog.step(label, "random", move |st, ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
            let cluster = ctx.v >> label;
            let base = ctx.vp - ctx.vp % cluster;
            for k in 0..fanout {
                let dst = base + (mix(seed ^ (ctx.vp as u64) ^ (k as u64) << 32) as usize) % cluster;
                out.send(dst, *st ^ mix(seed.wrapping_add(k as u64)));
            }
            if mix(seed ^ ctx.vp as u64).is_multiple_of(3) {
                out.send_dummy(base + (mix(seed) as usize) % cluster);
            }
        });
    }
    // Terminal consume step (the model requires ending at a barrier anyway;
    // this makes the last messages visible in the final states).
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

fn arb_steps() -> impl Strategy<Value = (usize, Vec<(u32, u64, u8)>)> {
    (2u32..7).prop_flat_map(|log_v| {
        let v = 1usize << log_v;
        proptest::collection::vec((0u32..log_v, any::<u64>(), 0u8..4), 1..8)
            .prop_map(move |steps| (v, steps))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folded execution = full execution (outputs and all metrics), for
    /// arbitrary static programs and all foldings.
    #[test]
    fn folding_is_semantics_preserving((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).map(|x| x * 2 + 1).collect();
        let full = run(&prog, states.clone(), &RunOptions::default()).unwrap();
        let mut p = 2usize;
        while p <= v {
            let folded = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            prop_assert_eq!(&folded.states, &full.states, "states diverge at p = {}", p);
            let mut q = 2usize;
            while q <= p {
                prop_assert_eq!(folded.trace.fold(q), full.trace.fold(q));
                q *= 2;
            }
            p *= 2;
        }
    }

    /// Serial and parallel engine paths agree bit for bit.
    #[test]
    fn parallel_and_serial_execution_agree((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).collect();
        let serial =
            run(&prog, states.clone(), &RunOptions { parallel: false, ..Default::default() })
                .unwrap();
        let parallel =
            run(&prog, states, &RunOptions { parallel: true, ..Default::default() }).unwrap();
        prop_assert_eq!(serial.states, parallel.states);
        prop_assert_eq!(serial.trace, parallel.trace);
    }

    /// The message log exactly explains the per-superstep totals.
    #[test]
    fn message_log_matches_metrics((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).collect();
        let res = run(&prog, states, &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        prop_assert_eq!(log.len(), res.trace.steps.len());
        for (msgs, step) in log.iter().zip(&res.trace.steps) {
            prop_assert_eq!(msgs.len() as u64, step.total_msgs);
        }
    }

    /// The arena engine is bit-for-bit equivalent to the preserved legacy
    /// engine: same states, same trace, same message log — full granularity
    /// and every folding.
    #[test]
    fn arena_engine_matches_reference((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).map(|x| x * 3 + 1).collect();
        let arena = run(&prog, states.clone(), &RunOptions::with_log()).unwrap();
        let legacy =
            nob_machine::reference::run_reference(&prog, states.clone(), &RunOptions::with_log())
                .unwrap();
        prop_assert_eq!(&arena.states, &legacy.states);
        prop_assert_eq!(&arena.trace, &legacy.trace);
        prop_assert_eq!(&arena.message_log, &legacy.message_log);
        let mut p = 2usize;
        while p <= v {
            let a = run_folded(&prog, states.clone(), p, &RunOptions::default()).unwrap();
            let l = nob_machine::reference::run_folded_reference(
                &prog,
                states.clone(),
                p,
                &RunOptions::default(),
            )
            .unwrap();
            prop_assert_eq!(&a.states, &l.states, "folded states diverge at p = {}", p);
            prop_assert_eq!(&a.trace, &l.trace, "folded trace diverges at p = {}", p);
            p *= 2;
        }
    }

    /// The folded message log (satellite fix: `collect_messages` was silently
    /// ignored) aligns with the recorded supersteps and explains exactly the
    /// processor-external message totals.
    #[test]
    fn folded_message_log_matches_folded_metrics((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).collect();
        let mut p = 2usize;
        while p <= v {
            let res = run_folded(&prog, states.clone(), p, &RunOptions::with_log()).unwrap();
            let log = res.message_log.as_ref().expect("log requested");
            prop_assert_eq!(log.len(), res.trace.steps.len());
            for (msgs, step) in log.iter().zip(&res.trace.steps) {
                prop_assert_eq!(msgs.len() as u64, step.total_msgs);
                for &(ps, pd) in msgs {
                    prop_assert!((ps as usize) < p && (pd as usize) < p && ps != pd);
                }
            }
            p *= 2;
        }
    }

    /// The persistent sharded executor is bit-for-bit equivalent to the
    /// serial path on arbitrary static programs: same states, same trace,
    /// same message log — full granularity and every folding, at every
    /// shard width the machine admits.
    #[test]
    fn sharded_executor_matches_serial((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).map(|x| x * 5 + 3).collect();
        let serial = run(&prog, states.clone(), &RunOptions::with_log()).unwrap();
        for w in [2usize, 4] {
            let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
            let sh = run(&prog, states.clone(), &opts).unwrap();
            prop_assert_eq!(&sh.states, &serial.states, "states diverge at {} workers", w);
            prop_assert_eq!(&sh.trace, &serial.trace, "trace diverges at {} workers", w);
            prop_assert_eq!(&sh.message_log, &serial.message_log, "log diverges at {} workers", w);
            let mut p = 2usize;
            while p <= v {
                let sf = run_folded(
                    &prog,
                    states.clone(),
                    p,
                    &RunOptions { workers: Some(w), ..RunOptions::with_log() },
                )
                .unwrap();
                let lf = run_folded(&prog, states.clone(), p, &RunOptions::with_log()).unwrap();
                prop_assert_eq!(&sf.states, &lf.states, "folded states, p = {} w = {}", p, w);
                prop_assert_eq!(&sf.trace, &lf.trace, "folded trace, p = {} w = {}", p, w);
                prop_assert_eq!(&sf.message_log, &lf.message_log, "folded log, p = {} w = {}", p, w);
                p *= 2;
            }
        }
    }

    /// Validation-off sharded runs fall back to the all-pairs lane span, so
    /// even cluster-violating programs deliver exactly like the serial
    /// engine.
    #[test]
    fn sharded_executor_without_validation_matches_serial(seed in any::<u64>()) {
        let v = 16usize;
        let mut prog: Program<u64, u64> = Program::new(v, v);
        // A high-label superstep that ignores the cluster constraint: under
        // the lane plan these destinations would be unreachable.
        prog.step(3, "rogue", move |st, ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            let dst = (mix(seed ^ ctx.vp as u64) as usize) % ctx.v;
            out.send(dst, *st);
        });
        prog.step(3, "consume", |st, _ctx, inbox, _out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
        });
        let states: Vec<u64> = (0..v as u64).collect();
        let base = RunOptions { validate: false, ..Default::default() };
        let serial = run(&prog, states.clone(), &base).unwrap();
        for w in [2usize, 4] {
            let opts = RunOptions { workers: Some(w), ..base.clone() };
            let sh = run(&prog, states.clone(), &opts).unwrap();
            prop_assert_eq!(&sh.states, &serial.states, "states diverge at {} workers", w);
            prop_assert_eq!(&sh.trace, &serial.trace, "trace diverges at {} workers", w);
        }
    }

    /// The ascend–descend rewrite of any logged execution delivers every
    /// message and uses only labels < log p.
    #[test]
    fn ascend_descend_is_well_formed((v, steps) in arb_steps()) {
        let prog = build_program(v, &steps);
        let states: Vec<u64> = (0..v as u64).collect();
        let res = run(&prog, states, &RunOptions::with_log()).unwrap();
        let log = res.message_log.unwrap();
        let mut p = 2usize;
        while p <= v {
            let rewritten = nob_machine::protocol::ascend_descend(&res.trace, &log, p);
            let log_p = p.trailing_zeros();
            for s in &rewritten.steps {
                prop_assert!(s.label < log_p);
            }
            p *= 4;
        }
    }
}
