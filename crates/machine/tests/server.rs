//! Integration suite for the multi-tenant job server
//! ([`nob_machine::server`]): results must be bit-for-bit identical to the
//! batch engine's, the compiled-plan cache must key on `(shape, v, width)`
//! — plus the initial states for captured plans — and must degrade
//! structurally (never corrupt) when a cached entry goes stale, and a
//! failing job (injected fault, stall) must leave the persistent gang
//! serviceable for the next one.

use nob_core::fault::FaultPlan;
use nob_core::ModelError;
use nob_machine::plan::Route;
use nob_machine::server::{
    JobOptions, JobServer, JobSpec, ProgramSource, ServerConfig, ShapeKey,
};
use nob_machine::{run, PlanFallback, Program, RunOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Splitmix-style hash for value-dependent routes and state seeding.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A butterfly-style oblivious program: one planned superstep per level
/// (exchange with the `k`-th bit partner), which exercises every tier mix
/// the gang serves — cross-shard direct writes at the top levels, fused
/// shard-local steps at the bottom.
fn butterfly(v: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for i in 0..log_v {
        let bit = 1usize << (log_v - 1 - i);
        prog.step_oblivious(
            i,
            "bfly",
            1,
            move |ctx, _| Route::Data(ctx.vp ^ bit),
            move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_mul(31).wrapping_add(m);
                }
                out.send(ctx.vp ^ bit, *st ^ bit as u64);
            },
        );
    }
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

/// A value-dependent program (not declarable obliviously) for the captured
/// path, with a poison flag that flips its routing after capture —
/// `capture_replay.rs`'s staleness machinery.
fn poisonable(v: usize, flag: &Arc<AtomicBool>) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    let f = Arc::clone(flag);
    prog.step(0, "poisonable", move |st, ctx, inbox, out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
        let dst = if f.load(Ordering::Relaxed) {
            ctx.vp & !1
        } else {
            (ctx.vp + mix(*st) as usize % ctx.v) % ctx.v
        };
        out.send(dst, *st | 1);
    });
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

fn seed_states(v: usize, salt: u64) -> Vec<u64> {
    (0..v as u64).map(|i| mix(i ^ salt)).collect()
}

fn server(n_shards: usize) -> JobServer<u64, u64> {
    JobServer::new(ServerConfig::with_shards(n_shards)).unwrap()
}

/// Cold and warm server jobs are bit-for-bit the batch engine: states and
/// trace identical, the repeats all cache hits.
#[test]
fn server_matches_run_cold_and_warm() {
    let v = 64;
    let states = seed_states(v, 7);
    let want = run(&butterfly(v), states.clone(), &RunOptions::default()).unwrap();

    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "bfly", variant: v as u64 });
    for round in 0..3 {
        let res = srv
            .run_job(spec.clone(), states.clone(), ProgramSource::Build(Box::new(move || butterfly(v))))
            .unwrap();
        assert_eq!(res.states, want.states, "round {round} states");
        assert_eq!(res.trace.as_ref(), Some(&want.trace), "round {round} trace");
        assert!(res.fallback.is_none());
    }
    let stats = srv.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cache_misses, 1, "only the first job compiles");
    assert_eq!(stats.cache_hits, 2);
}

/// Dynamic (unplanned) programs are served identically too, warm included.
#[test]
fn server_serves_dynamic_programs() {
    let v = 32;
    let flag = Arc::new(AtomicBool::new(false));
    let states = seed_states(v, 3);
    let want = run(&poisonable(v, &flag), states.clone(), &RunOptions::default()).unwrap();

    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "dyn", variant: 0 });
    for _ in 0..2 {
        let f = Arc::clone(&flag);
        let res = srv
            .run_job(
                spec.clone(),
                states.clone(),
                ProgramSource::Build(Box::new(move || poisonable(v, &f))),
            )
            .unwrap();
        assert_eq!(res.states, want.states);
        assert_eq!(res.trace.as_ref(), Some(&want.trace));
    }
}

/// The cache keys on `v` and on the execution width: the same shape at a
/// different `v` — or routed to the serial path (`v <` gang width) — is a
/// different entry, never a false hit.
#[test]
fn cache_misses_across_v_and_width() {
    let srv = server(8);
    let shape = ShapeKey { algo: "bfly", variant: 0 };
    // Three distinct (v, width) keys under ONE shape key: gang at v=32,
    // gang at v=64, serial at v=4.
    for v in [32usize, 64, 4] {
        for repeat in 0..2 {
            let states = seed_states(v, 11);
            let want = run(&butterfly(v), states.clone(), &RunOptions::default()).unwrap();
            let res = srv
                .run_job(
                    JobSpec::new(shape),
                    states,
                    ProgramSource::Build(Box::new(move || butterfly(v))),
                )
                .unwrap();
            assert_eq!(res.states, want.states, "v={v} repeat={repeat}");
        }
    }
    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 3, "one compile per (v, width)");
    assert_eq!(stats.cache_hits, 3, "one warm repeat each");
    assert_eq!(stats.serial_jobs, 2, "v=4 rides the serial path");
}

/// Captured-plan entries key on the initial states: a lookalike job — same
/// shape, same `v`, different data — misses and re-captures against its own
/// states instead of replaying the other job's routes.
#[test]
fn captured_lookalike_misses_and_recaptures() {
    let v = 32;
    let flag = Arc::new(AtomicBool::new(false));
    let states_a = seed_states(v, 1);
    let states_b = seed_states(v, 2);
    let want_a = run(&poisonable(v, &flag), states_a.clone(), &RunOptions::default()).unwrap();
    let want_b = run(&poisonable(v, &flag), states_b.clone(), &RunOptions::default()).unwrap();

    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "captured", variant: 0 });
    let submit = |states: Vec<u64>| {
        let f = Arc::clone(&flag);
        srv.submit_captured(spec.clone(), states, move || poisonable(v, &f))
            .unwrap()
            .wait()
            .unwrap()
    };
    assert_eq!(submit(states_a.clone()).states, want_a.states);
    assert_eq!(submit(states_a).states, want_a.states, "same states: warm replay");
    assert_eq!(submit(states_b).states, want_b.states, "lookalike re-captures");
    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 2, "two captures: states A and states B");
    assert_eq!(stats.cache_hits, 1, "one warm replay of A");
}

/// A cached captured entry whose program has drifted is *detected* on the
/// warm hit — a structured `PlanMismatch` under validation, a transparent
/// dynamic re-run under `PlanFallback::Dynamic` — and either way the gang
/// serves the next job cleanly.
#[test]
fn stale_captured_hit_degrades_structurally() {
    let v = 32;
    let flag = Arc::new(AtomicBool::new(false));
    let states = seed_states(v, 9);

    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "poisonable", variant: 0 });
    let f0 = Arc::clone(&flag);
    let first = srv
        .submit_captured(spec.clone(), states.clone(), move || poisonable(v, &f0))
        .unwrap()
        .wait()
        .unwrap();
    assert!(first.fallback.is_none());

    // The program's behavior drifts out from under the cache entry.
    flag.store(true, Ordering::Relaxed);

    // Validated warm hit: rejected as a structured mismatch.
    let f1 = Arc::clone(&flag);
    let err = srv
        .submit_captured(spec.clone(), states.clone(), move || poisonable(v, &f1))
        .unwrap()
        .wait()
        .expect_err("stale capture must be rejected");
    assert!(matches!(err, ModelError::PlanMismatch { .. }), "got {err:?}");

    // Non-validated warm hit under Dynamic fallback: completes with the
    // live behavior and records the abandoned attempt.
    let live = run(&poisonable(v, &flag), states.clone(), &RunOptions::default()).unwrap();
    let mut fb_spec = spec.clone();
    fb_spec.opts = JobOptions {
        validate: false,
        plan_fallback: PlanFallback::Dynamic,
        ..JobOptions::default()
    };
    let f2 = Arc::clone(&flag);
    let res = srv
        .submit_captured(fb_spec, states.clone(), move || poisonable(v, &f2))
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(res.fallback, Some(ModelError::PlanMismatch { .. })));
    assert_eq!(res.states, live.states, "degraded run executes live behavior");

    // The gang is still serviceable for an unrelated program.
    let clean = seed_states(64, 5);
    let want = run(&butterfly(64), clean.clone(), &RunOptions::default()).unwrap();
    let res = srv
        .run_job(
            JobSpec::new(ShapeKey { algo: "bfly", variant: 64 }),
            clean,
            ProgramSource::Build(Box::new(|| butterfly(64))),
        )
        .unwrap();
    assert_eq!(res.states, want.states);
}

/// Chaos coverage for serving: an injected fault (error and panic flavor)
/// in job `k` fails `k`'s ticket with the structured error and job `k+1`
/// runs clean on the *same* gang — per-job epoch reset instead of sticky
/// barrier poison.
#[test]
fn gang_survives_injected_fault_between_jobs() {
    let v = 64;
    let states = seed_states(v, 13);
    let want = run(&butterfly(v), states.clone(), &RunOptions::default()).unwrap();
    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "bfly", variant: v as u64 });
    let submit = |opts: JobOptions| {
        let mut spec = spec.clone();
        spec.opts = opts;
        srv.run_job(
            spec,
            states.clone(),
            ProgramSource::Build(Box::new(move || butterfly(v))),
        )
    };
    // Warm the cache first, then alternate faulty and clean jobs.
    assert_eq!(submit(JobOptions::default()).unwrap().states, want.states);
    for (site, shard) in
        [("shard:exec_planned", 1usize), ("shard:commit", 2), ("shard:prepare", 3)]
    {
        let faulty = JobOptions {
            faults: Some(Arc::new(FaultPlan::error_at(site, shard, 1))),
            stall_timeout: Some(Duration::from_secs(5)),
            ..JobOptions::default()
        };
        let err = match submit(faulty) {
            Err(e) => e,
            Ok(_) => panic!("armed fault at {site} shard {shard} did not fail the job"),
        };
        assert!(
            matches!(err, ModelError::FaultInjected { .. }),
            "{site}: got {err:?}"
        );
        let clean = submit(JobOptions::default()).unwrap();
        assert_eq!(clean.states, want.states, "{site}: gang not serviceable after fault");
        assert_eq!(clean.trace.as_ref(), Some(&want.trace), "{site}: trace residue");
    }
    // Panic flavor rides the same recovery — on worker 0, i.e. the
    // scheduler thread itself, whose unwind must also stay contained.
    let panicky = JobOptions {
        faults: Some(Arc::new(FaultPlan::panic_at("shard:exec_planned", 0, 1))),
        stall_timeout: Some(Duration::from_secs(5)),
        ..JobOptions::default()
    };
    let err = submit(panicky).expect_err("panic fault must fail the job");
    assert!(matches!(err, ModelError::VpPanic { .. }), "got {err:?}");
    let clean = submit(JobOptions::default()).unwrap();
    assert_eq!(clean.states, want.states);
    assert_eq!(srv.stats().failed, 4);
}

/// A stalled job (one worker descheduled past `stall_timeout`) fails with
/// `GangStall` and the next job runs clean: the re-armed barrier replaces
/// the in-run sticky poison between jobs.
#[test]
fn gang_survives_stall_between_jobs() {
    let v = 64;
    let trip = Arc::new(AtomicBool::new(true));
    let states = seed_states(v, 17);
    let build = |trip: Arc<AtomicBool>| {
        move || {
            let mut prog: Program<u64, u64> = Program::new(v, v);
            let log_v = prog.log_v();
            let t = Arc::clone(&trip);
            prog.step(0, "maybe-slow", move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                // One VP of shard 3 oversleeps the watchdog, once.
                if ctx.vp == ctx.v - 1 && t.swap(false, Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(400));
                }
                out.send(ctx.vp ^ (ctx.v / 2), *st + 1);
            });
            prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
            });
            prog
        }
    };
    let want = run(&build(Arc::new(AtomicBool::new(false)))(), states.clone(), &RunOptions::default())
        .unwrap();

    let srv = server(4);
    let mut spec = JobSpec::new(ShapeKey { algo: "slow", variant: 0 });
    spec.opts.stall_timeout = Some(Duration::from_millis(40));
    let err = srv
        .run_job(spec.clone(), states.clone(), ProgramSource::Build(Box::new(build(Arc::clone(&trip)))))
        .expect_err("watchdog must fail the stalled job");
    assert!(matches!(err, ModelError::GangStall { .. }), "got {err:?}");
    assert!(!trip.load(Ordering::Relaxed), "the slow VP actually ran");

    let res = srv
        .run_job(spec, states.clone(), ProgramSource::Build(Box::new(build(trip))))
        .unwrap();
    assert_eq!(res.states, want.states, "gang not serviceable after stall");
}

/// The compiled-plan cache is bounded by `plan_cache_bytes`: an adversarial
/// stream of fresh shape keys stays under the byte budget by evicting the
/// least-recently-used entries, and an evicted shape transparently
/// recompiles on resubmission instead of replaying a freed plan.
#[test]
fn plan_cache_evicts_by_bytes_and_recompiles() {
    use nob_core::telemetry::{Counter, TelemetrySink};
    use std::sync::atomic::AtomicU64;

    let v = 64;
    let states = seed_states(v, 29);
    let want = run(&butterfly(v), states.clone(), &RunOptions::default()).unwrap();
    let entry_bytes = butterfly(v).plan_bytes();
    assert!(entry_bytes > 0, "butterfly must carry compiled plans");

    // Room for three entries (all butterfly(v) programs compile to the
    // same plan footprint), then an adversarial stream of nine.
    let sink = Arc::new(TelemetrySink::for_workers(4));
    let cfg = ServerConfig {
        plan_cache_bytes: 3 * entry_bytes,
        telemetry: Some(Arc::clone(&sink)),
        ..ServerConfig::with_shards(4)
    };
    let srv: JobServer<u64, u64> = JobServer::new(cfg).unwrap();
    let builds = Arc::new(AtomicU64::new(0));
    let submit = |variant: u64| {
        let b = Arc::clone(&builds);
        let res = srv
            .run_job(
                JobSpec::new(ShapeKey { algo: "bfly", variant }),
                states.clone(),
                ProgramSource::Build(Box::new(move || {
                    b.fetch_add(1, Ordering::Relaxed);
                    butterfly(v)
                })),
            )
            .unwrap();
        assert_eq!(res.states, want.states, "variant {variant}");
    };
    for variant in 0..8 {
        submit(variant);
    }
    assert_eq!(builds.load(Ordering::Relaxed), 8, "every fresh shape compiles");
    let bytes = sink.get(Counter::CacheBytes);
    assert!(
        bytes <= 3 * entry_bytes && bytes > 0,
        "cache bytes {bytes} escaped the {}-byte budget",
        3 * entry_bytes
    );
    assert!(
        sink.get(Counter::CacheEvictions) >= 5,
        "stream of 8 into a 3-entry budget must evict, saw {}",
        sink.get(Counter::CacheEvictions)
    );

    // Variant 0 is long evicted: the resubmission is a miss that
    // recompiles and still runs bit-for-bit.
    submit(0);
    assert_eq!(builds.load(Ordering::Relaxed), 9, "evicted shape must recompile");
    // A hot shape keeps hitting: the last-submitted variant is resident.
    submit(0);
    assert_eq!(builds.load(Ordering::Relaxed), 9, "resident shape must not recompile");
    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 9);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(sink.get(Counter::CacheMisses), 9, "telemetry mirrors stats");
    assert_eq!(sink.get(Counter::CacheHits), 1);
}

/// Prebuilt submissions share one program across jobs; dropping the server
/// fails still-queued tickets structurally instead of running the backlog.
#[test]
fn prebuilt_jobs_and_drop_semantics() {
    let v = 32;
    let states = seed_states(v, 23);
    let prog = Arc::new(butterfly(v));
    let want = run(&prog, states.clone(), &RunOptions::default()).unwrap();

    let srv = server(4);
    let spec = JobSpec::new(ShapeKey { algo: "bfly", variant: v as u64 });
    let res = srv
        .run_job(spec.clone(), states.clone(), ProgramSource::Prebuilt(Arc::clone(&prog)))
        .unwrap();
    assert_eq!(res.states, want.states);

    // Head the queue with a slow job, stack tickets behind it, drop.
    let slow = Arc::new(butterfly(1 << 12));
    let slow_states = seed_states(1 << 12, 1);
    let head = srv
        .submit(
            JobSpec::new(ShapeKey { algo: "bfly", variant: 1 << 12 }),
            slow_states,
            ProgramSource::Prebuilt(slow),
        )
        .unwrap();
    let queued: Vec<_> = (0..3)
        .map(|_| {
            srv.submit(spec.clone(), states.clone(), ProgramSource::Prebuilt(Arc::clone(&prog)))
                .unwrap()
        })
        .collect();
    drop(srv);
    // The head may or may not have started; queued tickets behind it must
    // resolve either way — completed or failed-by-shutdown, never hang.
    let _ = head.wait();
    let mut refused = 0;
    for t in queued {
        match t.wait() {
            Ok(r) => assert_eq!(r.states, want.states),
            Err(ModelError::BadParameter { what, .. }) => {
                assert_eq!(what, "job server");
                refused += 1;
            }
            Err(e) => panic!("unexpected queued-job error: {e:?}"),
        }
    }
    assert!(refused > 0, "shutdown should refuse still-queued jobs");
}
