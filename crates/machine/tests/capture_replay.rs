//! Property tests of trace capture: for *arbitrary value-dependent* programs
//! — whose destinations are computed from the evolving state and therefore
//! cannot be declared obliviously — a captured run compiled into
//! [`StepPlan`]s and replayed must be **bit-for-bit indistinguishable** from
//! the live dynamic run: states, trace and raw message log, serial and
//! sharded at w ∈ {1, 2, 4, 8}, validation on and off, fused and unfused,
//! and at every folding. A capture that has gone stale (the program's
//! behavior changed after capture) must surface as a structured
//! [`nob_core::ModelError::PlanMismatch`] — or degrade to the dynamic path
//! under [`PlanFallback::Dynamic`] — never as silent corruption.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nob_machine::{run, run_folded, PlanFallback, Program, RunOptions};
use proptest::prelude::*;

/// Splitmix-style hash driving the value-dependent routes.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Builds a program whose every destination is derived from the *current
/// state* — deterministic for fixed initial states, but impossible to
/// declare as an oblivious route. Exactly the programs only capture can
/// bring onto the planned path.
fn build_dynamic(v: usize, steps: &[(u32, u64, u8)]) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for &(raw_label, seed, fanout) in steps {
        let label = raw_label % log_v.max(1);
        prog.step(label, "value-dependent", move |st, ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
            let cluster = ctx.v >> label;
            let base = ctx.vp - ctx.vp % cluster;
            for k in 0..fanout as usize {
                let dst = base + (mix(*st ^ seed ^ (k as u64) << 32) as usize) % cluster;
                out.send(dst, st.wrapping_add(k as u64));
            }
            if mix(*st ^ seed).is_multiple_of(5) {
                out.send_dummy(base + (mix(seed) as usize) % cluster);
            }
        });
    }
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

fn arb_steps() -> impl Strategy<Value = (usize, Vec<(u32, u64, u8)>)> {
    (2u32..7).prop_flat_map(|log_v| {
        let v = 1usize << log_v;
        proptest::collection::vec((0u32..log_v, any::<u64>(), 0u8..4), 1..8)
            .prop_map(move |steps| (v, steps))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Captured replay ≡ live dynamic execution: same states, same trace,
    /// same message log — serial and sharded at w ∈ {1, 2, 4, 8},
    /// validation on and off, fusion on and off.
    #[test]
    fn captured_replay_is_bit_for_bit_dynamic((v, steps) in arb_steps()) {
        let dynamic = build_dynamic(v, &steps);
        let mut captured = build_dynamic(v, &steps);
        let states: Vec<u64> = (0..v as u64).map(mix).collect();
        let added = captured.capture_plans(states.clone()).unwrap();
        prop_assert_eq!(added, captured.steps().len(), "every step was dynamic");
        prop_assert_eq!(captured.planned_steps(), captured.steps().len());

        let serial = RunOptions { workers: Some(1), ..RunOptions::with_log() };
        let want = run(&dynamic, states.clone(), &serial).unwrap();
        for (name, opts) in [
            ("serial", serial.clone()),
            ("serial-no-validate", RunOptions { validate: false, ..serial.clone() }),
            ("serial-fuse-off", RunOptions { fuse: false, ..serial.clone() }),
            ("sharded-2", RunOptions { workers: Some(2), ..RunOptions::with_log() }),
            ("sharded-4", RunOptions { workers: Some(4), ..RunOptions::with_log() }),
            ("sharded-8", RunOptions { workers: Some(8), ..RunOptions::with_log() }),
            (
                "sharded-4-no-validate",
                RunOptions { validate: false, workers: Some(4), ..RunOptions::with_log() },
            ),
            (
                "sharded-8-fuse-off",
                RunOptions { fuse: false, workers: Some(8), ..RunOptions::with_log() },
            ),
        ] {
            let got = run(&captured, states.clone(), &opts).unwrap();
            prop_assert!(got.fallback.is_none(), "{} fell back", name);
            prop_assert_eq!(&got.states, &want.states, "{} states", name);
            prop_assert_eq!(&got.trace, &want.trace, "{} trace", name);
            prop_assert_eq!(&got.message_log, &want.message_log, "{} log", name);
        }
    }

    /// Folded captured replay ≡ folded dynamic execution at every p and
    /// worker width.
    #[test]
    fn folded_captured_replay_matches_dynamic((v, steps) in arb_steps()) {
        let dynamic = build_dynamic(v, &steps);
        let mut captured = build_dynamic(v, &steps);
        let states: Vec<u64> = (0..v as u64).collect();
        captured.capture_plans(states.clone()).unwrap();
        prop_assert_eq!(captured.planned_steps(), captured.steps().len());

        let mut p = 2usize;
        while p <= v {
            let serial = RunOptions { workers: Some(1), ..RunOptions::with_log() };
            let want = run_folded(&dynamic, states.clone(), p, &serial).unwrap();
            for w in [1usize, 2, 4, 8] {
                let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
                let got = run_folded(&captured, states.clone(), p, &opts).unwrap();
                prop_assert_eq!(&got.states, &want.states, "folded states p={} w={}", p, w);
                prop_assert_eq!(&got.trace, &want.trace, "folded trace p={} w={}", p, w);
                prop_assert_eq!(&got.message_log, &want.message_log, "folded log p={} w={}", p, w);
            }
            p *= 2;
        }
    }
}

/// A value-dependent step whose routing can be flipped after capture,
/// simulating a program whose behavior drifted out from under its cache.
/// The poisoned variant changes per-destination *counts* (evens receive
/// two payloads, odds none), so the drift is structurally detectable on
/// every tier — with validation via the lockstep route check, without it
/// via the direct writer's slot bounds.
fn poisonable(v: usize, flag: &Arc<AtomicBool>) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    let f = Arc::clone(flag);
    prog.step(0, "poisonable", move |st, ctx, inbox, out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
        let dst = if f.load(Ordering::Relaxed) { ctx.vp & !1 } else { (ctx.vp + 1) % ctx.v };
        out.send(dst, *st | 1);
    });
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

/// A stale capture is a structured [`PlanMismatch`] on every execution
/// path — serial and sharded at every width — never corruption.
#[test]
fn stale_capture_is_rejected_as_plan_mismatch() {
    let v = 16;
    let flag = Arc::new(AtomicBool::new(false));
    let mut prog = poisonable(v, &flag);
    let states: Vec<u64> = (0..v as u64).collect();
    assert_eq!(prog.capture_plans(states.clone()).unwrap(), 2);

    // The program's behavior changes *after* capture: the send pattern no
    // longer matches what the captured plan promises.
    flag.store(true, Ordering::Relaxed);
    for w in [1usize, 2, 4, 8] {
        for validate in [true, false] {
            let opts = RunOptions { workers: Some(w), validate, ..Default::default() };
            let err = run(&prog, states.clone(), &opts)
                .expect_err("stale capture must be rejected, validated or not");
            assert!(
                matches!(err, nob_core::ModelError::PlanMismatch { .. }),
                "unexpected error at {w} workers (validate={validate}): {err:?}"
            );
        }
    }
}

/// Under [`PlanFallback::Dynamic`] a stale capture degrades to the dynamic
/// path: the run completes with the *live* behavior's output and records
/// the abandoned planned attempt in [`RunResult::fallback`].
#[test]
fn stale_capture_degrades_to_dynamic_under_fallback() {
    let v = 16;
    let flag = Arc::new(AtomicBool::new(false));
    let mut captured = poisonable(v, &flag);
    let states: Vec<u64> = (0..v as u64).collect();
    captured.capture_plans(states.clone()).unwrap();
    flag.store(true, Ordering::Relaxed);

    // What the drifted program *actually* does now, dynamically.
    let live = poisonable(v, &flag);
    let want = run(&live, states.clone(), &RunOptions::default()).unwrap();

    for w in [1usize, 2, 4, 8] {
        // Fallback arms only on non-validated runs: under validation a
        // mismatch is a model violation to report, not degrade around.
        let opts = RunOptions {
            workers: Some(w),
            validate: false,
            plan_fallback: PlanFallback::Dynamic,
            ..Default::default()
        };
        let got = run(&captured, states.clone(), &opts).unwrap();
        assert!(
            matches!(got.fallback, Some(nob_core::ModelError::PlanMismatch { .. })),
            "fallback not recorded at {w} workers: {:?}",
            got.fallback
        );
        assert_eq!(got.states, want.states, "degraded run diverged at {w} workers");
    }
}
