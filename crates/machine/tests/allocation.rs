//! Proves the arena engine's headline property: **steady-state supersteps
//! perform zero heap allocations** on the serial path.
//!
//! A counting global allocator is armed *from inside the program itself*: a
//! VP closure of an early superstep switches counting on and the final
//! superstep's closure switches it off. The measurement window therefore
//! covers, exactly: the tail of the arming superstep (its streaming
//! metrics pass, routing scatter, and trace push) and the full
//! execute–measure–route cycle of every steady superstep in between — while
//! excluding one-time setup (arena/stage/counter construction, trace
//! reservation) and end-of-run trace materialization.

use nob_machine::{run, PlanFallback, Program, RunOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);
/// The counter is process-global, so the tests in this file must not run
/// concurrently with each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct CountingAlloc;

// SAFETY: delegates to `System`, only adding a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A butterfly exchange: every VP sends one message per superstep — the
/// densest per-VP pattern — with allocation-free closures.
fn counting_butterfly(v: usize, rounds: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        // Supersteps 0 and 1 are warmup: they grow the staging buffer and
        // fill each of the two arenas once, establishing the steady-state
        // capacities.
        let arm = r == 2;
        let last = r == rounds - 1;
        prog.step(l, "bfly", move |st, ctx, inbox, out| {
            // VP 0 of superstep 2 arms the counter, so measurement starts
            // with that superstep's own metrics + routing phases. The final
            // closure disarms it before end-of-run trace materialization.
            if ctx.vp == 0 {
                if arm {
                    ALLOCS.store(0, Ordering::SeqCst);
                    COUNTING.store(true, Ordering::SeqCst);
                } else if last {
                    COUNTING.store(false, Ordering::SeqCst);
                }
            }
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            if !last {
                out.send(ctx.vp ^ d, *st);
            }
        });
    }
    prog
}

#[test]
fn steady_state_supersteps_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let v = 1 << 10;
    let rounds = 24;
    let prog = counting_butterfly(v, rounds);
    let states: Vec<u64> = (0..v as u64).collect();
    // Serial path: the parallel path boxes one pool task per chunk per
    // superstep, which is the one documented exception.
    let opts = RunOptions { parallel: false, ..Default::default() };
    let res = run(&prog, states, &opts).unwrap();
    assert!(!COUNTING.load(Ordering::SeqCst), "final superstep must disarm the counter");
    assert_eq!(res.trace.superstep_count(), rounds);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations during {} steady-state supersteps of v = {v}",
        rounds - 3,
    );
}

#[test]
fn warmup_allocations_do_not_grow_with_superstep_count() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Whole-run allocation totals for S and 2S supersteps differ only by
    // the trace-record materialization at the end of the run (2 allocations
    // per extra superstep: the record's degree vector and the builder's
    // amortized flat growth are pre-reserved, but each `SuperstepRecord`
    // owns one `h_by_fold` vector, and `Vec<SuperstepRecord>` collection is
    // a single allocation).
    let v = 1 << 8;
    let count_run = |rounds: usize| -> usize {
        let prog = counting_butterfly_silent(v, rounds);
        let states: Vec<u64> = (0..v as u64).collect();
        let opts = RunOptions { parallel: false, ..Default::default() };
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let res = run(&prog, states, &opts).unwrap();
        COUNTING.store(false, Ordering::SeqCst);
        assert_eq!(res.trace.superstep_count(), rounds);
        ALLOCS.load(Ordering::SeqCst)
    };
    let short = count_run(8);
    let long = count_run(24);
    // 16 extra supersteps cost exactly 16 record materializations and
    // nothing else: no per-superstep engine allocations.
    assert_eq!(
        long - short,
        16,
        "extra supersteps must cost exactly one end-of-run record allocation each",
    );
}

#[test]
fn sharded_steady_state_does_not_allocate_per_superstep() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The sharded executor allocates at run setup (workers, lanes, cells,
    // shard arenas) and as lanes/arenas grow to their high-water marks
    // during the first label cycle — but a steady superstep must cost
    // *nothing*: lane pushes, local spill, gather counting sort, epoch
    // merge, trace push and barrier waits all reuse capacity. The counter
    // is armed from inside the program after a full label cycle (so every
    // lane pattern has hit its high-water mark) and disarmed by the final
    // superstep, excluding one-time setup, worker spawning and end-of-run
    // trace materialization — the same windowing as the serial test above.
    let v = 1 << 8;
    let rounds = 24; // labels cycle 0..8; armed at round 16, 8 steady rounds
    let prog = counting_butterfly_armed(v, rounds, 16);
    let states: Vec<u64> = (0..v as u64).collect();
    let opts = RunOptions { workers: Some(4), ..Default::default() };
    let res = run(&prog, states, &opts).unwrap();
    assert!(!COUNTING.load(Ordering::SeqCst), "final superstep must disarm the counter");
    assert_eq!(res.trace.superstep_count(), rounds);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations during {} steady-state sharded supersteps of v = {v}",
        rounds - 17,
    );
}

#[test]
fn sharded_planned_steady_state_does_not_allocate_per_superstep() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The sharded *planned* path — pipelined prepare (route counting into
    // recycled region tables, prefix sums, window publication), direct
    // cross-shard arena writes, the written-total safety check, the
    // coordinator's O(log v) precomputed trace push, and the single
    // barrier — must be allocation-free in steady state just like the
    // dynamic sharded path. Armed after a full label cycle so both arenas
    // and all region tables have reached their high-water shapes.
    let v = 1 << 8;
    let rounds = 24;
    let prog = planned_butterfly_armed(v, rounds, 16);
    let states: Vec<u64> = (0..v as u64).collect();
    let opts = RunOptions { workers: Some(4), ..Default::default() };
    let res = run(&prog, states, &opts).unwrap();
    assert!(!COUNTING.load(Ordering::SeqCst), "final superstep must disarm the counter");
    assert_eq!(res.trace.superstep_count(), rounds);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations during {} steady-state sharded planned supersteps of v = {v}",
        rounds - 17,
    );
}

#[test]
fn telemetry_armed_sharded_steady_state_does_not_allocate() {
    use nob_core::telemetry::{Site, TelemetrySink};

    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Arming telemetry must not break the zero-alloc property: the sink's
    // slots are pre-sized at construction ([`TelemetrySink::for_workers`]),
    // so armed steady-state recording — span clock reads, per-site atomic
    // adds, barrier-arrival stamps — costs time but never heap. Same
    // windowing as the disarmed sharded test above.
    let v = 1 << 8;
    let rounds = 24;
    let prog = planned_butterfly_armed(v, rounds, 16);
    let states: Vec<u64> = (0..v as u64).collect();
    let sink = std::sync::Arc::new(TelemetrySink::for_workers(4));
    let opts = RunOptions {
        workers: Some(4),
        telemetry: Some(std::sync::Arc::clone(&sink)),
        ..Default::default()
    };
    let res = run(&prog, states, &opts).unwrap();
    assert!(!COUNTING.load(Ordering::SeqCst), "final superstep must disarm the counter");
    assert_eq!(res.trace.superstep_count(), rounds);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations during {} telemetry-armed sharded supersteps of v = {v}",
        rounds - 17,
    );
    // The window wasn't vacuous: the armed run recorded real spans on both
    // planned tiers and the barrier.
    let report = sink.run_report();
    assert!(report.count(Site::ShardExecPlanned) > 0, "no planned-tier spans recorded");
    assert!(report.count(Site::ShardFusedExec) > 0, "no fused-tier spans recorded");
    assert!(report.count(Site::ShardBarrierWait) > 0, "no barrier-wait spans recorded");
    assert!(report.nanos(Site::ShardBarrierWait) > 0 || report.nanos(Site::ShardExecPlanned) > 0);
}

#[test]
fn telemetry_disarmed_runs_are_bit_for_bit_unchanged() {
    use nob_core::telemetry::TelemetrySink;

    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The observability rule in both directions: arming telemetry must not
    // perturb results (it only reads clocks), and a disarmed run is the
    // exact run the armed one observed — states, trace and message log all
    // bit-for-bit, on the serial and sharded paths.
    let v = 1 << 8;
    let rounds = 16;
    for workers in [1usize, 4] {
        let prog = counting_butterfly_silent(v, rounds);
        let states: Vec<u64> = (0..v as u64).collect();
        let disarmed = RunOptions {
            workers: Some(workers),
            collect_messages: true,
            ..Default::default()
        };
        let armed = RunOptions {
            telemetry: Some(std::sync::Arc::new(TelemetrySink::for_workers(workers))),
            ..disarmed.clone()
        };
        let plain = run(&prog, states.clone(), &disarmed).unwrap();
        let observed = run(&prog, states, &armed).unwrap();
        assert_eq!(plain.states, observed.states, "states diverge at width {workers}");
        assert_eq!(plain.trace, observed.trace, "trace diverges at width {workers}");
        assert_eq!(
            plain.message_log, observed.message_log,
            "message log diverges at width {workers}"
        );
    }
}

#[test]
fn planned_steady_state_supersteps_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The planned serial path — route counting pass, prefix sum, direct
    // arena writes, O(log v) precomputed trace push — must preserve the
    // engine's headline property, with validation (lockstep route checks)
    // on. Same windowing as the dynamic test above.
    let v = 1 << 10;
    let rounds = 24;
    let prog = planned_butterfly(v, rounds);
    let states: Vec<u64> = (0..v as u64).collect();
    let opts = RunOptions { parallel: false, ..Default::default() };
    let res = run(&prog, states, &opts).unwrap();
    assert!(!COUNTING.load(Ordering::SeqCst), "final superstep must disarm the counter");
    assert_eq!(res.trace.superstep_count(), rounds);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations during {} steady-state planned supersteps of v = {v}",
        rounds - 3,
    );
}

#[test]
fn log_collecting_runs_allocate_one_entry_per_recorded_superstep() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // With `collect_messages` on, the engine fills a recycled scratch
    // buffer and pushes one exact-size clone per recorded superstep into
    // the pre-reserved log. So 16 extra supersteps cost exactly 16 log
    // clones on top of the 16 end-of-run record materializations — no
    // repeated scratch growth, no other per-superstep allocations.
    let v = 1 << 8;
    let count_run = |rounds: usize| -> usize {
        let prog = counting_butterfly_silent(v, rounds);
        let states: Vec<u64> = (0..v as u64).collect();
        let opts = RunOptions { parallel: false, ..RunOptions::with_log() };
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let res = run(&prog, states, &opts).unwrap();
        COUNTING.store(false, Ordering::SeqCst);
        assert_eq!(res.trace.superstep_count(), rounds);
        ALLOCS.load(Ordering::SeqCst)
    };
    // The counter is process-global, so rare allocations on libtest's
    // monitor thread can leak into a window. Noise is strictly additive;
    // the minimum over a few samples is the engine's true deterministic
    // cost. (A throwaway run first absorbs one-time lazy init.)
    let _ = count_run(8);
    let sample = |rounds: usize| (0..3).map(|_| count_run(rounds)).min().unwrap();
    let short = sample(8);
    let long = sample(24);
    assert_eq!(
        long - short,
        32,
        "extra log-collecting supersteps must cost exactly one record + one log entry each",
    );
}

#[test]
fn dynamic_fallback_on_unplanned_programs_does_not_clone_states() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // `PlanFallback::Dynamic` clones the pristine states up front so a
    // failed planned attempt can be retried from scratch — but the
    // insurance is only bought when a planned step exists to fail. A fully
    // dynamic program (zero planned steps) must have an allocation profile
    // identical to the default policy's.
    let v = 1 << 8;
    let count_run = |fallback: PlanFallback| -> usize {
        let prog = counting_butterfly_silent(v, 8);
        assert_eq!(prog.planned_steps(), 0, "fixture must be fully dynamic");
        let states: Vec<u64> = (0..v as u64).collect();
        let opts = RunOptions {
            parallel: false,
            validate: false,
            plan_fallback: fallback,
            ..Default::default()
        };
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let res = run(&prog, states, &opts).unwrap();
        COUNTING.store(false, Ordering::SeqCst);
        assert!(res.fallback.is_none(), "nothing to fall back from");
        ALLOCS.load(Ordering::SeqCst)
    };
    // Min-of-3 filters additive allocator noise from other threads, same
    // as the log-collection test above.
    let _ = count_run(PlanFallback::Fail);
    let sample = |fb: PlanFallback| (0..3).map(|_| count_run(fb)).min().unwrap();
    assert_eq!(
        sample(PlanFallback::Dynamic),
        sample(PlanFallback::Fail),
        "arming fallback on an unplanned program must not clone the states",
    );
}

#[test]
fn warm_server_jobs_do_not_allocate_across_jobs() {
    use nob_machine::server::{JobServer, JobSpec, ProgramSource, ServerConfig, ShapeKey};
    use nob_machine::Route;

    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The job server's pooling claim, measured: after the first (cold) job
    // compiles plans and grows every pooled structure to its high-water
    // shape — worker-kit arenas, staging, scatter scratch, chunk buffers,
    // lane grid, shard cells, merge scratch, trace builder — warm jobs on
    // the persistent gang allocate *nothing*, dispatch and handshake
    // included. The counter is armed from inside job 3's first superstep
    // and disarmed in job N's last, so the window spans whole warm jobs
    // plus every inter-job seam (done handshakes, queue pop, cache hit,
    // epoch reset, chunk scatter/gather, ticket fulfillment of jobs 3..N-1)
    // while excluding the cold compile and the submission side. Job 1
    // stalls its last superstep until the main thread has finished
    // submitting, pinning every ticket/queue allocation before the window.
    static JOBS_STARTED: AtomicUsize = AtomicUsize::new(0);
    static SUBMITS_DONE: AtomicBool = AtomicBool::new(false);
    const JOBS: usize = 6;
    JOBS_STARTED.store(0, Ordering::SeqCst);
    SUBMITS_DONE.store(false, Ordering::SeqCst);

    let v = 1 << 8;
    let rounds = 10usize;
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        let (first, last) = (r == 0, r == rounds - 1);
        prog.step_oblivious(
            l,
            "bfly-served",
            if last { 0 } else { 1 },
            move |ctx, _| Route::Data(ctx.vp ^ d),
            move |st, ctx, inbox, out| {
                if ctx.vp == 0 && first {
                    let job = JOBS_STARTED.fetch_add(1, Ordering::SeqCst) + 1;
                    if job == 3 {
                        ALLOCS.store(0, Ordering::SeqCst);
                        COUNTING.store(true, Ordering::SeqCst);
                    }
                }
                if ctx.vp == 0 && last {
                    match JOBS_STARTED.load(Ordering::SeqCst) {
                        // Hold job 1 open until the whole batch is queued.
                        1 => {
                            while !SUBMITS_DONE.load(Ordering::SeqCst) {
                                std::thread::yield_now();
                            }
                        }
                        JOBS => COUNTING.store(false, Ordering::SeqCst),
                        _ => {}
                    }
                }
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                if !last {
                    out.send(ctx.vp ^ d, *st);
                }
            },
        );
    }
    let prog = std::sync::Arc::new(prog);
    let states: Vec<u64> = (0..v as u64).collect();
    let srv: JobServer<u64, u64> = JobServer::new(ServerConfig::with_shards(4)).unwrap();
    let mut spec = JobSpec::new(ShapeKey { algo: "bfly-served", variant: rounds as u64 });
    spec.opts.want_trace = false;
    let tickets: Vec<_> = (0..JOBS)
        .map(|_| {
            srv.submit(
                spec.clone(),
                states.clone(),
                ProgramSource::Prebuilt(std::sync::Arc::clone(&prog)),
            )
            .unwrap()
        })
        .collect();
    SUBMITS_DONE.store(true, Ordering::SeqCst);
    let mut results = tickets.into_iter().map(|t| t.wait().unwrap());
    let first = results.next().unwrap();
    for (k, res) in results.enumerate() {
        assert_eq!(res.states, first.states, "warm job {} diverged", k + 2);
    }
    assert!(!COUNTING.load(Ordering::SeqCst), "last job must disarm the counter");
    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, (JOBS - 1) as u64);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations across {} warm server jobs of v = {v}",
        JOBS - 2,
    );
}

/// The [`counting_butterfly`] pattern declared as an oblivious route
/// (planned execution path).
fn planned_butterfly(v: usize, rounds: usize) -> Program<u64, u64> {
    use nob_machine::Route;
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        let arm = r == 2;
        let last = r == rounds - 1;
        prog.step_oblivious(
            l,
            "bfly-planned",
            if last { 0 } else { 1 },
            move |ctx, _| Route::Data(ctx.vp ^ d),
            move |st, ctx, inbox, out| {
                if ctx.vp == 0 {
                    if arm {
                        ALLOCS.store(0, Ordering::SeqCst);
                        COUNTING.store(true, Ordering::SeqCst);
                    } else if last {
                        COUNTING.store(false, Ordering::SeqCst);
                    }
                }
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                if !last {
                    out.send(ctx.vp ^ d, *st);
                }
            },
        );
    }
    prog
}

/// Like [`planned_butterfly`] but arming at a configurable round (the
/// sharded executor's arenas and direct-write region tables need a full
/// label cycle of warmup, not two supersteps).
fn planned_butterfly_armed(v: usize, rounds: usize, arm_at: usize) -> Program<u64, u64> {
    use nob_machine::Route;
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        let arm = r == arm_at;
        let last = r == rounds - 1;
        prog.step_oblivious(
            l,
            "bfly-planned",
            if last { 0 } else { 1 },
            move |ctx, _| Route::Data(ctx.vp ^ d),
            move |st, ctx, inbox, out| {
                if ctx.vp == 0 {
                    if arm {
                        ALLOCS.store(0, Ordering::SeqCst);
                        COUNTING.store(true, Ordering::SeqCst);
                    } else if last {
                        COUNTING.store(false, Ordering::SeqCst);
                    }
                }
                for m in inbox.drain(..) {
                    *st = st.wrapping_add(m);
                }
                if !last {
                    out.send(ctx.vp ^ d, *st);
                }
            },
        );
    }
    prog
}

/// Like [`counting_butterfly`] but arming at a configurable round (the
/// sharded executor's lanes need a full label cycle of warmup, not two
/// supersteps).
fn counting_butterfly_armed(v: usize, rounds: usize, arm_at: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        let arm = r == arm_at;
        let last = r == rounds - 1;
        prog.step(l, "bfly", move |st, ctx, inbox, out| {
            if ctx.vp == 0 {
                if arm {
                    ALLOCS.store(0, Ordering::SeqCst);
                    COUNTING.store(true, Ordering::SeqCst);
                } else if last {
                    COUNTING.store(false, Ordering::SeqCst);
                }
            }
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            if !last {
                out.send(ctx.vp ^ d, *st);
            }
        });
    }
    prog
}

/// Like [`counting_butterfly`] but without the in-closure arming (the whole
/// run is measured by the caller).
fn counting_butterfly_silent(v: usize, rounds: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for r in 0..rounds {
        let l = (r as u32) % log_v;
        let d = v >> (l + 1);
        let last = r == rounds - 1;
        prog.step(l, "bfly", move |st, _ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            if !last {
                out.send(_ctx.vp ^ d, *st);
            }
        });
    }
    prog
}
