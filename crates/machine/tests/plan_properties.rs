//! Property tests of the communication-plan layer: for *arbitrary* oblivious
//! programs, executing from the compiled [`StepPlan`]s (analytic metrics,
//! compile-proven cluster constraint, direct-write scatter) must be
//! **bit-for-bit indistinguishable** from dynamic execution — states, trace
//! and raw message log, at full granularity and every folding, on the serial
//! and the sharded path — and a mis-declared route must be rejected under
//! validation instead of silently corrupting metrics.

use nob_machine::{run, run_folded, Ctx, Program, Route, RunOptions};
use proptest::prelude::*;

/// Splitmix-style hash shared by routes and closures (deterministic per
/// (seed, vp, k), so declaration and emission agree by construction).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The declared slot of VP `vp` at index `k` for a step descriptor:
/// `fanout` seed-derived in-cluster payloads, then one optional dummy.
fn slot(v: usize, label: u32, seed: u64, fanout: u8, vp: usize, k: usize) -> Route {
    let cluster = v >> label;
    let base = vp - vp % cluster;
    if k < fanout as usize {
        let dst = base + (mix(seed ^ (vp as u64) ^ (k as u64) << 32) as usize) % cluster;
        Route::Data(dst)
    } else if k == fanout as usize && mix(seed ^ vp as u64).is_multiple_of(3) {
        Route::Dummy(base + (mix(seed) as usize) % cluster)
    } else {
        Route::Skip
    }
}

/// Builds the program twice from the same descriptors: once with plans
/// declared (`oblivious = true`), once purely dynamic. Identical SPMD
/// semantics by construction.
fn build_program(v: usize, steps: &[(u32, u64, u8)], oblivious: bool) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for &(raw_label, seed, fanout) in steps {
        let label = raw_label % log_v.max(1);
        let body = move |st: &mut u64,
                         ctx: &Ctx,
                         inbox: &mut nob_machine::Inbox<'_, u64>,
                         out: &mut nob_machine::Outbox<u64>| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
            for k in 0..=fanout as usize {
                match slot(ctx.v, label, seed, fanout, ctx.vp, k) {
                    Route::Data(dst) => out.send(dst, *st ^ mix(seed.wrapping_add(k as u64))),
                    Route::Dummy(dst) => out.send_dummy(dst),
                    Route::Skip | Route::End => {}
                }
            }
        };
        if oblivious {
            prog.step_oblivious(
                label,
                "random-planned",
                fanout as usize + 1,
                move |ctx, k| slot(ctx.v, label, seed, fanout, ctx.vp, k),
                body,
            );
        } else {
            prog.step(label, "random-dynamic", body);
        }
    }
    prog.step(log_v - 1, "consume", |st, _ctx, inbox, _out| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    });
    prog
}

fn arb_steps() -> impl Strategy<Value = (usize, Vec<(u32, u64, u8)>)> {
    (2u32..7).prop_flat_map(|log_v| {
        let v = 1usize << log_v;
        proptest::collection::vec((0u32..log_v, any::<u64>(), 0u8..4), 1..8)
            .prop_map(move |steps| (v, steps))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned execution ≡ dynamic execution: same states, same trace, same
    /// message log — serial and sharded at p ∈ {2, 4, 8} (the direct
    /// cross-shard scatter vs the lane path), plans on and off, validation
    /// on and off.
    #[test]
    fn planned_execution_is_bit_for_bit_dynamic((v, steps) in arb_steps()) {
        let planned = build_program(v, &steps, true);
        let dynamic = build_program(v, &steps, false);
        prop_assert_eq!(planned.planned_steps(), steps.len());
        let states: Vec<u64> = (0..v as u64).map(|x| x * 11 + 5).collect();
        let serial = RunOptions { workers: Some(1), ..RunOptions::with_log() };
        let want = run(&dynamic, states.clone(), &serial).unwrap();
        for (name, opts) in [
            ("serial", serial.clone()),
            ("plans-off", RunOptions { use_plans: false, ..serial.clone() }),
            ("no-validate", RunOptions { validate: false, ..serial.clone() }),
            ("sharded-2", RunOptions { workers: Some(2), ..RunOptions::with_log() }),
            ("sharded-4", RunOptions { workers: Some(4), ..RunOptions::with_log() }),
            ("sharded-8", RunOptions { workers: Some(8), ..RunOptions::with_log() }),
            (
                "sharded-4-no-validate",
                RunOptions { validate: false, workers: Some(4), ..RunOptions::with_log() },
            ),
            (
                "sharded-8-plans-off",
                RunOptions { use_plans: false, workers: Some(8), ..RunOptions::with_log() },
            ),
        ] {
            let got = run(&planned, states.clone(), &opts).unwrap();
            prop_assert_eq!(&got.states, &want.states, "{} states", name);
            prop_assert_eq!(&got.trace, &want.trace, "{} trace", name);
            prop_assert_eq!(&got.message_log, &want.message_log, "{} log", name);
        }
    }

    /// Folded planned execution ≡ folded dynamic execution at every p and
    /// worker width (plan metrics collapse to granularity p analytically).
    #[test]
    fn folded_planned_execution_matches_dynamic((v, steps) in arb_steps()) {
        let planned = build_program(v, &steps, true);
        let dynamic = build_program(v, &steps, false);
        let states: Vec<u64> = (0..v as u64).collect();
        let mut p = 2usize;
        while p <= v {
            let serial = RunOptions { workers: Some(1), ..RunOptions::with_log() };
            let want = run_folded(&dynamic, states.clone(), p, &serial).unwrap();
            for w in [1usize, 2, 4] {
                let opts = RunOptions { workers: Some(w), ..RunOptions::with_log() };
                let got = run_folded(&planned, states.clone(), p, &opts).unwrap();
                prop_assert_eq!(&got.states, &want.states, "folded states p={} w={}", p, w);
                prop_assert_eq!(&got.trace, &want.trace, "folded trace p={} w={}", p, w);
                prop_assert_eq!(&got.message_log, &want.message_log, "folded log p={} w={}", p, w);
            }
            p *= 2;
        }
    }

    /// A deliberately mis-declared route — the closure sends to a cyclic
    /// perturbation of every declared destination — is rejected under
    /// validation on every execution path (serial direct write, and the
    /// sharded direct cross-shard scatter at p ∈ {2, 4, 8}), never
    /// silently executed; the gang exits the reduced one-barrier protocol
    /// in lockstep with a [`nob_core::ModelError::PlanMismatch`], not a
    /// hang, a panic or memory corruption.
    #[test]
    fn misdeclared_routes_are_rejected_under_validation(
        (v, mut steps) in arb_steps(),
        step_seed in any::<u64>(),
    ) {
        // Ensure at least one payload message exists to mis-declare.
        steps[0].2 = steps[0].2.max(1);
        let (raw_label, _, fanout) = steps[0];
        let mut prog: Program<u64, u64> = Program::new(v, v);
        let log_v = prog.log_v();
        let label = raw_label % log_v.max(1);
        let seed = step_seed;
        prog.step_oblivious(
            label,
            "perturbed",
            fanout as usize + 1,
            move |ctx, k| slot(ctx.v, label, seed, fanout, ctx.vp, k),
            move |_st, ctx, _inbox, out| {
                let cluster = ctx.v >> label;
                let base = ctx.vp - ctx.vp % cluster;
                for k in 0..=fanout as usize {
                    match slot(ctx.v, label, seed, fanout, ctx.vp, k) {
                        // Shift every declared destination by one within the
                        // cluster: guaranteed different (cluster ≥ 2).
                        Route::Data(dst) => {
                            out.send(base + (dst - base + 1) % cluster, 7)
                        }
                        Route::Dummy(dst) => out.send_dummy(dst),
                        Route::Skip | Route::End => {}
                    }
                }
            },
        );
        let states: Vec<u64> = vec![0; v];
        for w in [1usize, 2, 4, 8] {
            let opts = RunOptions { workers: Some(w), ..Default::default() };
            let err = run(&prog, states.clone(), &opts)
                .expect_err("mis-declared route must be rejected under validation");
            prop_assert!(
                matches!(err, nob_core::ModelError::PlanMismatch { .. }),
                "unexpected error at {} workers: {:?}", w, err
            );
        }
    }

    /// A route whose closure escapes the declared shard cluster on the
    /// cross-shard direct-write path is caught by the writer's span check
    /// as a [`nob_core::ModelError::PlanMismatch`] — never a stale-window
    /// write — even with validation (and thus lockstep checking) off.
    #[test]
    fn cross_shard_escape_is_plan_mismatch_not_memory_corruption(
        lg in 2u32..6,
        validate in any::<bool>(),
    ) {
        let v = 1usize << lg;
        let mut prog: Program<u64, u64> = Program::new(v, v);
        // Declared: a shard-local self-send (label log_v - 1 keeps every
        // cluster inside one shard at w >= 2). Actual: VP 0 sends across
        // the machine's bisection — outside the declared cluster span.
        let label = lg - 1;
        prog.step_oblivious(
            label,
            "escapee",
            1,
            |ctx, _| Route::Data(ctx.vp),
            |_st, ctx, _inbox, out| {
                if ctx.vp == 0 {
                    out.send(ctx.v - 1, 13);
                } else {
                    out.send(ctx.vp, 13);
                }
            },
        );
        let states: Vec<u64> = vec![0; v];
        for w in [2usize, 4] {
            let opts = RunOptions { validate, workers: Some(w), ..Default::default() };
            let err = run(&prog, states.clone(), &opts)
                .expect_err("cluster-escaping send must be rejected");
            prop_assert!(
                matches!(err, nob_core::ModelError::PlanMismatch { .. }),
                "unexpected error at {} workers (validate = {}): {:?}", w, validate, err
            );
        }
    }
}
