//! Failure-injection tests: the engine must reject model violations loudly
//! rather than mis-account them.

use nob_machine::{run, run_folded, Program, RunOptions};
use nob_core::ModelError;

#[test]
fn message_outside_cluster_is_rejected_with_the_offending_edge() {
    let mut p: Program<(), u8> = Program::new(16, 16);
    p.step(2, "escape", |_, ctx, _, out| {
        if ctx.vp == 5 {
            out.send(12, 1); // 5 and 12 differ in the top two bits
        }
    });
    match run(&p, vec![(); 16], &RunOptions::default()) {
        Err(ModelError::ClusterViolation { label: 2, src: 5, dst: 12 }) => {}
        Err(other) => panic!("expected cluster violation, got {other:?}"),
        Ok(_) => panic!("expected cluster violation, got success"),
    }
}

#[test]
fn out_of_range_destination_is_rejected() {
    let mut p: Program<(), u8> = Program::new(8, 8);
    p.step(0, "overflow", |_, ctx, _, out| {
        if ctx.vp == 0 {
            out.send(8, 1);
        }
    });
    assert!(run(&p, vec![(); 8], &RunOptions::default()).is_err());
}

#[test]
fn folded_execution_validates_too() {
    let mut p: Program<(), u8> = Program::new(16, 16);
    p.step(3, "escape", |_, ctx, _, out| {
        if ctx.vp == 0 {
            out.send(15, 1);
        }
    });
    assert!(run_folded(&p, vec![(); 16], 4, &RunOptions::default()).is_err());
}

#[test]
fn bad_fold_targets_are_rejected() {
    let mut p: Program<u8, u8> = Program::new(8, 8);
    p.step(0, "noop", |_, _, _, _| {});
    for bad_p in [0usize, 3, 16] {
        match run_folded(&p, vec![0; 8], bad_p, &RunOptions::default()) {
            Err(ModelError::BadFold { .. }) => {}
            other => panic!("p = {bad_p}: expected BadFold, got {:?}", other.is_ok()),
        }
    }
}

#[test]
#[should_panic(expected = "one state per VP")]
fn wrong_state_count_panics() {
    let mut p: Program<u8, u8> = Program::new(8, 8);
    p.step(0, "noop", |_, _, _, _| {});
    let _ = run(&p, vec![0; 7], &RunOptions::default());
}

#[test]
fn self_messages_are_internal_at_every_fold() {
    // A VP sending to itself communicates with no one: degrees stay zero.
    let mut p: Program<u8, u8> = Program::new(8, 8);
    p.step(0, "selfie", |_, ctx, _, out| out.send(ctx.vp, 9));
    let res = run(&p, vec![0; 8], &RunOptions::default()).unwrap();
    for j in 1..=3 {
        assert_eq!(res.trace.steps[0].h(j), 0, "self-messages must fold away");
    }
    assert_eq!(res.trace.steps[0].total_msgs, 8);
}

#[test]
fn validation_off_really_skips_the_checks() {
    let mut p: Program<(), u8> = Program::new(8, 8);
    p.step(2, "escape", |_, ctx, _, out| {
        if ctx.vp == 0 {
            out.send(7, 1);
        }
    });
    let opts = RunOptions { validate: false, ..Default::default() };
    // Runs to completion; the metric pipeline still records the message.
    let res = run(&p, vec![(); 8], &opts).unwrap();
    assert_eq!(res.trace.steps[0].total_msgs, 1);
}
