//! Chaos suite: sweeps deterministic fault injection over every
//! instrumented site of both executors × failure flavor × shard width and
//! asserts the three robustness invariants:
//!
//! 1. **Structured failure** — every fault that fires surfaces as the
//!    matching `ModelError` (`FaultInjected` for error-flavor arms,
//!    `VpPanic` carrying the injected payload for panic-flavor arms);
//!    never a hang, an abort, or a propagated unwind. Arms addressing a
//!    site/step/shard combination the program never reaches must fire
//!    nothing and leave the run untouched (checked against the baseline).
//! 2. **Lockstep exit** — sharded runs are driven with a watchdog armed, so
//!    a worker left behind by a buggy abort protocol would surface as a
//!    `GangStall` (and fail the first invariant) instead of wedging the
//!    suite.
//! 3. **No contamination** — after every injected failure, a clean run in
//!    the same process is bit-for-bit identical (states, trace, message
//!    log) to a baseline computed before any fault ran.
//!
//! The driver program mixes all three protocols — dynamic (three-barrier
//! lane exchange), planned (one-barrier direct scatter, including a
//! pipelined prepare edge) and fused (zero-barrier shard-local pipeline) —
//! so every phase boundary is reachable.

use nob_core::fault::{FaultKind, FaultPlan};
use nob_core::ModelError;
use nob_machine::plan::Route;
use nob_machine::{run, Program, RunOptions, RunResult};
use std::sync::Arc;
use std::time::Duration;

const V: usize = 16;

/// dynamic → planned → planned (pipelined prepare) → fused × 2
/// (zero-barrier: vp^1 at label 3 has payload locality 3, shard-local at
/// every swept width) → dynamic.
fn mixed_program() -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(V, V);
    let fold = |st: &mut u64, inbox: &mut nob_machine::Inbox<'_, u64>| {
        for m in inbox.drain(..) {
            *st = st.wrapping_mul(31).wrapping_add(m);
        }
    };
    prog.step(0, "dyn-a", move |st, ctx, inbox, out| {
        fold(st, inbox);
        out.send(ctx.vp ^ 8, *st + 1);
    });
    prog.step_oblivious(
        0,
        "pl-b",
        1,
        |ctx, _| Route::Data(ctx.vp ^ 8),
        move |st, ctx, inbox, out| {
            fold(st, inbox);
            out.send(ctx.vp ^ 8, *st + 2);
        },
    );
    prog.step_oblivious(
        0,
        "pl-c",
        1,
        |ctx, _| Route::Data(ctx.vp ^ 4),
        move |st, ctx, inbox, out| {
            fold(st, inbox);
            out.send(ctx.vp ^ 4, *st + 3);
        },
    );
    prog.step_oblivious(
        3,
        "fu-d",
        1,
        |ctx, _| Route::Data(ctx.vp ^ 1),
        move |st, ctx, inbox, out| {
            fold(st, inbox);
            out.send(ctx.vp ^ 1, *st + 4);
        },
    );
    prog.step_oblivious(
        3,
        "fu-e",
        1,
        |ctx, _| Route::Data(ctx.vp ^ 1),
        move |st, ctx, inbox, out| {
            fold(st, inbox);
            out.send(ctx.vp ^ 1, *st + 5);
        },
    );
    prog.step(0, "dyn-f", move |st, _, inbox, _| fold(st, inbox));
    prog
}

fn init_states() -> Vec<u64> {
    (0..V as u64).map(|x| x + 100).collect()
}

/// Options for width `w` (`1` = the serial path): message log on, watchdog
/// armed wide enough that only a genuinely lost worker could trip it.
fn opts(w: usize) -> RunOptions {
    RunOptions {
        workers: Some(w),
        collect_messages: true,
        stall_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    }
}

fn assert_clean(got: &RunResult<u64>, want: &RunResult<u64>, what: &str) {
    assert_eq!(got.states, want.states, "{what}: states contaminated");
    assert_eq!(got.trace, want.trace, "{what}: trace contaminated");
    assert_eq!(got.message_log, want.message_log, "{what}: log contaminated");
    assert!(got.fallback.is_none(), "{what}: spurious fallback");
}

/// Drives one injected run and checks invariants 1 and 3.
fn drive(
    prog: &Program<u64, u64>,
    baseline: &RunResult<u64>,
    w: usize,
    site: &'static str,
    shard: usize,
    t: usize,
    kind: FaultKind,
) {
    let what = format!("site {site}, shard {shard}, step {t}, {kind:?}, width {w}");
    let plan = Arc::new(match kind {
        FaultKind::Error => FaultPlan::error_at(site, shard, t),
        FaultKind::Panic => FaultPlan::panic_at(site, shard, t),
    });
    let run_opts = RunOptions { faults: Some(Arc::clone(&plan)), ..opts(w) };
    let result = run(prog, init_states(), &run_opts);
    if plan.fired() > 0 {
        let err = result.err().unwrap_or_else(|| panic!("{what}: fired but run succeeded"));
        match kind {
            FaultKind::Error => assert!(
                matches!(err, ModelError::FaultInjected { site: s, .. } if s == site),
                "{what}: wrong error {err:?}"
            ),
            FaultKind::Panic => match &err {
                ModelError::VpPanic { payload, .. } => assert!(
                    payload.contains("injected panic"),
                    "{what}: foreign panic payload {payload:?}"
                ),
                other => panic!("{what}: wrong error {other:?}"),
            },
        }
    } else {
        // The program never reaches this (site, shard, step): the arm must
        // be inert and the run indistinguishable from a clean one.
        let res = result.unwrap_or_else(|e| panic!("{what}: unfired arm errored: {e:?}"));
        assert_clean(&res, baseline, &what);
    }
    // Invariant 3: the failure left no residue behind in this process.
    let clean = run(prog, init_states(), &opts(w)).expect("clean rerun failed");
    assert_clean(&clean, baseline, &what);
}

#[test]
fn injected_faults_surface_structured_and_leave_no_residue() {
    let prog = mixed_program();
    let steps = prog.steps().len();

    // Serial path (width 1). The mailbox edges sit outside the serial
    // `catch_unwind` phases, so only error-flavor arms address them there;
    // the two serial phase sites take both flavors.
    let baseline = run(&prog, init_states(), &opts(1)).expect("serial baseline");
    for t in 0..steps {
        for site in ["serial:planned", "serial:exec"] {
            for kind in [FaultKind::Error, FaultKind::Panic] {
                drive(&prog, &baseline, 1, site, 0, t, kind);
            }
        }
        for site in ["mailbox:bump_count", "mailbox:prepare_write"] {
            drive(&prog, &baseline, 1, site, 0, t, FaultKind::Error);
        }
    }

    // Sharded widths: every executor site, both flavors (each site's check
    // runs inside its phase's `catch_unwind`), first and last shard.
    const SHARD_SITES: [&str; 9] = [
        "shard:prepare",
        "shard:exec_planned",
        "shard:fused_exec",
        "shard:commit",
        "shard:flush",
        "shard:gather",
        "shard:merge",
        "mailbox:bump_count",
        "mailbox:prepare_write",
    ];
    for w in [2usize, 4, 8] {
        let baseline = run(&prog, init_states(), &opts(w)).expect("sharded baseline");
        assert_clean(&baseline, &run(&prog, init_states(), &opts(1)).unwrap(), "width parity");
        for t in 0..steps {
            for site in SHARD_SITES {
                for shard in [0, w - 1] {
                    for kind in [FaultKind::Error, FaultKind::Panic] {
                        drive(&prog, &baseline, w, site, shard, t, kind);
                    }
                }
            }
        }
    }
}

#[test]
fn every_instrumented_site_is_reachable() {
    // The sweep above tolerates unreachable (site, step) pairs; this pins
    // that each *site* fires somewhere in the driver program, so a renamed
    // or dropped failpoint cannot silently hollow out the suite.
    let prog = mixed_program();
    let reachable = |w: usize, site: &'static str, shards: usize| {
        (0..prog.steps().len()).any(|t| {
            (0..shards).any(|s| {
                let plan = Arc::new(FaultPlan::error_at(site, s, t));
                let o = RunOptions { faults: Some(Arc::clone(&plan)), ..opts(w) };
                let _ = run(&prog, init_states(), &o);
                plan.fired() > 0
            })
        })
    };
    for site in ["serial:planned", "serial:exec", "mailbox:bump_count", "mailbox:prepare_write"] {
        assert!(reachable(1, site, 1), "serial site {site} unreachable");
    }
    for site in [
        "shard:prepare",
        "shard:exec_planned",
        "shard:fused_exec",
        "shard:commit",
        "shard:flush",
        "shard:gather",
        "shard:merge",
        "mailbox:bump_count",
        "mailbox:prepare_write",
    ] {
        assert!(reachable(4, site, 4), "sharded site {site} unreachable");
    }
}

#[test]
fn armed_telemetry_attributes_gang_stalls() {
    use nob_core::telemetry::TelemetrySink;
    // VP 5 (shard 1 of 2) outsleeps the watchdog inside its exec phase.
    // Disarmed, this surfaces as a bare `GangStall` (pinned by the shard
    // module's own test); armed, the error must *name* the lost worker and
    // the phase it was last seen entering — the whole point of threading
    // the entry stamps through the executor.
    let v = 8usize;
    let mut prog: Program<u64, u64> = Program::new(v, v);
    prog.step(0, "naps", |_, ctx, _, _| {
        if ctx.vp == 5 {
            std::thread::sleep(Duration::from_millis(300));
        }
    });
    let sink = Arc::new(TelemetrySink::for_workers(2));
    let run_opts = RunOptions {
        workers: Some(2),
        stall_timeout: Some(Duration::from_millis(50)),
        telemetry: Some(Arc::clone(&sink)),
        ..Default::default()
    };
    let err = run(&prog, vec![0u64; v], &run_opts).expect_err("stall must fail the run");
    match err {
        ModelError::GangStall { round: 1, missing: 1, stalled } => {
            assert_eq!(stalled.len(), 1, "exactly the lost worker is attributed");
            assert_eq!(stalled[0].worker, 1, "shard 1 holds VP 5");
            assert_eq!(stalled[0].site, Some("shard:exec"), "last seen in its exec phase");
            assert_eq!(stalled[0].superstep, 0);
        }
        other => panic!("wrong error {other:?}"),
    }
    // The rendered error carries the attribution too.
    let sink2 = Arc::new(TelemetrySink::for_workers(2));
    let run_opts = RunOptions { telemetry: Some(Arc::clone(&sink2)), ..run_opts };
    let msg = run(&prog, vec![0u64; v], &run_opts).expect_err("stall must fail").to_string();
    assert!(msg.contains("worker 1 last in `shard:exec`"), "unhelpful stall report: {msg}");
}

#[test]
fn capture_failpoint_is_reachable_and_structured() {
    // The capture run has its own failpoint (`serial:capture`, inside the
    // per-step `catch_unwind`): both flavors must surface structured, the
    // program must stay uncorrupted, and a clean capture afterwards must
    // still reach 100% coverage and replay identically.
    let prog = mixed_program();
    let baseline = run(&prog, init_states(), &opts(1)).expect("baseline");

    for kind in [FaultKind::Error, FaultKind::Panic] {
        let mut prog = mixed_program();
        let plan = match kind {
            FaultKind::Error => FaultPlan::error_at("serial:capture", 0, 0),
            FaultKind::Panic => FaultPlan::panic_at("serial:capture", 0, 0),
        };
        let err = prog
            .capture_plans_with(init_states(), Some(&plan), None)
            .expect_err("armed capture must fail");
        assert_eq!(plan.fired(), 1, "{kind:?}: capture failpoint did not fire");
        match kind {
            FaultKind::Error => assert!(
                matches!(err, ModelError::FaultInjected { site: "serial:capture", .. }),
                "{kind:?}: wrong error {err:?}"
            ),
            FaultKind::Panic => assert!(
                matches!(&err, ModelError::VpPanic { payload, .. } if payload.contains("injected panic")),
                "{kind:?}: wrong error {err:?}"
            ),
        }
        // A failed capture adds no plans and leaves the program runnable …
        assert_clean(&run(&prog, init_states(), &opts(2)).unwrap(), &baseline, "post-fault run");
        // … and a clean capture afterwards closes every gap.
        let added = prog.capture_plans(init_states()).expect("clean capture");
        assert!(added > 0, "clean capture added nothing");
        assert_eq!(prog.planned_steps(), prog.steps().len(), "not 100% planned");
        for w in [1usize, 2, 4, 8] {
            assert_clean(
                &run(&prog, init_states(), &opts(w)).unwrap(),
                &baseline,
                "captured replay",
            );
        }
    }
}
