//! Serving-API walkthrough: a persistent [`JobServer`] multiplexing many
//! program runs over one worker gang.
//!
//! Run with `cargo run --example job_server -p nob-machine`.
//!
//! The server amortizes everything a one-shot [`nob_machine::run`] pays
//! per call: the gang spawns once, compiled plans and send totals are
//! cached under the job's [`ShapeKey`], and mailbox arenas recycle across
//! jobs — a warm job's marginal cost is an enqueue plus two barrier
//! rounds. See the crate docs' "Serving" section for the cache-key and
//! admission rules.

use nob_machine::{
    JobServer, JobSpec, ProgramSource, Route, ServerConfig, ShapeKey,
};
use nob_machine::Program;

/// A butterfly all-to-all over `v` virtual processors, declared with
/// oblivious routes so every superstep carries a compiled plan.
fn butterfly(v: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for l in 0..log_v {
        let d = v >> (l + 1);
        prog.step_oblivious(
            l,
            "bfly",
            1,
            move |ctx, _| Route::Data(ctx.vp ^ d),
            move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_mul(31).wrapping_add(m);
                }
                out.send(ctx.vp ^ d, *st);
            },
        );
    }
    // Final superstep: consume the last exchange, send nothing.
    prog.step_oblivious(
        log_v - 1,
        "bfly-consume",
        0,
        |_, _| Route::End,
        |st, _ctx, inbox, _out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
        },
    );
    prog
}

fn main() {
    let v = 1usize << 10;
    // One gang of 4 persistent workers; jobs smaller than the gang run on
    // the scheduler thread's serial path through the same plan cache.
    let srv: JobServer<u64, u64> =
        JobServer::new(ServerConfig::with_shards(4)).expect("valid config");

    // The shape key names the program so repeat submissions can reuse its
    // compiled plans. The builder closure only runs on a cache miss — a
    // warm job never even constructs the program.
    let key = ShapeKey { algo: "bfly", variant: 0 };
    let source = || ProgramSource::Build(Box::new(move || butterfly(v)));
    let states: Vec<u64> = (0..v as u64).collect();

    // Cold job: compiles and caches. Warm jobs: cache hits.
    let first = srv.run_job(JobSpec::new(key), states.clone(), source()).expect("cold job");
    for _ in 0..3 {
        let warm = srv.run_job(JobSpec::new(key), states.clone(), source()).expect("warm job");
        assert_eq!(warm.states, first.states);
    }

    // Tickets decouple submission from completion: queue a batch, then
    // redeem. Size-aware admission lets small interactive jobs overtake a
    // queued large one.
    let tickets: Vec<_> = (0..4)
        .map(|_| srv.submit(JobSpec::new(key), states.clone(), source()).expect("submit"))
        .collect();
    for t in tickets {
        assert_eq!(t.wait().expect("queued job").states, first.states);
    }

    let stats = srv.stats();
    println!(
        "served {} jobs on one gang: {} plan-cache hit(s), {} miss(es)",
        stats.completed, stats.cache_hits, stats.cache_misses
    );
    assert_eq!(stats.cache_misses, 1, "only the first job should compile");
}
