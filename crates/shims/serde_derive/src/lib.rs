//! Offline shim for `serde_derive`: the derives expand to nothing. Nothing
//! in this workspace serializes through serde — the experiment harness
//! writes its own line-oriented text and JSON formats — so the derive
//! positions on model types are kept compiling without generating code.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
