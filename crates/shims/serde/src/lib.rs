//! Offline shim for `serde` (see `crates/shims/README.md`): marker traits
//! plus the re-exported no-op derives, so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` positions compile
//! unchanged. No code in this workspace performs serde serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
