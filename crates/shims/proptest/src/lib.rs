//! Offline shim for `proptest` (see `crates/shims/README.md`).
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range / tuple /
//! [`collection::vec`] / [`any`] strategies, the [`proptest!`] macro, and
//! the `prop_assert*` / `prop_assume!` macros. Differences from upstream:
//!
//! * **no shrinking** — a failing case reports its deterministic case
//!   number (the RNG is seeded from it) and the assertion message;
//! * rejections from `prop_assume!` skip the case rather than resampling.

use std::ops::Range;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG; each proptest case uses a seed derived from the case
    /// number so failures are reproducible.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5bf0_3635_16f5_5f35 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Outcome of one generated case (subset of `proptest::test_runner`).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// A value generator (subset of `proptest::strategy::Strategy`). No
/// shrinking: `sample` draws directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Types with a canonical full-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T` (subset of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy produced by [`any`] for primitive types.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset upstream tests use):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs…
///     #[test]
///     fn prop((a, b) in strategy_expr, c in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut skipped: u32 = 0;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1),
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            skipped += 1;
                            assert!(
                                skipped < config.cases,
                                "proptest `{}`: every case was rejected by prop_assume!",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {} (deterministic seed): {}",
                                stringify!($name), case, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..4, 1..8).sample(&mut rng);
            assert!((1..8).contains(&v.len()));
            let exact = collection::vec(any::<u64>(), 5usize).sample(&mut rng);
            assert_eq!(exact.len(), 5);
        }
    }

    #[test]
    fn flat_map_threads_the_rng() {
        let strat = (2u32..7).prop_flat_map(|lg| {
            collection::vec(0usize..(1 << lg), 1..4).prop_map(move |v| (lg, v))
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let (lg, v) = strat.sample(&mut rng);
            assert!(v.iter().all(|&x| x < (1 << lg)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple bindings, assume + asserts.
        #[test]
        fn macro_end_to_end((a, b) in (0u64..100, 0u64..100), c in any::<bool>()) {
            prop_assume!(a != b || c);
            prop_assert!(a < 100 && b < 100, "out of range: {} {}", a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
