//! Offline shim for the `rayon` crate (see `crates/shims/README.md`).
//!
//! Provides the subset of rayon's surface the workspace uses — scoped task
//! spawning onto a **persistent global thread pool** — with real parallelism:
//!
//! * [`scope`] / [`Scope::spawn`] — spawn borrowing closures that are
//!   guaranteed to finish before `scope` returns (the same shape as
//!   `scoped_threadpool`/`std::thread::scope`);
//! * [`join`] — run two closures, potentially in parallel;
//! * [`current_num_threads`] — the pool width used for chunking decisions.
//!
//! The pool is created lazily on first use, sized by the `NOB_THREADS`
//! environment variable when set (any integer ≥ 1; `1` disables the pool
//! entirely) and by `std::thread::available_parallelism` otherwise, and
//! falls back to inline (serial) execution if worker threads cannot be
//! spawned. The resolved width is observable through
//! [`current_num_threads`], so harnesses can both pin and report it —
//! PR 1 ran in a silently 1-wide container with no way to do either.
//! Panics inside spawned tasks are captured and re-raised from `scope`
//! after every task of the scope has settled, so borrowed data is never
//! observed mid-destruction.
//!
//! Limitation (documented, not enforced): do **not** call [`scope`] from
//! inside a spawned task. Nested scopes block a worker while waiting, which
//! can deadlock the fixed-width pool. The engine never nests scopes.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: mpsc::Sender<Job>,
    threads: usize,
}

/// The pool width to use: `NOB_THREADS` when set to a valid integer ≥ 1,
/// else the machine's available parallelism.
fn configured_threads() -> usize {
    match std::env::var("NOB_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("NOB_THREADS={raw:?} is not a positive integer; ignoring");
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        if threads < 2 {
            return None;
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut spawned = 0usize;
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let ok = std::thread::Builder::new()
                .name(format!("nob-pool-{i}"))
                .spawn(move || loop {
                    // Take the lock only to receive; run the job unlocked.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
                .is_ok();
            if ok {
                spawned += 1;
            }
        }
        if spawned == 0 {
            None
        } else {
            Some(Pool { sender: tx, threads: spawned })
        }
    })
    .as_ref()
}

/// Number of worker threads in the global pool (1 when the pool is
/// unavailable and execution is inline).
pub fn current_num_threads() -> usize {
    pool().map(|p| p.threads).unwrap_or(1)
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) }
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// A spawn handle tied to the borrow region `'env`: every task spawned on it
/// completes before the enclosing [`scope`] call returns, so tasks may borrow
/// anything that outlives that call.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    // Invariant in 'env: prevents the region from being shortened to inside
    // the scope closure's body.
    _inv: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns `f` onto the pool (or runs it inline if no pool exists). `f`
    /// receives a [`Scope`] so tasks can spawn further siblings, mirroring
    /// rayon's API.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let task_scope = Scope { state: Arc::clone(&self.state), _inv: PhantomData };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(&task_scope)));
            if let Err(p) = result {
                state.panic.lock().unwrap().get_or_insert(p);
            }
            state.finish_one();
        });
        // SAFETY: `scope` does not return (normally or by unwind) until
        // `pending` drops to zero, i.e. until this job has run to completion,
        // so the `'env` borrows inside the box never dangle.
        #[allow(unsafe_code)]
        let job: Job = unsafe { std::mem::transmute(job) };
        match pool() {
            Some(p) => {
                if let Err(rejected) = p.sender.send(job) {
                    // Pool shut down (process teardown): degrade to inline.
                    (rejected.0)();
                }
            }
            None => job(),
        }
    }
}

/// Runs `f` with a [`Scope`], waits for every spawned task, then re-raises
/// the first captured panic (if any). Returns `f`'s value.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let state = Arc::new(ScopeState::new());
    let s = Scope { state: Arc::clone(&state), _inv: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    let mut pending = state.pending.lock().unwrap();
    while *pending > 0 {
        pending = state.done.wait(pending).unwrap();
    }
    drop(pending);
    if let Some(p) = state.panic.lock().unwrap().take() {
        resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => resume_unwind(p),
    }
}

/// Runs both closures, the second potentially on the pool, and returns both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("spawned half of join completed"))
}

/// Kept for drop-in compatibility with `use rayon::prelude::*` in downstream
/// code; this shim's scoped API lives at the crate root.
pub mod prelude {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_and_borrows_soundly() {
        let mut data = vec![0u64; 64];
        scope(|s| {
            for chunk in data.chunks_mut(16) {
                s.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn nested_spawn_from_task_is_waited_for() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panics_propagate_after_scope_settles() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
                s.spawn(|_| {}); // sibling must still complete
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pool_width_is_reported() {
        assert!(current_num_threads() >= 1);
    }
}
