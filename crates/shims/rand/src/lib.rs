//! Offline shim for `rand` (see `crates/shims/README.md`): the subset the
//! network-fitting code uses — a seedable RNG and Fisher–Yates shuffling.
//! `StdRng` here is SplitMix64: not cryptographic, but deterministic,
//! well-distributed, and adequate for generating random h-relations.

/// Core RNG interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// SplitMix64 stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut xs: Vec<usize> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input untouched");
    }
}
