//! Offline shim for `criterion` (see `crates/shims/README.md`): the group /
//! `bench_function` / `iter` surface backed by a simple median-of-samples
//! wall-clock timer. No statistics beyond min/median/max, no HTML reports —
//! the numbers print to stdout, one line per benchmark.

use std::time::Instant;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 20 }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (minimum 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Times `f` and prints `group/id: min median max`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One warm-up call outside the measurement.
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), warmup: true };
        f(&mut b);
        b.warmup = false;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b.samples[b.samples.len() / 2];
        println!(
            "bench {}/{}: min {:?} median {:?} max {:?} ({} samples)",
            self.name,
            id,
            b.samples.first().copied().unwrap_or_default(),
            median,
            b.samples.last().copied().unwrap_or_default(),
            b.samples.len(),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times one routine per call.
#[derive(Default)]
pub struct Bencher {
    samples: Vec<std::time::Duration>,
    warmup: bool,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(&out);
        if !self.warmup {
            self.samples.push(elapsed);
        }
    }
}

/// Declares the function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up + 5 samples
        assert_eq!(runs, 6);
    }
}
