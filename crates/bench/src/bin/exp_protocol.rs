//! E13 (Section 5, Lemma 5.1 / Thm 5.3) — the ascend–descend protocol.
//!
//! The paper's motivating pattern: one 0-superstep in which VP0 sends n
//! messages to VP_{v/2} — `(Θ(1), p)`-full but only `(Θ(1/p), p)`-wise.
//! Under the standard protocol its communication time on a D-BSP is `n·g_0`;
//! the ascend–descend protocol spreads the burst over the cluster tree. We
//! rewrite the recorded execution per Lemma 5.1 and compare `D` on the
//! machine suite, plus the overhead the protocol adds to an already balanced
//! algorithm (bounded by Thm 5.3's O(log² p)).

use nob_algos::sort::ColumnSort;
use nob_bench::{fmt, random_keys, Table};
use nob_core::{fullness, machines, wiseness};
use nob_machine::protocol::{ascend_descend, ascend_descend_geometric};
use nob_machine::{execute_with_log, NobAlgorithm, Program};

/// The Section-5 single-sender pattern as a standalone algorithm.
struct SingleSender {
    msgs: usize,
}

impl NobAlgorithm for SingleSender {
    type State = u64;
    type Msg = u64;
    type Input = u64;
    type Output = u64;

    fn name(&self) -> String {
        "single-sender".into()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &u64) -> Vec<u64> {
        let mut s = vec![0; n];
        s[0] = *input;
        s
    }

    fn build(&self, n: usize) -> Program<u64, u64> {
        let mut prog = Program::new(n, n);
        let m = self.msgs;
        prog.step(0, "burst", move |st, ctx, _inbox, out| {
            if ctx.vp == 0 {
                for _ in 0..m {
                    out.send(ctx.v / 2, *st);
                }
            }
        });
        prog.step(prog.log_v() - 1, "consume", |st, _ctx, inbox, _out| {
            *st = inbox.drain(..).sum();
        });
        prog
    }

    fn extract(&self, _n: usize, states: Vec<u64>) -> u64 {
        states[states.len() / 2]
    }
}

fn main() {
    let v = 256usize;
    let burst = 4096usize;
    let alg = SingleSender { msgs: burst };
    let (_, trace, log) = execute_with_log(&alg, v, &1).unwrap();
    println!(
        "single-sender: alpha(p=256) = {} (poor wiseness), gamma(p=256) = {} (good fullness)",
        fmt(wiseness::alpha_max(&trace, 256).alpha),
        fmt(fullness::gamma_max(&trace, 256).gamma),
    );

    for &p in &[16usize, 64] {
        let rewritten = ascend_descend(&trace, &log, p);
        let geometric = ascend_descend_geometric(&trace, &log, p);
        let mut tab = Table::new(&[
            "machine",
            "D_standard",
            "D_ascend-descend",
            "D_a-d(telescoped)",
            "speedup",
            "telescoped gain",
        ]);
        for m in machines::standard_suite(p) {
            let d_std = trace.comm_time(&m);
            let d_ad = rewritten.comm_time(&m);
            let d_geo = geometric.comm_time(&m);
            tab.row(vec![
                m.name.clone(),
                fmt(d_std),
                fmt(d_ad),
                fmt(d_geo),
                fmt(d_std / d_geo),
                fmt(d_ad / d_geo),
            ]);
        }
        tab.print(&format!(
            "E13: ascend-descend on the single-sender burst (v = {v}, {burst} msgs), p = {p}"
        ));
    }

    // Overhead on an already balanced algorithm stays within Thm 5.3's
    // polylog factor.
    let n = 512usize;
    let keys = random_keys(n, 3);
    let (_, t_sort, log_sort) = execute_with_log(&ColumnSort::<u64>::default(), n, &keys[..]).unwrap();
    let p = 16usize;
    let rewritten = ascend_descend(&t_sort, &log_sort, p);
    let mut tab = Table::new(&["machine", "D_standard", "D_ascend-descend", "overhead", "log^2 p"]);
    for m in machines::standard_suite(p) {
        let d_std = t_sort.comm_time(&m);
        let d_ad = rewritten.comm_time(&m);
        tab.row(vec![
            m.name.clone(),
            fmt(d_std),
            fmt(d_ad),
            fmt(d_ad / d_std),
            fmt((p as f64).log2().powi(2)),
        ]);
    }
    tab.print(&format!("E13: protocol overhead on Columnsort (n = {n}), p = {p} (Thm 5.3 bound)"));
}
