//! Engine-throughput experiment: messages/second of the arena engine vs the
//! preserved legacy reference engine, on the real FFT and Columnsort
//! programs, for `v = 2^10 .. 2^16`. Emits a machine-readable
//! `BENCH_engine.json` so future PRs can track the perf trajectory.
//!
//! Usage: `cargo run --release -p nob-bench --bin exp_engine_throughput
//! [max_log_v] [out_path]` (defaults: 16, `BENCH_engine.json`).

use nob_algos::fft::BinaryExchangeFft;
use nob_algos::sort::ColumnSort;
use nob_bench::{random_keys, test_signal};
use nob_machine::reference::run_reference;
use nob_machine::{run, NobAlgorithm, Program, RunOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Peak resident set size so far, in kB (`VmHWM`: a process-lifetime
/// high-water mark, so per-size readings are cumulative maxima).
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

struct Measurement {
    secs: f64,
    messages: u64,
    supersteps: usize,
}

impl Measurement {
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.secs
    }
}

/// Times `engine` over enough repetitions to exceed ~200ms, returning the
/// best (fastest) repetition — the standard noise-resistant estimator.
fn measure<S: Clone + Send, M: Send>(
    prog: &Program<S, M>,
    states: &[S],
    engine: impl Fn(&Program<S, M>, Vec<S>) -> nob_machine::RunResult<S>,
) -> Measurement {
    let mut best = f64::INFINITY;
    let mut messages = 0;
    let mut supersteps = 0;
    let mut spent = 0.0f64;
    let mut reps = 0u32;
    while reps < 3 || (spent < 0.2 && reps < 50) {
        let input = states.to_vec();
        let start = Instant::now();
        let res = engine(prog, input);
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        best = best.min(secs);
        messages = res.trace.total_messages();
        supersteps = res.trace.superstep_count();
        reps += 1;
    }
    Measurement { secs: best, messages, supersteps }
}

struct Row {
    v: usize,
    program: &'static str,
    arena: Measurement,
    reference: Measurement,
    peak_rss_kb: u64,
}

fn bench_program<A>(alg: &A, name: &'static str, n: usize, input: &A::Input, opts: &RunOptions) -> Row
where
    A: NobAlgorithm,
    A::State: Clone + PartialEq + std::fmt::Debug,
{
    let prog = alg.build(n);
    let states = alg.init(n, input);
    // Cross-check once before timing: both engines must agree exactly.
    let a = run(&prog, states.clone(), opts).unwrap();
    let r = run_reference(&prog, states.clone(), opts).unwrap();
    assert_eq!(a.states, r.states, "{name}: engines disagree on states at v = {n}");
    assert_eq!(a.trace, r.trace, "{name}: engines disagree on trace at v = {n}");

    let arena = measure(&prog, &states, |p, s| run(p, s, opts).unwrap());
    let reference = measure(&prog, &states, |p, s| run_reference(p, s, opts).unwrap());
    Row { v: n, program: name, arena, reference, peak_rss_kb: peak_rss_kb() }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_log_v: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let out_path = args.get(2).cloned().unwrap_or_else(|| "BENCH_engine.json".to_string());
    let opts = RunOptions::default();

    let mut rows = Vec::new();
    for log_v in 10..=max_log_v {
        let v = 1usize << log_v;
        let signal = test_signal(v);
        rows.push(bench_program(&BinaryExchangeFft, "fft", v, &signal[..], &opts));
        let keys = random_keys(v, 42);
        rows.push(bench_program(&ColumnSort::<u64>::default(), "sort", v, &keys[..], &opts));
        let last = &rows[rows.len() - 2..];
        for row in last {
            eprintln!(
                "v=2^{log_v} {:<5} arena {:>10.0} msg/s | reference {:>10.0} msg/s | speedup {:.2}x",
                row.program,
                row.arena.msgs_per_sec(),
                row.reference.msgs_per_sec(),
                row.arena.msgs_per_sec() / row.reference.msgs_per_sec(),
            );
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"engine_throughput\",").unwrap();
    writeln!(json, "  \"pool_threads\": {},", rayon::current_num_threads()).unwrap();
    writeln!(json, "  \"validate\": {},", opts.validate).unwrap();
    writeln!(json, "  \"note\": \"peak_rss_kb is the process VmHWM high-water mark, cumulative across rows\",").unwrap();
    writeln!(json, "  \"rows\": [").unwrap();
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"v\": {}, \"program\": \"{}\", \"supersteps\": {}, \"messages_per_run\": {}, \
             \"arena_secs\": {:.6}, \"arena_msgs_per_sec\": {:.0}, \
             \"reference_secs\": {:.6}, \"reference_msgs_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"peak_rss_kb\": {}}}{}",
            row.v,
            row.program,
            row.arena.supersteps,
            row.arena.messages,
            row.arena.secs,
            row.arena.msgs_per_sec(),
            row.reference.secs,
            row.reference.msgs_per_sec(),
            row.arena.msgs_per_sec() / row.reference.msgs_per_sec(),
            row.peak_rss_kb,
            comma,
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
